// DyHSL: Dynamic Hypergraph Structure Learning for traffic flow forecasting
// (the paper's primary contribution, section IV).

#ifndef DYHSL_MODELS_DYHSL_H_
#define DYHSL_MODELS_DYHSL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/models/blocks.h"
#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/train/forecast_model.h"

namespace dyhsl::models {

/// \brief Hyperparameters (paper V-A4 defaults) and ablation switches.
struct DyHslConfig {
  int64_t hidden_dim = 64;       // d
  int64_t prior_layers = 6;      // Lp
  int64_t mhce_layers = 2;       // Ls
  int64_t num_hyperedges = 32;   // I
  /// Temporal pooling windows ε (paper: J = 6 scales). Every entry must
  /// divide the history length.
  std::vector<int64_t> window_sizes = {1, 2, 3, 4, 6, 12};
  float dropout = 0.1f;
  uint64_t seed = 21;

  /// \brief Sparse execution mode for the learned incidence Λ: keep only
  /// the `sparse_topk` largest-magnitude entries per Λ row and run the
  /// DHSL products as per-batch CSR SpMMs (gradients flow through the kept
  /// entries via SDDMM). 0 (default) is the paper's dense path;
  /// `num_hyperedges` reproduces the dense math on sparse kernels. Must
  /// lie in [0, num_hyperedges]; no effect under kFromScratch.
  int64_t sparse_topk = 0;

  /// \brief Reuse the sparse top-k pattern across MHCE iterations and
  /// adjacent forward passes instead of re-selecting every step: the
  /// cached CsrPattern is kept while at most `sparse_drift_threshold` of
  /// its rows have drifted, and only the kept values are refreshed (O(nnz)
  /// gather). Reuse with zero drifted rows is exact; under drift the
  /// pattern is stale on the drifted rows only (outputs agree with fresh
  /// selection to ~1e-4 relative at the default threshold; asserted in
  /// tests). Caches are per-thread, so serving workers each stay warm
  /// independently. Requires sparse_topk > 0.
  bool sparse_pattern_reuse = false;
  /// Fraction of drifted rows tolerated before re-selecting, in [0, 1].
  /// 0 reuses only provably exact patterns; larger values trade staleness
  /// for fewer selections.
  float sparse_drift_threshold = 0.05f;

  /// \name Ablation switches (Tables V / VI / VII)
  /// @{
  StructureLearning structure_learning = StructureLearning::kLowRank;
  bool use_igc = true;
  /// @}
};

/// \brief The full model: prior graph encoder -> multi-scale holistic
/// correlation extraction (DHSL + IGC per scale, Eq. 13) -> adaptive scale
/// fusion (Eq. 14) -> prediction head.
class DyHsl : public nn::Module, public train::ForecastModel {
 public:
  DyHsl(const train::ForecastTask& task, const DyHslConfig& config);

  autograd::Variable Forward(const tensor::Tensor& x, bool training) override;

  std::vector<autograd::Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  std::string name() const override { return "DyHSL"; }

  const DyHslConfig& config() const { return config_; }

  /// \brief The shared DHSL block (pattern-cache stats live here).
  const DhslBlock& dhsl() const { return dhsl_; }

  /// \brief Learned incidence matrix Λ of the finest scale (ε = 1) for the
  /// given input, shape (B, T*N, I). Used by the Fig. 7 analysis.
  tensor::Tensor IncidenceFor(const tensor::Tensor& x);

  /// \brief Softmax-normalized scale fusion weights (Eq. 14), length J.
  std::vector<float> ScaleWeights() const;

 private:
  /// One MHCE branch: pool to scale eps, run Ls iterations of
  /// 0.5 * (DHSL + IGC), mean-pool over time -> (B, N, d).
  autograd::Variable RunScale(const autograd::Variable& h_full, int64_t eps,
                              bool training, Rng* dropout_rng);

  train::ForecastTask task_;
  DyHslConfig config_;
  Rng rng_;

  autograd::SparseConstant prior_temporal_op_;
  /// Normalized temporal-graph operator per pooled length T/ε.
  std::map<int64_t, autograd::SparseConstant> scale_ops_;

  PriorGraphEncoder encoder_;
  DhslBlock dhsl_;
  IgcBlock igc_;
  nn::LayerNorm iter_norm_;
  autograd::Variable scale_logits_;  // (J), Eq. 14 weights
  nn::Linear head_;
};

}  // namespace dyhsl::models

#endif  // DYHSL_MODELS_DYHSL_H_
