#include "src/models/dyhsl.h"

#include <string>
#include <utility>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/graph/temporal_graph.h"
#include "src/tensor/ops.h"

namespace dyhsl::models {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

namespace {

Rng MakeRng(uint64_t seed) { return Rng(seed); }

}  // namespace

DyHsl::DyHsl(const train::ForecastTask& task, const DyHslConfig& config)
    : task_(task),
      config_(config),
      rng_(MakeRng(config.seed)),
      prior_temporal_op_(graph::BuildNormalizedTemporalOp(task.spatial_adj,
                                                          task.history)),
      encoder_(task.num_nodes, task.history, task.input_dim,
               config.hidden_dim, config.prior_layers, prior_temporal_op_,
               &rng_),
      dhsl_(config.hidden_dim, config.num_hyperedges, &rng_,
            config.structure_learning, config.sparse_topk,
            config.sparse_pattern_reuse, config.sparse_drift_threshold),
      igc_(config.hidden_dim, &rng_),
      iter_norm_(config.hidden_dim),
      head_(2 * config.hidden_dim, task.horizon, &rng_) {
  DYHSL_CHECK(!config_.window_sizes.empty());
  // sparse_topk range itself is validated by DhslBlock; reject the
  // combination that silently would not sparsify anything.
  DYHSL_CHECK_MSG(
      config_.sparse_topk == 0 ||
          config_.structure_learning != StructureLearning::kFromScratch,
      "sparse_topk requires an incidence-based structure mode "
      "(kLowRank or kFixedRandom)");
  for (int64_t eps : config_.window_sizes) {
    // Validate positivity first: `history % eps` with eps == 0 is UB.
    DYHSL_CHECK_MSG(eps > 0, "window sizes must be positive, got " +
                                 std::to_string(eps));
    DYHSL_CHECK_MSG(task.history % eps == 0,
                    "window size " + std::to_string(eps) +
                        " must divide the history length " +
                        std::to_string(task.history));
    int64_t pooled_steps = task.history / eps;
    if (scale_ops_.find(pooled_steps) == scale_ops_.end()) {
      scale_ops_[pooled_steps] = graph::BuildNormalizedTemporalOp(
          task_.spatial_adj, pooled_steps);
    }
    dhsl_.RegisterSequenceLength(pooled_steps * task.num_nodes, &rng_);
  }
  RegisterChild("encoder", &encoder_);
  RegisterChild("dhsl", &dhsl_);
  RegisterChild("igc", &igc_);
  RegisterChild("iter_norm", &iter_norm_);
  RegisterChild("head", &head_);
  scale_logits_ = RegisterParameter(
      "scale_logits",
      T::Tensor::Zeros({static_cast<int64_t>(config_.window_sizes.size())}));
}

ag::Variable DyHsl::RunScale(const ag::Variable& h_full, int64_t eps,
                             bool training, Rng* dropout_rng) {
  int64_t batch = h_full.size(0);
  int64_t n = task_.num_nodes;
  int64_t d = config_.hidden_dim;
  int64_t pooled_steps = task_.history / eps;
  // Local max pooling over time (δ^k_i = Pool(h^{kε-ε+1}_i ... h^{kε}_i)).
  ag::Variable h = ag::Reshape(h_full, {batch, task_.history, n, d});
  if (eps > 1) h = ag::MaxPoolAxis(h, /*axis=*/1, eps);
  ag::Variable delta = ag::Reshape(h, {batch, pooled_steps * n, d});
  const auto& adj = scale_ops_.at(pooled_steps);
  for (int64_t layer = 0; layer < config_.mhce_layers; ++layer) {
    // Eq. 13: Δ_l = 1/2 (BLOCK_H(Δ_{l-1}) + BLOCK_I(Δ_{l-1})).
    ag::Variable mixed;
    if (config_.use_igc) {
      mixed = ag::MulScalar(
          ag::Add(dhsl_.Forward(delta), igc_.Forward(adj, delta)), 0.5f);
    } else {
      mixed = dhsl_.Forward(delta);  // Table VI "w/o IGC" ablation
    }
    // Normalization and dropout keep iterated block outputs well-scaled
    // (implementation detail; see DESIGN.md). mixed is consumed so the
    // inference path normalizes in place.
    delta = iter_norm_.Forward(std::move(mixed));
    delta = ag::Dropout(delta, config_.dropout, training, dropout_rng);
  }
  // Mean-pool the sequence dimension -> γ^ε (B, N, d).
  delta = ag::Reshape(delta, {batch, pooled_steps, n, d});
  return ag::Mean(delta, /*axis=*/1);
}

ag::Variable DyHsl::Forward(const tensor::Tensor& x, bool training) {
  DYHSL_CHECK_EQ(x.dim(), 4);
  int64_t batch = x.size(0);
  int64_t n = task_.num_nodes;
  int64_t d = config_.hidden_dim;
  ag::Variable input(x);
  ag::Variable h = encoder_.Forward(input);  // (B, T*N, d)

  // Per-scale embeddings, fused by the softmax weights of Eq. 14.
  ag::Variable weights = ag::SoftmaxLastAxis(scale_logits_);  // (J)
  ag::Variable fused;
  for (size_t j = 0; j < config_.window_sizes.size(); ++j) {
    ag::Variable gamma =
        RunScale(h, config_.window_sizes[j], training, &rng_);  // (B, N, d)
    ag::Variable wj = ag::Slice(weights, 0, static_cast<int64_t>(j), 1);
    ag::Variable term = ag::Mul(gamma, wj);  // broadcast scalar weight
    fused = fused.defined() ? ag::Add(fused, term) : term;
  }

  // Local embedding at the last time step h_T (B, N, d).
  ag::Variable h_steps = ag::Reshape(h, {batch, task_.history, n, d});
  ag::Variable h_last = ag::Reshape(
      ag::Slice(h_steps, 1, task_.history - 1, 1), {batch, n, d});

  // Head over [γ ‖ h_T] -> per-node horizon predictions.
  ag::Variable features = ag::Concat({fused, h_last}, /*axis=*/2);
  ag::Variable out = head_.Forward(features);          // (B, N, T')
  out = ag::TransposePerm(out, {0, 2, 1});             // (B, T', N)
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

tensor::Tensor DyHsl::IncidenceFor(const tensor::Tensor& x) {
  // Analysis-only read of Λ — never differentiated, so skip the tape.
  ag::InferenceModeGuard no_grad;
  ag::Variable input(x);
  ag::Variable h = encoder_.Forward(input);
  return dhsl_.Incidence(h).value();
}

std::vector<float> DyHsl::ScaleWeights() const {
  T::Tensor soft = T::SoftmaxLastAxis(scale_logits_.value());
  return soft.ToVector();
}

}  // namespace dyhsl::models
