// The three building blocks of DyHSL (paper sections IV-A/B/C):
// PriorGraphEncoder, DhslBlock (dynamic hypergraph structure learning) and
// IgcBlock (interactive graph convolution).

#ifndef DYHSL_MODELS_BLOCKS_H_
#define DYHSL_MODELS_BLOCKS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"
#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/tensor/sparse.h"

namespace dyhsl::models {

using autograd::Variable;

/// \brief Prior graph encoder (paper IV-A): input projection, spatial and
/// temporal embeddings, then Lp rounds of graph convolution on the temporal
/// graph of Eq. 4/5.
class PriorGraphEncoder : public nn::Module {
 public:
  PriorGraphEncoder(int64_t num_nodes, int64_t history, int64_t input_dim,
                    int64_t hidden_dim, int64_t num_layers,
                    autograd::SparseConstant temporal_op, Rng* rng,
                    bool residual = true);

  /// \brief x: (B, T, N, F) -> hidden states (B, T*N, d), rows time-major.
  Variable Forward(const Variable& x) const;

 private:
  int64_t num_nodes_;
  int64_t history_;
  int64_t hidden_dim_;
  bool residual_;
  autograd::SparseConstant temporal_op_;
  nn::Linear input_proj_;
  nn::Embedding node_embedding_;
  nn::Embedding step_embedding_;
  std::vector<std::unique_ptr<nn::Linear>> conv_;
};

/// \brief How the DHSL block obtains its incidence matrix. kLowRank is the
/// paper's method (Eq. 6); the others are the Table V ablations.
enum class StructureLearning : int {
  /// Λ = H W with learnable W (paper row "DHSL").
  kLowRank = 0,
  /// Fixed random Λ direction: hypergraph conv without structure
  /// *learning* (paper row "NSL").
  kFixedRandom = 1,
  /// Full learnable dense adjacency replacing the hypergraph factorization
  /// (paper row "FS"); one (R x R) parameter per sequence length R.
  kFromScratch = 2,
};

/// \brief Dynamic Hypergraph Structure Learning block (paper IV-B).
///
/// Given stacked states H (B, R, d) where R = (T/eps) * N:
///   Λ = H W                      (Eq. 6, low-rank incidence)
///   E = φ(U ΛᵀH) + ΛᵀH           (Eq. 7, hyperedge embeddings)
///   F = Λ E                      (Eq. 8, node update)
/// Aggregations are scaled by 1/sqrt(R) resp. 1/sqrt(I) to keep magnitudes
/// bounded across sequence lengths (implementation detail; the equations
/// are otherwise verbatim).
class DhslBlock : public nn::Module {
 public:
  /// \brief `sparse_topk` > 0 enables the sparse execution mode: after Λ is
  /// computed (Eq. 6), only the `sparse_topk` largest-magnitude entries per
  /// row are kept and the Eq. 7/8 products run as per-batch CSR SpMMs with
  /// gradients flowing through the kept entries (SDDMM). 0 keeps the
  /// paper's dense path; `sparse_topk == num_hyperedges` is the dense math
  /// on the sparse kernels (agreement asserted in tests). Ignored by the
  /// kFromScratch ablation, which has no incidence factorization.
  ///
  /// `pattern_reuse` additionally caches the selected CsrPattern across
  /// forward passes (MHCE iterations, adjacent time steps): the pattern is
  /// reused while at most `drift_threshold` of its rows have drifted (see
  /// tensor::TopKPatternCache), and only the kept *values* are refreshed
  /// via the O(nnz) gather. Caches are thread-local — concurrent serving
  /// workers each keep their own warm patterns — so Forward stays const
  /// and data-race free. Requires sparse_topk > 0.
  DhslBlock(int64_t hidden_dim, int64_t num_hyperedges, Rng* rng,
            StructureLearning mode = StructureLearning::kLowRank,
            int64_t sparse_topk = 0, bool pattern_reuse = false,
            float drift_threshold = 0.05f);

  /// \brief Retires this block's pattern-cache id: every thread's
  /// thread-local registry evicts the dead entry on its next cache lookup,
  /// so registries stay bounded by the number of *live* blocks.
  ~DhslBlock() override;

  /// \brief One hypergraph convolution pass over H (B, R, d).
  Variable Forward(const Variable& h) const;

  /// \brief The incidence matrix Λ (B, R, I) for analysis (paper Fig. 7).
  Variable Incidence(const Variable& h) const;

  StructureLearning mode() const { return mode_; }
  bool pattern_reuse() const { return pattern_reuse_; }

  /// \brief kFromScratch needs one (R x R) adjacency per sequence length;
  /// lengths must be declared before use (the model registers its scales).
  void RegisterSequenceLength(int64_t rows, Rng* rng);

  /// \brief Select/reuse counters of the *calling thread's* pattern cache
  /// (zeros when reuse is disabled or this thread never ran Forward).
  tensor::TopKPatternCache::Stats PatternCacheStats() const;

  /// \brief Drops the calling thread's cached patterns (tests; serving
  /// sessions that want a cold start).
  void ClearPatternCache() const;

 private:
  /// The Eq. 7/8 products on the top-k sparsified incidence.
  Variable SparseForward(const Variable& h, const Variable& incidence,
                         float row_scale, float edge_scale) const;

  int64_t hidden_dim_;
  int64_t num_hyperedges_;
  StructureLearning mode_;
  int64_t sparse_topk_;
  bool pattern_reuse_;
  float drift_threshold_;
  uint64_t cache_id_;  // key into the thread-local cache registry
  Variable incidence_weight_;  // (d, I); parameter for kLowRank,
                               // constant for kFixedRandom
  Variable edge_mixer_;        // U: (I, I)
  std::vector<std::pair<int64_t, Variable>> scratch_adj_;  // (R, (R,R))
};

/// \brief Interactive Graph Convolution block (paper IV-C):
///   M = Ā H                        (shared neighborhood aggregation)
///   π = φ(M W1 ⊙ M W2)             (Eq. 11, second-order interaction)
///   r = π + φ(M W3)                (Eq. 12, plus linear aggregation)
class IgcBlock : public nn::Module {
 public:
  IgcBlock(int64_t hidden_dim, Rng* rng);

  /// \brief h: (B, R, d); `adj` is the row-normalized temporal graph of the
  /// current scale (R x R).
  Variable Forward(const autograd::SparseConstant& adj,
                   const Variable& h) const;

 private:
  nn::Linear w1_;
  nn::Linear w2_;
  nn::Linear w3_;
};

/// \brief Number of pattern-cache entries the *calling thread* currently
/// holds, after sweeping retired blocks (leak regression tests).
int64_t ThreadPatternRegistrySizeForTesting();

}  // namespace dyhsl::models

#endif  // DYHSL_MODELS_BLOCKS_H_
