#include "src/models/blocks.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/nn/init.h"
#include "src/tensor/vecmath.h"

namespace dyhsl::models {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

namespace {

// Pattern caches are looked up thread-locally by block id: Forward stays
// const, concurrent serving workers never share mutable state, and each
// warm worker keeps its own patterns across the requests it handles (the
// per-session reuse the serve engine wants).
//
// Thread-local entries must not outlive their block: long-lived serving
// threads that touch many short-lived blocks (model zoo churn, per-request
// model construction in tests) would otherwise grow every registry without
// bound. A process-wide live-id set plus a generation counter bounds this:
// the block destructor retires its id and bumps the generation, and each
// thread sweeps dead ids out of its registry the next time it looks a
// cache up after the generation moved. Amortized O(1) per lookup.
std::mutex& LiveIdMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_set<uint64_t>& LiveIds() {
  // Leaked: serving threads may sweep during static destruction.
  static auto* ids = new std::unordered_set<uint64_t>();
  return *ids;
}

std::atomic<uint64_t>& LiveGeneration() {
  static std::atomic<uint64_t> gen{0};
  return gen;
}

uint64_t NextCacheId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(LiveIdMutex());
  LiveIds().insert(id);
  return id;
}

void RetireCacheId(uint64_t id) {
  std::lock_guard<std::mutex> lock(LiveIdMutex());
  LiveIds().erase(id);
  LiveGeneration().fetch_add(1, std::memory_order_release);
}

struct ThreadRegistry {
  std::unordered_map<uint64_t, T::TopKPatternCache> caches;
  uint64_t seen_generation = 0;
};

ThreadRegistry& RegistryForThread() {
  thread_local ThreadRegistry registry;
  return registry;
}

void SweepDeadIds(ThreadRegistry& registry) {
  const uint64_t gen = LiveGeneration().load(std::memory_order_acquire);
  if (gen == registry.seen_generation) return;
  std::lock_guard<std::mutex> lock(LiveIdMutex());
  for (auto it = registry.caches.begin(); it != registry.caches.end();) {
    it = LiveIds().count(it->first) ? std::next(it)
                                    : registry.caches.erase(it);
  }
  registry.seen_generation = gen;
}

T::TopKPatternCache& CacheForThread(uint64_t cache_id,
                                    float drift_threshold) {
  ThreadRegistry& registry = RegistryForThread();
  SweepDeadIds(registry);
  auto it = registry.caches.find(cache_id);
  if (it == registry.caches.end()) {
    T::TopKPatternCache::Options opts;
    opts.drift_threshold = drift_threshold;
    it = registry.caches.emplace(cache_id, T::TopKPatternCache(opts)).first;
  }
  return it->second;
}

}  // namespace

int64_t ThreadPatternRegistrySizeForTesting() {
  ThreadRegistry& registry = RegistryForThread();
  SweepDeadIds(registry);
  return static_cast<int64_t>(registry.caches.size());
}

PriorGraphEncoder::PriorGraphEncoder(
    int64_t num_nodes, int64_t history, int64_t input_dim, int64_t hidden_dim,
    int64_t num_layers, autograd::SparseConstant temporal_op,
    Rng* rng, bool residual)
    : num_nodes_(num_nodes),
      history_(history),
      hidden_dim_(hidden_dim),
      residual_(residual),
      temporal_op_(std::move(temporal_op)),
      input_proj_(input_dim, hidden_dim, rng),
      node_embedding_(num_nodes, hidden_dim, rng),
      step_embedding_(history, hidden_dim, rng) {
  DYHSL_CHECK_EQ(temporal_op_.rows(), num_nodes * history);
  RegisterChild("input_proj", &input_proj_);
  RegisterChild("node_embedding", &node_embedding_);
  RegisterChild("step_embedding", &step_embedding_);
  for (int64_t l = 0; l < num_layers; ++l) {
    conv_.push_back(
        std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng));
    RegisterChild("conv" + std::to_string(l), conv_.back().get());
  }
}

Variable PriorGraphEncoder::Forward(const Variable& x) const {
  DYHSL_CHECK_EQ(x.dim(), 4);
  int64_t batch = x.size(0);
  DYHSL_CHECK_EQ(x.size(1), history_);
  DYHSL_CHECK_EQ(x.size(2), num_nodes_);
  // Project features, then add location and time embeddings (the f^t_j
  // construction below Eq. 5).
  Variable h = input_proj_.Forward(x);  // (B, T, N, d)
  std::vector<int64_t> node_ids(num_nodes_), step_ids(history_);
  for (int64_t i = 0; i < num_nodes_; ++i) node_ids[i] = i;
  for (int64_t t = 0; t < history_; ++t) step_ids[t] = t;
  Variable node_emb = ag::Reshape(node_embedding_.Forward(node_ids),
                                  {1, 1, num_nodes_, hidden_dim_});
  Variable step_emb = ag::Reshape(step_embedding_.Forward(step_ids),
                                  {1, history_, 1, hidden_dim_});
  // h is consumed so inference mode can add both embeddings in place.
  h = ag::Add(ag::Add(std::move(h), node_emb), step_emb);
  // Time-major stacking (row t*N + i) to match the temporal graph indexing.
  h = ag::Reshape(h, {batch, history_ * num_nodes_, hidden_dim_});
  for (const auto& proj : conv_) {
    // Eq. 5: h_l = φ(Ā h_{l-1} W); residual keeps deep stacks (Lp = 6 in
    // the paper) from oversmoothing. conv is moved first so inference
    // mode can accumulate the residual in place (x + y == y + x).
    Variable conv = ag::Relu(proj->Forward(ag::SpMM(temporal_op_, h)));
    h = residual_ ? ag::Add(std::move(conv), h) : conv;
  }
  return h;
}

DhslBlock::DhslBlock(int64_t hidden_dim, int64_t num_hyperedges, Rng* rng,
                     StructureLearning mode, int64_t sparse_topk,
                     bool pattern_reuse, float drift_threshold)
    : hidden_dim_(hidden_dim),
      num_hyperedges_(num_hyperedges),
      mode_(mode),
      sparse_topk_(sparse_topk),
      pattern_reuse_(pattern_reuse),
      drift_threshold_(drift_threshold),
      cache_id_(NextCacheId()) {
  DYHSL_CHECK_GE(sparse_topk, 0);
  DYHSL_CHECK_MSG(sparse_topk <= num_hyperedges,
                  "sparse_topk " + std::to_string(sparse_topk) +
                      " exceeds num_hyperedges " +
                      std::to_string(num_hyperedges));
  DYHSL_CHECK_MSG(!pattern_reuse || sparse_topk > 0,
                  "pattern_reuse requires sparse_topk > 0");
  if (pattern_reuse_) {
    // Fail construction, not the first Forward, on a bad threshold.
    DYHSL_CHECK_GE(drift_threshold_, 0.0f);
    DYHSL_CHECK_LE(drift_threshold_, 1.0f);
  }
  T::Tensor w = nn::GlorotUniform2D(hidden_dim, num_hyperedges, rng);
  if (mode_ == StructureLearning::kFixedRandom) {
    // "NSL": the incidence direction is frozen; hypergraph convolution
    // still runs but the structure is not learned. Registered as a
    // constant so prepack enrollment (NamedConstants) still sees it.
    incidence_weight_ = RegisterConstant("incidence_weight", std::move(w));
  } else {
    incidence_weight_ = RegisterParameter("incidence_weight", std::move(w));
  }
  edge_mixer_ = RegisterParameter(
      "edge_mixer",
      nn::GlorotUniform2D(num_hyperedges, num_hyperedges, rng));
}

DhslBlock::~DhslBlock() {
  // Retire the cache id so every thread's registry can drop this block's
  // pattern cache on its next lookup (the unbounded-growth fix).
  RetireCacheId(cache_id_);
}

void DhslBlock::RegisterSequenceLength(int64_t rows, Rng* rng) {
  if (mode_ != StructureLearning::kFromScratch) return;
  for (const auto& [r, adj] : scratch_adj_) {
    if (r == rows) return;
  }
  // The FS ablation: a dense learnable adjacency, O(R^2) parameters.
  // Initialized at 1/sqrt(R) so the comparison is against the strongest
  // reasonable from-scratch variant (see EXPERIMENTS.md for the scale
  // caveat on Table V's FS row).
  scratch_adj_.emplace_back(
      rows, RegisterParameter("scratch_adj_" + std::to_string(rows),
                              T::Tensor::Randn({rows, rows}, rng,
                                               1.0f / std::sqrt(
                                                   static_cast<float>(rows)))));
}

Variable DhslBlock::Incidence(const Variable& h) const {
  // Eq. 6: Λ = H W, low-rank through the d-dimensional bottleneck.
  return ag::BatchedMatMul(h, incidence_weight_);  // (B, R, I)
}

Variable DhslBlock::Forward(const Variable& h) const {
  DYHSL_CHECK_EQ(h.dim(), 3);
  int64_t rows = h.size(1);
  if (mode_ == StructureLearning::kFromScratch) {
    for (const auto& [r, adj] : scratch_adj_) {
      if (r == rows) {
        // F = A_learn H, with A shared across the batch (shared-LHS
        // batched matmul; no transpose round-trips).
        return ag::BatchedMatMul(adj, h);
      }
    }
    DYHSL_CHECK_MSG(false, "kFromScratch: sequence length not registered");
  }
  float row_scale = 1.0f / std::sqrt(static_cast<float>(rows));
  float edge_scale =
      1.0f / std::sqrt(static_cast<float>(num_hyperedges_));
  Variable incidence = Incidence(h);  // (B, R, I)
  if (sparse_topk_ > 0) {
    return SparseForward(h, incidence, row_scale, edge_scale);
  }
  // Eq. 7: E = φ(U ΛᵀH) + ΛᵀH.
  Variable edge_feat = ag::MulScalar(
      ag::BatchedMatMul(incidence, h, /*trans_a=*/true, false), row_scale);
  Variable mixed = ag::BatchedMatMul(edge_mixer_, edge_feat);
  Variable edges = ag::Add(ag::Relu(mixed), edge_feat);  // (B, I, d)
  // Eq. 8: F = Λ E.
  return ag::MulScalar(ag::BatchedMatMul(incidence, edges), edge_scale);
}

Variable DhslBlock::SparseForward(const Variable& h, const Variable& incidence,
                                  float row_scale, float edge_scale) const {
  // Top-k sparsification of Λ per batch item. Selection reads the forward
  // values only (structure is piecewise constant, never differentiated);
  // GatherSparse then routes the value gradient of the kept entries back
  // into the dense Λ tape — dropped entries receive the exact subgradient
  // zero of the hard top-k.
  const T::Tensor& lam = incidence.value();  // (B, R, I)
  const int64_t batch = lam.size(0);
  const int64_t rows = lam.size(1);
  ag::CsrPatternList patterns;
  patterns.reserve(batch);
  if (pattern_reuse_) {
    // Reuse the previous step's pattern while drift stays under threshold;
    // GatherSparse below refreshes the kept values either way (SDDMM-style
    // O(nnz) gather), so a reuse skips only the O(R * I) selection.
    T::TopKPatternCache& cache = CacheForThread(cache_id_, drift_threshold_);
    for (int64_t b = 0; b < batch; ++b) {
      patterns.push_back(
          cache.SelectOrReuse(b, lam.data() + b * rows * num_hyperedges_,
                              rows, num_hyperedges_, sparse_topk_));
    }
  } else {
    for (int64_t b = 0; b < batch; ++b) {
      patterns.push_back(
          T::RowTopKPattern(lam.data() + b * rows * num_hyperedges_, rows,
                            num_hyperedges_, sparse_topk_));
    }
  }
  Variable values = ag::GatherSparse(incidence, patterns);  // (B, R*k)
  // Eq. 7: E = φ(U ΛᵀH) + ΛᵀH on the sparsified Λ.
  Variable edge_feat = ag::MulScalar(
      ag::BatchedSparseDenseMatMul(patterns, values, h, /*trans_a=*/true),
      row_scale);
  Variable mixed = ag::BatchedMatMul(edge_mixer_, edge_feat);
  Variable edges = ag::Add(ag::Relu(mixed), edge_feat);  // (B, I, d)
  // Eq. 8: F = Λ E.
  return ag::MulScalar(
      ag::BatchedSparseDenseMatMul(patterns, values, edges, false),
      edge_scale);
}

T::TopKPatternCache::Stats DhslBlock::PatternCacheStats() const {
  if (!pattern_reuse_) return {};
  return CacheForThread(cache_id_, drift_threshold_).stats();
}

void DhslBlock::ClearPatternCache() const {
  if (!pattern_reuse_) return;
  CacheForThread(cache_id_, drift_threshold_).Clear();
}

IgcBlock::IgcBlock(int64_t hidden_dim, Rng* rng)
    : w1_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      w2_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      w3_(hidden_dim, hidden_dim, rng) {
  RegisterChild("w1", &w1_);
  RegisterChild("w2", &w2_);
  RegisterChild("w3", &w3_);
}

Variable IgcBlock::Forward(const autograd::SparseConstant& adj,
                           const Variable& h) const {
  // Both sums in Eq. 11 share the same neighborhood aggregation Ā h.
  Variable m = ag::SpMM(adj, h);
  if (ag::InferenceModeEnabled()) {
    // One fused pass for tanh(W1 m ⊙ W2 m) + φ(W3 m): elementwise
    // identical to the taped chain below, without its intermediates.
    Variable a = w1_.Forward(m), b = w2_.Forward(m), c = w3_.Forward(m);
    T::Tensor out(a.value().shape());
    T::TanhProductPlusReluArray(a.value().data(), b.value().data(),
                                c.value().data(), out.data(), out.numel());
    return Variable(std::move(out));
  }
  // Written as one expression of temporaries so grad-free callers that
  // land here still hit the in-place overloads.
  return ag::Add(ag::Tanh(ag::Mul(w1_.Forward(m), w2_.Forward(m))),  // Eq. 11
                 ag::Relu(w3_.Forward(m)));                          // Eq. 12
}

}  // namespace dyhsl::models
