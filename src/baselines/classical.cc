#include "src/baselines/classical.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"
#include "src/core/rng.h"

namespace dyhsl::baselines {
namespace {

// Solves (A + ridge * I) x = b in-place for a dense symmetric positive
// definite A (n x n, row-major) by Cholesky; returns x.
std::vector<float> SolveRidge(std::vector<double> a, std::vector<double> b,
                              int64_t n, double ridge) {
  for (int64_t i = 0; i < n; ++i) a[i * n + i] += ridge;
  // Cholesky decomposition A = L L^T.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (int64_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        a[i * n + i] = std::sqrt(std::max(sum, 1e-9));
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward solve L y = b.
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (int64_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back solve L^T x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int64_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
  std::vector<float> x(n);
  for (int64_t i = 0; i < n; ++i) x[i] = static_cast<float>(b[i]);
  return x;
}

// Last training step covered by the training windows.
int64_t TrainSteps(const data::TrafficDataset& dataset) {
  return dataset.train_range().end + dataset.history() +
         dataset.horizon() - 1;
}

}  // namespace

void HistoricalAverage::Fit(const data::TrafficDataset& dataset) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = dataset.num_nodes();
  steps_per_day_ = dataset.traffic().steps_per_day;
  int64_t steps = std::min<int64_t>(TrainSteps(dataset), flow.size(0));
  has_weekend_ = steps > 5 * steps_per_day_;
  int64_t regimes = has_weekend_ ? 2 : 1;
  bucket_mean_.assign(regimes,
                      std::vector<float>(steps_per_day_ * n, 0.0f));
  std::vector<std::vector<int64_t>> counts(
      regimes, std::vector<int64_t>(steps_per_day_ * n, 0));
  const float* p = flow.data();
  for (int64_t s = 0; s < steps; ++s) {
    int64_t tod = s % steps_per_day_;
    int64_t regime =
        has_weekend_ && ((s / steps_per_day_) % 7 >= 5) ? 1 : 0;
    for (int64_t i = 0; i < n; ++i) {
      float v = p[s * n + i];
      if (v <= 1e-3f) continue;  // skip dropout readings
      bucket_mean_[regime][tod * n + i] += v;
      counts[regime][tod * n + i] += 1;
    }
  }
  for (int64_t r = 0; r < regimes; ++r) {
    for (size_t k = 0; k < bucket_mean_[r].size(); ++k) {
      if (counts[r][k] > 0) {
        bucket_mean_[r][k] /= static_cast<float>(counts[r][k]);
      }
    }
  }
}

tensor::Tensor HistoricalAverage::Predict(const data::TrafficDataset& dataset,
                                          int64_t t0) {
  int64_t n = dataset.num_nodes();
  tensor::Tensor out({dataset.horizon(), n});
  for (int64_t h = 0; h < dataset.horizon(); ++h) {
    int64_t step = t0 + dataset.history() + h;
    int64_t tod = step % steps_per_day_;
    int64_t regime =
        has_weekend_ && ((step / steps_per_day_) % 7 >= 5) ? 1 : 0;
    for (int64_t i = 0; i < n; ++i) {
      out.data()[h * n + i] = bucket_mean_[regime][tod * n + i];
    }
  }
  return out;
}

void Arima::Fit(const data::TrafficDataset& dataset) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = dataset.num_nodes();
  int64_t steps = std::min<int64_t>(TrainSteps(dataset), flow.size(0));
  int64_t p = ar_order_;
  coef_.assign(n, std::vector<float>(p, 0.0f));
  intercept_.assign(n, 0.0f);
  const float* f = flow.data();
  // Per-node AR(p) on first differences d_t = x_t - x_{t-1}.
  std::vector<double> diffs(steps - 1);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t s = 1; s < steps; ++s) {
      diffs[s - 1] = static_cast<double>(f[s * n + node]) -
                     f[(s - 1) * n + node];
    }
    int64_t rows = static_cast<int64_t>(diffs.size()) - p;
    if (rows <= p + 1) continue;
    // Normal equations over lag features (+ intercept handled via mean).
    std::vector<double> xtx((p + 1) * (p + 1), 0.0);
    std::vector<double> xty(p + 1, 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      // Feature vector: [d_{t-1}, ..., d_{t-p}, 1]; target d_t.
      double target = diffs[r + p];
      for (int64_t a = 0; a <= p; ++a) {
        double fa = a < p ? diffs[r + p - 1 - a] : 1.0;
        xty[a] += fa * target;
        for (int64_t b = 0; b <= p; ++b) {
          double fb = b < p ? diffs[r + p - 1 - b] : 1.0;
          xtx[a * (p + 1) + b] += fa * fb;
        }
      }
    }
    std::vector<float> sol =
        SolveRidge(std::move(xtx), std::move(xty), p + 1, ridge_ * rows);
    for (int64_t a = 0; a < p; ++a) coef_[node][a] = sol[a];
    intercept_[node] = sol[p];
  }
}

tensor::Tensor Arima::Predict(const data::TrafficDataset& dataset,
                              int64_t t0) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = dataset.num_nodes();
  int64_t hist = dataset.history();
  int64_t horizon = dataset.horizon();
  tensor::Tensor out({horizon, n});
  const float* f = flow.data();
  int64_t p = ar_order_;
  for (int64_t node = 0; node < n; ++node) {
    // Seed the difference window from the history.
    std::vector<double> d(p, 0.0);
    for (int64_t a = 0; a < p; ++a) {
      int64_t s = t0 + hist - 1 - a;
      if (s >= 1) {
        d[a] = static_cast<double>(f[s * n + node]) - f[(s - 1) * n + node];
      }
    }
    double level = f[(t0 + hist - 1) * n + node];
    for (int64_t h = 0; h < horizon; ++h) {
      double dh = intercept_[node];
      for (int64_t a = 0; a < p; ++a) dh += coef_[node][a] * d[a];
      level = std::max(0.0, level + dh);
      out.data()[h * n + node] = static_cast<float>(level);
      for (int64_t a = p - 1; a > 0; --a) d[a] = d[a - 1];
      if (p > 0) d[0] = dh;
    }
  }
  return out;
}

void Var::Fit(const data::TrafficDataset& dataset) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  num_nodes_ = dataset.num_nodes();
  int64_t n = num_nodes_;
  int64_t steps = std::min<int64_t>(TrainSteps(dataset), flow.size(0));
  int64_t dim = n * order_ + 1;
  const float* f = flow.data();
  // Center the series for numerical stability.
  double sum = 0.0;
  for (int64_t i = 0; i < steps * n; ++i) sum += f[i];
  train_mean_ = static_cast<float>(sum / (steps * n));

  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim * n, 0.0);
  std::vector<double> feat(dim);
  for (int64_t t = order_; t < steps; ++t) {
    for (int64_t l = 0; l < order_; ++l) {
      for (int64_t i = 0; i < n; ++i) {
        feat[l * n + i] = f[(t - 1 - l) * n + i] - train_mean_;
      }
    }
    feat[dim - 1] = 1.0;
    for (int64_t a = 0; a < dim; ++a) {
      if (feat[a] == 0.0) continue;
      for (int64_t b = 0; b < dim; ++b) {
        xtx[a * dim + b] += feat[a] * feat[b];
      }
      for (int64_t j = 0; j < n; ++j) {
        xty[a * n + j] += feat[a] * (f[t * n + j] - train_mean_);
      }
    }
  }
  // Solve per output column with a shared Cholesky-friendly loop.
  weights_.assign(dim * n, 0.0f);
  for (int64_t j = 0; j < n; ++j) {
    std::vector<double> b(dim);
    for (int64_t a = 0; a < dim; ++a) b[a] = xty[a * n + j];
    std::vector<float> w = SolveRidge(xtx, std::move(b), dim,
                                      ridge_ * (steps - order_));
    for (int64_t a = 0; a < dim; ++a) weights_[a * n + j] = w[a];
  }
}

tensor::Tensor Var::Predict(const data::TrafficDataset& dataset, int64_t t0) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = num_nodes_;
  int64_t hist = dataset.history();
  int64_t horizon = dataset.horizon();
  int64_t dim = n * order_ + 1;
  const float* f = flow.data();
  // Rolling buffer of the last `order_` (centered) observations.
  std::vector<std::vector<double>> lags(order_, std::vector<double>(n));
  for (int64_t l = 0; l < order_; ++l) {
    for (int64_t i = 0; i < n; ++i) {
      lags[l][i] = f[(t0 + hist - 1 - l) * n + i] - train_mean_;
    }
  }
  tensor::Tensor out({horizon, n});
  std::vector<double> next(n);
  for (int64_t h = 0; h < horizon; ++h) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = weights_[(dim - 1) * n + j];  // intercept
      for (int64_t l = 0; l < order_; ++l) {
        for (int64_t i = 0; i < n; ++i) {
          acc += weights_[(l * n + i) * n + j] * lags[l][i];
        }
      }
      next[j] = acc;
      out.data()[h * n + j] =
          std::max(0.0f, static_cast<float>(acc + train_mean_));
    }
    for (int64_t l = order_ - 1; l > 0; --l) lags[l] = lags[l - 1];
    lags[0] = next;
  }
  return out;
}

void LinearSvr::Fit(const data::TrafficDataset& dataset) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = dataset.num_nodes();
  history_ = dataset.history();
  horizon_ = dataset.horizon();
  mean_ = dataset.scaler().mean();
  std_ = dataset.scaler().stddev();
  weights_.assign(history_ * horizon_, 0.0f);
  bias_.assign(horizon_, 0.0f);
  const float* f = flow.data();
  float eps_scaled = epsilon_ / std_;
  Rng rng(17);
  int64_t train_windows = dataset.train_range().end;
  float lr = learning_rate_;
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    for (int64_t it = 0; it < train_windows; ++it) {
      int64_t t0 = static_cast<int64_t>(rng.NextBelow(train_windows));
      int64_t node = static_cast<int64_t>(rng.NextBelow(n));
      // z-scored lag features.
      float x[64];
      DYHSL_CHECK_LE(history_, 64);
      for (int64_t a = 0; a < history_; ++a) {
        x[a] = (f[(t0 + a) * n + node] - mean_) / std_;
      }
      for (int64_t h = 0; h < horizon_; ++h) {
        float target = (f[(t0 + history_ + h) * n + node] - mean_) / std_;
        float pred = bias_[h];
        for (int64_t a = 0; a < history_; ++a) {
          pred += weights_[a * horizon_ + h] * x[a];
        }
        float err = pred - target;
        // Epsilon-insensitive subgradient.
        float g = 0.0f;
        if (err > eps_scaled) g = 1.0f;
        if (err < -eps_scaled) g = -1.0f;
        for (int64_t a = 0; a < history_; ++a) {
          float& w = weights_[a * horizon_ + h];
          w -= lr * (g * x[a] + l2_ * w);
        }
        bias_[h] -= lr * g;
      }
    }
    lr *= 0.7f;
  }
}

tensor::Tensor LinearSvr::Predict(const data::TrafficDataset& dataset,
                                  int64_t t0) {
  const tensor::Tensor& flow = dataset.traffic().flow;
  int64_t n = dataset.num_nodes();
  tensor::Tensor out({horizon_, n});
  const float* f = flow.data();
  for (int64_t node = 0; node < n; ++node) {
    float x[64];
    for (int64_t a = 0; a < history_; ++a) {
      x[a] = (f[(t0 + a) * n + node] - mean_) / std_;
    }
    for (int64_t h = 0; h < horizon_; ++h) {
      float pred = bias_[h];
      for (int64_t a = 0; a < history_; ++a) {
        pred += weights_[a * horizon_ + h] * x[a];
      }
      out.data()[h * n + node] = std::max(0.0f, pred * std_ + mean_);
    }
  }
  return out;
}

metrics::ForecastMetrics EvaluateClassical(
    ClassicalModel* model, const data::TrafficDataset& dataset,
    data::TrafficDataset::SplitRange range, int64_t max_windows) {
  metrics::MetricAccumulator acc;
  int64_t count = 0;
  for (int64_t t0 = range.begin; t0 < range.end; ++t0) {
    if (max_windows > 0 && count >= max_windows) break;
    tensor::Tensor pred = model->Predict(dataset, t0);
    tensor::Tensor truth = dataset.MakeTarget(t0);
    acc.Add(pred, truth);
    ++count;
  }
  return {acc.Mae(), acc.Rmse(), acc.Mape()};
}

}  // namespace dyhsl::baselines
