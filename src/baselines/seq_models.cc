#include "src/baselines/seq_models.h"

#include <cmath>

#include "src/autograd/ops.h"
#include "src/core/check.h"

namespace dyhsl::baselines {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

namespace {

// Extracts the scaled-flow channel: (B, T, N, F) -> (B, T, N).
Variable FlowChannel(const Variable& x) {
  Variable flow = ag::Slice(x, 3, 0, 1);
  return ag::Reshape(flow, {x.size(0), x.size(1), x.size(2)});
}

}  // namespace

FcLstm::FcLstm(const train::ForecastTask& task, int64_t hidden_dim,
               uint64_t seed)
    : task_(task),
      rng_(seed),
      cell_(task.num_nodes, hidden_dim, &rng_),
      head_(hidden_dim, task.num_nodes * task.horizon, &rng_) {
  RegisterChild("cell", &cell_);
  RegisterChild("head", &head_);
}

Variable FcLstm::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0);
  Variable flow = FlowChannel(input);  // (B, T, N)
  nn::LstmCell::State state = cell_.InitialState(batch);
  for (int64_t t = 0; t < task_.history; ++t) {
    Variable xt = ag::Reshape(ag::Slice(flow, 1, t, 1),
                              {batch, task_.num_nodes});
    state = cell_.Forward(xt, state);
  }
  Variable out = head_.Forward(state.h);  // (B, T' * N)
  out = ag::Reshape(out, {batch, task_.horizon, task_.num_nodes});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

Tcn::Tcn(const train::ForecastTask& task, int64_t channels, int64_t levels,
         bool causal, uint64_t seed)
    : task_(task), causal_(causal), rng_(seed),
      head_(channels, task.horizon, &rng_) {
  input_conv_ = std::make_unique<nn::Conv1dLayer>(
      task.input_dim, channels, /*kernel=*/2, &rng_, /*dilation=*/1, causal);
  RegisterChild("input_conv", input_conv_.get());
  for (int64_t l = 0; l < levels; ++l) {
    convs_.push_back(std::make_unique<nn::Conv1dLayer>(
        channels, channels, /*kernel=*/2, &rng_,
        /*dilation=*/int64_t{1} << (l + 1), causal));
    RegisterChild("conv" + std::to_string(l), convs_.back().get());
  }
  RegisterChild("head", &head_);
}

Variable Tcn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), t_in = x.size(1), n = x.size(2), f = x.size(3);
  // Fold sensors into the batch: (B, T, N, F) -> (B*N, F, T).
  Variable seq = ag::TransposePerm(input, {0, 2, 3, 1});  // (B, N, F, T)
  seq = ag::Reshape(seq, {batch * n, f, t_in});
  Variable h = ag::Relu(input_conv_->Forward(seq));
  for (const auto& conv : convs_) {
    h = ag::Add(h, ag::Relu(conv->Forward(h)));  // residual block
  }
  // Readout from the final step's channel vector.
  Variable last = ag::Slice(h, 2, t_in - 1, 1);  // (B*N, C, 1)
  last = ag::Reshape(last, {batch * n, convs_.empty()
                                           ? input_conv_->out_channels()
                                           : convs_.back()->out_channels()});
  Variable out = head_.Forward(last);  // (B*N, T')
  out = ag::Reshape(out, {batch, n, task_.horizon});
  out = ag::TransposePerm(out, {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

GruEd::GruEd(const train::ForecastTask& task, int64_t hidden_dim,
             uint64_t seed)
    : task_(task),
      rng_(seed),
      encoder_(task.input_dim, hidden_dim, &rng_),
      decoder_(1, hidden_dim, &rng_),
      readout_(hidden_dim, 1, &rng_) {
  RegisterChild("encoder", &encoder_);
  RegisterChild("decoder", &decoder_);
  RegisterChild("readout", &readout_);
}

Variable GruEd::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes, f = task_.input_dim;
  // Shared weights across sensors: fold N into the batch.
  Variable seq = ag::TransposePerm(input, {0, 2, 1, 3});  // (B, N, T, F)
  seq = ag::Reshape(seq, {batch * n, task_.history, f});
  Variable h(tensor::Tensor::Zeros({batch * n, encoder_.hidden_dim()}));
  for (int64_t t = 0; t < task_.history; ++t) {
    Variable xt = ag::Reshape(ag::Slice(seq, 1, t, 1), {batch * n, f});
    h = encoder_.Forward(xt, h);
  }
  // Autoregressive decoding in scaled space.
  Variable prev = ag::Reshape(
      ag::Slice(ag::Reshape(seq, {batch * n, task_.history * f}), 1,
                (task_.history - 1) * f, 1),
      {batch * n, 1});
  std::vector<Variable> steps;
  for (int64_t t = 0; t < task_.horizon; ++t) {
    h = decoder_.Forward(prev, h);
    prev = readout_.Forward(h);  // (B*N, 1)
    steps.push_back(prev);
  }
  Variable out = ag::Concat(steps, 1);              // (B*N, T')
  out = ag::Reshape(out, {batch, n, task_.horizon});
  out = ag::TransposePerm(out, {0, 2, 1});          // (B, T', N)
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

DsaNet::DsaNet(const train::ForecastTask& task, int64_t hidden_dim,
               uint64_t seed)
    : task_(task),
      hidden_dim_(hidden_dim),
      rng_(seed),
      temporal_conv_(task.input_dim, hidden_dim, /*kernel=*/3, &rng_,
                     /*dilation=*/1, /*causal=*/true),
      query_(hidden_dim, hidden_dim, &rng_, /*bias=*/false),
      key_(hidden_dim, hidden_dim, &rng_, /*bias=*/false),
      value_(hidden_dim, hidden_dim, &rng_),
      norm_(hidden_dim),
      head_(2 * hidden_dim, task.horizon, &rng_) {
  RegisterChild("temporal_conv", &temporal_conv_);
  RegisterChild("query", &query_);
  RegisterChild("key", &key_);
  RegisterChild("value", &value_);
  RegisterChild("norm", &norm_);
  RegisterChild("head", &head_);
}

Variable DsaNet::Forward(const tensor::Tensor& x, bool training) {
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes, f = task_.input_dim;
  // Temporal convolution per sensor.
  Variable seq = ag::TransposePerm(input, {0, 2, 3, 1});  // (B, N, F, T)
  seq = ag::Reshape(seq, {batch * n, f, task_.history});
  Variable conv = ag::Relu(temporal_conv_.Forward(seq));  // (B*N, C, T)
  Variable feat = ag::Reshape(
      ag::Slice(conv, 2, task_.history - 1, 1), {batch, n, hidden_dim_});
  // Self-attention across sensors.
  Variable q = query_.Forward(feat);
  Variable k = key_.Forward(feat);
  Variable v = value_.Forward(feat);
  float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim_));
  Variable scores = ag::MulScalar(
      ag::BatchedMatMul(q, k, false, /*trans_b=*/true), scale);  // (B, N, N)
  Variable attn = ag::SoftmaxLastAxis(scores);
  attn = ag::Dropout(attn, 0.1f, training, &rng_);
  Variable mixed = norm_.Forward(ag::BatchedMatMul(attn, v));  // (B, N, C)
  Variable out = head_.Forward(ag::Concat({mixed, feat}, 2));  // (B, N, T')
  out = ag::TransposePerm(out, {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

}  // namespace dyhsl::baselines
