// Graph-based neural baselines of paper Table III. Each model implements
// the defining mechanism of its published counterpart on top of this
// repository's substrate (see DESIGN.md for the fidelity notes):
//
//   Stgcn         gated temporal convolution + Chebyshev-style graph conv
//   Dcrnn         diffusion-convolutional GRU encoder-decoder
//   GraphWaveNet  dilated TCN + diffusion conv + self-adaptive adjacency
//   Agcrn         adaptive-adjacency graph-conv GRU (NAPL simplified to
//                 shared weights)
//   Stsgcn        localized spatio-temporal synchronous graph convolution
//   HgcRnn        hypergraph convolution (predefined district hyperedges)
//                 fused with a GRU
//   Dhgnn         dynamic hypergraph built per input by kNN + k-means
//   StgOde        graph ODE: RK4 integration of a GCN vector field

#ifndef DYHSL_BASELINES_GNN_MODELS_H_
#define DYHSL_BASELINES_GNN_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/tensor/sparse.h"
#include "src/train/forecast_model.h"
#include "src/train/streaming.h"

namespace dyhsl::baselines {

using autograd::Variable;

/// \brief Boilerplate shared by the graph baselines (task copy, module
/// plumbing, parameter forwarding).
class GnnModelBase : public nn::Module, public train::ForecastModel {
 public:
  explicit GnnModelBase(const train::ForecastTask& task, uint64_t seed)
      : task_(task), rng_(seed) {}

  std::vector<Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }

 protected:
  train::ForecastTask task_;
  Rng rng_;
};

/// \brief STGCN (Yu et al., IJCAI'18): [temporal gated conv -> graph conv
/// -> temporal gated conv] blocks followed by a fully-connected head.
class Stgcn : public GnnModelBase {
 public:
  Stgcn(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "STGCN"; }

 private:
  /// Gated temporal conv (GLU): y = P ⊙ σ(Q), kernel 3, causal.
  Variable TemporalGated(const nn::Conv1dLayer& conv, const Variable& h,
                         int64_t channels) const;

  int64_t hidden_dim_;
  autograd::SparseConstant sym_adj_;
  nn::Conv1dLayer tconv1_;
  nn::Linear gconv_;
  nn::Conv1dLayer tconv2_;
  nn::Linear head_;
};

/// \brief DCRNN (Li et al., ICLR'18): GRU whose matmuls are replaced by
/// K-step bidirectional diffusion convolutions; encoder-decoder rollout.
///
/// Also the repository's reference RecurrentStreamModel: the encoder
/// state is carried across ticks (StreamStep == one CellStep,
/// bit-identical to Forward's encoder loop at B = 1), so a streaming
/// session serves a forecast with only the T'-step decoder
/// (StreamForecast) instead of re-encoding the full window.
class Dcrnn : public GnnModelBase, public train::RecurrentStreamModel {
 public:
  Dcrnn(const train::ForecastTask& task, int64_t hidden_dim,
        int64_t diffusion_steps, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "DCRNN"; }

  /// \name Warm-state streaming (src/train/streaming.h)
  /// @{
  std::unique_ptr<train::StreamState> MakeStreamState() const override;
  void StreamStep(train::StreamState* state,
                  const tensor::Tensor& frame) const override;
  void ResyncState(train::StreamState* state,
                   const tensor::Tensor& window) const override;
  tensor::Tensor StreamForecast(const train::StreamState& state) const override;
  /// Batched carry: stacks B per-session hidden states into (B, N, H)
  /// and runs one batched cell step (one decoder rollout) instead of B
  /// sequential ones. CellStep processes each batch item with the same
  /// accumulation order as at B = 1, so per-session results match the
  /// sequential methods bit-identically.
  void AdvanceStateBatch(const std::vector<train::StreamState*>& states,
                         const tensor::Tensor& frames) const override;
  tensor::Tensor ForecastFromStateBatch(
      const std::vector<const train::StreamState*>& states) const override;
  /// @}

 private:
  struct DcrnnStreamState;

  Variable CellStep(const Variable& x_t, const Variable& h) const;

  int64_t hidden_dim_;
  autograd::SparseConstant fw_;
  autograd::SparseConstant bw_;
  nn::DiffusionConv gate_zr_;  // -> 2 * hidden
  nn::DiffusionConv gate_c_;   // -> hidden
  nn::Linear readout_;
};

/// \brief Graph WaveNet (Wu et al., IJCAI'19): stacked gated dilated causal
/// convolutions interleaved with graph convolution over forward/backward
/// transition matrices plus a learned self-adaptive adjacency E1 E2^T.
class GraphWaveNet : public GnnModelBase {
 public:
  GraphWaveNet(const train::ForecastTask& task, int64_t channels,
               int64_t layers, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "GraphWaveNet"; }

 private:
  int64_t channels_;
  autograd::SparseConstant fw_;
  autograd::SparseConstant bw_;
  Variable emb1_;  // (N, r) self-adaptive adjacency factors
  Variable emb2_;
  nn::Linear input_proj_;
  std::vector<std::unique_ptr<nn::Conv1dLayer>> filter_convs_;
  std::vector<std::unique_ptr<nn::Conv1dLayer>> gate_convs_;
  std::vector<std::unique_ptr<nn::Linear>> gconv_fw_;
  std::vector<std::unique_ptr<nn::Linear>> gconv_bw_;
  std::vector<std::unique_ptr<nn::Linear>> gconv_adp_;
  nn::Linear head_;
};

/// \brief AGCRN (Bai et al., NeurIPS'20): GRU whose transforms are graph
/// convolutions over an adjacency learned from node embeddings.
class Agcrn : public GnnModelBase {
 public:
  Agcrn(const train::ForecastTask& task, int64_t hidden_dim,
        int64_t embed_dim, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "AGCRN"; }

 private:
  int64_t hidden_dim_;
  Variable node_embed_;  // (N, r)
  nn::Linear gate_zr_;
  nn::Linear gate_c_;
  nn::Linear head_;
};

/// \brief STSGCN (Song et al., AAAI'20): graph convolution over localized
/// 3-step spatio-temporal synchronous subgraphs, aggregated over windows.
class Stsgcn : public GnnModelBase {
 public:
  Stsgcn(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "STSGCN"; }

 private:
  int64_t hidden_dim_;
  autograd::SparseConstant local_op_;  // 3-step temporal graph
  nn::Linear input_proj_;
  nn::Linear gconv1_;
  nn::Linear gconv2_;
  nn::Linear head_;
};

/// \brief HGC-RNN (Yi & Park, KDD'20): GRU with hypergraph convolution on a
/// predefined hypergraph (here: the latent district communities, which is
/// exactly the static-hyperedge setting of paper Fig. 1). The convolution
/// runs the factored two-step form D_v^-1 Λ (D_e^-1 Λ^T x) — two sparse
/// products in O(nnz(Λ)) instead of the materialized node-by-node operator.
class HgcRnn : public GnnModelBase {
 public:
  HgcRnn(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "HGC-RNN"; }

 private:
  int64_t hidden_dim_;
  hypergraph::FactoredIncidence hyper_op_;  // factored D_v^-1 Λ D_e^-1 Λ^T
  nn::Linear gate_zr_;
  nn::Linear gate_c_;
  nn::Linear head_;
};

/// \brief DHGNN (Jiang et al., IJCAI'19) adapted to forecasting: hyperedges
/// are re-derived from each input window by kNN + k-means over node
/// features, then two rounds of hypergraph convolution feed the head.
///
/// DHGNN is the zoo's data-dependent-structure model: unlike the static
/// temporal-graph operators (precomputed once at construction), its
/// kNN + k-means hypergraph slides with the window. With
/// `structure_reuse` the factored operator is cached per thread behind a
/// drift check on per-node signature means — the same treatment
/// tensor::TopKPatternCache gives the learned-Λ pattern: a reuse with
/// zero drifted nodes is exact (identical signatures rebuild the
/// identical structure); under a sliding window the structure is stale
/// on the drifted nodes only, and crossing `structure_drift_threshold`
/// forces a rebuild.
class Dhgnn : public GnnModelBase {
 public:
  Dhgnn(const train::ForecastTask& task, int64_t hidden_dim,
        int64_t num_clusters, int64_t knn, uint64_t seed,
        bool structure_reuse = false, float structure_drift_threshold = 0.05f);
  /// \brief Retires the structure-cache id so every thread's registry
  /// evicts this model's entry on its next lookup (bounded registries).
  ~Dhgnn() override;
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "DHGNN"; }

  /// \brief Structure-cache counters, mirroring
  /// tensor::TopKPatternCache::Stats: selects = cold builds, reuses =
  /// drift check passed, drift_reselects = rebuilds forced by drift,
  /// drifted_rows = total drifted nodes seen on reuse checks. Caches are
  /// thread-local; this reads the calling thread's.
  tensor::TopKPatternCache::Stats StructureCacheStats() const;
  /// \brief Drops the calling thread's cached structure (tests).
  void ClearStructureCache() const;
  bool structure_reuse() const { return structure_reuse_; }

 private:
  int64_t hidden_dim_;
  int64_t num_clusters_;
  int64_t knn_;
  bool structure_reuse_;
  float structure_drift_threshold_;
  /// Thread-local cache registry key (caches are keyed per instance).
  uint64_t cache_id_;
  nn::GruCell encoder_;
  nn::Linear hconv1_;
  nn::Linear hconv2_;
  nn::Linear head_;
};

/// \brief STGODE-style model (Fang et al., KDD'21): the hidden state
/// follows dh/dt = GCN(h) - h integrated with fixed-step RK4.
class StgOde : public GnnModelBase {
 public:
  StgOde(const train::ForecastTask& task, int64_t hidden_dim,
         int64_t rk4_steps, uint64_t seed);
  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::string name() const override { return "STGODE"; }

 private:
  Variable OdeField(const Variable& h) const;

  int64_t hidden_dim_;
  int64_t rk4_steps_;
  autograd::SparseConstant sym_adj_;
  nn::GruCell encoder_;
  nn::Linear field_proj_;
  nn::Linear head_;
};

/// \brief Number of DHGNN structure-cache entries the *calling thread*
/// currently holds, after sweeping retired models (leak regression tests).
int64_t ThreadStructureRegistrySizeForTesting();

}  // namespace dyhsl::baselines

#endif  // DYHSL_BASELINES_GNN_MODELS_H_
