// Neural baselines that ignore the road graph (paper Table III, middle
// group): FC-LSTM, TCN (causal and non-causal), GRU encoder-decoder and a
// DSANet-style dual self-attention network.

#ifndef DYHSL_BASELINES_SEQ_MODELS_H_
#define DYHSL_BASELINES_SEQ_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/train/forecast_model.h"

namespace dyhsl::baselines {

using autograd::Variable;

/// \brief FC-LSTM (Sutskever et al.): all sensors concatenated into one
/// feature vector per step, LSTM encoder, fully-connected decoder.
class FcLstm : public nn::Module, public train::ForecastModel {
 public:
  FcLstm(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);

  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::vector<Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  std::string name() const override { return "FC-LSTM"; }

 private:
  train::ForecastTask task_;
  Rng rng_;
  nn::LstmCell cell_;
  nn::Linear head_;
};

/// \brief Temporal Convolution Network (Bai et al.): stacked dilated 1-D
/// convolutions with residual connections, shared across sensors.
class Tcn : public nn::Module, public train::ForecastModel {
 public:
  /// `causal` = false gives the paper's "TCN (w/o causal)" row.
  Tcn(const train::ForecastTask& task, int64_t channels, int64_t levels,
      bool causal, uint64_t seed);

  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::vector<Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  std::string name() const override {
    return causal_ ? "TCN" : "TCN(w/o causal)";
  }

 private:
  train::ForecastTask task_;
  bool causal_;
  Rng rng_;
  std::unique_ptr<nn::Conv1dLayer> input_conv_;
  std::vector<std::unique_ptr<nn::Conv1dLayer>> convs_;
  nn::Linear head_;
};

/// \brief GRU encoder-decoder (Cho et al.): per-sensor shared-weight GRU
/// encodes the history; a second GRU unrolls the horizon autoregressively.
class GruEd : public nn::Module, public train::ForecastModel {
 public:
  GruEd(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);

  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::vector<Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  std::string name() const override { return "GRU-ED"; }

 private:
  train::ForecastTask task_;
  Rng rng_;
  nn::GruCell encoder_;
  nn::GruCell decoder_;
  nn::Linear readout_;
};

/// \brief DSANet-style model: temporal convolution features per sensor,
/// scaled-dot-product self-attention *across sensors* (the "spatial"
/// self-attention branch), then a per-sensor head. Captures global
/// dependencies without a predefined graph.
class DsaNet : public nn::Module, public train::ForecastModel {
 public:
  DsaNet(const train::ForecastTask& task, int64_t hidden_dim, uint64_t seed);

  Variable Forward(const tensor::Tensor& x, bool training) override;
  std::vector<Variable> Parameters() const override {
    return nn::Module::Parameters();
  }
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  std::string name() const override { return "DSANet"; }

 private:
  train::ForecastTask task_;
  int64_t hidden_dim_;
  Rng rng_;
  nn::Conv1dLayer temporal_conv_;
  nn::Linear query_;
  nn::Linear key_;
  nn::Linear value_;
  nn::LayerNorm norm_;
  nn::Linear head_;
};

}  // namespace dyhsl::baselines

#endif  // DYHSL_BASELINES_SEQ_MODELS_H_
