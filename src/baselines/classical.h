// Classical (non-neural) forecasting baselines of paper Table III:
// Historical Average, ARIMA, VAR and linear SVR.

#ifndef DYHSL_BASELINES_CLASSICAL_H_
#define DYHSL_BASELINES_CLASSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/metrics/metrics.h"
#include "src/tensor/tensor.h"

namespace dyhsl::baselines {

/// \brief A statistical model fitted once on the training split and queried
/// per window (no gradient machinery involved).
class ClassicalModel {
 public:
  virtual ~ClassicalModel() = default;

  /// \brief Fits on the dataset's training range.
  virtual void Fit(const data::TrafficDataset& dataset) = 0;

  /// \brief Forecast (T', N) for the window starting at t0 (history is
  /// steps [t0, t0 + T)).
  virtual tensor::Tensor Predict(const data::TrafficDataset& dataset,
                                 int64_t t0) = 0;

  virtual std::string name() const = 0;
};

/// \brief Historical Average: per-node mean by time-of-day bucket, split
/// into weekday/weekend regimes when the training span covers both.
class HistoricalAverage : public ClassicalModel {
 public:
  void Fit(const data::TrafficDataset& dataset) override;
  tensor::Tensor Predict(const data::TrafficDataset& dataset,
                         int64_t t0) override;
  std::string name() const override { return "HA"; }

 private:
  int64_t steps_per_day_ = 288;
  bool has_weekend_ = false;
  // [regime][tod * N + node] means; regime 0 weekday, 1 weekend.
  std::vector<std::vector<float>> bucket_mean_;
};

/// \brief Per-node ARIMA(p, 1, 0): AR(p) on first differences fitted by
/// ridge least squares, forecast by recursive rollout.
class Arima : public ClassicalModel {
 public:
  explicit Arima(int64_t ar_order = 3, float ridge = 1e-3f)
      : ar_order_(ar_order), ridge_(ridge) {}
  void Fit(const data::TrafficDataset& dataset) override;
  tensor::Tensor Predict(const data::TrafficDataset& dataset,
                         int64_t t0) override;
  std::string name() const override { return "ARIMA"; }

 private:
  int64_t ar_order_;
  float ridge_;
  // Per node: AR coefficients (p) and intercept.
  std::vector<std::vector<float>> coef_;
  std::vector<float> intercept_;
};

/// \brief Vector Auto-Regression of order p with ridge regularization,
/// fitted jointly over all sensors (captures linear spatial coupling).
class Var : public ClassicalModel {
 public:
  explicit Var(int64_t order = 2, float ridge = 1e-1f)
      : order_(order), ridge_(ridge) {}
  void Fit(const data::TrafficDataset& dataset) override;
  tensor::Tensor Predict(const data::TrafficDataset& dataset,
                         int64_t t0) override;
  std::string name() const override { return "VAR"; }

 private:
  int64_t order_ = 2;
  float ridge_;
  int64_t num_nodes_ = 0;
  // Weight matrix ((N * p + 1) x N): column j predicts node j.
  std::vector<float> weights_;
  float train_mean_ = 0.0f;
};

/// \brief Linear support vector regression per horizon step: one shared
/// linear map from the 12-lag window to each horizon, trained with the
/// epsilon-insensitive loss by SGD (linear-kernel SVR).
class LinearSvr : public ClassicalModel {
 public:
  explicit LinearSvr(float epsilon = 2.0f, float learning_rate = 1e-2f,
                     int64_t epochs = 4, float l2 = 1e-4f)
      : epsilon_(epsilon),
        learning_rate_(learning_rate),
        epochs_(epochs),
        l2_(l2) {}
  void Fit(const data::TrafficDataset& dataset) override;
  tensor::Tensor Predict(const data::TrafficDataset& dataset,
                         int64_t t0) override;
  std::string name() const override { return "SVR"; }

 private:
  float epsilon_;
  float learning_rate_;
  int64_t epochs_;
  float l2_;
  int64_t history_ = 12;
  int64_t horizon_ = 12;
  // (history x horizon) weights + horizon intercepts, shared across nodes,
  // operating on z-scored inputs.
  std::vector<float> weights_;
  std::vector<float> bias_;
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

/// \brief Evaluates a fitted classical model over a window range.
metrics::ForecastMetrics EvaluateClassical(
    ClassicalModel* model, const data::TrafficDataset& dataset,
    data::TrafficDataset::SplitRange range, int64_t max_windows = 0);

}  // namespace dyhsl::baselines

#endif  // DYHSL_BASELINES_CLASSICAL_H_
