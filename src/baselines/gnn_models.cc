#include "src/baselines/gnn_models.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/autograd/inference.h"
#include "src/autograd/ops.h"
#include "src/core/check.h"
#include "src/graph/graph.h"
#include "src/graph/temporal_graph.h"
#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/vecmath.h"
#include "src/tensor/workspace.h"

namespace dyhsl::baselines {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

namespace {

// U (R x C shared) @ M (B, C, d) through the transpose trick.
Variable SharedLhsMatMul(const Variable& u, const Variable& m) {
  Variable mt = ag::TransposePerm(m, {0, 2, 1});
  Variable prod = ag::BatchedMatMul(mt, u, false, true);
  return ag::TransposePerm(prod, {0, 2, 1});
}

ag::SparseConstant SymAdj(const T::CsrMatrix& spatial) {
  return ag::SparseConstant(spatial.WithSelfLoops().SymNormalized());
}

ag::SparseConstant ForwardTransition(const T::CsrMatrix& spatial) {
  return ag::SparseConstant(spatial.RowNormalized());
}

ag::SparseConstant BackwardTransition(const T::CsrMatrix& spatial) {
  return ag::SparseConstant(spatial.Transposed().RowNormalized());
}

// Factored hypergraph convolution: x -> D_v^-1 Λ (D_e^-1 Λ^T x).
Variable HyperConv(const hypergraph::FactoredIncidence& op,
                   const Variable& x) {
  return ag::SpMM(op.edge_to_node, ag::SpMM(op.node_to_edge, x));
}

// (B, T, N, F) tensor -> per-step Variable (B, N, F).
Variable StepSlice(const Variable& x, int64_t t) {
  return ag::Reshape(ag::Slice(x, 1, t, 1),
                     {x.size(0), x.size(2), x.size(3)});
}

// Heap-backed deep copy: carried stream state must survive the arena
// resets of whatever WorkspaceScope the serving thread has installed.
T::Tensor HeapClone(const T::Tensor& t) {
  T::WorkspaceBypass bypass;
  T::Tensor copy(t.shape());
  copy.CopyDataFrom(t);
  return copy;
}

}  // namespace

// ---------------------------------------------------------------- Stgcn --

Stgcn::Stgcn(const train::ForecastTask& task, int64_t hidden_dim,
             uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      sym_adj_(SymAdj(task.spatial_adj)),
      tconv1_(task.input_dim, 2 * hidden_dim, 3, &rng_, 1, /*causal=*/true),
      gconv_(hidden_dim, hidden_dim, &rng_),
      tconv2_(hidden_dim, 2 * hidden_dim, 3, &rng_, 1, /*causal=*/true),
      head_(hidden_dim, task.horizon, &rng_) {
  RegisterChild("tconv1", &tconv1_);
  RegisterChild("gconv", &gconv_);
  RegisterChild("tconv2", &tconv2_);
  RegisterChild("head", &head_);
}

Variable Stgcn::TemporalGated(const nn::Conv1dLayer& conv, const Variable& h,
                              int64_t channels) const {
  Variable pq = conv.Forward(h);  // (B*N, 2C, T)
  Variable p = ag::Slice(pq, 1, 0, channels);
  Variable q = ag::Slice(pq, 1, channels, channels);
  return ag::Mul(p, ag::Sigmoid(q));
}

Variable Stgcn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), t_in = x.size(1), n = x.size(2), f = x.size(3);
  // Temporal gated conv over each sensor.
  Variable seq = ag::Reshape(ag::TransposePerm(input, {0, 2, 3, 1}),
                             {batch * n, f, t_in});
  Variable h = TemporalGated(tconv1_, seq, hidden_dim_);  // (B*N, C, T)
  // Spatial graph conv applied per time position.
  h = ag::Reshape(h, {batch, n, hidden_dim_, t_in});
  h = ag::TransposePerm(h, {0, 3, 1, 2});                // (B, T, N, C)
  h = ag::Reshape(h, {batch * t_in, n, hidden_dim_});
  h = ag::Relu(gconv_.Forward(ag::SpMM(sym_adj_, h)));
  // Second temporal gated conv.
  h = ag::Reshape(h, {batch, t_in, n, hidden_dim_});
  h = ag::Reshape(ag::TransposePerm(h, {0, 2, 3, 1}),
                  {batch * n, hidden_dim_, t_in});
  h = TemporalGated(tconv2_, h, hidden_dim_);
  Variable last = ag::Reshape(ag::Slice(h, 2, t_in - 1, 1),
                              {batch * n, hidden_dim_});
  Variable out = ag::Reshape(head_.Forward(last),
                             {batch, n, task_.horizon});
  out = ag::TransposePerm(out, {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// ---------------------------------------------------------------- Dcrnn --

Dcrnn::Dcrnn(const train::ForecastTask& task, int64_t hidden_dim,
             int64_t diffusion_steps, uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      fw_(ForwardTransition(task.spatial_adj)),
      bw_(BackwardTransition(task.spatial_adj)),
      gate_zr_(task.input_dim + hidden_dim, 2 * hidden_dim, diffusion_steps,
               &rng_),
      gate_c_(task.input_dim + hidden_dim, hidden_dim, diffusion_steps,
              &rng_),
      readout_(hidden_dim, 1, &rng_) {
  RegisterChild("gate_zr", &gate_zr_);
  RegisterChild("gate_c", &gate_c_);
  RegisterChild("readout", &readout_);
}

Variable Dcrnn::CellStep(const Variable& x_t, const Variable& h) const {
  if (autograd::InferenceModeEnabled()) {
    // Grad-free fast path: the gate algebra runs on raw arrays — the
    // same SigmoidArray/TanhArray kernels and the same per-element
    // operation order as the taped ops below, minus the Slice / Concat /
    // Neg temporaries the tape materializes. Every serving-side caller
    // (Forward under the engine's guard, StreamForecast, the batched
    // carry) shares this path, so the cross-path equality contracts
    // (warm vs windowed, B = 1 batch vs sequential) are unaffected.
    const tensor::Tensor& xv = x_t.value();
    const tensor::Tensor& hv = h.value();
    const int64_t b = xv.size(0), n = xv.size(1), f = xv.size(2);
    const int64_t hd = hidden_dim_;
    const int64_t rows = b * n;
    tensor::Tensor xh({b, n, f + hd});  // [x ; h]
    {
      float* dst = xh.data();
      const float* px = xv.data();
      const float* ph = hv.data();
      for (int64_t i = 0; i < rows; ++i) {
        std::memcpy(dst + i * (f + hd), px + i * f,
                    static_cast<size_t>(f) * sizeof(float));
        std::memcpy(dst + i * (f + hd) + f, ph + i * hd,
                    static_cast<size_t>(hd) * sizeof(float));
      }
    }
    tensor::Tensor zr = gate_zr_.Forward(fw_, bw_, Variable(xh)).value();
    tensor::Tensor zr_act(zr.shape());  // sigmoid(z | r), (B, N, 2H)
    tensor::SigmoidArray(zr.data(), zr_act.data(), zr_act.numel());
    tensor::Tensor xrh({b, n, f + hd});  // [x ; r * h]
    {
      float* dst = xrh.data();
      const float* px = xv.data();
      const float* ph = hv.data();
      const float* pzr = zr_act.data();
      for (int64_t i = 0; i < rows; ++i) {
        std::memcpy(dst + i * (f + hd), px + i * f,
                    static_cast<size_t>(f) * sizeof(float));
        float* drh = dst + i * (f + hd) + f;
        const float* r = pzr + i * 2 * hd + hd;
        const float* hrow = ph + i * hd;
        for (int64_t j = 0; j < hd; ++j) drh[j] = r[j] * hrow[j];
      }
    }
    tensor::Tensor c = gate_c_.Forward(fw_, bw_, Variable(xrh)).value();
    tensor::Tensor c_act(c.shape());  // (B, N, H)
    tensor::TanhArray(c.data(), c_act.data(), c_act.numel());
    // h' = z * h + (1 - z) * c, via the same single-op tensor kernels the
    // taped path runs (Mul / MulScalar / AddScalar / Add) so every
    // intermediate rounds identically — a hand-fused expression here would
    // let the compiler contract mul+add into an FMA and change bits.
    tensor::Tensor z({b, n, hd});
    {
      float* pz = z.data();
      const float* pzr = zr_act.data();
      for (int64_t i = 0; i < rows; ++i) {
        std::memcpy(pz + i * hd, pzr + i * 2 * hd,
                    static_cast<size_t>(hd) * sizeof(float));
      }
    }
    tensor::Tensor one_minus_z =
        tensor::AddScalar(tensor::MulScalar(z, -1.0f), 1.0f);
    return Variable(tensor::Add(tensor::Mul(z, hv),
                                tensor::Mul(one_minus_z, c_act)));
  }
  // DCGRU: gates via diffusion conv on [x ; h] over the road graph.
  Variable xh = ag::Concat({x_t, h}, 2);  // (B, N, F + H)
  Variable zr = ag::Sigmoid(gate_zr_.Forward(fw_, bw_, xh));
  Variable z = ag::Slice(zr, 2, 0, hidden_dim_);
  Variable r = ag::Slice(zr, 2, hidden_dim_, hidden_dim_);
  Variable xrh = ag::Concat({x_t, ag::Mul(r, h)}, 2);
  Variable c = ag::Tanh(gate_c_.Forward(fw_, bw_, xrh));
  Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(z, h), ag::Mul(one_minus_z, c));
}

Variable Dcrnn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes;
  Variable h(tensor::Tensor::Zeros({batch, n, hidden_dim_}));
  for (int64_t t = 0; t < task_.history; ++t) {
    h = CellStep(StepSlice(input, t), h);
  }
  // Decoder: feed back own (scaled) predictions; extra input channels are 0.
  Variable prev = ag::Reshape(
      ag::Slice(StepSlice(input, task_.history - 1), 2, 0, 1),
      {batch, n, 1});
  Variable pad(tensor::Tensor::Zeros({batch, n, task_.input_dim - 1}));
  std::vector<Variable> steps;
  for (int64_t t = 0; t < task_.horizon; ++t) {
    Variable x_t = ag::Concat({prev, pad}, 2);
    h = CellStep(x_t, h);
    prev = readout_.Forward(h);  // (B, N, 1)
    steps.push_back(prev);
  }
  Variable out = ag::Concat(steps, 2);            // (B, N, T')
  out = ag::TransposePerm(out, {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// Warm-state streaming: the carried state is exactly what Forward's
// encoder holds at batch 1 — h after one CellStep per tick, plus the
// decoder seed (flow channel of the newest frame). Every method runs
// tape-less and heap-pins the carried tensors, so states are cheap value
// holders that survive per-step workspace resets on any thread.
struct Dcrnn::DcrnnStreamState : public train::StreamState {
  Variable h;     // (1, N, H); zeros until the first tick
  Variable prev;  // (1, N, 1) decoder seed; undefined until the first tick
  int64_t ticks = 0;
};

std::unique_ptr<train::StreamState> Dcrnn::MakeStreamState() const {
  auto state = std::make_unique<DcrnnStreamState>();
  autograd::InferenceModeGuard no_grad;
  tensor::WorkspaceBypass bypass;
  state->h =
      Variable(tensor::Tensor::Zeros({1, task_.num_nodes, hidden_dim_}));
  return state;
}

void Dcrnn::StreamStep(train::StreamState* state,
                       const tensor::Tensor& frame) const {
  auto* s = static_cast<DcrnnStreamState*>(state);
  const int64_t n = task_.num_nodes;
  const int64_t f = task_.input_dim;
  DYHSL_CHECK(frame.shape() == (tensor::Shape{n, f}));
  autograd::InferenceModeGuard no_grad;
  // Reshape shares the caller's storage (e.g. a ring frame) — CellStep
  // only reads it, and shared storage disables the in-place fast paths.
  Variable x_t(frame.Reshape({1, n, f}));
  Variable h_new = CellStep(x_t, s->h);
  s->h = Variable(HeapClone(h_new.value()));
  // Decoder seed: the flow channel of the newest frame (what Forward
  // slices from the last window step).
  tensor::WorkspaceBypass bypass;
  tensor::Tensor prev({1, n, 1});
  for (int64_t i = 0; i < n; ++i) prev.data()[i] = frame.data()[i * f];
  s->prev = Variable(std::move(prev));
  s->ticks += 1;
}

void Dcrnn::ResyncState(train::StreamState* state,
                        const tensor::Tensor& window) const {
  auto* s = static_cast<DcrnnStreamState*>(state);
  const int64_t t_in = task_.history;
  const int64_t n = task_.num_nodes;
  const int64_t f = task_.input_dim;
  DYHSL_CHECK(window.shape() == (tensor::Shape{t_in, n, f}));
  autograd::InferenceModeGuard no_grad;
  // Cold replay from zeros — bit-identical to Forward's encoder loop, so
  // the next StreamForecast matches the windowed reference exactly.
  Variable h(tensor::Tensor::Zeros({1, n, hidden_dim_}));
  for (int64_t t = 0; t < t_in; ++t) {
    Variable x_t(window.Alias(t * n * f, {1, n, f}));
    h = CellStep(x_t, h);
  }
  s->h = Variable(HeapClone(h.value()));
  tensor::WorkspaceBypass bypass;
  tensor::Tensor prev({1, n, 1});
  const float* last = window.data() + (t_in - 1) * n * f;
  for (int64_t i = 0; i < n; ++i) prev.data()[i] = last[i * f];
  s->prev = Variable(std::move(prev));
}

tensor::Tensor Dcrnn::StreamForecast(const train::StreamState& state) const {
  const auto& s = static_cast<const DcrnnStreamState&>(state);
  DYHSL_CHECK(s.prev.value().defined());
  const int64_t n = task_.num_nodes;
  autograd::InferenceModeGuard no_grad;
  // Forward's decoder, verbatim, from a private copy of the carried
  // state — forecasting must not advance the session.
  Variable h = s.h;
  Variable prev = s.prev;
  Variable pad(tensor::Tensor::Zeros({1, n, task_.input_dim - 1}));
  std::vector<Variable> steps;
  for (int64_t t = 0; t < task_.horizon; ++t) {
    Variable x_t = ag::Concat({prev, pad}, 2);
    h = CellStep(x_t, h);
    prev = readout_.Forward(h);
    steps.push_back(prev);
  }
  Variable out = ag::Concat(steps, 2);  // (1, N, T')
  out = ag::TransposePerm(out, {0, 2, 1});
  out = train::Descale(out, task_.scaler_mean, task_.scaler_std);
  T::Tensor forecast = HeapClone(out.value());
  return forecast.Reshape({task_.horizon, n});
}

void Dcrnn::AdvanceStateBatch(const std::vector<train::StreamState*>& states,
                              const tensor::Tensor& frames) const {
  const int64_t b = static_cast<int64_t>(states.size());
  if (b == 0) return;
  const int64_t n = task_.num_nodes;
  const int64_t f = task_.input_dim;
  DYHSL_CHECK(frames.shape() == (tensor::Shape{b, n, f}));
  autograd::InferenceModeGuard no_grad;
  // Stack the carried hidden states into (B, N, H) and advance all B
  // sessions with one batched DCGRU step. CellStep runs each batch item
  // through the same row-wise accumulation order as at B = 1, so the
  // unstacked states are bit-identical to B sequential StreamSteps.
  const int64_t state_numel = n * hidden_dim_;
  T::Tensor h({b, n, hidden_dim_});
  for (int64_t i = 0; i < b; ++i) {
    const auto* s = static_cast<const DcrnnStreamState*>(states[i]);
    std::memcpy(h.data() + i * state_numel, s->h.value().data(),
                static_cast<size_t>(state_numel) * sizeof(float));
  }
  Variable h_new = CellStep(Variable(frames), Variable(h));
  const T::Tensor& hv = h_new.value();  // (B, N, H)
  T::WorkspaceBypass bypass;  // carried state must survive arena resets
  for (int64_t i = 0; i < b; ++i) {
    auto* s = static_cast<DcrnnStreamState*>(states[i]);
    T::Tensor hi({1, n, hidden_dim_});
    std::memcpy(hi.data(), hv.data() + i * state_numel,
                static_cast<size_t>(state_numel) * sizeof(float));
    s->h = Variable(std::move(hi));
    T::Tensor prev({1, n, 1});
    const float* frame = frames.data() + i * n * f;
    for (int64_t j = 0; j < n; ++j) prev.data()[j] = frame[j * f];
    s->prev = Variable(std::move(prev));
    s->ticks += 1;
  }
}

tensor::Tensor Dcrnn::ForecastFromStateBatch(
    const std::vector<const train::StreamState*>& states) const {
  const int64_t b = static_cast<int64_t>(states.size());
  DYHSL_CHECK_GT(b, 0);
  const int64_t n = task_.num_nodes;
  autograd::InferenceModeGuard no_grad;
  // Forward's decoder over the stacked (B, N, H) states: one batched
  // rollout instead of B sequential ones. Reads private copies, mutates
  // no session state.
  const int64_t state_numel = n * hidden_dim_;
  T::Tensor h0({b, n, hidden_dim_});
  T::Tensor prev0({b, n, 1});
  for (int64_t i = 0; i < b; ++i) {
    const auto* s = static_cast<const DcrnnStreamState*>(states[i]);
    DYHSL_CHECK(s->prev.value().defined());
    std::memcpy(h0.data() + i * state_numel, s->h.value().data(),
                static_cast<size_t>(state_numel) * sizeof(float));
    std::memcpy(prev0.data() + i * n, s->prev.value().data(),
                static_cast<size_t>(n) * sizeof(float));
  }
  Variable h(std::move(h0));
  Variable prev(std::move(prev0));
  Variable pad(tensor::Tensor::Zeros({b, n, task_.input_dim - 1}));
  std::vector<Variable> steps;
  for (int64_t t = 0; t < task_.horizon; ++t) {
    Variable x_t = ag::Concat({prev, pad}, 2);
    h = CellStep(x_t, h);
    prev = readout_.Forward(h);
    steps.push_back(prev);
  }
  Variable out = ag::Concat(steps, 2);  // (B, N, T')
  out = ag::TransposePerm(out, {0, 2, 1});
  out = train::Descale(out, task_.scaler_mean, task_.scaler_std);
  return out.value();  // (B, T', N); caller copies out before any reset
}

// --------------------------------------------------------- GraphWaveNet --

GraphWaveNet::GraphWaveNet(const train::ForecastTask& task, int64_t channels,
                           int64_t layers, uint64_t seed)
    : GnnModelBase(task, seed),
      channels_(channels),
      fw_(ForwardTransition(task.spatial_adj)),
      bw_(BackwardTransition(task.spatial_adj)),
      input_proj_(task.input_dim, channels, &rng_),
      head_(channels, task.horizon, &rng_) {
  constexpr int64_t kEmbed = 10;
  emb1_ = RegisterParameter(
      "emb1", tensor::Tensor::Randn({task.num_nodes, kEmbed}, &rng_, 0.1f));
  emb2_ = RegisterParameter(
      "emb2", tensor::Tensor::Randn({task.num_nodes, kEmbed}, &rng_, 0.1f));
  for (int64_t l = 0; l < layers; ++l) {
    int64_t dilation = int64_t{1} << l;
    filter_convs_.push_back(std::make_unique<nn::Conv1dLayer>(
        channels, channels, 2, &rng_, dilation, /*causal=*/true));
    gate_convs_.push_back(std::make_unique<nn::Conv1dLayer>(
        channels, channels, 2, &rng_, dilation, /*causal=*/true));
    gconv_fw_.push_back(
        std::make_unique<nn::Linear>(channels, channels, &rng_, false));
    gconv_bw_.push_back(
        std::make_unique<nn::Linear>(channels, channels, &rng_, false));
    gconv_adp_.push_back(
        std::make_unique<nn::Linear>(channels, channels, &rng_));
    RegisterChild("filter" + std::to_string(l), filter_convs_.back().get());
    RegisterChild("gate" + std::to_string(l), gate_convs_.back().get());
    RegisterChild("gfw" + std::to_string(l), gconv_fw_.back().get());
    RegisterChild("gbw" + std::to_string(l), gconv_bw_.back().get());
    RegisterChild("gadp" + std::to_string(l), gconv_adp_.back().get());
  }
  RegisterChild("input_proj", &input_proj_);
  RegisterChild("head", &head_);
}

Variable GraphWaveNet::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), t_in = x.size(1), n = x.size(2);
  // Self-adaptive adjacency A = softmax(relu(E1 E2^T)) (dense, learned).
  Variable adaptive = ag::SoftmaxLastAxis(
      ag::Relu(ag::MatMul(emb1_, emb2_, false, /*trans_b=*/true)));
  Variable h = input_proj_.Forward(input);  // (B, T, N, C)
  for (size_t l = 0; l < filter_convs_.size(); ++l) {
    // Gated dilated temporal convolution per sensor.
    Variable seq = ag::Reshape(ag::TransposePerm(h, {0, 2, 3, 1}),
                               {batch * n, channels_, t_in});
    Variable gated = ag::Mul(ag::Tanh(filter_convs_[l]->Forward(seq)),
                             ag::Sigmoid(gate_convs_[l]->Forward(seq)));
    // Back to (B*T, N, C) for the graph mixing step.
    gated = ag::Reshape(gated, {batch, n, channels_, t_in});
    Variable spatial_in = ag::Reshape(
        ag::TransposePerm(gated, {0, 3, 1, 2}), {batch * t_in, n, channels_});
    Variable mixed =
        ag::Add(ag::Add(gconv_fw_[l]->Forward(ag::SpMM(fw_, spatial_in)),
                        gconv_bw_[l]->Forward(ag::SpMM(bw_, spatial_in))),
                gconv_adp_[l]->Forward(
                    SharedLhsMatMul(adaptive, spatial_in)));
    Variable next = ag::Reshape(ag::Relu(mixed),
                                {batch, t_in, n, channels_});
    h = ag::Add(h, next);  // residual
  }
  Variable last = ag::Reshape(ag::Slice(h, 1, t_in - 1, 1),
                              {batch, n, channels_});
  Variable out = ag::TransposePerm(head_.Forward(last), {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// ---------------------------------------------------------------- Agcrn --

Agcrn::Agcrn(const train::ForecastTask& task, int64_t hidden_dim,
             int64_t embed_dim, uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      gate_zr_(task.input_dim + hidden_dim, 2 * hidden_dim, &rng_),
      gate_c_(task.input_dim + hidden_dim, hidden_dim, &rng_),
      head_(hidden_dim, task.horizon, &rng_) {
  node_embed_ = RegisterParameter(
      "node_embed",
      tensor::Tensor::Randn({task.num_nodes, embed_dim}, &rng_, 1.0f));
  RegisterChild("gate_zr", &gate_zr_);
  RegisterChild("gate_c", &gate_c_);
  RegisterChild("head", &head_);
}

Variable Agcrn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes;
  // Data-adaptive adjacency from node embeddings (AGCRN Eq. 4).
  Variable adaptive = ag::SoftmaxLastAxis(
      ag::Relu(ag::MatMul(node_embed_, node_embed_, false, true)));
  Variable h(tensor::Tensor::Zeros({batch, n, hidden_dim_}));
  for (int64_t t = 0; t < task_.history; ++t) {
    Variable xh = ag::Concat({StepSlice(input, t), h}, 2);
    Variable mixed = SharedLhsMatMul(adaptive, xh);  // graph conv transform
    Variable zr = ag::Sigmoid(gate_zr_.Forward(mixed));
    Variable z = ag::Slice(zr, 2, 0, hidden_dim_);
    Variable r = ag::Slice(zr, 2, hidden_dim_, hidden_dim_);
    Variable xrh = ag::Concat({StepSlice(input, t), ag::Mul(r, h)}, 2);
    Variable c = ag::Tanh(gate_c_.Forward(SharedLhsMatMul(adaptive, xrh)));
    Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    h = ag::Add(ag::Mul(z, h), ag::Mul(one_minus_z, c));
  }
  Variable out = ag::TransposePerm(head_.Forward(h), {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// --------------------------------------------------------------- Stsgcn --

Stsgcn::Stsgcn(const train::ForecastTask& task, int64_t hidden_dim,
               uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      local_op_(graph::BuildNormalizedTemporalOp(task.spatial_adj,
                                                 /*num_steps=*/3)),
      input_proj_(task.input_dim, hidden_dim, &rng_),
      gconv1_(hidden_dim, hidden_dim, &rng_),
      gconv2_(hidden_dim, hidden_dim, &rng_),
      head_(hidden_dim, task.horizon, &rng_) {
  RegisterChild("input_proj", &input_proj_);
  RegisterChild("gconv1", &gconv1_);
  RegisterChild("gconv2", &gconv2_);
  RegisterChild("head", &head_);
}

Variable Stsgcn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), t_in = x.size(1), n = x.size(2);
  Variable h = input_proj_.Forward(input);  // (B, T, N, C)
  // Localized synchronous subgraphs: every 3 consecutive steps share one
  // temporal graph; the middle step's embedding is retained.
  std::vector<Variable> mids;
  for (int64_t t = 0; t + 3 <= t_in; ++t) {
    Variable window = ag::Reshape(ag::Slice(h, 1, t, 3),
                                  {batch, 3 * n, hidden_dim_});
    Variable g1 = ag::Relu(gconv1_.Forward(ag::SpMM(local_op_, window)));
    Variable g2 = ag::Relu(gconv2_.Forward(ag::SpMM(local_op_, g1)));
    // JK-style max aggregation of the two depths, middle step only.
    Variable agg = ag::Maximum(g1, g2);
    mids.push_back(ag::Slice(ag::Reshape(agg, {batch, 3, n, hidden_dim_}),
                             1, 1, 1));
  }
  Variable stack = ag::Concat(mids, 1);  // (B, T-2, N, C)
  Variable pooled = ag::Reshape(
      ag::MaxPoolAxis(stack, 1, static_cast<int64_t>(mids.size())),
      {batch, n, hidden_dim_});
  Variable out = ag::TransposePerm(head_.Forward(pooled), {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// --------------------------------------------------------------- HgcRnn --

HgcRnn::HgcRnn(const train::ForecastTask& task, int64_t hidden_dim,
               uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      hyper_op_(hypergraph::Hypergraph::FromCommunities(task.district_labels)
                    .FactoredOperator()),
      gate_zr_(task.input_dim + hidden_dim, 2 * hidden_dim, &rng_),
      gate_c_(task.input_dim + hidden_dim, hidden_dim, &rng_),
      head_(hidden_dim, task.horizon, &rng_) {
  RegisterChild("gate_zr", &gate_zr_);
  RegisterChild("gate_c", &gate_c_);
  RegisterChild("head", &head_);
}

Variable HgcRnn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes;
  Variable h(tensor::Tensor::Zeros({batch, n, hidden_dim_}));
  for (int64_t t = 0; t < task_.history; ++t) {
    // GRU whose transforms see hypergraph-convolved features.
    Variable xh = HyperConv(hyper_op_, ag::Concat({StepSlice(input, t), h}, 2));
    Variable zr = ag::Sigmoid(gate_zr_.Forward(xh));
    Variable z = ag::Slice(zr, 2, 0, hidden_dim_);
    Variable r = ag::Slice(zr, 2, hidden_dim_, hidden_dim_);
    Variable xrh = HyperConv(
        hyper_op_, ag::Concat({StepSlice(input, t), ag::Mul(r, h)}, 2));
    Variable c = ag::Tanh(gate_c_.Forward(xrh));
    Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    h = ag::Add(ag::Mul(z, h), ag::Mul(one_minus_z, c));
  }
  Variable out = ag::TransposePerm(head_.Forward(h), {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// ---------------------------------------------------------------- Dhgnn --

namespace {

// Thread-local structure cache, keyed per Dhgnn instance — the same
// shape as DhslBlock's TopKPatternCache registry: serving workers each
// stay warm on the sessions they serve, with zero cross-thread sharing.
struct DhgnnStructure {
  bool valid = false;
  /// Per-node signature means of the window the structure was built
  /// from — the drift reference. Means (not raw signatures) make the
  /// check shift-robust: sliding the window one tick shifts every
  /// signature column but barely moves a node's mean.
  std::vector<float> node_means;
  hypergraph::FactoredIncidence op;
  T::TopKPatternCache::Stats stats;
};

// Same bounded-registry scheme as DhslBlock's pattern caches: the model
// destructor retires its id and bumps a generation; each thread sweeps
// retired entries out of its registry before the next lookup, so a
// long-lived serving thread never accumulates structures for dead models.
std::mutex& DhgnnLiveIdMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_set<uint64_t>& DhgnnLiveIds() {
  // Leaked: serving threads may sweep during static destruction.
  static auto* ids = new std::unordered_set<uint64_t>();
  return *ids;
}

std::atomic<uint64_t>& DhgnnLiveGeneration() {
  static std::atomic<uint64_t> gen{0};
  return gen;
}

uint64_t NextDhgnnCacheId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(DhgnnLiveIdMutex());
  DhgnnLiveIds().insert(id);
  return id;
}

void RetireDhgnnCacheId(uint64_t id) {
  std::lock_guard<std::mutex> lock(DhgnnLiveIdMutex());
  DhgnnLiveIds().erase(id);
  DhgnnLiveGeneration().fetch_add(1, std::memory_order_release);
}

struct DhgnnThreadRegistry {
  std::unordered_map<uint64_t, DhgnnStructure> structures;
  uint64_t seen_generation = 0;
};

DhgnnThreadRegistry& DhgnnRegistryForThread() {
  thread_local DhgnnThreadRegistry registry;
  return registry;
}

void DhgnnSweepDeadIds(DhgnnThreadRegistry& registry) {
  const uint64_t gen =
      DhgnnLiveGeneration().load(std::memory_order_acquire);
  if (gen == registry.seen_generation) return;
  std::lock_guard<std::mutex> lock(DhgnnLiveIdMutex());
  for (auto it = registry.structures.begin();
       it != registry.structures.end();) {
    it = DhgnnLiveIds().count(it->first) ? std::next(it)
                                         : registry.structures.erase(it);
  }
  registry.seen_generation = gen;
}

DhgnnStructure& DhgnnCacheForThread(uint64_t cache_id) {
  DhgnnThreadRegistry& registry = DhgnnRegistryForThread();
  DhgnnSweepDeadIds(registry);
  return registry.structures[cache_id];
}

// A node counts as drifted once its signature mean moved by more than
// this relative tolerance — the per-row analogue of CountDriftedRows'
// margin flip. The +1 floors the scale for near-zero (z-scored) means.
constexpr float kNodeDriftTol = 0.05f;

std::vector<float> SignatureMeans(const T::Tensor& signatures) {
  const int64_t n = signatures.size(0), t_in = signatures.size(1);
  std::vector<float> means(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int64_t t = 0; t < t_in; ++t) {
      sum += signatures.data()[i * t_in + t];
    }
    means[static_cast<size_t>(i)] =
        static_cast<float>(sum / static_cast<double>(t_in));
  }
  return means;
}

// DHGNN's kNN + k-means construction (no gradient through structure).
hypergraph::FactoredIncidence BuildDhgnnStructure(const T::Tensor& signatures,
                                                  int64_t num_clusters,
                                                  int64_t knn_k) {
  const int64_t n = signatures.size(0);
  Rng structure_rng(29);
  // Cluster hyperedges (k-means) plus kNN hyperedges around each node.
  std::vector<int64_t> labels = hypergraph::KMeansLabels(
      signatures, std::min(num_clusters, n), 5, &structure_rng);
  std::vector<T::Triplet> incidence;
  for (int64_t i = 0; i < n; ++i) {
    incidence.push_back({i, labels[i], 1.0f});
  }
  T::CsrMatrix knn = graph::KnnGraph(signatures, std::min(knn_k, n - 1));
  int64_t cluster_edges = num_clusters;
  for (int64_t i = 0; i < n; ++i) {
    incidence.push_back({i, cluster_edges + i, 1.0f});  // node joins own edge
    for (int64_t k = knn.row_ptr()[i]; k < knn.row_ptr()[i + 1]; ++k) {
      incidence.push_back({knn.col_idx()[k], cluster_edges + i, 1.0f});
    }
  }
  hypergraph::Hypergraph hg(
      n, cluster_edges + n,
      T::CsrMatrix::FromTriplets(n, cluster_edges + n, std::move(incidence)));
  return hg.FactoredOperator();
}

}  // namespace

Dhgnn::Dhgnn(const train::ForecastTask& task, int64_t hidden_dim,
             int64_t num_clusters, int64_t knn, uint64_t seed,
             bool structure_reuse, float structure_drift_threshold)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      num_clusters_(num_clusters),
      knn_(knn),
      structure_reuse_(structure_reuse),
      structure_drift_threshold_(structure_drift_threshold),
      cache_id_(NextDhgnnCacheId()),
      encoder_(task.input_dim, hidden_dim, &rng_),
      hconv1_(hidden_dim, hidden_dim, &rng_),
      hconv2_(hidden_dim, hidden_dim, &rng_),
      head_(hidden_dim, task.horizon, &rng_) {
  DYHSL_CHECK_GE(structure_drift_threshold_, 0.0f);
  DYHSL_CHECK_LE(structure_drift_threshold_, 1.0f);
  RegisterChild("encoder", &encoder_);
  RegisterChild("hconv1", &hconv1_);
  RegisterChild("hconv2", &hconv2_);
  RegisterChild("head", &head_);
}

int64_t ThreadStructureRegistrySizeForTesting() {
  DhgnnThreadRegistry& registry = DhgnnRegistryForThread();
  DhgnnSweepDeadIds(registry);
  return static_cast<int64_t>(registry.structures.size());
}

Dhgnn::~Dhgnn() { RetireDhgnnCacheId(cache_id_); }

tensor::TopKPatternCache::Stats Dhgnn::StructureCacheStats() const {
  return DhgnnCacheForThread(cache_id_).stats;
}

void Dhgnn::ClearStructureCache() const {
  DhgnnStructure& cache = DhgnnCacheForThread(cache_id_);
  const T::TopKPatternCache::Stats stats = cache.stats;
  cache = DhgnnStructure();
  cache.stats = stats;  // Clear drops the structure, not the counters
}

Variable Dhgnn::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  int64_t batch = x.size(0), t_in = x.size(1), n = x.size(2), f = x.size(3);
  // Node signatures of the current window (mean flow feature over batch).
  T::Tensor signatures = T::Tensor::Zeros({n, t_in});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < t_in; ++t) {
      for (int64_t i = 0; i < n; ++i) {
        signatures.data()[i * t_in + t] +=
            x.data()[((b * t_in + t) * n + i) * f] / batch;
      }
    }
  }
  hypergraph::FactoredIncidence hyper_op;
  if (!structure_reuse_) {
    hyper_op = BuildDhgnnStructure(signatures, num_clusters_, knn_);
  } else {
    // Incremental structure refresh: keep the cached operator while at
    // most structure_drift_threshold_ of the nodes drifted, rebuild past
    // it. Identical windows drift zero nodes, so reuse is exact there;
    // a sliding window pays the O(N T) mean check instead of the
    // k-means + kNN rebuild until the flow regime actually moves.
    DhgnnStructure& cache = DhgnnCacheForThread(cache_id_);
    std::vector<float> means = SignatureMeans(signatures);
    bool rebuild = true;
    if (!cache.valid) {
      cache.stats.selects += 1;
    } else {
      int64_t drifted = 0;
      for (int64_t i = 0; i < n; ++i) {
        const float ref = cache.node_means[static_cast<size_t>(i)];
        if (std::fabs(means[static_cast<size_t>(i)] - ref) >
            kNodeDriftTol * (1.0f + std::fabs(ref))) {
          drifted += 1;
        }
      }
      if (static_cast<float>(drifted) <=
          structure_drift_threshold_ * static_cast<float>(n)) {
        cache.stats.reuses += 1;
        cache.stats.drifted_rows += drifted;
        rebuild = false;
      } else {
        cache.stats.drift_reselects += 1;
      }
    }
    if (rebuild) {
      cache.op = BuildDhgnnStructure(signatures, num_clusters_, knn_);
      cache.node_means = std::move(means);
      cache.valid = true;
    }
    hyper_op = cache.op;
  }

  // Temporal encoding (shared GRU per node), then hypergraph convolutions.
  Variable input(x);
  Variable seq = ag::Reshape(ag::TransposePerm(input, {0, 2, 1, 3}),
                             {batch * n, t_in, f});
  Variable h(tensor::Tensor::Zeros({batch * n, hidden_dim_}));
  for (int64_t t = 0; t < t_in; ++t) {
    Variable xt = ag::Reshape(ag::Slice(seq, 1, t, 1), {batch * n, f});
    h = encoder_.Forward(xt, h);
  }
  Variable node_h = ag::Reshape(h, {batch, n, hidden_dim_});
  Variable g1 = ag::Relu(hconv1_.Forward(HyperConv(hyper_op, node_h)));
  Variable g2 = ag::Relu(hconv2_.Forward(HyperConv(hyper_op, g1)));
  Variable out = ag::TransposePerm(head_.Forward(ag::Add(node_h, g2)),
                                   {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

// --------------------------------------------------------------- StgOde --

StgOde::StgOde(const train::ForecastTask& task, int64_t hidden_dim,
               int64_t rk4_steps, uint64_t seed)
    : GnnModelBase(task, seed),
      hidden_dim_(hidden_dim),
      rk4_steps_(rk4_steps),
      sym_adj_(SymAdj(task.spatial_adj)),
      encoder_(task.input_dim, hidden_dim, &rng_),
      field_proj_(hidden_dim, hidden_dim, &rng_),
      head_(hidden_dim, task.horizon, &rng_) {
  RegisterChild("encoder", &encoder_);
  RegisterChild("field_proj", &field_proj_);
  RegisterChild("head", &head_);
}

Variable StgOde::OdeField(const Variable& h) const {
  // dh/dt = tanh(A h W) - h : diffusion toward graph-smoothed features.
  return ag::Sub(ag::Tanh(field_proj_.Forward(ag::SpMM(sym_adj_, h))), h);
}

Variable StgOde::Forward(const tensor::Tensor& x, bool training) {
  (void)training;
  Variable input(x);
  int64_t batch = x.size(0), n = task_.num_nodes, f = task_.input_dim;
  // Temporal encoding per node.
  Variable seq = ag::Reshape(ag::TransposePerm(input, {0, 2, 1, 3}),
                             {batch * n, task_.history, f});
  Variable h(tensor::Tensor::Zeros({batch * n, encoder_.hidden_dim()}));
  for (int64_t t = 0; t < task_.history; ++t) {
    Variable xt = ag::Reshape(ag::Slice(seq, 1, t, 1), {batch * n, f});
    h = encoder_.Forward(xt, h);
  }
  Variable state = ag::Reshape(h, {batch, n, hidden_dim_});
  // RK4 integration of the graph ODE over [0, 1].
  float dt = 1.0f / static_cast<float>(rk4_steps_);
  for (int64_t s = 0; s < rk4_steps_; ++s) {
    Variable k1 = OdeField(state);
    Variable k2 = OdeField(ag::Add(state, ag::MulScalar(k1, dt / 2)));
    Variable k3 = OdeField(ag::Add(state, ag::MulScalar(k2, dt / 2)));
    Variable k4 = OdeField(ag::Add(state, ag::MulScalar(k3, dt)));
    Variable incr = ag::Add(ag::Add(k1, ag::MulScalar(k2, 2.0f)),
                            ag::Add(ag::MulScalar(k3, 2.0f), k4));
    state = ag::Add(state, ag::MulScalar(incr, dt / 6.0f));
  }
  Variable out = ag::TransposePerm(head_.Forward(state), {0, 2, 1});
  return train::Descale(out, task_.scaler_mean, task_.scaler_std);
}

}  // namespace dyhsl::baselines
