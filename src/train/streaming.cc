#include "src/train/streaming.h"

#include "src/core/check.h"
#include "src/tensor/ops.h"

namespace dyhsl::train {

// Fallback batching: loop the per-session methods. Correct (and
// bit-identical to the sequential path) for every model; models with a
// batch-capable cell override with one stacked step instead.

void RecurrentStreamModel::AdvanceStateBatch(
    const std::vector<StreamState*>& states,
    const tensor::Tensor& frames) const {
  const int64_t b = static_cast<int64_t>(states.size());
  if (b == 0) return;
  DYHSL_CHECK_GE(frames.dim(), 2);
  DYHSL_CHECK_EQ(frames.size(0), b);
  const tensor::Shape frame_shape(frames.shape().begin() + 1,
                                  frames.shape().end());
  const int64_t frame_numel = frames.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    StreamStep(states[i], frames.Alias(i * frame_numel, frame_shape));
  }
}

tensor::Tensor RecurrentStreamModel::ForecastFromStateBatch(
    const std::vector<const StreamState*>& states) const {
  DYHSL_CHECK(!states.empty());
  std::vector<tensor::Tensor> forecasts;
  forecasts.reserve(states.size());
  for (const StreamState* state : states) {
    forecasts.push_back(StreamForecast(*state));
  }
  return tensor::PackBatch(forecasts);
}

}  // namespace dyhsl::train
