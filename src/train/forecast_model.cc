#include "src/train/forecast_model.h"

#include <cmath>

#include "src/autograd/ops.h"
#include "src/core/check.h"
#include "src/tensor/ops.h"

namespace dyhsl::train {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

ForecastTask ForecastTask::FromDataset(const data::TrafficDataset& dataset) {
  ForecastTask task;
  task.num_nodes = dataset.num_nodes();
  task.input_dim = dataset.num_features();
  task.history = dataset.history();
  task.horizon = dataset.horizon();
  task.scaler_mean = dataset.scaler().mean();
  task.scaler_std = dataset.scaler().stddev();
  task.spatial_adj = dataset.network().graph.ToAdjacency();
  task.district_labels = dataset.network().district;
  task.steps_per_day = dataset.traffic().steps_per_day;
  return task;
}

ForecastTask ShardTask(const ForecastTask& global,
                       const graph::ShardSpec& shard) {
  DYHSL_CHECK_EQ(global.spatial_adj.rows(), global.num_nodes);
  ForecastTask task = global;
  task.num_nodes = shard.num_local();
  task.spatial_adj = graph::InducedSubgraph(global.spatial_adj, shard);
  task.district_labels.clear();
  if (!global.district_labels.empty()) {
    task.district_labels.reserve(shard.locals.size());
    for (int64_t g : shard.locals) {
      DYHSL_CHECK_MSG(
          g >= 0 && g < static_cast<int64_t>(global.district_labels.size()),
          "ShardTask: shard local id outside the global task");
      task.district_labels.push_back(global.district_labels[g]);
    }
  }
  return task;
}

ag::Variable MaskedMaeLoss(const ag::Variable& pred,
                           const tensor::Tensor& target,
                           float mask_threshold) {
  DYHSL_CHECK(pred.shape() == target.shape());
  // Constant mask from the target: 1 where |truth| > threshold.
  T::Tensor mask(target.shape());
  double active = 0.0;
  for (int64_t i = 0; i < target.numel(); ++i) {
    bool keep = std::fabs(target.data()[i]) > mask_threshold;
    mask.data()[i] = keep ? 1.0f : 0.0f;
    active += keep;
  }
  if (active < 1.0) active = 1.0;
  ag::Variable masked_err =
      ag::Mul(ag::Abs(ag::Sub(pred, ag::Variable(target))),
              ag::Variable(mask));
  return ag::MulScalar(ag::SumAll(masked_err),
                       1.0f / static_cast<float>(active));
}

ag::Variable Descale(const ag::Variable& scaled, float mean, float stddev) {
  return ag::AddScalar(ag::MulScalar(scaled, stddev), mean);
}

}  // namespace dyhsl::train
