// Training and evaluation harness shared by all neural models.

#ifndef DYHSL_TRAIN_TRAINER_H_
#define DYHSL_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/metrics/metrics.h"
#include "src/train/forecast_model.h"

namespace dyhsl::train {

/// \brief Optimization schedule. Paper defaults: Adam, lr 1e-3, batch 32,
/// 100 epochs; profiles scale epochs/batches down for CPU runs.
struct TrainConfig {
  int64_t epochs = 10;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  int64_t batch_size = 32;
  /// 0 = use every training batch each epoch.
  int64_t max_batches_per_epoch = 0;
  float weight_decay = 0.0f;
  /// Early stopping patience on validation MAE; 0 disables.
  int64_t patience = 0;
  /// Cap on validation batches per epoch (0 = all).
  int64_t max_val_batches = 8;
  uint64_t seed = 99;
  bool verbose = false;
};

/// \brief Outcome of a training run (feeds the Table IV scalability bench).
struct TrainResult {
  int64_t epochs_run = 0;
  double total_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  double final_train_loss = 0.0;
  double best_val_mae = 0.0;
  std::vector<double> epoch_losses;
};

/// \brief Trains `model` on the dataset's training split.
TrainResult TrainModel(ForecastModel* model,
                       const data::TrafficDataset& dataset,
                       const TrainConfig& config);

/// \brief Evaluation outcome over a split.
struct EvalResult {
  metrics::ForecastMetrics overall;
  std::vector<metrics::ForecastMetrics> per_horizon;
  double seconds = 0.0;
  int64_t windows = 0;
};

/// \brief Evaluates `model` over a window range (no gradients kept).
EvalResult EvaluateModel(ForecastModel* model,
                         const data::TrafficDataset& dataset,
                         data::TrafficDataset::SplitRange range,
                         int64_t batch_size, int64_t max_batches = 0);

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_TRAINER_H_
