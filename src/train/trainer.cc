#include "src/train/trainer.h"

#include <chrono>
#include <limits>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/core/logging.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"

namespace dyhsl::train {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

TrainResult TrainModel(ForecastModel* model,
                       const data::TrafficDataset& dataset,
                       const TrainConfig& config) {
  DYHSL_CHECK_GT(config.batch_size, 0);
  DYHSL_CHECK_GE(config.epochs, 0);
  DYHSL_CHECK_GE(config.max_batches_per_epoch, 0);
  optim::Adam optimizer(model->Parameters(), config.learning_rate, 0.9f,
                        0.999f, 1e-8f, config.weight_decay);
  data::BatchIterator train_iter(&dataset, dataset.train_range(),
                                 config.batch_size, /*shuffle=*/true,
                                 config.seed);
  TrainResult result;
  auto run_start = Clock::now();
  double best_val = std::numeric_limits<double>::infinity();
  int64_t bad_epochs = 0;
  // One arena serves every training step: the step's activations, backward
  // temporaries and gradient buffers bump-allocate from it, and Reset()
  // recycles the memory once the step's tape has been dropped — no per-op
  // malloc in the inner loop after warm-up.
  tensor::Workspace workspace;

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    train_iter.Reset();
    data::BatchIterator::Batch batch;
    double loss_sum = 0.0;
    int64_t batches = 0;
    while (train_iter.Next(&batch)) {
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
      {
        tensor::WorkspaceScope scope(&workspace);
        optimizer.ZeroGrad();
        autograd::Variable pred = model->Forward(batch.x, /*training=*/true);
        autograd::Variable loss = MaskedMaeLoss(pred, batch.y);
        loss.Backward();
        optim::ClipGradNorm(optimizer.params(), config.grad_clip);
        optimizer.Step();
        loss_sum += loss.value().data()[0];
      }  // the tape (pred/loss) dies here, releasing its arena memory
      workspace.Reset();
      ++batches;
    }
    double epoch_loss = batches > 0 ? loss_sum / batches : 0.0;
    result.epoch_losses.push_back(epoch_loss);
    result.final_train_loss = epoch_loss;
    ++result.epochs_run;

    if (config.patience > 0) {
      EvalResult val = EvaluateModel(model, dataset, dataset.val_range(),
                                     config.batch_size,
                                     config.max_val_batches);
      if (val.overall.mae < best_val - 1e-6) {
        best_val = val.overall.mae;
        bad_epochs = 0;
      } else {
        ++bad_epochs;
      }
      result.best_val_mae = best_val;
      if (config.verbose) {
        DYHSL_LOG(Info) << model->name() << " epoch " << epoch + 1 << "/"
                        << config.epochs << " loss " << epoch_loss
                        << " val MAE " << val.overall.mae;
      }
      if (bad_epochs >= config.patience) break;
    } else if (config.verbose) {
      DYHSL_LOG(Info) << model->name() << " epoch " << epoch + 1 << "/"
                      << config.epochs << " loss " << epoch_loss;
    }
  }
  result.total_seconds = SecondsSince(run_start);
  result.seconds_per_epoch =
      result.epochs_run > 0 ? result.total_seconds / result.epochs_run : 0.0;
  return result;
}

EvalResult EvaluateModel(ForecastModel* model,
                         const data::TrafficDataset& dataset,
                         data::TrafficDataset::SplitRange range,
                         int64_t batch_size, int64_t max_batches) {
  data::BatchIterator iter(&dataset, range, batch_size, /*shuffle=*/false,
                           /*seed=*/1);
  data::BatchIterator::Batch batch;
  metrics::MetricAccumulator overall;
  std::vector<metrics::MetricAccumulator> horizon(dataset.horizon());
  EvalResult result;
  auto start = std::chrono::steady_clock::now();
  int64_t batches = 0;
  tensor::Workspace workspace;
  while (iter.Next(&batch)) {
    if (max_batches > 0 && batches >= max_batches) break;
    {
      // Grad-free forward: no tape, intermediates recycled immediately.
      tensor::WorkspaceScope scope(&workspace);
      autograd::InferenceModeGuard no_grad;
      autograd::Variable pred = model->Forward(batch.x, /*training=*/false);
      const tensor::Tensor& p = pred.value();
      overall.Add(p, batch.y);
      for (int64_t t = 0; t < dataset.horizon(); ++t) {
        horizon[t].Add(tensor::Slice(p, 1, t, 1),
                       tensor::Slice(batch.y, 1, t, 1));
      }
      result.windows += batch.x.size(0);
    }
    workspace.Reset();
    ++batches;
  }
  result.seconds = SecondsSince(start);
  result.overall = {overall.Mae(), overall.Rmse(), overall.Mape()};
  for (auto& acc : horizon) {
    result.per_horizon.push_back({acc.Mae(), acc.Rmse(), acc.Mape()});
  }
  return result;
}

}  // namespace dyhsl::train
