// Central registry of every model in the Table III comparison, so benches,
// examples and tests construct identical configurations.

#ifndef DYHSL_TRAIN_MODEL_ZOO_H_
#define DYHSL_TRAIN_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/classical.h"
#include "src/train/forecast_model.h"

namespace dyhsl::train {

/// \brief Size knobs shared by all zoo models.
struct ZooConfig {
  int64_t hidden_dim = 32;
  uint64_t seed = 77;
  /// DHGNN only: cache the per-window kNN + k-means hypergraph behind a
  /// drift check instead of rebuilding it every forward (the streaming
  /// structure-refresh path; see baselines::Dhgnn). Off reproduces the
  /// published per-window construction exactly.
  bool dhgnn_structure_reuse = false;
  /// Fraction of drifted nodes tolerated before the DHGNN structure is
  /// rebuilt, in [0, 1].
  float dhgnn_drift_threshold = 0.05f;
};

/// \brief Table III ordering of the classical baselines.
std::vector<std::string> ClassicalModelKeys();

/// \brief Table III ordering of the neural models (baselines then DyHSL).
std::vector<std::string> NeuralModelKeys();

/// \brief Synthetic ForecastTask over a bidirectional ring road of `n`
/// sensors: a dataset-free task with paper-like scaler statistics, used
/// by benches, serving tests and demos that need a model-shaped task
/// without generating traffic data.
ForecastTask RingForecastTask(int64_t n, int64_t history = 12,
                              int64_t horizon = 12);

/// \brief Builds a classical model ("HA", "ARIMA", "VAR", "SVR").
std::unique_ptr<baselines::ClassicalModel> MakeClassicalModel(
    const std::string& key);

/// \brief Builds a neural model by key ("FC-LSTM", "TCN", "TCN(w/o causal)",
/// "GRU-ED", "DSANet", "STGCN", "DCRNN", "GraphWaveNet", "AGCRN", "STSGCN",
/// "HGC-RNN", "DHGNN", "STGODE", "DyHSL"). Aborts on unknown keys.
std::unique_ptr<ForecastModel> MakeNeuralModel(const std::string& key,
                                               const ForecastTask& task,
                                               const ZooConfig& config);

/// \brief Paper Table III reference numbers (MAE, RMSE, MAPE%) for a model
/// key on a dataset name ("SynPEMS03" -> PEMS03 column). Returns false when
/// the paper has no row for the key.
struct PaperRow {
  double mae;
  double rmse;
  double mape;
};
bool PaperTable3Reference(const std::string& model_key,
                          const std::string& dataset_name, PaperRow* row);

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_MODEL_ZOO_H_
