// The common contract between trainable forecasting models (DyHSL and every
// neural baseline) and the training / evaluation / benchmark harnesses.

#ifndef DYHSL_TRAIN_FORECAST_MODEL_H_
#define DYHSL_TRAIN_FORECAST_MODEL_H_

#include <string>
#include <vector>

#include "src/autograd/variable.h"
#include "src/data/dataset.h"
#include "src/graph/shard.h"
#include "src/tensor/sparse.h"

namespace dyhsl::train {

/// \brief Everything a model needs to know about the forecasting task,
/// extracted once from a TrafficDataset.
struct ForecastTask {
  int64_t num_nodes = 0;
  int64_t input_dim = 3;
  int64_t history = 12;   // T
  int64_t horizon = 12;   // T'
  /// Training-set flow statistics; models emit raw flow by applying this
  /// affine de-normalization at the head.
  float scaler_mean = 0.0f;
  float scaler_std = 1.0f;
  /// Weighted road adjacency (N x N, no self loops).
  tensor::CsrMatrix spatial_adj;
  /// Latent district id per node (community hyperedges for the
  /// predefined-hypergraph baselines; DyHSL itself never sees these).
  std::vector<int64_t> district_labels;
  int64_t steps_per_day = 288;

  static ForecastTask FromDataset(const data::TrafficDataset& dataset);
};

/// \brief Shard-scoped view of a global task: num_nodes becomes the
/// shard's owned + halo count, the adjacency becomes the induced subgraph
/// (local ids), and district labels are gathered per local node. Scaler
/// statistics, history/horizon and the feature layout carry over, so any
/// ForecastModel built from the result is a drop-in shard model.
ForecastTask ShardTask(const ForecastTask& global,
                       const graph::ShardSpec& shard);

/// \brief A trainable spatio-temporal forecaster.
///
/// Input x is (B, T, N, F) with the scaled-flow/time features produced by
/// TrafficDataset::MakeInput; output is (B, T', N) in *raw* flow units.
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  virtual autograd::Variable Forward(const tensor::Tensor& x,
                                     bool training) = 0;
  virtual std::vector<autograd::Variable> Parameters() const = 0;
  virtual int64_t ParameterCount() const = 0;
  virtual std::string name() const = 0;
};

/// \brief Masked mean-absolute-error training loss (PEMS convention: target
/// readings of ~0 are sensor dropouts and carry no gradient).
autograd::Variable MaskedMaeLoss(const autograd::Variable& pred,
                                 const tensor::Tensor& target,
                                 float mask_threshold = 1e-3f);

/// \brief De-normalizes a scaled prediction back to raw flow.
autograd::Variable Descale(const autograd::Variable& scaled, float mean,
                           float stddev);

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_FORECAST_MODEL_H_
