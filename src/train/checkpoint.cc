#include "src/train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <vector>

#include "src/graph/shard.h"
#include "src/tensor/prepack.h"

namespace dyhsl::train {
namespace {

constexpr char kMagicV1[4] = {'D', 'Y', 'H', '1'};
constexpr char kMagicV2[4] = {'D', 'Y', 'H', '2'};
constexpr uint8_t kVersionPlain = 2;
constexpr uint8_t kVersionSharded = 3;

// Field sanity bounds: anything beyond these is a corrupt or hostile
// file, not a real checkpoint.
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;
constexpr int64_t kMaxDimSize = int64_t{1} << 40;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

// Reads magic + version (+ shard block for version 3). On success `meta`
// holds the file's shard metadata (unsharded for versions 1 and 2).
Status ReadHeader(std::ifstream& in, const std::string& path,
                  ShardMeta* meta) {
  *meta = ShardMeta();
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good()) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    uint8_t version = 0;
    if (!ReadPod(in, &version)) {
      return Status::IoError("truncated checkpoint header: " + path);
    }
    if (version != kVersionPlain && version != kVersionSharded) {
      return Status::InvalidArgument(
          "unsupported checkpoint format version " +
          std::to_string(static_cast<int>(version)) + " in " + path);
    }
    if (version == kVersionSharded) {
      int64_t fields[6];
      for (int64_t& f : fields) {
        if (!ReadPod(in, &f)) {
          return Status::IoError("truncated shard metadata in " + path);
        }
      }
      meta->shard_id = fields[0];
      meta->num_shards = fields[1];
      meta->global_begin = fields[2];
      meta->global_end = fields[3];
      meta->halo_count = fields[4];
      meta->total_nodes = fields[5];
      if (!meta->Consistent()) {
        return Status::InvalidArgument("corrupt shard metadata in " + path);
      }
    }
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    // DYH1 files (no version byte, never sharded) stay readable; anything
    // else is not a checkpoint at all.
    return Status::InvalidArgument("not a DyHSL checkpoint: " + path);
  }
  return Status::OK();
}

}  // namespace

ShardMeta ShardMeta::FromPlan(const graph::ShardPlan& plan, int64_t s) {
  const graph::ShardSpec& shard = plan.shard(s);
  ShardMeta meta;
  meta.shard_id = shard.shard_id;
  meta.num_shards = plan.num_shards();
  meta.global_begin = shard.begin;
  meta.global_end = shard.end;
  meta.halo_count = shard.halo_count();
  meta.total_nodes = plan.num_nodes();
  return meta;
}

bool ShardMeta::Matches(const graph::ShardPlan& plan, int64_t s) const {
  if (s < 0 || s >= plan.num_shards()) return false;
  const graph::ShardSpec& shard = plan.shard(s);
  return shard_id == shard.shard_id && num_shards == plan.num_shards() &&
         global_begin == shard.begin && global_end == shard.end &&
         halo_count == shard.halo_count() &&
         total_nodes == plan.num_nodes();
}

Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                      const ShardMeta& meta) {
  if (meta.sharded() && !meta.Consistent()) {
    return Status::InvalidArgument("inconsistent ShardMeta for " + path);
  }
  auto named = module.NamedParameters();
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagicV2, sizeof(kMagicV2));
  WritePod<uint8_t>(out, meta.sharded() ? kVersionSharded : kVersionPlain);
  if (meta.sharded()) {
    WritePod<int64_t>(out, meta.shard_id);
    WritePod<int64_t>(out, meta.num_shards);
    WritePod<int64_t>(out, meta.global_begin);
    WritePod<int64_t>(out, meta.global_end);
    WritePod<int64_t>(out, meta.halo_count);
    WritePod<int64_t>(out, meta.total_nodes);
  }
  WritePod<uint64_t>(out, named.size());
  for (const auto& [name, param] : named) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const tensor::Tensor& value = param.value();
    WritePod<uint32_t>(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      WritePod<int64_t>(out, value.size(d));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(nn::Module* module, const std::string& path,
                      ShardMeta* meta) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  ShardMeta file_meta;
  DYHSL_RETURN_NOT_OK(ReadHeader(in, path, &file_meta));
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }

  auto named = module->NamedParameters();
  std::map<std::string, autograd::Variable*> by_name;
  for (auto& [name, param] : named) by_name[name] = &param;
  if (count != named.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(named.size()));
  }

  // Stage every record first and commit only after the whole file has
  // validated: a truncated or corrupt checkpoint must never leave the
  // module half-overwritten (it may be live in a serving engine).
  std::vector<std::pair<autograd::Variable*, tensor::Tensor>> staged;
  staged.reserve(count);
  std::set<std::string> seen;
  for (uint64_t p = 0; p < count; ++p) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IoError("truncated parameter record in " + path);
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::InvalidArgument(
          "corrupt parameter name length " + std::to_string(name_len) +
          " in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in.good()) {
      return Status::IoError("truncated parameter name in " + path);
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) {
      return Status::IoError("truncated parameter record in " + path);
    }
    if (rank > kMaxRank) {
      return Status::InvalidArgument("corrupt parameter rank " +
                                     std::to_string(rank) + " in " + path);
    }
    tensor::Shape shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d])) {
        return Status::IoError("truncated shape in " + path);
      }
      if (shape[d] <= 0 || shape[d] > kMaxDimSize ||
          numel > kMaxDimSize / shape[d]) {
        return Status::InvalidArgument("corrupt shape in " + path);
      }
      numel *= shape[d];
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter '" + name +
                                     "' in " + path);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter '" + name + "' not in module");
    }
    autograd::Variable* target = it->second;
    if (target->shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " +
          tensor::ShapeToString(shape) + " vs module " +
          tensor::ShapeToString(target->shape()));
    }
    tensor::Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in.good() || in.gcount() !=
                          static_cast<std::streamsize>(numel * sizeof(float))) {
      return Status::IoError("truncated data for '" + name + "'");
    }
    staged.emplace_back(target, std::move(value));
  }
  // A well-formed checkpoint ends exactly after the last record.
  in.peek();
  if (!in.eof()) {
    return Status::InvalidArgument("trailing bytes after last parameter in " +
                                   path);
  }
  for (auto& [target, value] : staged) {
    target->mutable_value()->CopyDataFrom(value);
    // Parameter storage was just overwritten in place: drop any prepacked
    // panels keyed on it so a serving engine never multiplies stale weights.
    tensor::PrepackCache::Instance().Invalidate(target->value().data());
  }
  if (meta != nullptr) *meta = file_meta;
  return Status::OK();
}

Status ReadCheckpointShardMeta(const std::string& path, ShardMeta* meta) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadHeader(in, path, meta);
}

std::string ShardCheckpointSet::ShardPath(const std::string& prefix,
                                          int64_t shard_id) {
  return prefix + ".shard" + std::to_string(shard_id) + ".ckpt";
}

Status ShardCheckpointSet::Save(const graph::ShardPlan& plan,
                                const std::vector<const nn::Module*>& modules,
                                const std::string& prefix) {
  if (static_cast<int64_t>(modules.size()) != plan.num_shards()) {
    return Status::InvalidArgument(
        "ShardCheckpointSet::Save needs one module per shard (" +
        std::to_string(modules.size()) + " given, " +
        std::to_string(plan.num_shards()) + " shards)");
  }
  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    if (modules[s] == nullptr) {
      return Status::InvalidArgument("ShardCheckpointSet::Save: null module");
    }
    DYHSL_RETURN_NOT_OK(SaveCheckpoint(*modules[s], ShardPath(prefix, s),
                                       ShardMeta::FromPlan(plan, s)));
  }
  return Status::OK();
}

Status ShardCheckpointSet::Save(const graph::ShardPlan& plan,
                                const nn::Module& module,
                                const std::string& prefix) {
  std::vector<const nn::Module*> modules(plan.num_shards(), &module);
  return Save(plan, modules, prefix);
}

Result<std::vector<ShardMeta>> ShardCheckpointSet::Validate(
    const std::string& prefix, const graph::ShardPlan& plan) {
  std::vector<ShardMeta> metas;
  metas.reserve(plan.num_shards());
  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    const std::string path = ShardPath(prefix, s);
    ShardMeta meta;
    DYHSL_RETURN_NOT_OK(ReadCheckpointShardMeta(path, &meta));
    if (!meta.sharded()) {
      return Status::InvalidArgument("checkpoint " + path +
                                     " carries no shard metadata");
    }
    if (!meta.Matches(plan, s)) {
      return Status::InvalidArgument(
          "checkpoint " + path + " (shard " + std::to_string(meta.shard_id) +
          "/" + std::to_string(meta.num_shards) + ", sensors [" +
          std::to_string(meta.global_begin) + ", " +
          std::to_string(meta.global_end) + ") of " +
          std::to_string(meta.total_nodes) + ", halo " +
          std::to_string(meta.halo_count) +
          ") does not match shard " + std::to_string(s) + " of the plan");
    }
    metas.push_back(meta);
  }
  return metas;
}

}  // namespace dyhsl::train
