#include "src/train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <vector>

namespace dyhsl::train {
namespace {

constexpr char kMagicV1[4] = {'D', 'Y', 'H', '1'};
constexpr char kMagicV2[4] = {'D', 'Y', 'H', '2'};
constexpr uint8_t kFormatVersion = 2;

// Field sanity bounds: anything beyond these is a corrupt or hostile
// file, not a real checkpoint.
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;
constexpr int64_t kMaxDimSize = int64_t{1} << 40;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path) {
  auto named = module.NamedParameters();
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagicV2, sizeof(kMagicV2));
  WritePod<uint8_t>(out, kFormatVersion);
  WritePod<uint64_t>(out, named.size());
  for (const auto& [name, param] : named) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const tensor::Tensor& value = param.value();
    WritePod<uint32_t>(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      WritePod<int64_t>(out, value.size(d));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good()) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    uint8_t version = 0;
    if (!ReadPod(in, &version)) {
      return Status::IoError("truncated checkpoint header: " + path);
    }
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          "unsupported checkpoint format version " +
          std::to_string(static_cast<int>(version)) + " in " + path);
    }
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    // DYH1 files (no version byte) stay readable; anything else is not a
    // checkpoint at all.
    return Status::InvalidArgument("not a DyHSL checkpoint: " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }

  auto named = module->NamedParameters();
  std::map<std::string, autograd::Variable*> by_name;
  for (auto& [name, param] : named) by_name[name] = &param;
  if (count != named.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(named.size()));
  }

  // Stage every record first and commit only after the whole file has
  // validated: a truncated or corrupt checkpoint must never leave the
  // module half-overwritten (it may be live in a serving engine).
  std::vector<std::pair<autograd::Variable*, tensor::Tensor>> staged;
  staged.reserve(count);
  std::set<std::string> seen;
  for (uint64_t p = 0; p < count; ++p) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IoError("truncated parameter record in " + path);
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::InvalidArgument(
          "corrupt parameter name length " + std::to_string(name_len) +
          " in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in.good()) {
      return Status::IoError("truncated parameter name in " + path);
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) {
      return Status::IoError("truncated parameter record in " + path);
    }
    if (rank > kMaxRank) {
      return Status::InvalidArgument("corrupt parameter rank " +
                                     std::to_string(rank) + " in " + path);
    }
    tensor::Shape shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d])) {
        return Status::IoError("truncated shape in " + path);
      }
      if (shape[d] <= 0 || shape[d] > kMaxDimSize ||
          numel > kMaxDimSize / shape[d]) {
        return Status::InvalidArgument("corrupt shape in " + path);
      }
      numel *= shape[d];
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter '" + name +
                                     "' in " + path);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter '" + name + "' not in module");
    }
    autograd::Variable* target = it->second;
    if (target->shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " +
          tensor::ShapeToString(shape) + " vs module " +
          tensor::ShapeToString(target->shape()));
    }
    tensor::Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in.good() || in.gcount() !=
                          static_cast<std::streamsize>(numel * sizeof(float))) {
      return Status::IoError("truncated data for '" + name + "'");
    }
    staged.emplace_back(target, std::move(value));
  }
  // A well-formed checkpoint ends exactly after the last record.
  in.peek();
  if (!in.eof()) {
    return Status::InvalidArgument("trailing bytes after last parameter in " +
                                   path);
  }
  for (auto& [target, value] : staged) {
    target->mutable_value()->CopyDataFrom(value);
  }
  return Status::OK();
}

}  // namespace dyhsl::train
