#include "src/train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

namespace dyhsl::train {
namespace {

constexpr char kMagic[4] = {'D', 'Y', 'H', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path) {
  auto named = module.NamedParameters();
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(out, named.size());
  for (const auto& [name, param] : named) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const tensor::Tensor& value = param.value();
    WritePod<uint32_t>(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      WritePod<int64_t>(out, value.size(d));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a DyHSL checkpoint: " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }

  auto named = module->NamedParameters();
  std::map<std::string, autograd::Variable*> by_name;
  for (auto& [name, param] : named) by_name[name] = &param;
  if (count != named.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(named.size()));
  }

  for (uint64_t p = 0; p < count; ++p) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::IoError("corrupt parameter name in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in.good() || !ReadPod(in, &rank) || rank > 8) {
      return Status::IoError("corrupt parameter record in " + path);
    }
    tensor::Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d])) {
        return Status::IoError("corrupt shape in " + path);
      }
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter '" + name + "' not in module");
    }
    autograd::Variable* target = it->second;
    if (target->shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " +
          tensor::ShapeToString(shape) + " vs module " +
          tensor::ShapeToString(target->shape()));
    }
    in.read(reinterpret_cast<char*>(target->mutable_value()->data()),
            static_cast<std::streamsize>(
                tensor::NumElements(shape) * sizeof(float)));
    if (!in.good()) {
      return Status::IoError("truncated data for '" + name + "'");
    }
  }
  return Status::OK();
}

}  // namespace dyhsl::train
