// Model checkpointing: save / restore the parameters of any nn::Module
// (by name) so trained forecasters can be shipped and reloaded.
//
// Format (binary, little-endian host order):
//   magic "DYH2" | uint8 version (2 or 3)
//   [version 3 only] shard metadata block: int64 x 6
//       (shard_id, num_shards, global_begin, global_end, halo_count,
//        total_nodes)
//   uint64 parameter count P
//   P x [ uint32 name_len | name bytes | uint32 rank | int64 dims... |
//         float data... ]
// Version 2 is what unsharded checkpoints still write, byte-identical to
// before; version 3 adds the optional shard block. Legacy "DYH1" files
// (identical record layout, no version byte) remain readable. Loading
// matches by name and validates shapes; extra, missing or duplicate
// names, truncated records, corrupt length/rank fields and trailing
// bytes are all reported through Status — and the load is transactional,
// so a failed load never leaves the module half-overwritten.

#ifndef DYHSL_TRAIN_CHECKPOINT_H_
#define DYHSL_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/nn/module.h"

namespace dyhsl::graph {
class ShardPlan;
}  // namespace dyhsl::graph

namespace dyhsl::train {

/// \brief Optional shard metadata carried by a DYH2 (version 3)
/// checkpoint: which slice of the global sensor space the stored
/// parameters were trained to serve. A default-constructed ShardMeta
/// (shard_id == -1) means "unsharded".
struct ShardMeta {
  int64_t shard_id = -1;
  int64_t num_shards = 0;
  /// Owned global sensor range [global_begin, global_end).
  int64_t global_begin = 0;
  int64_t global_end = 0;
  /// Halo nodes carried beyond the owned range.
  int64_t halo_count = 0;
  /// Global sensor count of the partitioned network.
  int64_t total_nodes = 0;

  bool sharded() const { return shard_id >= 0; }

  /// \brief Internal consistency of a sharded meta: fields within sane
  /// magnitude bounds (these arrive from untrusted files), shard_id
  /// within num_shards, a non-empty owned range inside [0, total_nodes),
  /// and owned + halo not exceeding the network. Shared by the save-side
  /// and load-side validation so the two can never drift apart.
  bool Consistent() const {
    // Same magnitude cap as checkpoint tensor dims; bounding every field
    // first keeps the range arithmetic below overflow-free.
    constexpr int64_t kMaxField = int64_t{1} << 40;
    if (num_shards > kMaxField || total_nodes > kMaxField ||
        global_end > kMaxField || halo_count > kMaxField) {
      return false;
    }
    return shard_id >= 0 && shard_id < num_shards && global_begin >= 0 &&
           global_begin < global_end && global_end <= total_nodes &&
           halo_count >= 0 &&
           (global_end - global_begin) + halo_count <= total_nodes;
  }

  /// \brief Metadata for shard `s` of a plan.
  static ShardMeta FromPlan(const graph::ShardPlan& plan, int64_t s);

  /// \brief True when every field matches shard `s` of `plan`.
  bool Matches(const graph::ShardPlan& plan, int64_t s) const;
};

/// \brief Writes all named parameters of `module` to `path`. With a
/// sharded `meta` the file carries the shard block (format version 3);
/// otherwise the format is the unchanged version 2.
Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                      const ShardMeta& meta = ShardMeta());

/// \brief Restores parameters into `module` (matched by name; shapes must
/// agree; the file must contain exactly the module's parameter set).
/// When `meta` is non-null it receives the file's shard metadata — an
/// unsharded ShardMeta for version-1/2 files.
Status LoadCheckpoint(nn::Module* module, const std::string& path,
                      ShardMeta* meta = nullptr);

/// \brief Reads only the shard metadata of a checkpoint (header bytes,
/// no parameter payload). Version-1/2 files yield an unsharded ShardMeta.
Status ReadCheckpointShardMeta(const std::string& path, ShardMeta* meta);

/// \brief A consistent family of per-shard checkpoints under one path
/// prefix ("<prefix>.shard<k>.ckpt"), the unit the serving router loads a
/// sharded model from.
class ShardCheckpointSet {
 public:
  /// \brief File path of shard `shard_id` under `prefix`.
  static std::string ShardPath(const std::string& prefix, int64_t shard_id);

  /// \brief Writes one checkpoint per shard of `plan`, each stamped with
  /// its ShardMeta. `modules` holds the shard-scoped module of every
  /// shard, in shard order.
  static Status Save(const graph::ShardPlan& plan,
                     const std::vector<const nn::Module*>& modules,
                     const std::string& prefix);

  /// \brief Convenience for models whose parameter shapes are independent
  /// of the node count (so one globally trained module serves every
  /// shard): writes the same parameter payload for each shard, with
  /// per-shard metadata.
  static Status Save(const graph::ShardPlan& plan, const nn::Module& module,
                     const std::string& prefix);

  /// \brief Validates that the family under `prefix` is complete and
  /// consistent with `plan` — every shard file present, each stamped with
  /// metadata matching the plan's ranges, halos and totals — and returns
  /// the per-shard metadata. Any mismatch (missing file, unsharded or
  /// foreign metadata) fails without partial results.
  static Result<std::vector<ShardMeta>> Validate(const std::string& prefix,
                                                 const graph::ShardPlan& plan);
};

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_CHECKPOINT_H_
