// Model checkpointing: save / restore the parameters of any nn::Module
// (by name) so trained forecasters can be shipped and reloaded.
//
// Format (binary, little-endian host order):
//   magic "DYH1"
//   uint64 parameter count P
//   P x [ uint32 name_len | name bytes | uint32 rank | int64 dims... |
//         float data... ]
// Loading matches by name and validates shapes; extra or missing names are
// reported through Status so architecture drift is caught explicitly.

#ifndef DYHSL_TRAIN_CHECKPOINT_H_
#define DYHSL_TRAIN_CHECKPOINT_H_

#include <string>

#include "src/core/status.h"
#include "src/nn/module.h"

namespace dyhsl::train {

/// \brief Writes all named parameters of `module` to `path`.
Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// \brief Restores parameters into `module` (matched by name; shapes must
/// agree; the file must contain exactly the module's parameter set).
Status LoadCheckpoint(nn::Module* module, const std::string& path);

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_CHECKPOINT_H_
