// Model checkpointing: save / restore the parameters of any nn::Module
// (by name) so trained forecasters can be shipped and reloaded.
//
// Format (binary, little-endian host order):
//   magic "DYH2" | uint8 version (= 2)
//   uint64 parameter count P
//   P x [ uint32 name_len | name bytes | uint32 rank | int64 dims... |
//         float data... ]
// Legacy "DYH1" files (identical layout, no version byte) remain
// readable. Loading matches by name and validates shapes; extra,
// missing or duplicate names, truncated records, corrupt length/rank
// fields and trailing bytes are all reported through Status — and the
// load is transactional, so a failed load never leaves the module
// half-overwritten.

#ifndef DYHSL_TRAIN_CHECKPOINT_H_
#define DYHSL_TRAIN_CHECKPOINT_H_

#include <string>

#include "src/core/status.h"
#include "src/nn/module.h"

namespace dyhsl::train {

/// \brief Writes all named parameters of `module` to `path`.
Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// \brief Restores parameters into `module` (matched by name; shapes must
/// agree; the file must contain exactly the module's parameter set).
Status LoadCheckpoint(nn::Module* module, const std::string& path);

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_CHECKPOINT_H_
