// Capability interface for warm recurrent-state streaming.
//
// Window models recompute their forecast from the full (T, N, F) history
// every request. Recurrent encoder-decoder models (DCRNN-style) can do
// strictly better under a tick stream: carry the encoder hidden state
// across ticks, advance it one cell step per Append, and serve a
// forecast by running only the T'-step decoder — skipping the T-step
// encoder replay entirely. A model opts in by additionally deriving from
// RecurrentStreamModel; serve::SessionManager detects the capability
// with a dynamic_cast and routes warm-state sessions through it.
//
// Exactness contract (asserted in stream_test):
//  * StreamStep applied to every tick since the session opened is
//    bit-identical to a cold Forward over the same full stream — the
//    carry IS the encoder, not an approximation of it.
//  * Relative to the *windowed* reference (a cold Forward over only the
//    last T ticks), carried state is drift-bounded: it remembers ticks
//    the window has forgotten. ResyncState rebuilds the state from a
//    window, after which the next forecast is bit-identical to the
//    windowed reference; SessionOptions::resync_every sets the cadence.

#ifndef DYHSL_TRAIN_STREAMING_H_
#define DYHSL_TRAIN_STREAMING_H_

#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::train {

/// \brief Opaque per-session recurrent state. Created, advanced and read
/// only by the model that owns the derived type; sessions just hold it.
class StreamState {
 public:
  virtual ~StreamState() = default;
};

/// \brief Implemented by models whose forecast decomposes into a
/// per-tick encoder step plus a window-free decoder rollout.
///
/// All methods are const (the model is shared read-only across sessions
/// and engine workers); the mutable part is the StreamState. State
/// tensors are heap-backed by contract, so states survive the per-step
/// Workspace resets of whatever arena the calling thread has installed.
class RecurrentStreamModel {
 public:
  virtual ~RecurrentStreamModel() = default;

  /// \brief A fresh state, equal to the encoder state before any input
  /// (zero hidden state, no decoder seed).
  virtual std::unique_ptr<StreamState> MakeStreamState() const = 0;

  /// \brief Advances the encoder by one tick. `frame` is (N, F) in the
  /// MakeInput feature layout (scaled flow, time-of-day, day-of-week).
  virtual void StreamStep(StreamState* state,
                          const tensor::Tensor& frame) const = 0;

  /// \brief Rebuilds the state by cold-replaying a full (T, N, F)
  /// window from zeros — afterwards the state matches what Forward's
  /// encoder would hold, bit-identically.
  virtual void ResyncState(StreamState* state,
                           const tensor::Tensor& window) const = 0;

  /// \brief Decoder-only rollout from the current state: raw-flow
  /// forecast (T', N). Does not advance or mutate `state` (each call
  /// rolls a private copy of the hidden state).
  virtual tensor::Tensor StreamForecast(const StreamState& state) const = 0;

  /// \name Cross-session batching
  ///
  /// The batched forms amortize one cell step / decoder rollout across B
  /// sessions that are ready at the same tick. The base implementations
  /// loop the per-session methods (so every RecurrentStreamModel batches
  /// correctly out of the box); models with a batch-capable cell (DCRNN)
  /// override them to stack per-session state into (B, N, d) and run one
  /// batched step. Contract: per-session results equal the sequential
  /// methods — bit-identically at B == 1, and within 1e-5 for B > 1
  /// (the stacked kernels process each batch item with the same
  /// accumulation order, so overrides are typically bit-identical too).
  /// @{

  /// \brief Advances states[i] by one tick using frames slice i, where
  /// `frames` is the (B, frame_shape...) stack of per-session frames.
  virtual void AdvanceStateBatch(const std::vector<StreamState*>& states,
                                 const tensor::Tensor& frames) const;

  /// \brief Decoder-only rollout for every state: stacked raw-flow
  /// forecasts (B, T', N). Mutates no state. The result is allocated
  /// through the caller's current allocation path (arena inside a
  /// WorkspaceScope) — copy it out before any reset.
  virtual tensor::Tensor ForecastFromStateBatch(
      const std::vector<const StreamState*>& states) const;
  /// @}
};

}  // namespace dyhsl::train

#endif  // DYHSL_TRAIN_STREAMING_H_
