#include "src/train/model_zoo.h"

#include <array>
#include <map>
#include <utility>
#include <vector>

#include "src/baselines/gnn_models.h"
#include "src/baselines/seq_models.h"
#include "src/core/check.h"
#include "src/models/dyhsl.h"

namespace dyhsl::train {

ForecastTask RingForecastTask(int64_t n, int64_t history, int64_t horizon) {
  std::vector<tensor::Triplet> edges;
  edges.reserve(2 * n);
  for (int64_t i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, 1.0f});
    edges.push_back({(i + 1) % n, i, 1.0f});
  }
  ForecastTask task;
  task.num_nodes = n;
  task.input_dim = 3;
  task.history = history;
  task.horizon = horizon;
  task.scaler_mean = 200.0f;
  task.scaler_std = 80.0f;
  task.spatial_adj = tensor::CsrMatrix::FromTriplets(n, n, std::move(edges));
  task.district_labels.resize(n);
  for (int64_t i = 0; i < n; ++i) task.district_labels[i] = i % 4;
  return task;
}

std::vector<std::string> ClassicalModelKeys() {
  return {"HA", "ARIMA", "VAR", "SVR"};
}

std::vector<std::string> NeuralModelKeys() {
  return {"FC-LSTM", "TCN",    "TCN(w/o causal)", "GRU-ED", "DSANet",
          "STGCN",   "DCRNN",  "GraphWaveNet",    "AGCRN",  "STSGCN",
          "HGC-RNN", "DHGNN",  "STGODE",          "DyHSL"};
}

std::unique_ptr<baselines::ClassicalModel> MakeClassicalModel(
    const std::string& key) {
  if (key == "HA") return std::make_unique<baselines::HistoricalAverage>();
  if (key == "ARIMA") return std::make_unique<baselines::Arima>();
  if (key == "VAR") return std::make_unique<baselines::Var>();
  if (key == "SVR") return std::make_unique<baselines::LinearSvr>();
  DYHSL_CHECK_MSG(false, "unknown classical model: " + key);
  return nullptr;
}

std::unique_ptr<ForecastModel> MakeNeuralModel(const std::string& key,
                                               const ForecastTask& task,
                                               const ZooConfig& config) {
  int64_t d = config.hidden_dim;
  uint64_t seed = config.seed;
  if (key == "FC-LSTM") {
    return std::make_unique<baselines::FcLstm>(task, d, seed);
  }
  if (key == "TCN") {
    return std::make_unique<baselines::Tcn>(task, d, /*levels=*/3,
                                            /*causal=*/true, seed);
  }
  if (key == "TCN(w/o causal)") {
    return std::make_unique<baselines::Tcn>(task, d, /*levels=*/3,
                                            /*causal=*/false, seed);
  }
  if (key == "GRU-ED") {
    return std::make_unique<baselines::GruEd>(task, d, seed);
  }
  if (key == "DSANet") {
    return std::make_unique<baselines::DsaNet>(task, d, seed);
  }
  if (key == "STGCN") {
    return std::make_unique<baselines::Stgcn>(task, d, seed);
  }
  if (key == "DCRNN") {
    return std::make_unique<baselines::Dcrnn>(task, d, /*diffusion=*/2,
                                              seed);
  }
  if (key == "GraphWaveNet") {
    return std::make_unique<baselines::GraphWaveNet>(task, d, /*layers=*/3,
                                                     seed);
  }
  if (key == "AGCRN") {
    return std::make_unique<baselines::Agcrn>(task, d, /*embed=*/8, seed);
  }
  if (key == "STSGCN") {
    return std::make_unique<baselines::Stsgcn>(task, d, seed);
  }
  if (key == "HGC-RNN") {
    return std::make_unique<baselines::HgcRnn>(task, d, seed);
  }
  if (key == "DHGNN") {
    return std::make_unique<baselines::Dhgnn>(task, d, /*clusters=*/8,
                                              /*knn=*/4, seed,
                                              config.dhgnn_structure_reuse,
                                              config.dhgnn_drift_threshold);
  }
  if (key == "STGODE") {
    return std::make_unique<baselines::StgOde>(task, d, /*rk4_steps=*/3,
                                               seed);
  }
  if (key == "DyHSL") {
    models::DyHslConfig cfg;
    cfg.hidden_dim = d;
    cfg.prior_layers = 3;
    cfg.mhce_layers = 2;
    cfg.num_hyperedges = 16;
    cfg.window_sizes = {1, 2, 3, 4, 6, 12};
    cfg.seed = seed;
    return std::make_unique<models::DyHsl>(task, cfg);
  }
  DYHSL_CHECK_MSG(false, "unknown neural model: " + key);
  return nullptr;
}

bool PaperTable3Reference(const std::string& model_key,
                          const std::string& dataset_name, PaperRow* row) {
  // Rows of paper Table III, keyed by model, columns PEMS03/04/07/08.
  static const std::map<std::string, std::array<PaperRow, 4>> kTable = {
      {"HA", {{{31.58, 52.39, 33.78}, {38.03, 59.24, 27.88},
               {45.12, 65.64, 24.51}, {34.86, 59.24, 27.88}}}},
      {"ARIMA", {{{35.41, 47.59, 33.78}, {33.73, 48.80, 24.18},
                  {38.17, 59.27, 19.46}, {31.09, 44.32, 22.73}}}},
      {"VAR", {{{23.65, 38.26, 24.51}, {24.54, 38.61, 17.24},
                {50.22, 75.63, 32.22}, {19.19, 29.81, 13.10}}}},
      {"SVR", {{{21.97, 35.29, 21.51}, {28.70, 44.56, 19.20},
                {32.49, 50.22, 14.26}, {23.25, 36.16, 14.64}}}},
      {"FC-LSTM", {{{21.33, 35.11, 23.33}, {26.77, 40.65, 18.23},
                    {29.98, 45.94, 13.20}, {23.09, 35.17, 14.99}}}},
      {"TCN", {{{19.32, 33.55, 19.93}, {23.22, 37.26, 15.59},
                {32.72, 42.23, 14.26}, {22.72, 35.79, 14.03}}}},
      {"TCN(w/o causal)", {{{18.87, 32.24, 18.63}, {22.81, 36.87, 14.31},
                            {30.53, 41.02, 13.88}, {21.42, 34.03, 13.09}}}},
      {"GRU-ED", {{{19.12, 32.85, 19.31}, {23.68, 39.27, 16.44},
                   {27.66, 43.49, 12.20}, {22.00, 36.22, 13.33}}}},
      {"DSANet", {{{21.29, 34.55, 23.21}, {22.79, 35.77, 16.03},
                   {31.36, 49.11, 14.43}, {17.14, 26.96, 11.32}}}},
      {"STGCN", {{{17.55, 30.42, 17.34}, {21.16, 34.89, 13.83},
                  {25.33, 39.34, 11.21}, {17.50, 27.09, 11.29}}}},
      {"DCRNN", {{{17.99, 30.31, 18.34}, {21.22, 33.44, 14.17},
                  {25.22, 38.61, 11.82}, {16.82, 26.36, 10.92}}}},
      {"GraphWaveNet", {{{19.12, 32.77, 18.89}, {24.89, 39.66, 17.29},
                         {26.39, 41.50, 11.97}, {18.28, 30.05, 12.15}}}},
      {"DHGNN", {{{16.99, 28.16, 17.02}, {20.96, 32.64, 14.55},
                  {22.73, 35.67, 10.27}, {18.10, 28.53, 10.82}}}},
      {"STSGCN", {{{17.48, 29.21, 16.78}, {21.19, 33.65, 13.90},
                   {24.26, 39.03, 10.21}, {17.13, 26.80, 10.96}}}},
      {"AGCRN", {{{15.98, 28.25, 15.23}, {19.83, 32.26, 12.97},
                  {22.37, 36.55, 9.12}, {15.95, 25.22, 10.09}}}},
      {"HGC-RNN", {{{17.04, 28.17, 17.99}, {20.39, 32.42, 13.58},
                    {22.40, 35.37, 9.69}, {16.28, 25.60, 10.68}}}},
      {"STGODE", {{{16.50, 27.84, 16.69}, {20.84, 32.82, 13.77},
                   {22.59, 37.54, 10.14}, {16.81, 25.97, 10.62}}}},
      {"DyHSL", {{{15.49, 27.06, 14.38}, {17.66, 29.46, 12.42},
                  {18.84, 31.65, 8.11}, {14.01, 22.91, 8.60}}}},
  };
  auto it = kTable.find(model_key);
  if (it == kTable.end()) return false;
  int col = -1;
  if (dataset_name == "SynPEMS03" || dataset_name == "PEMS03") col = 0;
  if (dataset_name == "SynPEMS04" || dataset_name == "PEMS04") col = 1;
  if (dataset_name == "SynPEMS07" || dataset_name == "PEMS07") col = 2;
  if (dataset_name == "SynPEMS08" || dataset_name == "PEMS08") col = 3;
  if (col < 0) return false;
  *row = it->second[col];
  return true;
}

}  // namespace dyhsl::train
