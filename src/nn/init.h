// Weight initialization schemes.

#ifndef DYHSL_NN_INIT_H_
#define DYHSL_NN_INIT_H_

#include "src/core/rng.h"
#include "src/tensor/tensor.h"

namespace dyhsl::nn {

/// \brief Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in+fan_out)).
tensor::Tensor GlorotUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng* rng);

/// \brief Glorot for a 2-D weight, fans inferred from the shape.
tensor::Tensor GlorotUniform2D(int64_t fan_in, int64_t fan_out, Rng* rng);

/// \brief Kaiming/He normal for ReLU nets: N(0, sqrt(2 / fan_in)).
tensor::Tensor KaimingNormal(tensor::Shape shape, int64_t fan_in, Rng* rng);

}  // namespace dyhsl::nn

#endif  // DYHSL_NN_INIT_H_
