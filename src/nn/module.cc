#include "src/nn/module.h"

#include "src/core/check.h"

namespace dyhsl::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, param] : params_) out.push_back(param);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, param] : params_) out.emplace_back(name, param);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, param] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, param);
    }
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const autograd::Variable& p : Parameters()) count += p.numel();
  return count;
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterChild(std::string name, Module* child) {
  DYHSL_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace dyhsl::nn
