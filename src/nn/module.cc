#include "src/nn/module.h"

#include "src/core/check.h"

namespace dyhsl::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, param] : params_) out.push_back(param);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, param] : params_) out.emplace_back(name, param);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, param] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, param);
    }
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedConstants() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, constant] : constants_) out.emplace_back(name, constant);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, constant] : child->NamedConstants()) {
      out.emplace_back(child_name + "." + name, constant);
    }
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const autograd::Variable& p : Parameters()) count += p.numel();
  return count;
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

autograd::Variable Module::RegisterConstant(std::string name,
                                            tensor::Tensor init) {
  autograd::Variable constant(std::move(init), /*requires_grad=*/false);
  constants_.emplace_back(std::move(name), constant);
  return constant;
}

void Module::RegisterChild(std::string name, Module* child) {
  DYHSL_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace dyhsl::nn
