#include "src/nn/layers.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"

namespace dyhsl::nn {

namespace ag = ::dyhsl::autograd;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", GlorotUniform2D(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
  }
}

Variable Linear::Forward(const Variable& x) const {
  DYHSL_CHECK_EQ(x.size(-1), in_features_);
  // Fold every leading axis into rows, multiply, restore.
  tensor::Shape out_shape = x.shape();
  out_shape.back() = out_features_;
  Variable x2 = x.dim() == 2 ? x : ag::Reshape(x, {-1, in_features_});
  Variable y = bias_.defined() ? ag::Affine(x2, weight_, bias_)
                               : ag::MatMul(x2, weight_);
  if (x.dim() != 2) y = ag::Reshape(y, std::move(out_shape));
  return y;
}

Embedding::Embedding(int64_t count, int64_t dim, Rng* rng) {
  weight_ = RegisterParameter(
      "weight", tensor::Tensor::Randn({count, dim}, rng, 0.1f));
}

Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ag::EmbeddingLookup(weight_, indices);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", tensor::Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", tensor::Tensor::Zeros({dim}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  // Fully fused kernel: one pass per row (see tensor::LayerNormLastAxisInto)
  // and a single tape node with the analytic VJP.
  return ag::LayerNormLastAxis(x, gamma_, beta_, eps_);
}

Variable LayerNorm::Forward(Variable&& x) const {
  return ag::LayerNormLastAxis(std::move(x), gamma_, beta_, eps_);
}

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      x_gates_(input_dim, 3 * hidden_dim, rng, /*bias=*/true),
      h_gates_(hidden_dim, 3 * hidden_dim, rng, /*bias=*/false) {
  RegisterChild("x_gates", &x_gates_);
  RegisterChild("h_gates", &h_gates_);
}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  Variable gx = x_gates_.Forward(x);  // (B, 3d)
  Variable gh = h_gates_.Forward(h);
  int64_t d = hidden_dim_;
  Variable z = ag::Sigmoid(ag::Add(ag::Slice(gx, -1, 0, d),
                                   ag::Slice(gh, -1, 0, d)));
  Variable r = ag::Sigmoid(ag::Add(ag::Slice(gx, -1, d, d),
                                   ag::Slice(gh, -1, d, d)));
  Variable c = ag::Tanh(ag::Add(ag::Slice(gx, -1, 2 * d, d),
                                ag::Mul(r, ag::Slice(gh, -1, 2 * d, d))));
  // h' = (1 - z) * h + z * c
  Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, c));
}

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      x_gates_(input_dim, 4 * hidden_dim, rng, /*bias=*/true),
      h_gates_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false) {
  RegisterChild("x_gates", &x_gates_);
  RegisterChild("h_gates", &h_gates_);
}

LstmCell::State LstmCell::Forward(const Variable& x, const State& state) const {
  Variable gates = ag::Add(x_gates_.Forward(x), h_gates_.Forward(state.h));
  int64_t d = hidden_dim_;
  Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, d));
  Variable f = ag::Sigmoid(ag::Slice(gates, -1, d, d));
  Variable g = ag::Tanh(ag::Slice(gates, -1, 2 * d, d));
  Variable o = ag::Sigmoid(ag::Slice(gates, -1, 3 * d, d));
  Variable c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  Variable h = ag::Mul(o, ag::Tanh(c));
  return State{h, c};
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return State{Variable(tensor::Tensor::Zeros({batch, hidden_dim_})),
               Variable(tensor::Tensor::Zeros({batch, hidden_dim_}))};
}

Conv1dLayer::Conv1dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel_size, Rng* rng, int64_t dilation,
                         bool causal, bool bias)
    : out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation),
      causal_(causal) {
  int64_t fan_in = in_channels * kernel_size;
  weight_ = RegisterParameter(
      "weight",
      GlorotUniform({out_channels, in_channels, kernel_size}, fan_in,
                    out_channels, rng));
  if (bias) {
    bias_ = RegisterParameter("bias",
                              tensor::Tensor::Zeros({out_channels, 1}));
  }
}

Variable Conv1dLayer::Forward(const Variable& x) const {
  int64_t reach = (kernel_size_ - 1) * dilation_;
  // Causal: pad on the left only, so output length == input length and
  // out[t] depends on x[<= t]. Non-causal: split padding symmetrically.
  int64_t pad_left = causal_ ? reach : reach / 2;
  int64_t pad_right = causal_ ? 0 : reach - reach / 2;
  Variable y = ag::Conv1d(x, weight_, dilation_, pad_left, pad_right);
  if (bias_.defined()) y = ag::Add(y, bias_);
  return y;
}

GraphConv::GraphConv(int64_t in_dim, int64_t out_dim, Rng* rng, bool bias)
    : proj_(in_dim, out_dim, rng, bias) {
  RegisterChild("proj", &proj_);
}

Variable GraphConv::Forward(const autograd::SparseConstant& adj,
                            const Variable& x) const {
  return proj_.Forward(ag::SpMM(adj, x));
}

DiffusionConv::DiffusionConv(int64_t in_dim, int64_t out_dim, int64_t steps,
                             Rng* rng)
    : steps_(steps) {
  DYHSL_CHECK_GE(steps, 1);
  for (int64_t k = 0; k <= steps; ++k) {
    fw_proj_.push_back(std::make_unique<Linear>(in_dim, out_dim, rng,
                                                /*bias=*/k == 0));
    RegisterChild("fw" + std::to_string(k), fw_proj_.back().get());
    if (k > 0) {
      bw_proj_.push_back(std::make_unique<Linear>(in_dim, out_dim, rng,
                                                  /*bias=*/false));
      RegisterChild("bw" + std::to_string(k), bw_proj_.back().get());
    }
  }
}

Variable DiffusionConv::Forward(const autograd::SparseConstant& fw,
                                const autograd::SparseConstant& bw,
                                const Variable& x) const {
  if (ag::InferenceModeEnabled()) {
    // Grad-free fast path: accumulate every diffusion term into ONE
    // output buffer (bias init + beta = 1 GEMMs) instead of
    // materializing 2 * steps + 1 projection outputs and folding them
    // with as many Adds. At serving batch sizes the taped chain is
    // memory-bound on those extra output passes. Bit-identical to the
    // chain: each projection's K fits a single GEMM panel, so the
    // beta = 1 store is the same elementwise add the chain performs
    // (the Affine argument, src/autograd/ops.cc).
    const tensor::Tensor& xv = x.value();
    const int64_t in_dim = xv.size(-1);
    const int64_t out_dim = fw_proj_[0]->out_features();
    tensor::Shape out_shape = xv.shape();
    out_shape.back() = out_dim;
    tensor::Tensor x2 = xv.dim() == 2 ? xv : xv.Reshape({-1, in_dim});
    const int64_t m = x2.size(0);
    tensor::Tensor y({m, out_dim});
    const float* pb = fw_proj_[0]->bias().value().data();
    float* py = y.data();
    for (int64_t i = 0; i < m; ++i) {
      std::memcpy(py + i * out_dim, pb,
                  static_cast<size_t>(out_dim) * sizeof(float));
    }
    tensor::MatMulInto(x2, fw_proj_[0]->weight().value(), false, false,
                       /*beta=*/1.0f, &y);
    tensor::Tensor xf = xv;
    tensor::Tensor xb = xv;
    for (int64_t k = 1; k <= steps_; ++k) {
      xf = tensor::SpMM(fw.matrix(), xf);
      tensor::MatMulInto(xf.dim() == 2 ? xf : xf.Reshape({-1, in_dim}),
                         fw_proj_[k]->weight().value(), false, false,
                         /*beta=*/1.0f, &y);
      xb = tensor::SpMM(bw.matrix(), xb);
      tensor::MatMulInto(xb.dim() == 2 ? xb : xb.Reshape({-1, in_dim}),
                         bw_proj_[k - 1]->weight().value(), false, false,
                         /*beta=*/1.0f, &y);
    }
    return Variable(y.Reshape(std::move(out_shape)));
  }
  Variable out = fw_proj_[0]->Forward(x);  // k = 0 term (identity)
  Variable xf = x;
  Variable xb = x;
  for (int64_t k = 1; k <= steps_; ++k) {
    xf = ag::SpMM(fw, xf);
    out = ag::Add(out, fw_proj_[k]->Forward(xf));
    xb = ag::SpMM(bw, xb);
    out = ag::Add(out, bw_proj_[k - 1]->Forward(xb));
  }
  return out;
}

}  // namespace dyhsl::nn
