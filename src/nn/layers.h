// Standard neural network layers used across DyHSL and the baselines.

#ifndef DYHSL_NN_LAYERS_H_
#define DYHSL_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"
#include "src/nn/module.h"
#include "src/tensor/sparse.h"

namespace dyhsl::nn {

using autograd::Variable;

/// \brief Affine map y = x W + b over the last axis; x may be any rank.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  Variable Forward(const Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  const Variable& weight() const { return weight_; }  // (in, out)
  /// Undefined when constructed with bias = false.
  const Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // (in, out)
  Variable bias_;    // (out) or undefined
};

/// \brief Lookup table of `count` learnable d-dimensional embeddings.
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, Rng* rng);

  /// \brief Returns rows (len(indices), dim).
  Variable Forward(const std::vector<int64_t>& indices) const;

  const Variable& weight() const { return weight_; }

 private:
  Variable weight_;
};

/// \brief Layer normalization over the last axis with learnable gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;
  /// Consuming form: may normalize x in place (inference mode).
  Variable Forward(Variable&& x) const;

 private:
  float eps_;
  Variable gamma_;
  Variable beta_;
};

/// \brief Gated recurrent unit cell.
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// \brief One step: x (B, input_dim), h (B, hidden_dim) -> new h.
  Variable Forward(const Variable& x, const Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear x_gates_;  // -> 3 * hidden (z, r, c)
  Linear h_gates_;  // -> 3 * hidden
};

/// \brief Long short-term memory cell. State is the (h, c) pair.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  struct State {
    Variable h;
    Variable c;
  };

  State Forward(const Variable& x, const State& state) const;

  /// \brief Zero state for batch size B.
  State InitialState(int64_t batch) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear x_gates_;  // -> 4 * hidden (i, f, g, o)
  Linear h_gates_;
};

/// \brief 1-D convolution over (B, Cin, L) with optional causal padding.
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
              Rng* rng, int64_t dilation = 1, bool causal = true,
              bool bias = true);

  Variable Forward(const Variable& x) const;

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t dilation_;
  bool causal_;
  Variable weight_;  // (Cout, Cin, K)
  Variable bias_;    // (Cout, 1) broadcastable over (B, Cout, L)
};

/// \brief First-order graph convolution y = act(Ā x W) with a fixed sparse
/// operator (road-network or temporal-graph adjacency).
class GraphConv : public Module {
 public:
  GraphConv(int64_t in_dim, int64_t out_dim, Rng* rng, bool bias = true);

  /// x: (rows, in) or (B, rows, in); `adj` rows must match x rows.
  Variable Forward(const autograd::SparseConstant& adj,
                   const Variable& x) const;

 private:
  Linear proj_;
};

/// \brief K-step bidirectional diffusion convolution (DCRNN):
/// y = sum_k (A_fw^k x) W_k + (A_bw^k x) U_k, k = 0..K.
class DiffusionConv : public Module {
 public:
  DiffusionConv(int64_t in_dim, int64_t out_dim, int64_t steps, Rng* rng);

  Variable Forward(const autograd::SparseConstant& fw,
                   const autograd::SparseConstant& bw,
                   const Variable& x) const;

 private:
  int64_t steps_;
  std::vector<std::unique_ptr<Linear>> fw_proj_;
  std::vector<std::unique_ptr<Linear>> bw_proj_;
};

}  // namespace dyhsl::nn

#endif  // DYHSL_NN_LAYERS_H_
