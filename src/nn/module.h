// Base class for neural network modules: parameter registration and
// recursive collection, in the spirit of torch::nn::Module.

#ifndef DYHSL_NN_MODULE_H_
#define DYHSL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"

namespace dyhsl::nn {

/// \brief Base for layers and models. Subclasses register parameters in
/// their constructor and child modules via RegisterChild; Parameters()
/// walks the tree. Modules are not copyable (parameter identity matters).
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// \brief All parameters of this module and its children (depth-first).
  std::vector<autograd::Variable> Parameters() const;

  /// \brief Named parameters, prefixed by the child path ("block1.weight").
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// \brief Named non-trainable constants (RegisterConstant), prefixed by
  /// the child path like NamedParameters. Constants are excluded from
  /// Parameters()/checkpoints; the walk exists so generic consumers — the
  /// serving engine's weight-prepack enrollment — can reach every frozen
  /// tensor a model multiplies by, without per-model code.
  std::vector<std::pair<std::string, autograd::Variable>> NamedConstants()
      const;

  /// \brief Total number of scalar parameters.
  int64_t ParameterCount() const;

 protected:
  /// \brief Wraps `init` as a trainable parameter and tracks it.
  autograd::Variable RegisterParameter(std::string name,
                                       tensor::Tensor init);

  /// \brief Wraps `init` as a frozen (requires_grad = false) tensor and
  /// tracks it for NamedConstants(). Not a parameter: never trained,
  /// never checkpointed.
  autograd::Variable RegisterConstant(std::string name, tensor::Tensor init);

  /// \brief Tracks a child module (not owned; the subclass owns it as a
  /// member and must outlive registration).
  void RegisterChild(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, autograd::Variable>> constants_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace dyhsl::nn

#endif  // DYHSL_NN_MODULE_H_
