#include "src/nn/init.h"

#include <cmath>

namespace dyhsl::nn {

tensor::Tensor GlorotUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng* rng) {
  float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Uniform(std::move(shape), rng, -a, a);
}

tensor::Tensor GlorotUniform2D(int64_t fan_in, int64_t fan_out, Rng* rng) {
  return GlorotUniform({fan_in, fan_out}, fan_in, fan_out, rng);
}

tensor::Tensor KaimingNormal(tensor::Shape shape, int64_t fan_in, Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Tensor::Randn(std::move(shape), rng, stddev);
}

}  // namespace dyhsl::nn
