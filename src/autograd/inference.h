// Grad-free inference mode.
//
// Training builds a computation tape: every op output is a Node carrying
// parent edges and a backward closure, and all intermediate activations
// stay alive until the tape is dropped. Inference never consumes that
// graph, so inside an InferenceModeGuard the op layer skips tape
// construction entirely: MakeOpResult returns leaf variables that hold
// only the value tensor — no Node parents, no closures, no shared_ptr
// graph — and intermediates are released the moment the last Variable
// referencing them dies. Combined with a step-scoped Workspace (whose
// bump allocator reclaims trailing frees, see src/tensor/workspace.h)
// an eval/serve forward runs malloc-free with a cache-sized working set.
//
// The guard is thread-local and re-entrant: nesting is counted, and
// serve worker threads each maintain their own mode independently.
// Calling Variable::Backward() while the guard is active is a programmer
// error and aborts through DYHSL_CHECK.

#ifndef DYHSL_AUTOGRAD_INFERENCE_H_
#define DYHSL_AUTOGRAD_INFERENCE_H_

namespace dyhsl::autograd {

/// \brief RAII guard enabling grad-free inference mode on the calling
/// thread. While at least one guard is alive, ops produce tape-less leaf
/// variables and Backward() is a checked error.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();

  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;
};

/// \brief True iff an InferenceModeGuard is active on the calling thread.
bool InferenceModeEnabled();

}  // namespace dyhsl::autograd

#endif  // DYHSL_AUTOGRAD_INFERENCE_H_
