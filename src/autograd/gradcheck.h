// Numerical gradient checking for differentiable ops and whole models.

#ifndef DYHSL_AUTOGRAD_GRADCHECK_H_
#define DYHSL_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "src/autograd/variable.h"

namespace dyhsl::autograd {

/// \brief Outcome of a gradient check.
struct GradCheckReport {
  /// Largest |analytic - numeric| across all checked coordinates.
  float max_abs_error = 0.0f;
  /// Largest |analytic - numeric| / max(1, |numeric|).
  float max_rel_error = 0.0f;
  /// True when max_rel_error <= tolerance.
  bool ok = false;
};

/// \brief Compares the analytic gradient of `f` (a scalar-valued function of
/// `inputs`) against central finite differences.
///
/// `f` must be deterministic and must use the provided inputs (same nodes)
/// so the tape reaches them. Float32 arithmetic limits achievable accuracy;
/// eps around 1e-2 with tolerance 5e-2 is appropriate for composite ops.
GradCheckReport GradCheck(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    std::vector<Variable> inputs, float eps = 1e-2f, float tolerance = 5e-2f);

}  // namespace dyhsl::autograd

#endif  // DYHSL_AUTOGRAD_GRADCHECK_H_
