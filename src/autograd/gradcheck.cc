#include "src/autograd/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"

namespace dyhsl::autograd {

GradCheckReport GradCheck(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    std::vector<Variable> inputs, float eps, float tolerance) {
  // Analytic pass.
  for (Variable& v : inputs) v.ZeroGrad();
  Variable out = f(inputs);
  DYHSL_CHECK_EQ(out.numel(), 1);
  out.Backward();

  std::vector<tensor::Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Variable& v : inputs) {
    DYHSL_CHECK_MSG(v.has_grad(), "input did not receive a gradient");
    analytic.push_back(v.grad().Clone());
  }

  GradCheckReport report;
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    Variable& v = inputs[vi];
    float* data = v.mutable_value()->data();
    for (int64_t i = 0; i < v.numel(); ++i) {
      float saved = data[i];
      data[i] = saved + eps;
      float plus = f(inputs).value().data()[0];
      data[i] = saved - eps;
      float minus = f(inputs).value().data()[0];
      data[i] = saved;
      float numeric = (plus - minus) / (2.0f * eps);
      float a = analytic[vi].data()[i];
      float abs_err = std::fabs(a - numeric);
      float rel_err = abs_err / std::max(1.0f, std::fabs(numeric));
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
      report.max_rel_error = std::max(report.max_rel_error, rel_err);
    }
  }
  report.ok = report.max_rel_error <= tolerance;
  return report;
}

}  // namespace dyhsl::autograd
