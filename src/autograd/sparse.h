// Sparse matrices on the autograd tape.
//
// Two kinds of sparse operand enter the tape:
//
//  * SparseConstant — structure AND values fixed (road adjacencies,
//    temporal graphs, hypergraph propagation operators). It never carries
//    gradient; SpMM only differentiates through the dense side, pulling
//    the gradient back through the precomputed transpose.
//  * pattern + values — structure fixed for the step, values produced by
//    the tape (DyHSL's learned incidence Λ after top-k sparsification).
//    SparseDenseMatMul differentiates through both the dense operand
//    (transpose SpMM) and the values (SDDMM at the structural nonzeros);
//    GatherSparse routes the value gradient back into the dense matrix
//    the pattern was extracted from.
//
// Every op here is finite-difference gradchecked in
// tests/sparse_kernels_test.cc; keep that suite in sync when extending.

#ifndef DYHSL_AUTOGRAD_SPARSE_H_
#define DYHSL_AUTOGRAD_SPARSE_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"
#include "src/tensor/sparse.h"

namespace dyhsl::autograd {

/// \brief A CSR matrix entering the tape as a constant: cheap to copy
/// (shares the underlying SparseOp), never differentiated. Wraps the
/// kernel-level forward + transpose pair so both the forward product and
/// the backward pull run without rebuilding structure.
class SparseConstant {
 public:
  SparseConstant() = default;
  /// Takes ownership of the matrix and precomputes its transpose.
  explicit SparseConstant(tensor::CsrMatrix matrix)
      : op_(tensor::SparseOp::Create(std::move(matrix))) {}
  /// Wraps an existing kernel-level op (implicit: the kernel and tape
  /// representations are the same object at different layers).
  SparseConstant(std::shared_ptr<tensor::SparseOp> op)  // NOLINT
      : op_(std::move(op)) {}

  bool defined() const { return op_ != nullptr; }
  int64_t rows() const { return op_->forward.rows(); }
  int64_t cols() const { return op_->forward.cols(); }
  int64_t nnz() const { return op_->forward.nnz(); }

  const tensor::CsrMatrix& matrix() const { return op_->forward; }
  const tensor::CsrMatrix& transpose() const { return op_->transpose; }
  const std::shared_ptr<tensor::SparseOp>& op() const { return op_; }

 private:
  std::shared_ptr<tensor::SparseOp> op_;
};

/// \brief One immutable pattern per batch item (see tensor::CsrPattern).
using CsrPatternList = std::vector<std::shared_ptr<const tensor::CsrPattern>>;

/// \brief Sparse constant times dense variable: op(A) X with X 2-D or 3-D
/// batched. The sparse matrix carries no gradient; the dense gradient is
/// pulled back through the precomputed transpose and accumulates straight
/// into the parent's grad buffer (SpMMInto beta path, no temporaries).
Variable SpMM(const SparseConstant& a, const Variable& x,
              bool trans_a = false);

/// \brief Taped sparse × dense with learnable values: y = op(A) x where A
/// has `pattern`'s structure and `values` (a 1-D Variable of length nnz)
/// as entries; x is 2-D or 3-D batched. VJPs: d values = SDDMM(grad, x) at
/// the structural nonzeros (batch-summed), d x = op(A)ᵀ grad.
Variable SparseDenseMatMul(
    const std::shared_ptr<const tensor::CsrPattern>& pattern,
    const Variable& values, const Variable& x, bool trans_a = false);

/// \brief Per-batch-structure variant: patterns[b] (all with equal nnz and
/// shape) multiplies x[b]; `values` is (B, nnz), x is (B, rows, d).
Variable BatchedSparseDenseMatMul(CsrPatternList patterns,
                                  const Variable& values, const Variable& x,
                                  bool trans_a = false);

/// \brief Gathers the entries of a dense (B, R, C) variable at each
/// pattern's structural nonzeros -> (B, nnz) values; the backward scatters
/// the value gradient back to the dense coordinates. This is the taped
/// bridge from a dense learned matrix to its sparsified execution: the
/// patterns come from tensor::RowTopK / RowThreshold over the same tensor.
Variable GatherSparse(const Variable& dense, CsrPatternList patterns);

}  // namespace dyhsl::autograd

#endif  // DYHSL_AUTOGRAD_SPARSE_H_
