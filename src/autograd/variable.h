// Reverse-mode automatic differentiation.
//
// A Variable is a handle to a Node in a dynamically built computation tape.
// Ops (src/autograd/ops.h) create output nodes whose `backward` closure
// pushes gradient into the parents; Variable::Backward() runs the closures
// in reverse topological order. Nodes hold only parent edges, so the graph
// is acyclic by construction and freed automatically once the last Variable
// referencing it goes out of scope.

#ifndef DYHSL_AUTOGRAD_VARIABLE_H_
#define DYHSL_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::autograd {

/// \brief Internal tape node. Users interact through Variable.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;  // lazily allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Reads this->grad and accumulates into parents; empty for leaves.
  std::function<void(Node*)> backward;

  /// \brief grad += g (allocating on first call). Shapes must match value.
  void AccumulateGrad(const tensor::Tensor& g);
};

/// \brief Differentiable tensor handle (cheap to copy, shares the node).
class Variable {
 public:
  Variable() = default;

  /// \brief Wraps a tensor as a leaf. `requires_grad` marks parameters.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const { return node_->value; }
  tensor::Tensor* mutable_value() { return &node_->value; }
  const tensor::Tensor& grad() const { return node_->grad; }
  bool has_grad() const { return node_->grad.defined(); }
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }

  const tensor::Shape& shape() const { return node_->value.shape(); }
  int64_t dim() const { return node_->value.dim(); }
  int64_t size(int64_t axis) const { return node_->value.size(axis); }
  int64_t numel() const { return node_->value.numel(); }

  /// \brief Clears the accumulated gradient (keeps allocation if any).
  void ZeroGrad();

  /// \brief Runs reverse-mode differentiation from this scalar output
  /// (numel must be 1). Gradients accumulate in every reachable node that
  /// requires grad.
  void Backward() const;

  /// \brief Backward from a non-scalar output with an explicit seed.
  void Backward(const tensor::Tensor& seed) const;

  /// \brief Leaf copy sharing the same value but cut off from the tape.
  Variable Detach() const;

  std::shared_ptr<Node> node() const { return node_; }

  /// \brief True if this Variable holds the only reference to its node —
  /// together with Tensor::UniqueStorage the precondition for the
  /// inference-mode in-place op overloads.
  bool SoleOwner() const { return node_ != nullptr && node_.use_count() == 1; }

  /// \brief Constructs a Variable from an existing node (op internals).
  static Variable FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// \brief Creates an op output node. `parents` are tracked and `backward`
/// attached only if some parent requires grad.
Variable MakeOpResult(tensor::Tensor value,
                      std::vector<Variable> parents,
                      std::function<void(Node*)> backward);

namespace internal {

/// \brief Ensures `node->grad` exists and returns the accumulate beta for
/// fused gradient kernels (GEMM / SpMM ...Into paths): 0 on the first touch
/// — the buffer is freshly allocated and uninitialized, the kernel must
/// overwrite — and 1 afterwards. Leaf (parameter) gradients outlive the
/// step and are kept off the workspace arena.
float EnsureGradBeta(Node* node);

}  // namespace internal

}  // namespace dyhsl::autograd

#endif  // DYHSL_AUTOGRAD_VARIABLE_H_
