#include "src/autograd/inference.h"

#include <cstdint>

#include "src/core/check.h"

namespace dyhsl::autograd {
namespace {

// Depth counter rather than a flag so guards nest (an engine-level guard
// around an eval loop that installs its own is fine).
thread_local int64_t g_inference_depth = 0;

}  // namespace

InferenceModeGuard::InferenceModeGuard() { ++g_inference_depth; }

InferenceModeGuard::~InferenceModeGuard() {
  DYHSL_CHECK_GT(g_inference_depth, 0);
  --g_inference_depth;
}

bool InferenceModeEnabled() { return g_inference_depth > 0; }

}  // namespace dyhsl::autograd
