#include "src/autograd/ops.h"

#include <cstring>
#include <utility>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/tensor/ops.h"
#include "src/tensor/vecmath.h"
#include "src/tensor/workspace.h"

namespace dyhsl::autograd {

namespace T = ::dyhsl::tensor;

namespace {

// Accumulates `g` into parent i of `node` after reducing broadcast axes.
void AccumulateBroadcast(Node* node, size_t i, const T::Tensor& g) {
  Node* parent = node->parents[i].get();
  if (!parent->requires_grad) return;
  parent->AccumulateGrad(T::ReduceToShape(g, parent->value.shape()));
}

void Accumulate(Node* node, size_t i, const T::Tensor& g) {
  Node* parent = node->parents[i].get();
  if (!parent->requires_grad) return;
  parent->AccumulateGrad(g);
}

// Inference-mode in-place precondition: a tape-less leaf that nothing
// else references — neither another Variable (SoleOwner) nor another
// Tensor sharing the buffer through a Reshape view (UniqueStorage).
// Parameters never qualify: their module keeps a reference.
bool CanMutateInPlace(const Variable& a) {
  return InferenceModeEnabled() && a.defined() && !a.requires_grad() &&
         a.SoleOwner() && a.value().UniqueStorage();
}

bool ParentNeedsGrad(Node* node, size_t i) {
  return node->parents[i]->requires_grad;
}

// Fused gradient GEMMs: the product is written straight into the parent's
// grad buffer — the first touch allocates it and overwrites (beta 0),
// later touches GEMM-accumulate (beta 1) — so matmul backward passes run
// without gradient temporaries.
float GradAccumBeta(Node* parent) { return internal::EnsureGradBeta(parent); }

void AccumulateMatMul(Node* node, size_t i, const T::Tensor& x,
                      const T::Tensor& y, bool tx, bool ty) {
  Node* parent = node->parents[i].get();
  if (!parent->requires_grad) return;
  T::MatMulInto(x, y, tx, ty, GradAccumBeta(parent), &parent->grad);
}

void AccumulateBatchedMatMul(Node* node, size_t i, const T::Tensor& x,
                             const T::Tensor& y, bool tx, bool ty) {
  Node* parent = node->parents[i].get();
  if (!parent->requires_grad) return;
  T::BatchedMatMulInto(x, y, tx, ty, GradAccumBeta(parent), &parent->grad);
}

// Batch-reduced variant for operands shared across the batch.
void AccumulateBatchedReduce(Node* node, size_t i, const T::Tensor& x,
                             const T::Tensor& y, bool tx, bool ty) {
  Node* parent = node->parents[i].get();
  if (!parent->requires_grad) return;
  T::BatchedMatMulReduceInto(x, y, tx, ty, GradAccumBeta(parent),
                             &parent->grad);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeOpResult(T::Add(a.value(), b.value()), {a, b}, [](Node* n) {
    AccumulateBroadcast(n, 0, n->grad);
    AccumulateBroadcast(n, 1, n->grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOpResult(T::Sub(a.value(), b.value()), {a, b}, [](Node* n) {
    AccumulateBroadcast(n, 0, n->grad);
    AccumulateBroadcast(n, 1, T::Neg(n->grad));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  T::Tensor av = a.value(), bv = b.value();
  return MakeOpResult(T::Mul(av, bv), {a, b}, [av, bv](Node* n) {
    AccumulateBroadcast(n, 0, T::Mul(n->grad, bv));
    AccumulateBroadcast(n, 1, T::Mul(n->grad, av));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  T::Tensor av = a.value(), bv = b.value();
  return MakeOpResult(T::Div(av, bv), {a, b}, [av, bv](Node* n) {
    AccumulateBroadcast(n, 0, T::Div(n->grad, bv));
    // d/db (a/b) = -a / b^2
    T::Tensor gb = T::Neg(T::Div(T::Mul(n->grad, av), T::Mul(bv, bv)));
    AccumulateBroadcast(n, 1, gb);
  });
}

Variable Maximum(const Variable& a, const Variable& b) {
  T::Tensor av = a.value(), bv = b.value();
  return MakeOpResult(T::Maximum(av, bv), {a, b}, [av, bv](Node* n) {
    // mask = 1 where a >= b (broadcast over the output shape).
    T::Tensor mask = T::Heaviside(T::AddScalar(T::Sub(av, bv), 1e-30f));
    AccumulateBroadcast(n, 0, T::Mul(n->grad, mask));
    AccumulateBroadcast(
        n, 1, T::Mul(n->grad, T::AddScalar(T::Neg(mask), 1.0f)));
  });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOpResult(T::AddScalar(a.value(), s), {a},
                      [](Node* n) { Accumulate(n, 0, n->grad); });
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOpResult(T::MulScalar(a.value(), s), {a}, [s](Node* n) {
    Accumulate(n, 0, T::MulScalar(n->grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Relu(const Variable& a) {
  T::Tensor av = a.value();
  return MakeOpResult(T::Relu(av), {a}, [av](Node* n) {
    Accumulate(n, 0, T::Mul(n->grad, T::Heaviside(av)));
  });
}

Variable LeakyRelu(const Variable& a, float slope) {
  T::Tensor av = a.value();
  return MakeOpResult(T::LeakyRelu(av, slope), {a}, [av, slope](Node* n) {
    T::Tensor mask = T::Heaviside(av);  // 1 where x > 0
    // grad * (mask + slope * (1 - mask))
    T::Tensor scale = T::AddScalar(T::MulScalar(mask, 1.0f - slope), slope);
    Accumulate(n, 0, T::Mul(n->grad, scale));
  });
}

Variable Sigmoid(const Variable& a) {
  T::Tensor y = T::Sigmoid(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    // y * (1 - y)
    T::Tensor dy = T::Mul(y, T::AddScalar(T::Neg(y), 1.0f));
    Accumulate(n, 0, T::Mul(n->grad, dy));
  });
}

Variable Tanh(const Variable& a) {
  T::Tensor y = T::Tanh(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    T::Tensor dy = T::AddScalar(T::Neg(T::Mul(y, y)), 1.0f);  // 1 - y^2
    Accumulate(n, 0, T::Mul(n->grad, dy));
  });
}

Variable Exp(const Variable& a) {
  T::Tensor y = T::Exp(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    Accumulate(n, 0, T::Mul(n->grad, y));
  });
}

Variable Log(const Variable& a) {
  T::Tensor av = a.value();
  return MakeOpResult(T::Log(av), {a}, [av](Node* n) {
    Accumulate(n, 0, T::Div(n->grad, av));
  });
}

Variable Sqrt(const Variable& a) {
  T::Tensor y = T::Sqrt(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    Accumulate(n, 0, T::Div(T::MulScalar(n->grad, 0.5f), y));
  });
}

Variable Abs(const Variable& a) {
  T::Tensor av = a.value();
  return MakeOpResult(T::Abs(av), {a}, [av](Node* n) {
    Accumulate(n, 0, T::Mul(n->grad, T::Sign(av)));
  });
}

Variable InvSqrt(const Variable& a, float eps) {
  T::Tensor y = T::Rsqrt(a.value(), eps);
  return MakeOpResult(y, {a}, [y](Node* n) {
    if (!ParentNeedsGrad(n, 0)) return;
    // d/dx (x + eps)^(-1/2) = -1/2 y^3
    T::Tensor y3 = T::Mul(T::Mul(y, y), y);
    Accumulate(n, 0, T::Mul(n->grad, T::MulScalar(y3, -0.5f)));
  });
}

Variable MatMul(const Variable& a, const Variable& b, bool trans_a,
                bool trans_b) {
  T::Tensor av = a.value(), bv = b.value();
  return MakeOpResult(
      T::MatMul(av, bv, trans_a, trans_b), {a, b},
      [av, bv, trans_a, trans_b](Node* n) {
        const T::Tensor& g = n->grad;
        // ga = op(A) adjoint: the gradient GEMM accumulates straight into
        // the parent's grad buffer (no temporary).
        if (trans_a) {
          AccumulateMatMul(n, 0, bv, g, trans_b, true);
        } else {
          AccumulateMatMul(n, 0, g, bv, false, !trans_b);
        }
        if (trans_b) {
          AccumulateMatMul(n, 1, g, av, true, trans_a);
        } else {
          AccumulateMatMul(n, 1, av, g, !trans_a, false);
        }
      });
}

Variable Affine(const Variable& x, const Variable& w, const Variable& b) {
  DYHSL_CHECK_EQ(x.dim(), 2);
  DYHSL_CHECK_EQ(w.dim(), 2);
  DYHSL_CHECK_EQ(x.size(1), w.size(0));
  // Rank-1 required (not just matching numel): the bias VJP is the rank-1
  // column sum of the output gradient.
  DYHSL_CHECK_EQ(b.dim(), 1);
  DYHSL_CHECK_EQ(b.numel(), w.size(1));
  T::Tensor xv = x.value(), wv = w.value();
  int64_t m = xv.size(0), n = wv.size(1);
  T::Tensor y({m, n});
  // C-init with the bias rows, then accumulate the products on top
  // (beta = 1). One output pass instead of MatMul followed by a
  // broadcast Add. Bit-identical to that chain for k <= one GEMM K
  // panel (x + y == y + x in IEEE float); for larger k the bias joins
  // the sum first and results differ from the chain only in rounding —
  // taped and grad-free calls share this kernel either way, so
  // cross-mode bit-identity always holds (AffineTest covers both).
  const float* pb = b.value().data();
  float* py = y.data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(py + i * n, pb, static_cast<size_t>(n) * sizeof(float));
  }
  T::MatMulInto(xv, wv, false, false, /*beta=*/1.0f, &y);
  return MakeOpResult(std::move(y), {x, w, b}, [xv, wv](Node* node) {
    const T::Tensor& g = node->grad;
    AccumulateMatMul(node, 0, g, wv, false, true);
    AccumulateMatMul(node, 1, xv, g, true, false);
    if (ParentNeedsGrad(node, 2)) {
      Accumulate(node, 2, T::Sum(g, 0));  // db = column sum
    }
  });
}

Variable BatchedMatMul(const Variable& a, const Variable& b, bool trans_a,
                       bool trans_b) {
  T::Tensor av = a.value(), bv = b.value();
  const bool shared_a = av.dim() == 2;
  const bool shared_b = bv.dim() == 2;
  return MakeOpResult(
      T::BatchedMatMul(av, bv, trans_a, trans_b), {a, b},
      [av, bv, trans_a, trans_b, shared_a, shared_b](Node* n) {
        const T::Tensor& g = n->grad;  // (B, m, n)
        // ga: same adjoint formulas as MatMul; a batch-shared 2-D operand
        // additionally reduces over the batch.
        if (shared_a) {
          if (trans_a) {
            AccumulateBatchedReduce(n, 0, bv, g, trans_b, true);
          } else {
            AccumulateBatchedReduce(n, 0, g, bv, false, !trans_b);
          }
        } else if (trans_a) {
          // With shared b this is the shared-LHS form (bv 2-D, g 3-D).
          AccumulateBatchedMatMul(n, 0, bv, g, trans_b, true);
        } else {
          AccumulateBatchedMatMul(n, 0, g, bv, false, !trans_b);
        }
        if (shared_b && !trans_a) {
          // Fold the batch into rows: op(A_b) = A_b stacks contiguously,
          // so gb = sum_b op(A_b)^T G_b is one GEMM over (B*m) rows.
          int64_t batch = av.size(0);
          int64_t m = av.size(1), k = av.size(2);
          T::Tensor a2 = av.Reshape({batch * m, k});
          T::Tensor g2 = g.Reshape({batch * m, g.size(2)});
          if (trans_b) {
            AccumulateMatMul(n, 1, g2, a2, true, false);
          } else {
            AccumulateMatMul(n, 1, a2, g2, true, false);
          }
        } else if (shared_b) {  // trans_a == true: batch-reduce instead
          if (trans_b) {
            AccumulateBatchedReduce(n, 1, g, av, true, trans_a);
          } else {
            AccumulateBatchedReduce(n, 1, av, g, !trans_a, false);
          }
        } else if (trans_b) {
          AccumulateBatchedMatMul(n, 1, g, av, true, trans_a);
        } else {
          AccumulateBatchedMatMul(n, 1, av, g, !trans_a, false);
        }
      });
}

Variable Reshape(const Variable& a, tensor::Shape new_shape) {
  tensor::Shape old_shape = a.shape();
  return MakeOpResult(a.value().Reshape(std::move(new_shape)), {a},
                      [old_shape](Node* n) {
                        Accumulate(n, 0, n->grad.Reshape(old_shape));
                      });
}

Variable TransposePerm(const Variable& a, std::vector<int64_t> perm) {
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  return MakeOpResult(T::TransposePerm(a.value(), perm), {a},
                      [inverse](Node* n) {
                        Accumulate(n, 0, T::TransposePerm(n->grad, inverse));
                      });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  DYHSL_CHECK(!parts.empty());
  std::vector<T::Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  int64_t norm_axis = axis < 0 ? axis + parts[0].dim() : axis;
  std::vector<int64_t> sizes;
  sizes.reserve(parts.size());
  for (const Variable& p : parts) sizes.push_back(p.size(norm_axis));
  return MakeOpResult(T::Concat(values, norm_axis), parts,
                      [norm_axis, sizes](Node* n) {
                        int64_t offset = 0;
                        for (size_t i = 0; i < sizes.size(); ++i) {
                          if (ParentNeedsGrad(n, i)) {
                            Accumulate(n, i,
                                       T::Slice(n->grad, norm_axis, offset,
                                                sizes[i]));
                          }
                          offset += sizes[i];
                        }
                      });
}

Variable Slice(const Variable& a, int64_t axis, int64_t start,
               int64_t length) {
  int64_t norm_axis = axis < 0 ? axis + a.dim() : axis;
  tensor::Shape in_shape = a.shape();
  return MakeOpResult(
      T::Slice(a.value(), norm_axis, start, length), {a},
      [norm_axis, start, in_shape](Node* n) {
        if (!ParentNeedsGrad(n, 0)) return;
        // Scatter the gradient slice back into a zero tensor of input shape.
        T::Tensor gx = T::Tensor::Zeros(in_shape);
        int64_t outer = 1;
        for (int64_t d = 0; d < norm_axis; ++d) outer *= in_shape[d];
        int64_t inner = 1;
        for (int64_t d = norm_axis + 1;
             d < static_cast<int64_t>(in_shape.size()); ++d) {
          inner *= in_shape[d];
        }
        int64_t mid = in_shape[norm_axis];
        int64_t len = n->grad.size(norm_axis);
        const float* pg = n->grad.data();
        float* px = gx.data();
        for (int64_t o = 0; o < outer; ++o) {
          std::memcpy(px + (o * mid + start) * inner,
                      pg + o * len * inner, len * inner * sizeof(float));
        }
        Accumulate(n, 0, gx);
      });
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices) {
  tensor::Shape w_shape = weight.shape();
  return MakeOpResult(T::TakeRows(weight.value(), indices), {weight},
                      [indices, w_shape](Node* n) {
                        if (!ParentNeedsGrad(n, 0)) return;
                        T::Tensor gw = T::Tensor::Zeros(w_shape);
                        T::ScatterAddRows(&gw, indices, n->grad);
                        Accumulate(n, 0, gw);
                      });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdims) {
  int64_t norm_axis = axis < 0 ? axis + a.dim() : axis;
  tensor::Shape in_shape = a.shape();
  return MakeOpResult(
      T::Sum(a.value(), norm_axis, keepdims), {a},
      [norm_axis, keepdims, in_shape](Node* n) {
        if (!ParentNeedsGrad(n, 0)) return;
        // Expand grad along the reduced axis by broadcasting against zeros.
        T::Tensor g = n->grad;
        if (!keepdims) {
          tensor::Shape keep_shape = in_shape;
          keep_shape[norm_axis] = 1;
          g = g.Reshape(keep_shape);
        }
        T::Tensor expanded = T::Add(T::Tensor::Zeros(in_shape), g);
        Accumulate(n, 0, expanded);
      });
}

Variable Mean(const Variable& a, int64_t axis, bool keepdims) {
  int64_t norm_axis = axis < 0 ? axis + a.dim() : axis;
  float inv = 1.0f / static_cast<float>(a.size(norm_axis));
  return MulScalar(Sum(a, norm_axis, keepdims), inv);
}

Variable SumAll(const Variable& a) {
  tensor::Shape in_shape = a.shape();
  T::Tensor value = T::Tensor::Scalar(T::SumAllScalar(a.value()));
  return MakeOpResult(value, {a}, [in_shape](Node* n) {
    if (!ParentNeedsGrad(n, 0)) return;
    Accumulate(n, 0, T::Tensor::Full(in_shape, n->grad.data()[0]));
  });
}

Variable MeanAll(const Variable& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Variable SoftmaxLastAxis(const Variable& a) {
  T::Tensor y = T::SoftmaxLastAxis(a.value());
  return MakeOpResult(y, {a}, [y](Node* n) {
    if (!ParentNeedsGrad(n, 0)) return;
    // dx = y * (g - sum(g * y, last, keepdims))
    T::Tensor gy = T::Mul(n->grad, y);
    T::Tensor dot = T::Sum(gy, -1, /*keepdims=*/true);
    Accumulate(n, 0, T::Mul(y, T::Sub(n->grad, dot)));
  });
}

Variable LayerNormLastAxis(const Variable& x, const Variable& gamma,
                           const Variable& beta, float eps) {
  const T::Tensor& xv = x.value();
  T::Tensor y(xv.shape());
  if (InferenceModeEnabled()) {
    // Grad-free: one pass, no saved statistics.
    T::LayerNormLastAxisInto(xv, gamma.value(), beta.value(), eps, &y);
    return Variable(std::move(y), /*requires_grad=*/false);
  }
  int64_t cols = xv.size(-1);
  int64_t rows = xv.numel() / cols;
  T::Tensor xhat(xv.shape());
  T::Tensor inv_std({rows});
  T::LayerNormLastAxisInto(xv, gamma.value(), beta.value(), eps, &y, &xhat,
                           &inv_std);
  tensor::Shape row_stat_shape = xv.shape();
  row_stat_shape.back() = 1;
  inv_std = inv_std.Reshape(std::move(row_stat_shape));
  return MakeOpResult(
      std::move(y), {x, gamma, beta}, [xhat, inv_std, rows, cols](Node* n) {
        const T::Tensor& g = n->grad;
        if (ParentNeedsGrad(n, 1)) {
          // dgamma = sum over rows of g * xhat.
          T::Tensor gx2 = T::Mul(g, xhat).Reshape({rows, cols});
          Accumulate(n, 1, T::Sum(gx2, 0));
        }
        if (ParentNeedsGrad(n, 2)) {
          Accumulate(n, 2, T::Sum(g.Reshape({rows, cols}), 0));
        }
        if (!ParentNeedsGrad(n, 0)) return;
        // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
        // with per-row means; dxhat = g * gamma.
        T::Tensor dxhat = T::Mul(g, n->parents[1]->value);
        T::Tensor m1 = T::Mean(dxhat, -1, /*keepdims=*/true);
        T::Tensor m2 = T::Mean(T::Mul(dxhat, xhat), -1, /*keepdims=*/true);
        T::Tensor dx = T::Mul(
            T::Sub(T::Sub(dxhat, m1), T::Mul(xhat, m2)), inv_std);
        Accumulate(n, 0, dx);
      });
}

Variable LayerNormLastAxis(Variable&& x, const Variable& gamma,
                           const Variable& beta, float eps) {
  if (CanMutateInPlace(x)) {
    // Row statistics are computed before each row is overwritten, so
    // normalizing into the input's storage is safe and bit-identical.
    tensor::Tensor* value = x.mutable_value();
    T::LayerNormLastAxisInto(*value, gamma.value(), beta.value(), eps, value);
    return std::move(x);
  }
  return LayerNormLastAxis(static_cast<const Variable&>(x), gamma, beta, eps);
}

Variable MaxPoolAxis(const Variable& a, int64_t axis, int64_t window) {
  int64_t norm_axis = axis < 0 ? axis + a.dim() : axis;
  if (InferenceModeEnabled()) {
    // No backward — skip the argmax index tensor entirely.
    return Variable(T::MaxPoolAxisValues(a.value(), norm_axis, window),
                    /*requires_grad=*/false);
  }
  T::PoolResult pooled = T::MaxPoolAxis(a.value(), norm_axis, window);
  tensor::Shape in_shape = a.shape();
  auto argmax = std::make_shared<std::vector<int64_t>>(std::move(pooled.argmax));
  return MakeOpResult(pooled.values, {a}, [argmax, in_shape](Node* n) {
    if (!ParentNeedsGrad(n, 0)) return;
    T::Tensor gx = T::Tensor::Zeros(in_shape);
    const float* pg = n->grad.data();
    float* px = gx.data();
    for (size_t i = 0; i < argmax->size(); ++i) {
      px[(*argmax)[i]] += pg[i];
    }
    Accumulate(n, 0, gx);
  });
}

Variable Conv1d(const Variable& x, const Variable& w, int64_t dilation,
                int64_t pad_left, int64_t pad_right) {
  T::Tensor xv = x.value(), wv = w.value();
  tensor::Shape x_shape = xv.shape(), w_shape = wv.shape();
  return MakeOpResult(
      T::Conv1d(xv, wv, dilation, pad_left, pad_right), {x, w},
      [xv, wv, x_shape, w_shape, dilation, pad_left](Node* n) {
        if (ParentNeedsGrad(n, 0)) {
          Accumulate(n, 0, T::Conv1dBackwardInput(n->grad, wv, x_shape,
                                                  dilation, pad_left));
        }
        if (ParentNeedsGrad(n, 1)) {
          Accumulate(n, 1, T::Conv1dBackwardWeight(n->grad, xv, w_shape,
                                                   dilation, pad_left));
        }
      });
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  DYHSL_CHECK_LT(p, 1.0f);
  DYHSL_CHECK(rng != nullptr);
  T::Tensor mask(a.shape());
  float scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  return MakeOpResult(T::Mul(a.value(), mask), {a}, [mask](Node* n) {
    Accumulate(n, 0, T::Mul(n->grad, mask));
  });
}

Variable Add(Variable&& a, const Variable& b) {
  if (CanMutateInPlace(a)) {
    if (a.shape() == b.shape()) {
      T::AddInPlace(a.mutable_value(), b.value());
      return std::move(a);
    }
    // Broadcast add (e.g. embeddings onto activations) when the result
    // shape is a's shape.
    if (T::BroadcastShape(a.shape(), b.shape()) == a.shape()) {
      T::AddBroadcastInPlace(a.mutable_value(), b.value());
      return std::move(a);
    }
  }
  return Add(static_cast<const Variable&>(a), b);
}

Variable AddScalar(Variable&& a, float s) {
  if (CanMutateInPlace(a)) {
    T::AddScalarInPlace(a.mutable_value(), s);
    return std::move(a);
  }
  return AddScalar(static_cast<const Variable&>(a), s);
}

Variable MulScalar(Variable&& a, float s) {
  if (CanMutateInPlace(a)) {
    T::ScaleInPlace(a.mutable_value(), s);
    return std::move(a);
  }
  return MulScalar(static_cast<const Variable&>(a), s);
}

Variable Relu(Variable&& a) {
  if (CanMutateInPlace(a)) {
    T::ReluInPlace(a.mutable_value());
    return std::move(a);
  }
  return Relu(static_cast<const Variable&>(a));
}

Variable Sigmoid(Variable&& a) {
  if (CanMutateInPlace(a)) {
    T::SigmoidInPlace(a.mutable_value()->data(), a.numel());
    return std::move(a);
  }
  return Sigmoid(static_cast<const Variable&>(a));
}

Variable Tanh(Variable&& a) {
  if (CanMutateInPlace(a)) {
    T::TanhInPlace(a.mutable_value()->data(), a.numel());
    return std::move(a);
  }
  return Tanh(static_cast<const Variable&>(a));
}

Variable MaeLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  Variable diff = Sub(pred, target);
  return MeanAll(Mul(diff, diff));
}

}  // namespace dyhsl::autograd
