// Differentiable operations over Variable.
//
// Each function computes its forward value with the eager kernels in
// src/tensor and attaches a backward closure implementing the exact
// vector-Jacobian product. Every op declared here has a finite-difference
// gradient check in tests/autograd_test.cc (OpGradCheck suite) — including
// the subgradient ops (Relu, LeakyRelu, Abs, Maximum, MaxPoolAxis), which
// are checked away from their kinks, and Dropout, which is checked under a
// fixed mask. Keep that suite in sync when adding an op.

#ifndef DYHSL_AUTOGRAD_OPS_H_
#define DYHSL_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

// The taped sparse ops (SpMM over a SparseConstant, SparseDenseMatMul,
// GatherSparse, ...) live in src/autograd/sparse.h; it is included here so
// call sites keep seeing the full op vocabulary through one header.
#include "src/autograd/sparse.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"

namespace dyhsl::autograd {

// In-place note: the Variable&& overloads below may, in inference mode
// only, reuse the consumed operand's storage for the result (when the
// operand is a sole-owner tape-less leaf). Outside inference mode they
// forward to the const& versions, so values are identical either way —
// in-place execution never changes a single bit, only where it lands.

/// \name Elementwise binary (numpy broadcasting; gradients are reduced back
/// to each operand's shape)
/// @{
Variable Add(const Variable& a, const Variable& b);
/// May add b into a's storage in place (same shapes, inference mode).
Variable Add(Variable&& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
/// Elementwise max; the subgradient routes to the larger operand (ties: a).
Variable Maximum(const Variable& a, const Variable& b);
/// @}

/// \name Scalar / unary
/// @{
Variable AddScalar(const Variable& a, float s);
Variable AddScalar(Variable&& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable MulScalar(Variable&& a, float s);
Variable Neg(const Variable& a);
Variable Relu(const Variable& a);
Variable Relu(Variable&& a);
Variable LeakyRelu(const Variable& a, float slope = 0.2f);
Variable Sigmoid(const Variable& a);
Variable Sigmoid(Variable&& a);
Variable Tanh(const Variable& a);
Variable Tanh(Variable&& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);
/// Fused y = 1 / sqrt(a + eps) — one node instead of the
/// AddScalar/Sqrt/Div chain of a normalization denominator.
Variable InvSqrt(const Variable& a, float eps = 0.0f);
/// @}

/// \name Linear algebra
/// @{

/// \brief 2-D matmul with optional transposes.
Variable MatMul(const Variable& a, const Variable& b, bool trans_a = false,
                bool trans_b = false);

/// \brief Fused affine map y = x W + b for 2-D x (k, n)-shaped W and
/// length-n bias: the bias seeds the GEMM output (beta = 1), saving the
/// separate broadcast-add pass of the MatMul/Add chain.
Variable Affine(const Variable& x, const Variable& w, const Variable& b);

/// \brief Batched matmul. Either operand may be 2-D, in which case it is
/// shared across the batch (the flag-driven shared-LHS form `U @ M_b`
/// replaces the old TransposePerm/BatchedMatMul/TransposePerm sandwich);
/// its gradient is reduced over the batch. All four trans combinations are
/// supported for every sharing pattern.
Variable BatchedMatMul(const Variable& a, const Variable& b,
                       bool trans_a = false, bool trans_b = false);

/// @}

/// \name Movement
/// @{
Variable Reshape(const Variable& a, tensor::Shape new_shape);
Variable TransposePerm(const Variable& a, std::vector<int64_t> perm);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t length);
/// \brief Embedding lookup: rows of `weight` (V x d) selected by `indices`.
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices);
/// @}

/// \name Reductions and normalization
/// @{
Variable Sum(const Variable& a, int64_t axis, bool keepdims = false);
Variable Mean(const Variable& a, int64_t axis, bool keepdims = false);
/// Sum of all elements -> shape {1}.
Variable SumAll(const Variable& a);
/// Mean of all elements -> shape {1}.
Variable MeanAll(const Variable& a);
Variable SoftmaxLastAxis(const Variable& a);
/// Fused layer normalization over the last axis with 1-D gamma/beta of the
/// row width: one kernel (and one tape node) instead of the
/// Mean/Sub/Mul/Mean/InvSqrt/Mul/Add chain.
Variable LayerNormLastAxis(const Variable& x, const Variable& gamma,
                           const Variable& beta, float eps = 1e-5f);
/// May normalize x's storage in place (inference mode, sole owner).
Variable LayerNormLastAxis(Variable&& x, const Variable& gamma,
                           const Variable& beta, float eps = 1e-5f);
/// @}

/// \brief Non-overlapping max pool along `axis` (window divides the size).
Variable MaxPoolAxis(const Variable& a, int64_t axis, int64_t window);

/// \brief Dilated zero-padded 1-D convolution; x (B, Cin, L), w (Cout, Cin, K).
Variable Conv1d(const Variable& x, const Variable& w, int64_t dilation = 1,
                int64_t pad_left = 0, int64_t pad_right = 0);

/// \brief Inverted dropout. Identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

/// \name Losses
/// @{
/// Mean absolute error (the paper's training loss) -> scalar {1}.
Variable MaeLoss(const Variable& pred, const Variable& target);
/// Mean squared error -> scalar {1}.
Variable MseLoss(const Variable& pred, const Variable& target);
/// @}

}  // namespace dyhsl::autograd

#endif  // DYHSL_AUTOGRAD_OPS_H_
