#include "src/autograd/sparse.h"

#include <utility>

#include "src/core/check.h"

namespace dyhsl::autograd {

namespace T = ::dyhsl::tensor;

namespace {

// Validates a per-batch pattern list against (B, rows, d) operands: every
// pattern must share one shape and nnz so the packed (B, nnz) value layout
// and the batched output are rectangular.
void CheckPatterns(const CsrPatternList& patterns, int64_t batch) {
  DYHSL_CHECK_MSG(!patterns.empty(), "empty pattern list");
  DYHSL_CHECK_EQ(static_cast<int64_t>(patterns.size()), batch);
  for (const auto& p : patterns) {
    DYHSL_CHECK(p != nullptr);
    DYHSL_CHECK_EQ(p->rows, patterns[0]->rows);
    DYHSL_CHECK_EQ(p->cols, patterns[0]->cols);
    DYHSL_CHECK_EQ(p->nnz(), patterns[0]->nnz());
  }
}

}  // namespace

Variable SpMM(const SparseConstant& a, const Variable& x, bool trans_a) {
  DYHSL_CHECK(a.defined());
  const T::CsrMatrix& forward = trans_a ? a.transpose() : a.matrix();
  T::Tensor y = T::SpMM(forward, x.value());
  std::shared_ptr<T::SparseOp> op = a.op();
  return MakeOpResult(std::move(y), {x}, [op, trans_a](Node* n) {
    Node* parent = n->parents[0].get();
    if (!parent->requires_grad) return;
    const T::CsrMatrix& backward = trans_a ? op->forward : op->transpose;
    T::SpMMInto(backward, n->grad, internal::EnsureGradBeta(parent),
                &parent->grad);
  });
}

Variable SparseDenseMatMul(
    const std::shared_ptr<const tensor::CsrPattern>& pattern,
    const Variable& values, const Variable& x, bool trans_a) {
  DYHSL_CHECK(pattern != nullptr);
  DYHSL_CHECK_EQ(values.dim(), 1);
  DYHSL_CHECK_EQ(values.numel(), pattern->nnz());
  T::Tensor vv = values.value();
  T::Tensor xv = x.value();
  T::Tensor y = T::SpMMPattern(*pattern, vv, xv, trans_a);
  return MakeOpResult(
      std::move(y), {values, x}, [pattern, vv, xv, trans_a](Node* n) {
        Node* pvals = n->parents[0].get();
        if (pvals->requires_grad) {
          // d values at nonzero k = dot over the feature (and batch) axis
          // of the adjoint row and the dense row the nonzero paired:
          //   y = A x  : dv[k] = <grad[row_k], x[col_k]>
          //   y = Aᵀ x : dv[k] = <x[row_k], grad[col_k]>
          T::Tensor dv = trans_a ? T::Sddmm(*pattern, xv, n->grad)
                                 : T::Sddmm(*pattern, n->grad, xv);
          pvals->AccumulateGrad(dv);
        }
        Node* px = n->parents[1].get();
        if (px->requires_grad) {
          T::SpMMPatternInto(*pattern, vv, n->grad, !trans_a,
                             internal::EnsureGradBeta(px), &px->grad);
        }
      });
}

Variable BatchedSparseDenseMatMul(CsrPatternList patterns,
                                  const Variable& values, const Variable& x,
                                  bool trans_a) {
  T::Tensor vv = values.value();
  T::Tensor xv = x.value();
  DYHSL_CHECK_EQ(xv.dim(), 3);
  const int64_t batch = xv.size(0);
  CheckPatterns(patterns, batch);
  DYHSL_CHECK_EQ(vv.dim(), 2);
  DYHSL_CHECK_EQ(vv.size(0), batch);
  DYHSL_CHECK_EQ(vv.size(1), patterns[0]->nnz());
  const int64_t out_rows = trans_a ? patterns[0]->cols : patterns[0]->rows;
  const int64_t in_rows = trans_a ? patterns[0]->rows : patterns[0]->cols;
  DYHSL_CHECK_EQ(xv.size(1), in_rows);
  const int64_t f = xv.size(2);
  const int64_t nnz = patterns[0]->nnz();

  T::Tensor y({batch, out_rows, f});
  for (int64_t b = 0; b < batch; ++b) {
    T::SpMMPatternSliceInto(*patterns[b], vv.data() + b * nnz,
                            xv.data() + b * in_rows * f, f, trans_a, 0.0f,
                            y.data() + b * out_rows * f);
  }
  return MakeOpResult(
      std::move(y), {values, x},
      [patterns = std::move(patterns), vv, xv, trans_a, nnz, in_rows,
       out_rows, f](Node* n) {
        const int64_t batch = xv.size(0);
        Node* pvals = n->parents[0].get();
        if (pvals->requires_grad) {
          T::Tensor dv({batch, nnz});
          for (int64_t b = 0; b < batch; ++b) {
            const float* g = n->grad.data() + b * out_rows * f;
            const float* xb = xv.data() + b * in_rows * f;
            if (trans_a) {
              T::SddmmSliceInto(*patterns[b], xb, g, f, 0.0f,
                                dv.data() + b * nnz);
            } else {
              T::SddmmSliceInto(*patterns[b], g, xb, f, 0.0f,
                                dv.data() + b * nnz);
            }
          }
          pvals->AccumulateGrad(dv);
        }
        Node* px = n->parents[1].get();
        if (px->requires_grad) {
          // beta resolves once: 0 allocates and lets every slice overwrite
          // its (disjoint) region, 1 accumulates into all of them.
          float beta = internal::EnsureGradBeta(px);
          for (int64_t b = 0; b < batch; ++b) {
            T::SpMMPatternSliceInto(*patterns[b], vv.data() + b * nnz,
                                    n->grad.data() + b * out_rows * f, f,
                                    !trans_a, beta,
                                    px->grad.data() + b * in_rows * f);
          }
        }
      });
}

Variable GatherSparse(const Variable& dense, CsrPatternList patterns) {
  const T::Tensor& dv = dense.value();
  DYHSL_CHECK_EQ(dv.dim(), 3);
  const int64_t batch = dv.size(0);
  CheckPatterns(patterns, batch);
  const int64_t rows = patterns[0]->rows;
  const int64_t cols = patterns[0]->cols;
  DYHSL_CHECK_EQ(dv.size(1), rows);
  DYHSL_CHECK_EQ(dv.size(2), cols);
  const int64_t nnz = patterns[0]->nnz();

  T::Tensor out({batch, nnz});
  for (int64_t b = 0; b < batch; ++b) {
    T::GatherPatternSlice(*patterns[b], dv.data() + b * rows * cols,
                          out.data() + b * nnz);
  }
  return MakeOpResult(
      std::move(out), {dense},
      [patterns = std::move(patterns), batch, rows, cols, nnz](Node* n) {
        Node* parent = n->parents[0].get();
        if (!parent->requires_grad) return;
        // Scatter straight into the parent's gradient: a first touch
        // zero-fills once (the buffer is freshly allocated), later
        // touches accumulate — no dense-sized temporary either way.
        if (internal::EnsureGradBeta(parent) == 0.0f) {
          parent->grad.Fill(0.0f);
        }
        for (int64_t b = 0; b < batch; ++b) {
          float* slab = parent->grad.data() + b * rows * cols;
          const float* g = n->grad.data() + b * nnz;
          const auto& p = *patterns[b];
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
              slab[r * cols + p.col_idx[k]] += g[k];
            }
          }
        }
      });
}

}  // namespace dyhsl::autograd
