#include "src/autograd/variable.h"

#include <unordered_set>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"

namespace dyhsl::autograd {

void Node::AccumulateGrad(const tensor::Tensor& g) {
  DYHSL_CHECK_MSG(g.shape() == value.shape(),
                  "gradient shape " + tensor::ShapeToString(g.shape()) +
                      " != value shape " +
                      tensor::ShapeToString(value.shape()));
  if (!grad.defined()) {
    if (parents.empty()) {
      // Leaf (parameter) gradients survive past the training step — keep
      // them on the heap so they never pin a step-scoped workspace slab.
      tensor::WorkspaceBypass bypass;
      grad = g.Clone();
    } else {
      grad = g.Clone();
    }
  } else {
    tensor::AddInPlace(&grad, g);
  }
}

namespace internal {

float EnsureGradBeta(Node* node) {
  if (!node->grad.defined()) {
    if (node->parents.empty()) {
      // Leaf (parameter) gradients outlive the step: heap, not arena
      // (see Node::AccumulateGrad for the same rule).
      tensor::WorkspaceBypass bypass;
      node->grad = tensor::Tensor(node->value.shape());
    } else {
      node->grad = tensor::Tensor(node->value.shape());
    }
    return 0.0f;
  }
  return 1.0f;
}

}  // namespace internal

Variable::Variable(tensor::Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

void Variable::ZeroGrad() {
  if (node_ != nullptr && node_->grad.defined()) node_->grad.Fill(0.0f);
}

namespace {

// Iterative post-order DFS over parent edges -> topological order
// (parents before children in `order`).
void TopoSort(const std::shared_ptr<Node>& root,
              std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* parent = node->parents[next_child].get();
      ++next_child;
      if (parent != nullptr && parent->requires_grad &&
          visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  DYHSL_CHECK(defined());
  DYHSL_CHECK_MSG(!InferenceModeEnabled(),
                  "Backward() inside InferenceModeGuard: no tape was built");
  DYHSL_CHECK_MSG(numel() == 1, "Backward() without seed requires a scalar");
  Backward(tensor::Tensor::Ones(node_->value.shape()));
}

void Variable::Backward(const tensor::Tensor& seed) const {
  DYHSL_CHECK(defined());
  DYHSL_CHECK_MSG(!InferenceModeEnabled(),
                  "Backward() inside InferenceModeGuard: no tape was built");
  DYHSL_CHECK_MSG(node_->requires_grad,
                  "Backward() on a variable that does not require grad");
  node_->AccumulateGrad(seed);
  std::vector<Node*> order;
  TopoSort(node_, &order);
  // `order` lists parents before children; differentiate children first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->grad.defined()) {
      node->backward(node);
    }
  }
}

Variable Variable::Detach() const {
  DYHSL_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeOpResult(tensor::Tensor value, std::vector<Variable> parents,
                      std::function<void(Node*)> backward) {
  // Grad-free inference: the result is a plain leaf carrying only the
  // value. No parent edges or backward closure means the input tensors
  // are released as soon as the caller drops its Variables, instead of
  // being pinned until the whole tape dies.
  if (InferenceModeEnabled()) {
    return Variable(std::move(value), /*requires_grad=*/false);
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool needs_grad = false;
  for (const Variable& p : parents) {
    if (p.defined() && p.requires_grad()) {
      needs_grad = true;
      break;
    }
  }
  node->requires_grad = needs_grad;
  if (needs_grad) {
    node->parents.reserve(parents.size());
    for (const Variable& p : parents) node->parents.push_back(p.node());
    node->backward = std::move(backward);
  }
  return Variable::FromNode(std::move(node));
}

}  // namespace dyhsl::autograd
