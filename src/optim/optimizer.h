// First-order optimizers operating on Variable parameters.

#ifndef DYHSL_OPTIM_OPTIMIZER_H_
#define DYHSL_OPTIM_OPTIMIZER_H_

#include <vector>

#include "src/autograd/variable.h"

namespace dyhsl::optim {

using autograd::Variable;

/// \brief Base optimizer over a fixed parameter list. Parameters whose
/// gradient is undefined at Step() time are skipped (e.g. unused branches).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// \brief Applies one update using the gradients currently stored.
  virtual void Step() = 0;

  /// \brief Clears all parameter gradients.
  void ZeroGrad();

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_ = 1e-3f;
};

/// \brief Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba, 2014) with optional decoupled weight decay.
/// The paper trains DyHSL with Adam at lr 1e-3.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// \brief Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Variable>& params, float max_norm);

}  // namespace dyhsl::optim

#endif  // DYHSL_OPTIM_OPTIMIZER_H_
