#include "src/optim/optimizer.h"

#include <cmath>

#include "src/core/check.h"

namespace dyhsl::optim {

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const Variable& p : params_) {
    velocity_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value()->data();
    const float* g = p.grad().data();
    float* vel = velocity_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.shape()));
    v_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value()->data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (weight_decay_ > 0.0f) grad += weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  DYHSL_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const Variable& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total += static_cast<double>(g[j]) * g[j];
    }
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-12f);
    for (const Variable& p : params) {
      if (!p.has_grad()) continue;
      // Scaling in place through the node's grad tensor.
      const float* cg = p.grad().data();
      float* g = const_cast<float*>(cg);
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace dyhsl::optim
