#include "src/data/stream.h"

#include "src/core/check.h"

namespace dyhsl::data {

TickStream::TickStream(const TrafficData& data, int64_t start_step,
                       int64_t end_step)
    : flow_(&data.flow),
      num_nodes_(data.flow.size(1)),
      step_(start_step),
      end_(end_step < 0 ? data.flow.size(0) : end_step) {
  DYHSL_CHECK_GE(start_step, 0);
  DYHSL_CHECK_LE(end_, data.flow.size(0));
  DYHSL_CHECK_LE(step_, end_);
}

tensor::Tensor TickStream::Frame() const {
  DYHSL_CHECK(!Done());
  return flow_->Alias(step_ * num_nodes_, {num_nodes_});
}

void TickStream::Advance() {
  DYHSL_CHECK(!Done());
  step_ += 1;
}

}  // namespace dyhsl::data
