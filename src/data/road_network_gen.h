// Synthetic road-network generation.
//
// Real PEMS graphs are sparse highway sensor networks (average degree 2-3.5,
// see paper Table II) embedded in metropolitan areas with functional
// districts. The generator reproduces those properties: nodes cluster
// around district centers, a random spanning tree guarantees connectivity,
// and extra short-range edges are added until the target |E| is reached.
// Edge weights use the Gaussian kernel of road distance, as in DCRNN.

#ifndef DYHSL_DATA_ROAD_NETWORK_GEN_H_
#define DYHSL_DATA_ROAD_NETWORK_GEN_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace dyhsl::data {

/// \brief Functional role of a district; drives its daily traffic profile.
enum class DistrictType : int { kResidential = 0, kBusiness = 1, kMixed = 2 };

/// \brief Parameters for GenerateRoadNetwork.
struct RoadNetworkConfig {
  int64_t num_nodes = 100;
  /// Latent communities; these become the "static hyperedges" of Fig. 1.
  int64_t num_districts = 6;
  /// Target undirected edge count (paper's |E| convention). If 0, defaults
  /// to 1.5 * num_nodes.
  int64_t target_edges = 0;
  /// Side of the square map in km.
  float map_size = 60.0f;
  /// Std dev of node placement around its district center, km.
  float district_spread = 6.0f;
  uint64_t seed = 1;
};

/// \brief Generated network with geometry and latent district structure.
struct SyntheticRoadNetwork {
  graph::Graph graph;
  std::vector<float> x;  // node coordinates, km
  std::vector<float> y;
  /// node -> district id in [0, num_districts)
  std::vector<int64_t> district;
  /// district -> functional type
  std::vector<DistrictType> district_type;
};

/// \brief Generates a connected synthetic sensor network.
SyntheticRoadNetwork GenerateRoadNetwork(const RoadNetworkConfig& config);

/// \brief Hop distances from `source` (BFS, unweighted); unreachable = -1.
std::vector<int64_t> HopDistances(const graph::Graph& graph, int64_t source);

}  // namespace dyhsl::data

#endif  // DYHSL_DATA_ROAD_NETWORK_GEN_H_
