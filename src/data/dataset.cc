#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::data {
namespace {

DatasetSpec MakeSpec(std::string name, int64_t paper_nodes,
                     int64_t paper_edges, double node_scale, int64_t days,
                     uint64_t seed) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.network.num_nodes =
      std::max<int64_t>(12, static_cast<int64_t>(paper_nodes * node_scale));
  // Scale edges by the same factor, preserving the paper's |E|/|V| ratio.
  double ratio = static_cast<double>(paper_edges) / paper_nodes;
  spec.network.target_edges = std::max<int64_t>(
      spec.network.num_nodes - 1,
      static_cast<int64_t>(ratio * spec.network.num_nodes));
  spec.network.num_districts =
      std::max<int64_t>(3, spec.network.num_nodes / 24);
  spec.network.seed = seed;
  spec.sim.num_days = days;
  spec.sim.seed = seed * 1000 + 17;
  return spec;
}

}  // namespace

DatasetSpec DatasetSpec::Pems03Like(double node_scale, int64_t days,
                                    uint64_t seed) {
  return MakeSpec("SynPEMS03", 358, 547, node_scale, days, seed);
}
DatasetSpec DatasetSpec::Pems04Like(double node_scale, int64_t days,
                                    uint64_t seed) {
  return MakeSpec("SynPEMS04", 307, 340, node_scale, days, seed);
}
DatasetSpec DatasetSpec::Pems07Like(double node_scale, int64_t days,
                                    uint64_t seed) {
  return MakeSpec("SynPEMS07", 883, 866, node_scale, days, seed);
}
DatasetSpec DatasetSpec::Pems08Like(double node_scale, int64_t days,
                                    uint64_t seed) {
  return MakeSpec("SynPEMS08", 170, 295, node_scale, days, seed);
}

std::vector<DatasetSpec> DatasetSpec::AllPemsLike(double node_scale,
                                                  int64_t days) {
  return {Pems03Like(node_scale, days), Pems04Like(node_scale, days),
          Pems07Like(node_scale, days), Pems08Like(node_scale, days)};
}

void StandardScaler::Fit(const tensor::Tensor& series, int64_t fit_steps) {
  DYHSL_CHECK_EQ(series.dim(), 2);
  DYHSL_CHECK_LE(fit_steps, series.size(0));
  int64_t n = series.size(1);
  const float* p = series.data();
  double sum = 0.0, sq = 0.0;
  int64_t count = fit_steps * n;
  for (int64_t i = 0; i < count; ++i) {
    sum += p[i];
    sq += static_cast<double>(p[i]) * p[i];
  }
  mean_ = static_cast<float>(sum / count);
  double var = sq / count - static_cast<double>(mean_) * mean_;
  std_ = static_cast<float>(std::sqrt(std::max(var, 1e-6)));
}

TrafficDataset TrafficDataset::Generate(const DatasetSpec& spec) {
  TrafficDataset ds;
  ds.name_ = spec.name;
  ds.network_ = GenerateRoadNetwork(spec.network);
  ds.traffic_ = SimulateTraffic(ds.network_, spec.sim);

  int64_t steps = ds.traffic_.flow.size(0);
  int64_t window = ds.history_ + ds.horizon_;
  int64_t num_windows = steps - window + 1;
  DYHSL_CHECK_GT(num_windows, 10);
  // Chronological 60/20/20 split over window start positions.
  int64_t train_end = num_windows * 6 / 10;
  int64_t val_end = num_windows * 8 / 10;
  ds.train_ = {0, train_end};
  ds.val_ = {train_end, val_end};
  ds.test_ = {val_end, num_windows};
  // Scaler sees only steps covered by training windows.
  ds.scaler_.Fit(ds.traffic_.flow, train_end + window - 1);
  return ds;
}

tensor::Tensor TrafficDataset::MakeInput(int64_t t0) const {
  int64_t n = num_nodes();
  int64_t spd = traffic_.steps_per_day;
  tensor::Tensor x({history_, n, num_features()});
  const float* flow = traffic_.flow.data();
  float* px = x.data();
  for (int64_t t = 0; t < history_; ++t) {
    int64_t step = t0 + t;
    float tod = static_cast<float>(step % spd) / static_cast<float>(spd);
    float dow = static_cast<float>((step / spd) % 7) / 7.0f;
    for (int64_t i = 0; i < n; ++i) {
      float* f = px + (t * n + i) * num_features();
      f[0] = scaler_.Transform(flow[step * n + i]);
      f[1] = tod;
      f[2] = dow;
    }
  }
  return x;
}

tensor::Tensor TrafficDataset::MakeTarget(int64_t t0) const {
  int64_t n = num_nodes();
  tensor::Tensor y({horizon_, n});
  const float* flow = traffic_.flow.data();
  float* py = y.data();
  for (int64_t t = 0; t < horizon_; ++t) {
    int64_t step = t0 + history_ + t;
    for (int64_t i = 0; i < n; ++i) {
      py[t * n + i] = flow[step * n + i];
    }
  }
  return y;
}

BatchIterator::BatchIterator(const TrafficDataset* dataset,
                             TrafficDataset::SplitRange range,
                             int64_t batch_size, bool shuffle, uint64_t seed)
    : dataset_(dataset),
      range_(range),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  DYHSL_CHECK_GT(batch_size, 0);
  order_.resize(range.size());
  for (int64_t i = 0; i < range.size(); ++i) order_[i] = range.begin + i;
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (shuffle_) rng_.Shuffle(&order_);
}

bool BatchIterator::Next(Batch* batch) {
  if (cursor_ >= static_cast<int64_t>(order_.size())) return false;
  int64_t b = std::min<int64_t>(batch_size_,
                                static_cast<int64_t>(order_.size()) - cursor_);
  int64_t t_hist = dataset_->history();
  int64_t t_hor = dataset_->horizon();
  int64_t n = dataset_->num_nodes();
  int64_t f = dataset_->num_features();
  batch->x = tensor::Tensor({b, t_hist, n, f});
  batch->y = tensor::Tensor({b, t_hor, n});
  batch->window_starts.clear();
  for (int64_t k = 0; k < b; ++k) {
    int64_t t0 = order_[cursor_ + k];
    batch->window_starts.push_back(t0);
    tensor::Tensor x = dataset_->MakeInput(t0);
    tensor::Tensor y = dataset_->MakeTarget(t0);
    std::copy(x.data(), x.data() + x.numel(),
              batch->x.data() + k * x.numel());
    std::copy(y.data(), y.data() + y.numel(),
              batch->y.data() + k * y.numel());
  }
  cursor_ += b;
  return true;
}

int64_t BatchIterator::num_batches() const {
  return (static_cast<int64_t>(order_.size()) + batch_size_ - 1) /
         batch_size_;
}

}  // namespace dyhsl::data
