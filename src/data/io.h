// CSV persistence so real PEMS exports can replace the simulator, and so
// bench outputs (prediction series, incidence matrices) can be inspected.

#ifndef DYHSL_DATA_IO_H_
#define DYHSL_DATA_IO_H_

#include <string>

#include "src/core/status.h"
#include "src/tensor/tensor.h"

namespace dyhsl::data {

/// \brief Writes a 2-D tensor as CSV (one row per line).
Status SaveCsv(const tensor::Tensor& matrix, const std::string& path);

/// \brief Reads a CSV of floats into a 2-D tensor. All rows must have the
/// same number of columns. Blank lines are skipped.
Result<tensor::Tensor> LoadCsv(const std::string& path);

}  // namespace dyhsl::data

#endif  // DYHSL_DATA_IO_H_
