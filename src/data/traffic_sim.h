// Synthetic traffic-flow simulation over a generated road network.
//
// The simulator produces the phenomena the paper's model design targets:
//
//  * daily / weekly periodicity with district-type rush-hour profiles
//    (residential vs business vs mixed) -> multi-scale temporal patterns
//    (paper's MHCE motivation);
//  * district-level co-movement from a spatially smoothed AR(1) latent
//    process -> static non-pairwise "hyperedge" correlation (Fig. 1);
//  * incident events that suppress flow in a graph neighborhood with
//    hop-dependent delay -> *dynamic* hyperedges (the car-accident example
//    of Fig. 1);
//  * propagating congestion waves along roads -> pairwise spatio-temporal
//    correlation that plain GNN baselines can also exploit;
//  * measurement noise and short sensor dropouts (zero readings) -> the
//    masked-metric convention of the PEMS benchmarks.

#ifndef DYHSL_DATA_TRAFFIC_SIM_H_
#define DYHSL_DATA_TRAFFIC_SIM_H_

#include <cstdint>
#include <vector>

#include "src/data/road_network_gen.h"
#include "src/tensor/tensor.h"

namespace dyhsl::data {

/// \brief One localized incident (accident, closure) in the simulation.
struct TrafficEvent {
  int64_t start_step;
  int64_t duration_steps;
  int64_t epicenter;     // node id
  int64_t radius_hops;   // affected graph neighborhood
  float severity;        // peak fractional flow reduction in (0, 1)
};

/// \brief Simulation parameters. Defaults give PEMS-like 5-minute data.
struct TrafficSimConfig {
  int64_t steps_per_day = 288;  // 5-minute bins
  int64_t num_days = 7;
  /// Mean flow scale (vehicles / 5 min) before profile modulation.
  float base_flow = 220.0f;
  /// AR(1) coefficient of the shared latent demand process.
  float latent_rho = 0.95f;
  /// Weight of the latent process in the flow multiplier. Sized so that
  /// day-to-day demand drift is a first-order effect: purely periodic
  /// predictors (HA) miss it, while window-based models can track it.
  float latent_weight = 0.45f;
  /// Spatial smoothing rounds applied to latent innovations (district
  /// co-movement strength).
  int64_t smoothing_rounds = 3;
  /// Expected incidents per day over the whole network.
  float events_per_day = 5.0f;
  /// Hop delay per ring when an event spreads outward.
  int64_t event_lag_steps = 2;
  /// Measurement noise std as a fraction of base flow.
  float noise_frac = 0.03f;
  /// Probability a sensor starts a dropout burst at a step.
  float dropout_prob = 5e-4f;
  int64_t dropout_max_steps = 6;
  uint64_t seed = 7;
};

/// \brief Simulated series plus ground-truth event metadata.
struct TrafficData {
  /// Flow readings, shape (steps, N); zeros mark sensor dropouts.
  tensor::Tensor flow;
  std::vector<TrafficEvent> events;
  int64_t steps_per_day = 288;
};

/// \brief Runs the simulation.
TrafficData SimulateTraffic(const SyntheticRoadNetwork& network,
                            const TrafficSimConfig& config);

/// \brief Deterministic daily demand profile in [0.05, 1.2] for a district
/// type at time-of-day step `tod` (out of `steps_per_day`), weekday or
/// weekend. Exposed for tests and for the HA baseline's analysis.
float DailyProfile(DistrictType type, int64_t tod, int64_t steps_per_day,
                   bool weekend);

}  // namespace dyhsl::data

#endif  // DYHSL_DATA_TRAFFIC_SIM_H_
