// Dataset assembly: SynPEMS specs mirroring paper Table II, train/val/test
// splitting, standard scaling, sliding windows and mini-batching.

#ifndef DYHSL_DATA_DATASET_H_
#define DYHSL_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/data/road_network_gen.h"
#include "src/data/traffic_sim.h"
#include "src/tensor/tensor.h"

namespace dyhsl::data {

/// \brief A named synthetic dataset specification.
struct DatasetSpec {
  std::string name;
  RoadNetworkConfig network;
  TrafficSimConfig sim;

  /// \name Table II analogues
  ///
  /// Node/edge counts follow the paper's PEMS03/04/07/08 statistics
  /// multiplied by `node_scale` (1.0 = paper size); `days` controls the
  /// number of simulated days (the papers' datasets span 2-3 months).
  /// @{
  static DatasetSpec Pems03Like(double node_scale, int64_t days,
                                uint64_t seed = 3);
  static DatasetSpec Pems04Like(double node_scale, int64_t days,
                                uint64_t seed = 4);
  static DatasetSpec Pems07Like(double node_scale, int64_t days,
                                uint64_t seed = 7);
  static DatasetSpec Pems08Like(double node_scale, int64_t days,
                                uint64_t seed = 8);
  /// All four, in paper order.
  static std::vector<DatasetSpec> AllPemsLike(double node_scale,
                                              int64_t days);
  /// @}
};

/// \brief Z-score normalization fitted on training data (flow channel).
class StandardScaler {
 public:
  void Fit(const tensor::Tensor& series, int64_t fit_steps);
  float Transform(float raw) const { return (raw - mean_) / std_; }
  float Inverse(float scaled) const { return scaled * std_ + mean_; }
  float mean() const { return mean_; }
  float stddev() const { return std_; }

 private:
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

/// \brief Materialized dataset: network + series + split + scaler.
///
/// Windows follow the paper's protocol: 12 history steps -> 12 horizon
/// steps, 60/20/20 chronological split, metrics on raw (inverse-scaled)
/// flow with zero readings masked.
class TrafficDataset {
 public:
  /// \brief Generates network + traffic from a spec.
  static TrafficDataset Generate(const DatasetSpec& spec);

  const std::string& name() const { return name_; }
  const SyntheticRoadNetwork& network() const { return network_; }
  const TrafficData& traffic() const { return traffic_; }
  const StandardScaler& scaler() const { return scaler_; }

  int64_t num_nodes() const { return network_.graph.num_nodes(); }
  int64_t num_steps() const { return traffic_.flow.size(0); }

  int64_t history() const { return history_; }
  int64_t horizon() const { return horizon_; }
  /// Input feature count: scaled flow, time-of-day, day-of-week.
  int64_t num_features() const { return 3; }

  /// \brief Index ranges of window *start* positions per split.
  struct SplitRange {
    int64_t begin;
    int64_t end;  // exclusive
    int64_t size() const { return end - begin; }
  };
  SplitRange train_range() const { return train_; }
  SplitRange val_range() const { return val_; }
  SplitRange test_range() const { return test_; }

  /// \brief Builds input tensor (T, N, F) for the window starting at t0.
  tensor::Tensor MakeInput(int64_t t0) const;
  /// \brief Raw-flow target (T', N) for the window starting at t0.
  tensor::Tensor MakeTarget(int64_t t0) const;

 private:
  std::string name_;
  SyntheticRoadNetwork network_;
  TrafficData traffic_;
  StandardScaler scaler_;
  int64_t history_ = 12;
  int64_t horizon_ = 12;
  SplitRange train_{0, 0}, val_{0, 0}, test_{0, 0};
};

/// \brief Shuffling mini-batch iterator over one split of a dataset.
class BatchIterator {
 public:
  /// One batch: inputs (B, T, N, F) and raw-flow targets (B, T', N).
  struct Batch {
    tensor::Tensor x;
    tensor::Tensor y;
    std::vector<int64_t> window_starts;
  };

  BatchIterator(const TrafficDataset* dataset,
                TrafficDataset::SplitRange range, int64_t batch_size,
                bool shuffle, uint64_t seed);

  /// \brief Restarts an epoch (reshuffles when enabled).
  void Reset();

  /// \brief Fills `batch`; returns false at end of epoch.
  bool Next(Batch* batch);

  int64_t num_batches() const;

 private:
  const TrafficDataset* dataset_;
  TrafficDataset::SplitRange range_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace dyhsl::data

#endif  // DYHSL_DATA_DATASET_H_
