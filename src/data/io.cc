#include "src/data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace dyhsl::data {

Status SaveCsv(const tensor::Tensor& matrix, const std::string& path) {
  if (matrix.dim() != 2) {
    return Status::InvalidArgument("SaveCsv requires a 2-D tensor, got " +
                                   tensor::ShapeToString(matrix.shape()));
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  int64_t rows = matrix.size(0), cols = matrix.size(1);
  const float* p = matrix.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out << ',';
      out << p[r * cols + c];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<tensor::Tensor> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<float> values;
  int64_t rows = 0;
  int64_t cols = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    int64_t row_cols = 0;
    while (std::getline(ss, cell, ',')) {
      try {
        values.push_back(std::stof(cell));
      } catch (...) {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' in " + path);
      }
      ++row_cols;
    }
    if (cols < 0) {
      cols = row_cols;
    } else if (cols != row_cols) {
      return Status::InvalidArgument(
          "ragged CSV: line " + std::to_string(rows + 1) + " has " +
          std::to_string(row_cols) + " columns, expected " +
          std::to_string(cols));
    }
    ++rows;
  }
  if (rows == 0) return Status::InvalidArgument("empty CSV: " + path);
  return tensor::Tensor::FromVector({rows, cols}, values);
}

}  // namespace dyhsl::data
