// Tick-stream adapter over a simulated traffic series.
//
// Streaming clients (tests, benchmarks, the examples) replay a
// TrafficData series one tick at a time into serve::SessionManager.
// TickStream packages that replay: it walks the (steps, N) flow matrix
// row by row, exposing each row as a zero-copy (N,) raw-flow frame plus
// its absolute tick index — exactly the (tick, frame) pair
// SessionManager::Append consumes, with no per-tick materialization.

#ifndef DYHSL_DATA_STREAM_H_
#define DYHSL_DATA_STREAM_H_

#include <cstdint>

#include "src/data/traffic_sim.h"
#include "src/tensor/tensor.h"

namespace dyhsl::data {

/// \brief Forward iterator over the raw-flow rows of a TrafficData
/// series in [start_step, end_step). The underlying series is borrowed
/// and must outlive the stream.
class TickStream {
 public:
  /// \brief Streams ticks `start_step` (inclusive) to `end_step`
  /// (exclusive); `end_step` < 0 means the end of the series.
  explicit TickStream(const TrafficData& data, int64_t start_step = 0,
                      int64_t end_step = -1);

  bool Done() const { return step_ >= end_; }
  /// Absolute tick index of the current frame.
  int64_t tick() const { return step_; }
  /// \brief The current (N,) raw-flow frame as a zero-copy view into the
  /// series. Valid while the series is alive; Advance() does not
  /// invalidate previously returned frames.
  tensor::Tensor Frame() const;
  void Advance();

  int64_t num_nodes() const { return num_nodes_; }
  /// Ticks remaining, including the current one.
  int64_t remaining() const { return end_ - step_; }

 private:
  const tensor::Tensor* flow_;
  int64_t num_nodes_;
  int64_t step_;
  int64_t end_;
};

}  // namespace dyhsl::data

#endif  // DYHSL_DATA_STREAM_H_
