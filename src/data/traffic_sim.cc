#include "src/data/traffic_sim.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"
#include "src/core/rng.h"

namespace dyhsl::data {
namespace {

// Smooth bump centered at `center` (fraction of day) with width `width`.
float Bump(float tod_frac, float center, float width) {
  float d = tod_frac - center;
  return std::exp(-d * d / (2.0f * width * width));
}

}  // namespace

float DailyProfile(DistrictType type, int64_t tod, int64_t steps_per_day,
                   bool weekend) {
  float f = static_cast<float>(tod) / static_cast<float>(steps_per_day);
  // Baseline night-to-day swell common to all districts.
  float base = 0.12f + 0.5f * Bump(f, 0.55f, 0.22f);
  float morning = Bump(f, 7.8f / 24.0f, 0.045f);   // ~07:50
  float evening = Bump(f, 17.6f / 24.0f, 0.055f);  // ~17:40
  float midday = Bump(f, 12.5f / 24.0f, 0.09f);
  float profile = base;
  switch (type) {
    case DistrictType::kResidential:
      profile += weekend ? 0.25f * midday + 0.15f * evening
                         : 0.75f * morning + 0.45f * evening;
      break;
    case DistrictType::kBusiness:
      profile += weekend ? 0.12f * midday
                         : 0.35f * morning + 0.7f * evening + 0.3f * midday;
      break;
    case DistrictType::kMixed:
      profile += weekend ? 0.3f * midday + 0.2f * evening
                         : 0.5f * morning + 0.5f * evening + 0.2f * midday;
      break;
  }
  return std::min(profile, 1.2f);
}

TrafficData SimulateTraffic(const SyntheticRoadNetwork& network,
                            const TrafficSimConfig& config) {
  const int64_t n = network.graph.num_nodes();
  const int64_t steps = config.steps_per_day * config.num_days;
  DYHSL_CHECK_GT(n, 0);
  DYHSL_CHECK_GT(steps, 0);
  Rng rng(config.seed);

  // Neighbor lists for spatial smoothing of the latent process.
  std::vector<std::vector<int64_t>> neighbors(n);
  for (const graph::WeightedEdge& e : network.graph.edges()) {
    neighbors[e.src].push_back(e.dst);
  }

  // Per-node capacity scale (log-normal-ish) and per-node phase jitter so
  // sensors in one district are correlated but not identical.
  std::vector<float> capacity(n), phase_jitter(n);
  for (int64_t i = 0; i < n; ++i) {
    capacity[i] = std::exp(rng.Gaussian(0.0f, 0.25f));
    phase_jitter[i] = rng.Gaussian(0.0f, 0.012f);
  }

  // Schedule incident events.
  TrafficData out;
  out.steps_per_day = config.steps_per_day;
  double expected_events =
      static_cast<double>(config.events_per_day) * config.num_days;
  int64_t num_events = 0;
  // Poisson-ish: draw count as rounded Gaussian around the mean, >= 0.
  num_events = std::max<int64_t>(
      0, static_cast<int64_t>(std::lround(
             expected_events + rng.Gaussian(0.0f, std::sqrt(std::max(
                                                      1.0, expected_events))))));
  for (int64_t e = 0; e < num_events; ++e) {
    TrafficEvent event;
    event.start_step = static_cast<int64_t>(rng.NextBelow(steps));
    event.duration_steps = 9 + static_cast<int64_t>(rng.NextBelow(27));
    event.epicenter = static_cast<int64_t>(rng.NextBelow(n));
    event.radius_hops = 1 + static_cast<int64_t>(rng.NextBelow(3));
    event.severity = rng.Uniform(0.3f, 0.7f);
    out.events.push_back(event);
  }

  // Event impact multiplier per (step, node), assembled sparsely.
  std::vector<float> event_mult(steps * n, 1.0f);
  for (const TrafficEvent& event : out.events) {
    std::vector<int64_t> hops = HopDistances(network.graph, event.epicenter);
    for (int64_t i = 0; i < n; ++i) {
      if (hops[i] < 0 || hops[i] > event.radius_hops) continue;
      // Severity decays with distance; onset is delayed per ring.
      float local_sev =
          event.severity / (1.0f + 0.8f * static_cast<float>(hops[i]));
      int64_t start = event.start_step + hops[i] * config.event_lag_steps;
      int64_t end = std::min(steps, start + event.duration_steps);
      for (int64_t s = std::max<int64_t>(0, start); s < end; ++s) {
        // Ramp in/out over 2 steps for realism.
        float edge_ramp = 1.0f;
        if (s - start < 2) edge_ramp = 0.5f * static_cast<float>(s - start + 1);
        if (end - s <= 2) edge_ramp = std::min(
            edge_ramp, 0.5f * static_cast<float>(end - s));
        event_mult[s * n + i] *= 1.0f - local_sev * edge_ramp;
      }
    }
  }

  // Main loop: latent AR(1) with spatially smoothed innovations.
  out.flow = tensor::Tensor::Zeros({steps, n});
  std::vector<float> latent(n, 0.0f), innov(n), smooth(n);
  std::vector<int64_t> dropout_left(n, 0);
  float* flow = out.flow.data();
  float innov_std = std::sqrt(1.0f - config.latent_rho * config.latent_rho);
  for (int64_t s = 0; s < steps; ++s) {
    int64_t day = s / config.steps_per_day;
    int64_t tod = s % config.steps_per_day;
    bool weekend = (day % 7) >= 5;
    // Innovations, smoothed over the graph so districts co-move.
    for (int64_t i = 0; i < n; ++i) innov[i] = rng.Gaussian();
    for (int64_t round = 0; round < config.smoothing_rounds; ++round) {
      for (int64_t i = 0; i < n; ++i) {
        float acc = innov[i];
        for (int64_t j : neighbors[i]) acc += innov[j];
        smooth[i] = acc / static_cast<float>(1 + neighbors[i].size());
      }
      std::swap(innov, smooth);
    }
    for (int64_t i = 0; i < n; ++i) {
      latent[i] = config.latent_rho * latent[i] + innov_std * innov[i];
      DistrictType type =
          network.district_type[network.district[i]];
      int64_t jittered_tod =
          (tod +
           static_cast<int64_t>(phase_jitter[i] *
                                static_cast<float>(config.steps_per_day)) +
           config.steps_per_day) %
          config.steps_per_day;
      float profile =
          DailyProfile(type, jittered_tod, config.steps_per_day, weekend);
      float value = config.base_flow * capacity[i] * profile *
                    (1.0f + config.latent_weight * latent[i]) *
                    event_mult[s * n + i];
      value += config.base_flow * config.noise_frac * rng.Gaussian();
      value = std::max(value, 0.0f);
      // Sensor dropouts: bursts of exact zeros.
      if (dropout_left[i] > 0) {
        --dropout_left[i];
        value = 0.0f;
      } else if (rng.Bernoulli(config.dropout_prob)) {
        dropout_left[i] =
            static_cast<int64_t>(rng.NextBelow(config.dropout_max_steps)) + 1;
        value = 0.0f;
      }
      flow[s * n + i] = value;
    }
  }
  return out;
}

}  // namespace dyhsl::data
