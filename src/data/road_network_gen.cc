#include "src/data/road_network_gen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "src/core/check.h"
#include "src/core/rng.h"

namespace dyhsl::data {
namespace {

float Distance(const SyntheticRoadNetwork& net, int64_t a, int64_t b) {
  float dx = net.x[a] - net.x[b];
  float dy = net.y[a] - net.y[b];
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

SyntheticRoadNetwork GenerateRoadNetwork(const RoadNetworkConfig& config) {
  DYHSL_CHECK_GE(config.num_nodes, 2);
  DYHSL_CHECK_GE(config.num_districts, 1);
  Rng rng(config.seed);
  SyntheticRoadNetwork net;
  int64_t n = config.num_nodes;
  int64_t target_edges =
      config.target_edges > 0
          ? config.target_edges
          : static_cast<int64_t>(1.5 * static_cast<double>(n));

  // District centers and functional types. Types cycle so every map has
  // residential, business and mixed areas (the Fig. 1 setting).
  std::vector<float> cx(config.num_districts), cy(config.num_districts);
  for (int64_t d = 0; d < config.num_districts; ++d) {
    cx[d] = rng.Uniform(0.15f, 0.85f) * config.map_size;
    cy[d] = rng.Uniform(0.15f, 0.85f) * config.map_size;
    net.district_type.push_back(static_cast<DistrictType>(d % 3));
  }

  // Nodes scattered around their district center.
  net.x.resize(n);
  net.y.resize(n);
  net.district.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t d = static_cast<int64_t>(rng.NextBelow(config.num_districts));
    net.district[i] = d;
    net.x[i] = cx[d] + rng.Gaussian(0.0f, config.district_spread);
    net.y[i] = cy[d] + rng.Gaussian(0.0f, config.district_spread);
  }

  net.graph = graph::Graph(n, {});
  std::set<std::pair<int64_t, int64_t>> used;
  // Distance-kernel weight; sigma chosen so intra-district edges get
  // weights well above the numerical floor.
  float sigma = config.district_spread * 1.5f;
  auto add_edge = [&](int64_t a, int64_t b) {
    if (a == b) return false;
    auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (used.count(key) > 0) return false;
    used.insert(key);
    float dist = Distance(net, a, b);
    float w = std::exp(-dist * dist / (2.0f * sigma * sigma));
    net.graph.AddUndirectedEdge(a, b, std::max(w, 0.05f));
    return true;
  };

  // Random-order nearest-neighbor spanning tree keeps the network
  // connected and road-like (each new node attaches to the closest
  // already-connected node).
  std::vector<int64_t> order(n);
  for (int64_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<int64_t> connected{order[0]};
  for (int64_t idx = 1; idx < n; ++idx) {
    int64_t node = order[idx];
    int64_t best = connected[0];
    float best_d = std::numeric_limits<float>::infinity();
    for (int64_t c : connected) {
      float d = Distance(net, node, c);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    add_edge(node, best);
    connected.push_back(node);
  }

  // Extra short-range edges up to the target count: propose random node,
  // connect to one of its nearest non-neighbors.
  int64_t guard = 50 * n;
  while (net.graph.UndirectedEdgeCount() < target_edges && guard-- > 0) {
    int64_t a = static_cast<int64_t>(rng.NextBelow(n));
    int64_t best = -1;
    float best_d = std::numeric_limits<float>::infinity();
    for (int64_t b = 0; b < n; ++b) {
      if (b == a) continue;
      auto key = std::make_pair(std::min(a, b), std::max(a, b));
      if (used.count(key) > 0) continue;
      float d = Distance(net, a, b);
      if (d < best_d) {
        best_d = d;
        best = b;
      }
    }
    if (best >= 0) add_edge(a, best);
  }
  return net;
}

std::vector<int64_t> HopDistances(const graph::Graph& graph, int64_t source) {
  std::vector<std::vector<int64_t>> adj(graph.num_nodes());
  for (const graph::WeightedEdge& e : graph.edges()) {
    adj[e.src].push_back(e.dst);
  }
  std::vector<int64_t> dist(graph.num_nodes(), -1);
  std::queue<int64_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    int64_t u = frontier.front();
    frontier.pop();
    for (int64_t v : adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace dyhsl::data
