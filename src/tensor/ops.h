// Eager kernels over Tensor: elementwise (with numpy-style broadcasting),
// matrix products, reductions, movement ops, pooling and convolution.
//
// These are the forward *and* backward building blocks used by the autograd
// layer (src/autograd); they contain no differentiation logic themselves.

#ifndef DYHSL_TENSOR_OPS_H_
#define DYHSL_TENSOR_OPS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \name Broadcasting
/// @{

/// \brief Numpy-style broadcast result shape; aborts on incompatibility.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// \brief Sums `t` over its broadcast axes so the result has `target` shape.
/// Inverse of broadcasting, used by gradient accumulation.
Tensor ReduceToShape(const Tensor& t, const Shape& target);
/// @}

/// \name Elementwise binary (broadcasting)
/// @{
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
/// @}

/// \name Elementwise with scalar
/// @{
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
/// @}

/// \name In-place updates (same shape, no broadcast)
/// @{
/// dst += src
void AddInPlace(Tensor* dst, const Tensor& src);
/// dst += alpha * src
void AxpyInPlace(Tensor* dst, float alpha, const Tensor& src);
/// dst *= s
void ScaleInPlace(Tensor* dst, float s);

/// \brief dst += b where b broadcasts to dst's shape (dst's shape is the
/// broadcast result). Same per-element arithmetic as Add.
void AddBroadcastInPlace(Tensor* dst, const Tensor& b);

/// \brief dst = max(dst, 0) elementwise.
void ReluInPlace(Tensor* dst);

/// \brief dst += s elementwise.
void AddScalarInPlace(Tensor* dst, float s);
/// @}

/// \name Out-parameter (fused) variants
/// Write into a preallocated output instead of allocating one, so hot
/// loops (autograd backward, optimizer) run without per-op allocation.
/// @{
/// out = a + b (same shape; out may alias a or b).
void AddInto(const Tensor& a, const Tensor& b, Tensor* out);
/// @}

/// \name Elementwise unary
/// @{
Tensor Neg(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float slope);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);
/// 1 where a > 0, else 0 (subgradient mask for Relu/Abs backward).
Tensor Heaviside(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);
/// @}

/// \name Matrix products
/// All matmuls run on the blocked, packed GEMM in src/tensor/gemm.h: every
/// trans_a/trans_b combination packs into unit-stride panels, and results
/// are bit-deterministic for any OpenMP thread count.
/// @{

/// \brief 2-D product C = op(A) * op(B), where op transposes when requested.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// \brief out = beta * out + op(A) op(B). beta == 0 never reads `out` (it
/// may be uninitialized); beta == 1 accumulates — the autograd backward
/// uses this to add matmul gradients straight into existing grad buffers.
void MatMulInto(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                float beta, Tensor* out);

/// \brief Batched product over the leading dim. `a` is (B, M, K) or 2-D
/// (M, K) shared across the batch; `b` is (B, K, N) or 2-D (K, N) shared.
/// Trans flags apply to the trailing two axes; a shared operand is packed
/// once and reused for every batch item.
Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
                     bool trans_b = false);

/// \brief Batched MatMulInto with the same shared-operand rules.
void BatchedMatMulInto(const Tensor& a, const Tensor& b, bool trans_a,
                       bool trans_b, float beta, Tensor* out);

/// \brief out (2-D) = beta * out + sum over the batch of op(A_b) op(B_b),
/// for 3-D `a` and `b`. This is the gradient of a batch-shared operand.
void BatchedMatMulReduceInto(const Tensor& a, const Tensor& b, bool trans_a,
                             bool trans_b, float beta, Tensor* out);
/// @}

/// \name Movement
/// @{
Tensor Transpose2D(const Tensor& a);
/// \brief General axis permutation (copies).
Tensor TransposePerm(const Tensor& a, const std::vector<int64_t>& perm);
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// \brief Stacks B equally-shaped items into one (B, ...) batch tensor.
/// B == 1 is zero-copy: the result is a Reshape view sharing items[0]'s
/// storage — no allocation, no memcpy — which is what lets the serving
/// packers pass a single request straight through. B > 1 allocates
/// through the current allocation path (arena inside a WorkspaceScope)
/// and copies each item into its batch slot.
Tensor PackBatch(const std::vector<Tensor>& items);
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length);
/// \brief out[i, :] = a[indices[i], :] for a 2-D `a`.
Tensor TakeRows(const Tensor& a, const std::vector<int64_t>& indices);
/// \brief dst[indices[i], :] += src[i, :] for 2-D tensors.
void ScatterAddRows(Tensor* dst, const std::vector<int64_t>& indices,
                    const Tensor& src);
/// @}

/// \name Reductions
/// @{
float SumAllScalar(const Tensor& a);
float MeanAllScalar(const Tensor& a);
Tensor Sum(const Tensor& a, int64_t axis, bool keepdims = false);
Tensor Mean(const Tensor& a, int64_t axis, bool keepdims = false);
/// @}

/// \brief Numerically stable softmax over the last axis.
Tensor SoftmaxLastAxis(const Tensor& a);

/// \brief In-place variant of SoftmaxLastAxis (no output allocation).
void SoftmaxLastAxisInPlace(Tensor* a);

/// \brief Elementwise 1 / sqrt(a + eps) (fused normalization denominator).
Tensor Rsqrt(const Tensor& a, float eps = 0.0f);

/// \brief Fused layer normalization over the last axis:
/// y = (x - mean) / sqrt(var + eps) * gamma + beta, with per-row mean/var
/// and 1-D gamma/beta of the row width. One pass per row instead of the
/// six-kernel Mean/Sub/Mul/Mean/Rsqrt/Add chain. When non-null, `xhat`
/// receives the normalized rows and `inv_std` (one value per row, last
/// axis 1) the reciprocal standard deviations — the quantities the
/// backward pass needs.
void LayerNormLastAxisInto(const Tensor& x, const Tensor& gamma,
                           const Tensor& beta, float eps, Tensor* y,
                           Tensor* xhat = nullptr, Tensor* inv_std = nullptr);

/// \brief Allocating convenience wrapper around LayerNormLastAxisInto.
Tensor LayerNormLastAxis(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps);

/// \brief Result of a pooling op; `argmax` holds flat input indices per
/// output element so the backward pass can scatter gradients.
struct PoolResult {
  Tensor values;
  std::vector<int64_t> argmax;
};

/// \brief Non-overlapping max pooling along `axis` with the given window.
/// size(axis) must be divisible by `window`.
PoolResult MaxPoolAxis(const Tensor& a, int64_t axis, int64_t window);

/// \brief MaxPoolAxis without the argmax bookkeeping (grad-free paths).
Tensor MaxPoolAxisValues(const Tensor& a, int64_t axis, int64_t window);

/// \name 1-D convolution (for TCN / STGCN / GraphWaveNet baselines)
/// @{

/// \brief x: (B, Cin, L), w: (Cout, Cin, K) -> (B, Cout, Lout) with
/// Lout = L + pad_left + pad_right - (K-1)*dilation. Zero padding.
Tensor Conv1d(const Tensor& x, const Tensor& w, int64_t dilation,
              int64_t pad_left, int64_t pad_right);
Tensor Conv1dBackwardInput(const Tensor& grad_out, const Tensor& w,
                           const Shape& x_shape, int64_t dilation,
                           int64_t pad_left);
Tensor Conv1dBackwardWeight(const Tensor& grad_out, const Tensor& x,
                            const Shape& w_shape, int64_t dilation,
                            int64_t pad_left);
/// @}

/// \brief Max over all elements (helper for tests/metrics).
float MaxAllScalar(const Tensor& a);

/// \brief True if shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_OPS_H_
