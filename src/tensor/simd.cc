// Scalar / AVX2 / AVX-512 implementations of the selection primitives and
// the cpuid dispatch that picks between them.
//
// The vector paths are compiled with per-function target attributes, so
// the translation unit builds (and the scalar table runs) on any x86-64
// baseline — including -DDYHSL_MARCH_NATIVE=OFF portable Release builds —
// and on non-x86 targets everything degrades to the scalar table.
//
// Equivalence contract: every level computes the same predicate
// (|x| compared exactly, no FTZ/DAZ, no reassociation) and the same
// lowest-index tie rule, so outputs are bit-identical across levels on
// NaN-free input. tests/sparse_kernels_test.cc asserts this property over
// odd/prime widths, all-equal ties, and denormals; keep it green when
// touching any path below.

#include "src/tensor/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "src/core/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DYHSL_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dyhsl::tensor::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference. Also the semantic ground truth the vector paths must
// reproduce bit-for-bit.
// ---------------------------------------------------------------------------

int64_t CountGeAbsScalar(const float* x, int64_t n, float t) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    count += std::fabs(x[i]) >= t ? 1 : 0;
  }
  return count;
}

int64_t CompressGeAbsScalar(const float* x, int64_t n, float t,
                            int32_t* out_idx) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(x[i]) >= t) out_idx[count++] = static_cast<int32_t>(i);
  }
  return count;
}

// Insertion select: the buffer of k magnitudes is held descending and
// starts at -1 (below every |v|), so the common case is one compare
// against the running k-th magnitude and only improving candidates pay the
// shift. Strict > on an ascending column scan gives the lower-column tie
// rule. out_idx doubles as the index half of the selection buffer.
void TopKSelectScalar(const float* row, int64_t n, int64_t k, float* scratch,
                      int64_t* out_idx) {
  if (k == n) {  // keep-everything fast path, shared by all levels
    std::iota(out_idx, out_idx + k, int64_t{0});
    return;
  }
  float* mag = scratch;  // k slots of the caller's scratch
  std::fill(mag, mag + k, -1.0f);
  for (int64_t c = 0; c < n; ++c) {
    float a = std::fabs(row[c]);
    if (a <= mag[k - 1]) continue;
    int64_t pos = k - 1;
    while (pos > 0 && mag[pos - 1] < a) {
      mag[pos] = mag[pos - 1];
      out_idx[pos] = out_idx[pos - 1];
      --pos;
    }
    mag[pos] = a;
    out_idx[pos] = c;
  }
  std::sort(out_idx, out_idx + k);
}

void TileRowUpdateScalar(const float* acc, float* c, int64_t n, float beta) {
  if (beta == 0.0f) {
    for (int64_t j = 0; j < n; ++j) c[j] = acc[j];
  } else if (beta == 1.0f) {
    for (int64_t j = 0; j < n; ++j) c[j] += acc[j];
  } else {
    for (int64_t j = 0; j < n; ++j) c[j] = beta * c[j] + acc[j];
  }
}

constexpr Ops kScalarOps = {CountGeAbsScalar, CompressGeAbsScalar,
                            TopKSelectScalar, TileRowUpdateScalar};

#ifdef DYHSL_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 (8-lane) paths.
// ---------------------------------------------------------------------------

// |x| via sign-bit clear: exact for every finite value incl. denormals.
__attribute__((target("avx2"))) inline __m256 Abs8(__m256 v) {
  return _mm256_and_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
}

__attribute__((target("avx2"))) int64_t CountGeAbsAvx2(const float* x,
                                                       int64_t n, float t) {
  const __m256 tv = _mm256_set1_ps(t);
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 cmp = _mm256_cmp_ps(Abs8(_mm256_loadu_ps(x + i)), tv, _CMP_GE_OQ);
    count += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_ps(cmp)));
  }
  for (; i < n; ++i) count += std::fabs(x[i]) >= t ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) int64_t CompressGeAbsAvx2(const float* x,
                                                          int64_t n, float t,
                                                          int32_t* out_idx) {
  const __m256 tv = _mm256_set1_ps(t);
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 cmp = _mm256_cmp_ps(Abs8(_mm256_loadu_ps(x + i)), tv, _CMP_GE_OQ);
    unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(cmp));
    // Bit-serial compress: one tzcnt per survivor, ascending by
    // construction. Survivors are sparse in the top-k workloads, so this
    // beats a shuffle-table compress on the common case.
    while (mask != 0u) {
      out_idx[count++] = static_cast<int32_t>(i) + __builtin_ctz(mask);
      mask &= mask - 1u;
    }
  }
  for (; i < n; ++i) {
    if (std::fabs(x[i]) >= t) out_idx[count++] = static_cast<int32_t>(i);
  }
  return count;
}

// Horizontal max of 8 lanes.
__attribute__((target("avx2"))) inline float HMax8(__m256 v) {
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

// Tournament select: k rounds of (vector max -> lowest index attaining it
// -> knock out). No data-dependent insertion shifts; the only variable
// work is the first-match scan, resolved by movemask + ctz. Magnitudes
// live in scratch, padded with -1 (below every |v| >= 0) so tails never
// need masking; knocked-out slots also become -1, which can never win
// while valid candidates remain (k <= n).
__attribute__((target("avx2"))) void TopKSelectAvx2(const float* row,
                                                    int64_t n, int64_t k,
                                                    float* scratch,
                                                    int64_t* out_idx) {
  if (k == n) {
    std::iota(out_idx, out_idx + k, int64_t{0});
    return;
  }
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(scratch + i, Abs8(_mm256_loadu_ps(row + i)));
  }
  for (; i < n; ++i) scratch[i] = std::fabs(row[i]);
  const int64_t padded = (n + 7) / 8 * 8;
  for (; i < padded; ++i) scratch[i] = -1.0f;

  for (int64_t t = 0; t < k; ++t) {
    __m256 best = _mm256_loadu_ps(scratch);
    for (int64_t j = 8; j < padded; j += 8) {
      best = _mm256_max_ps(best, _mm256_loadu_ps(scratch + j));
    }
    const __m256 bv = _mm256_set1_ps(HMax8(best));
    for (int64_t j = 0; j < padded; j += 8) {
      unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(scratch + j), bv, _CMP_EQ_OQ)));
      if (mask != 0u) {
        const int64_t idx = j + __builtin_ctz(mask);
        out_idx[t] = idx;
        scratch[idx] = -1.0f;
        break;
      }
    }
  }
  std::sort(out_idx, out_idx + k);
}

__attribute__((target("avx2"))) void TileRowUpdateAvx2(const float* acc,
                                                       float* c, int64_t n,
                                                       float beta) {
  // n <= 16: one masked pair of lanes. The lane mask (index < n) makes
  // the column-tail write-back branchless where the scalar loop peeled.
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (int64_t j = 0; j < n; j += 8) {
    const __m256i lane = _mm256_add_epi32(
        iota, _mm256_set1_epi32(static_cast<int>(j)));
    const __m256i mask =
        _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(n)), lane);
    const __m256 a = _mm256_maskload_ps(acc + j, mask);
    __m256 r;
    if (beta == 0.0f) {
      r = a;
    } else if (beta == 1.0f) {
      r = _mm256_add_ps(_mm256_maskload_ps(c + j, mask), a);
    } else {
      r = _mm256_add_ps(
          _mm256_mul_ps(_mm256_set1_ps(beta), _mm256_maskload_ps(c + j, mask)),
          a);
    }
    _mm256_maskstore_ps(c + j, mask, r);
  }
}

constexpr Ops kAvx2Ops = {CountGeAbsAvx2, CompressGeAbsAvx2, TopKSelectAvx2,
                          TileRowUpdateAvx2};

// ---------------------------------------------------------------------------
// AVX-512F (16-lane, native masks and compress-store) paths.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) inline __m512 Abs16(__m512 v) {
  return _mm512_abs_ps(v);
}

__attribute__((target("avx512f"))) int64_t CountGeAbsAvx512(const float* x,
                                                            int64_t n,
                                                            float t) {
  const __m512 tv = _mm512_set1_ps(t);
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    count += __builtin_popcount(_mm512_cmp_ps_mask(
        Abs16(_mm512_loadu_ps(x + i)), tv, _CMP_GE_OQ));
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1u);
    count += __builtin_popcount(_mm512_mask_cmp_ps_mask(
        tail, Abs16(_mm512_maskz_loadu_ps(tail, x + i)), tv, _CMP_GE_OQ));
  }
  return count;
}

__attribute__((target("avx512f"))) int64_t CompressGeAbsAvx512(
    const float* x, int64_t n, float t, int32_t* out_idx) {
  const __m512 tv = _mm512_set1_ps(t);
  const __m512i step = _mm512_set1_epi32(16);
  __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15);
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 m = _mm512_cmp_ps_mask(Abs16(_mm512_loadu_ps(x + i)), tv,
                                           _CMP_GE_OQ);
    // The hardware compress keeps lane (= index) order, so out_idx stays
    // ascending.
    _mm512_mask_compressstoreu_epi32(out_idx + count, m, iota);
    count += __builtin_popcount(m);
    iota = _mm512_add_epi32(iota, step);
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __mmask16 m = _mm512_mask_cmp_ps_mask(
        tail, Abs16(_mm512_maskz_loadu_ps(tail, x + i)), tv, _CMP_GE_OQ);
    _mm512_mask_compressstoreu_epi32(out_idx + count, m, iota);
    count += __builtin_popcount(m);
  }
  return count;
}

__attribute__((target("avx512f"))) void TopKSelectAvx512(const float* row,
                                                         int64_t n, int64_t k,
                                                         float* scratch,
                                                         int64_t* out_idx) {
  if (k == n) {
    std::iota(out_idx, out_idx + k, int64_t{0});
    return;
  }
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(scratch + i, Abs16(_mm512_loadu_ps(row + i)));
  }
  for (; i < n; ++i) scratch[i] = std::fabs(row[i]);
  const int64_t padded = (n + 15) / 16 * 16;
  for (; i < padded; ++i) scratch[i] = -1.0f;

  for (int64_t t = 0; t < k; ++t) {
    __m512 best = _mm512_loadu_ps(scratch);
    for (int64_t j = 16; j < padded; j += 16) {
      best = _mm512_max_ps(best, _mm512_loadu_ps(scratch + j));
    }
    const __m512 bv = _mm512_set1_ps(_mm512_reduce_max_ps(best));
    for (int64_t j = 0; j < padded; j += 16) {
      const __mmask16 mask =
          _mm512_cmp_ps_mask(_mm512_loadu_ps(scratch + j), bv, _CMP_EQ_OQ);
      if (mask != 0) {
        const int64_t idx = j + __builtin_ctz(mask);
        out_idx[t] = idx;
        scratch[idx] = -1.0f;
        break;
      }
    }
  }
  std::sort(out_idx, out_idx + k);
}

__attribute__((target("avx512f"))) void TileRowUpdateAvx512(const float* acc,
                                                            float* c,
                                                            int64_t n,
                                                            float beta) {
  const __mmask16 mask = static_cast<__mmask16>(
      n >= 16 ? 0xffffu : (1u << n) - 1u);
  const __m512 a = _mm512_maskz_loadu_ps(mask, acc);
  __m512 r;
  if (beta == 0.0f) {
    r = a;
  } else if (beta == 1.0f) {
    r = _mm512_add_ps(_mm512_maskz_loadu_ps(mask, c), a);
  } else {
    // mul + add (not FMA): matches the scalar path's two roundings so all
    // levels stay bit-identical.
    r = _mm512_add_ps(
        _mm512_mul_ps(_mm512_set1_ps(beta), _mm512_maskz_loadu_ps(mask, c)),
        a);
  }
  _mm512_mask_storeu_ps(c, mask, r);
}

constexpr Ops kAvx512Ops = {CountGeAbsAvx512, CompressGeAbsAvx512,
                            TopKSelectAvx512, TileRowUpdateAvx512};

#endif  // DYHSL_SIMD_X86

Level Detect() {
#ifdef DYHSL_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

// DYHSL_SIMD override, clamped to hardware support. Empty/unset keeps the
// detected level; unknown values warn and keep it too.
Level Resolve() {
  Level level = DetectedLevel();
  const char* env = std::getenv("DYHSL_SIMD");
  if (env == nullptr || env[0] == '\0') return level;
  Level requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Level::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Level::kAvx512;
  } else {
    DYHSL_LOG(Warning) << "DYHSL_SIMD=\"" << env
                       << "\" is not scalar|avx2|avx512; keeping detected "
                       << "level " << LevelName(level);
    return level;
  }
  if (static_cast<int>(requested) > static_cast<int>(level)) {
    DYHSL_LOG(Warning) << "DYHSL_SIMD=" << env
                       << " exceeds CPU support; clamping to "
                       << LevelName(level);
    return level;
  }
  return requested;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level level = Detect();
  return level;
}

Level ActiveLevel() {
  static const Level level = Resolve();
  return level;
}

const Ops& OpsFor(Level level) {
#ifdef DYHSL_SIMD_X86
  switch (level) {
    case Level::kAvx512:
      return kAvx512Ops;
    case Level::kAvx2:
      return kAvx2Ops;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return kScalarOps;
}

namespace internal {

const Ops* ResolveActiveOnce() {
  const Level level = ActiveLevel();
  DYHSL_LOG(Debug) << "simd dispatch: " << LevelName(level) << " (detected "
                   << LevelName(DetectedLevel()) << ")";
  return &OpsFor(level);
}

}  // namespace internal

}  // namespace dyhsl::tensor::simd
