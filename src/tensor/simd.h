// Runtime-dispatched SIMD utility layer for the selection/compaction
// micro-kernels of the sparse execution path.
//
// The DHSL sparse mode pays a per-step top-k selection over the learned
// incidence Λ (RowTopKPattern); profiled at ~6 ns/element, the branchy
// scalar insertion select — not the sparse products — was what kept the
// sparse step slower than dense. The primitives here vectorize that wall:
//
//  * count_ge_abs     — horizontal threshold count, #{i : |x[i]| >= t}
//  * compress_ge_abs  — masked compress-store of the indices that pass the
//                       same predicate (ascending order)
//  * topk_select      — selection of the k largest-|v| columns of a row
//                       without data-dependent insertion shifts
//  * tile_row_update  — masked partial-row write-back, shared with the
//                       GEMM micro-kernel's column-tail tiles
//
// Dispatch model: the best instruction set (scalar / AVX2 / AVX-512) is
// detected once at startup via cpuid and resolved into a function table;
// `Active()` returns that table, `OpsFor(level)` exposes every compiled
// level so tests can assert the vector paths are bit-identical to the
// scalar reference. The environment variable DYHSL_SIMD=scalar|avx2|avx512
// forces a level at or below what the CPU supports (requests above support
// are clamped with a warning; unknown values are ignored with a warning).
//
// Determinism: every primitive is pure integer/compare/gather work — no
// reassociated float accumulation — so all levels produce *identical*
// results on NaN-free input, including denormals (the kernels never enable
// FTZ/DAZ; this translation unit must not be compiled with -ffast-math).
// Selection ties break toward the lower column index at every level,
// matching the documented RowTopK contract.

#ifndef DYHSL_TENSOR_SIMD_H_
#define DYHSL_TENSOR_SIMD_H_

#include <cstdint>

namespace dyhsl::tensor::simd {

/// \brief Instruction-set levels the dispatcher can select. Levels are
/// ordered: a CPU supporting kAvx512 also runs the kAvx2 and kScalar
/// tables.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// \brief Human-readable level name ("scalar", "avx2", "avx512").
const char* LevelName(Level level);

/// \brief Widest vector width (floats) any level may touch. topk_select
/// scratch buffers must be padded to a multiple of this.
constexpr int64_t kMaxLanes = 16;

/// \brief Scratch floats required by topk_select for an n-column row.
constexpr int64_t TopKScratchFloats(int64_t n) {
  return (n + kMaxLanes - 1) / kMaxLanes * kMaxLanes;
}

/// \brief The per-level function table. All function pointers are non-null
/// at every level.
struct Ops {
  /// #{i in [0, n) : |x[i]| >= t}. NaN entries never count.
  int64_t (*count_ge_abs)(const float* x, int64_t n, float t);

  /// Writes the indices i with |x[i]| >= t to out_idx in ascending order
  /// (capacity n) and returns how many passed.
  int64_t (*compress_ge_abs)(const float* x, int64_t n, float t,
                             int32_t* out_idx);

  /// Selects the k largest-magnitude entries of row[0, n), ties toward the
  /// lower index, and writes their indices to out_idx (capacity k) in
  /// ascending index order. Requires 1 <= k <= n. scratch must hold
  /// TopKScratchFloats(n) floats; its contents are clobbered.
  void (*topk_select)(const float* row, int64_t n, int64_t k, float* scratch,
                      int64_t* out_idx);

  /// c[0, n) = beta * c + acc for the partial-width tiles of the GEMM
  /// write-back (beta 0 overwrites, 1 accumulates). n <= kMaxLanes.
  void (*tile_row_update)(const float* acc, float* c, int64_t n, float beta);
};

/// \brief Best level the CPU supports (cpuid probe, cached; ignores the
/// environment override).
Level DetectedLevel();

/// \brief The level Active() resolved to: DetectedLevel() clamped by the
/// DYHSL_SIMD override. Resolved once, on first use.
Level ActiveLevel();

/// \brief Function table for an explicit level (tests compare vector paths
/// against OpsFor(Level::kScalar)). Levels above DetectedLevel() return
/// valid pointers but must not be called on unsupported hardware.
const Ops& OpsFor(Level level);

namespace internal {
/// Resolves DetectedLevel() + DYHSL_SIMD into a table (logs the choice).
const Ops* ResolveActiveOnce();
}  // namespace internal

/// \brief The startup-selected function table every kernel dispatches
/// through.
inline const Ops& Active() {
  static const Ops* ops = internal::ResolveActiveOnce();
  return *ops;
}

}  // namespace dyhsl::tensor::simd

#endif  // DYHSL_TENSOR_SIMD_H_
