#include "src/tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/core/check.h"
#include "src/core/parallel.h"
#include "src/tensor/simd.h"

namespace dyhsl::tensor {

namespace {

// Shared CSR × dense core: out(b, r, :) = beta * out + sum_k v_k x(b, c_k, :)
// for the structure given by row_ptr/col_idx. `val_perm`, when non-null,
// indirects value reads (the transposed-pattern case). Parallelism is over
// (batch, row) only — each output row is accumulated sequentially in CSR
// order, so results are bit-identical for every OpenMP thread count.
void SpMMCore(int64_t batch, int64_t rows, const int64_t* row_ptr,
              const int64_t* col_idx, const float* vals,
              const int64_t* val_perm, const float* px, int64_t x_rows,
              int64_t f, float beta, float* po) {
  const int64_t x_step = x_rows * f;
  const int64_t o_step = rows * f;
  const int64_t nnz = row_ptr[rows];
  // Scoped to the calling thread's ThreadBudget slice (see
  // core::TeamScope): engine workers' sparse products stay inside their
  // partition of the machine instead of each forking a full team.
  const int team = core::TeamThreads();
  (void)team;  // consumed only by the pragma; unused without OpenMP
#pragma omp parallel for collapse(2) num_threads(team) \
    if (batch * nnz * f > 16384)
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t r = 0; r < rows; ++r) {
      float* orow = po + b * o_step + r * f;
      const int64_t k0 = row_ptr[r], k1 = row_ptr[r + 1];
      int64_t k = k0;
      if (beta == 0.0f) {
        // The first nonzero initializes the row (out may be uninitialized).
        if (k0 == k1) {
          for (int64_t c = 0; c < f; ++c) orow[c] = 0.0f;
          continue;
        }
        const float v = vals[val_perm != nullptr ? val_perm[k0] : k0];
        const float* xrow = px + b * x_step + col_idx[k0] * f;
        for (int64_t c = 0; c < f; ++c) orow[c] = v * xrow[c];
        k = k0 + 1;
      } else if (beta != 1.0f) {
        for (int64_t c = 0; c < f; ++c) orow[c] *= beta;
      }
      for (; k < k1; ++k) {
        const float v = vals[val_perm != nullptr ? val_perm[k] : k];
        const float* xrow = px + b * x_step + col_idx[k] * f;
        for (int64_t c = 0; c < f; ++c) orow[c] += v * xrow[c];
      }
    }
  }
}

struct DenseDims {
  int64_t batch;
  int64_t rows;
  int64_t f;
};

DenseDims CheckDense(const Tensor& x, int64_t expected_rows,
                     const char* what) {
  DYHSL_CHECK_MSG(x.dim() == 2 || x.dim() == 3,
                  std::string(what) + ": dense operand must be 2-D or 3-D");
  bool batched = x.dim() == 3;
  DenseDims d;
  d.batch = batched ? x.size(0) : 1;
  d.rows = batched ? x.size(1) : x.size(0);
  d.f = batched ? x.size(2) : x.size(1);
  DYHSL_CHECK_MSG(d.rows == expected_rows,
                  std::string(what) + " dim mismatch: dense operand has " +
                      std::to_string(d.rows) + " rows, expected " +
                      std::to_string(expected_rows));
  return d;
}

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                  std::vector<Triplet> triplets) {
  DYHSL_CHECK_GE(rows, 0);
  DYHSL_CHECK_GE(cols, 0);
  for (const Triplet& t : triplets) {
    DYHSL_CHECK_GE(t.row, 0);
    DYHSL_CHECK_LT(t.row, rows);
    DYHSL_CHECK_GE(t.col, 0);
    DYHSL_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  int64_t last_row = -1;
  int64_t last_col = -1;
  for (const Triplet& t : triplets) {
    if (t.row == last_row && t.col == last_col) {
      m.values_.back() += t.value;  // merge duplicate coordinate
      continue;
    }
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
    m.row_ptr_[t.row + 1] += 1;
    last_row = t.row;
    last_col = t.col;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (int64_t i = 0; i < n; ++i) t.push_back({i, i, 1.0f});
  return FromTriplets(n, n, std::move(t));
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> t;
  t.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(t));
}

CsrMatrix CsrMatrix::WithValues(std::vector<float> values) const {
  DYHSL_CHECK_EQ(static_cast<int64_t>(values.size()), nnz());
  CsrMatrix m = *this;
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  CsrMatrix m = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k];
    }
    if (sum <= 0.0) continue;
    float inv = static_cast<float>(1.0 / sum);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.values_[k] *= inv;
    }
  }
  return m;
}

CsrMatrix CsrMatrix::SymNormalized() const {
  DYHSL_CHECK_EQ(rows_, cols_);
  std::vector<double> degree(rows_, 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      degree[r] += values_[k];
    }
  }
  std::vector<float> dinv(rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    dinv[r] = degree[r] > 0.0
                  ? static_cast<float>(1.0 / std::sqrt(degree[r]))
                  : 0.0f;
  }
  CsrMatrix m = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.values_[k] *= dinv[r] * dinv[col_idx_[k]];
    }
  }
  return m;
}

CsrMatrix CsrMatrix::WithSelfLoops(float weight) const {
  DYHSL_CHECK_EQ(rows_, cols_);
  std::vector<Triplet> t;
  t.reserve(values_.size() + rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({r, col_idx_[k], values_[k]});
    }
    t.push_back({r, r, weight});
  }
  return FromTriplets(rows_, cols_, std::move(t));
}

Tensor CsrMatrix::ToDense() const {
  Tensor d = Tensor::Zeros({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d.data()[r * cols_ + col_idx_[k]] += values_[k];
    }
  }
  return d;
}

namespace {

// Fills t_row_ptr / t_col_idx / t_perm from the (already set) forward
// structure. Counting-sort transpose: scanning A's rows in order fills
// each transpose row with ascending column (= original row) indices.
void BuildPatternTranspose(CsrPattern* p) {
  const int64_t nnz = p->nnz();
  p->t_row_ptr.assign(p->cols + 1, 0);
  for (int64_t k = 0; k < nnz; ++k) p->t_row_ptr[p->col_idx[k] + 1] += 1;
  for (int64_t c = 0; c < p->cols; ++c) p->t_row_ptr[c + 1] += p->t_row_ptr[c];
  p->t_col_idx.resize(nnz);
  p->t_perm.resize(nnz);
  std::vector<int64_t> cursor(p->t_row_ptr.begin(), p->t_row_ptr.end() - 1);
  for (int64_t r = 0; r < p->rows; ++r) {
    for (int64_t k = p->row_ptr[r]; k < p->row_ptr[r + 1]; ++k) {
      int64_t slot = cursor[p->col_idx[k]]++;
      p->t_col_idx[slot] = r;
      p->t_perm[slot] = k;
    }
  }
}

}  // namespace

std::shared_ptr<const CsrPattern> CsrPattern::FromCsr(const CsrMatrix& m) {
  auto p = std::make_shared<CsrPattern>();
  p->rows = m.rows();
  p->cols = m.cols();
  p->row_ptr = m.row_ptr();
  p->col_idx = m.col_idx();
  BuildPatternTranspose(p.get());
  return p;
}

std::shared_ptr<const CsrPattern> RowTopKPattern(const float* data,
                                                 int64_t rows, int64_t cols,
                                                 int64_t k,
                                                 float* out_values) {
  DYHSL_CHECK_GE(k, 1);
  k = std::min(k, cols);
  auto p = std::make_shared<CsrPattern>();
  p->rows = rows;
  p->cols = cols;
  p->row_ptr.resize(rows + 1);
  for (int64_t r = 0; r <= rows; ++r) p->row_ptr[r] = r * k;
  p->col_idx.resize(rows * k);
  // Per-row selection through the startup-dispatched SIMD table: identical
  // indices at every level (largest magnitude, ties toward the lower
  // column, ascending output — the documented RowTopK contract). Rows are
  // independent, so the loop parallelizes with per-thread scratch and
  // stays bit-identical for every thread count.
  const simd::Ops& ops = simd::Active();
  const int select_team = core::TeamThreads();
  (void)select_team;
#pragma omp parallel num_threads(select_team) if (rows * cols > 16384)
  {
    std::vector<float> scratch(simd::TopKScratchFloats(cols));
#pragma omp for
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = data + r * cols;
      int64_t* cidx = p->col_idx.data() + r * k;
      ops.topk_select(row, cols, k, scratch.data(), cidx);
      if (out_values != nullptr) {
        for (int64_t i = 0; i < k; ++i) out_values[r * k + i] = row[cidx[i]];
      }
    }
  }
  BuildPatternTranspose(p.get());
  return p;
}

void GatherPatternSlice(const CsrPattern& p, const float* dense,
                        float* out_values) {
  const int64_t cols = p.cols;
  const int team = core::TeamThreads();
  (void)team;
#pragma omp parallel for num_threads(team) if (p.nnz() > 16384)
  for (int64_t r = 0; r < p.rows; ++r) {
    const float* row = dense + r * cols;
    for (int64_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
      out_values[k] = row[p.col_idx[k]];
    }
  }
}

int64_t CountDriftedRows(const CsrPattern& p, const float* dense) {
  DYHSL_CHECK_GT(p.rows, 0);
  const int64_t k = p.nnz() / p.rows;
  DYHSL_CHECK_EQ(p.nnz(), p.rows * k);  // uniform-k (RowTopKPattern) only
  const simd::Ops& ops = simd::Active();
  const int64_t cols = p.cols;
  const int team = core::TeamThreads();
  (void)team;
  int64_t drifted = 0;
#pragma omp parallel for num_threads(team) reduction(+ : drifted) \
    if (p.rows * cols > 16384)
  for (int64_t r = 0; r < p.rows; ++r) {
    const float* row = dense + r * cols;
    const int64_t* cidx = p.col_idx.data() + r * k;
    // Weakest kept magnitude under the *current* values...
    float t = std::fabs(row[cidx[0]]);
    for (int64_t i = 1; i < k; ++i) {
      t = std::min(t, std::fabs(row[cidx[i]]));
    }
    // ...and the vectorized margin test: exactly the k kept entries reach
    // it iff the kept set is still the exact top-k. Any non-kept entry at
    // or above t (a flipped k-th/(k+1)-th margin) inflates the count;
    // boundary ties inflate it too, which errs toward re-selection.
    if (ops.count_ge_abs(row, cols, t) != k) ++drifted;
  }
  return drifted;
}

TopKPatternCache::TopKPatternCache() : TopKPatternCache(Options()) {}

TopKPatternCache::TopKPatternCache(Options options) : options_(options) {
  DYHSL_CHECK_GE(options_.drift_threshold, 0.0f);
  DYHSL_CHECK_LE(options_.drift_threshold, 1.0f);
}

void TopKPatternCache::Clear() { entries_.clear(); }

std::shared_ptr<const CsrPattern> TopKPatternCache::SelectOrReuse(
    int64_t slot, const float* data, int64_t rows, int64_t cols, int64_t k) {
  DYHSL_CHECK_GE(k, 1);
  k = std::min(k, cols);
  Entry* entry = nullptr;
  for (Entry& e : entries_) {
    if (e.slot == slot && e.rows == rows && e.cols == cols && e.k == k) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    entries_.push_back({slot, rows, cols, k, nullptr});
    entry = &entries_.back();
  }
  if (entry->pattern != nullptr) {
    const int64_t drifted = CountDriftedRows(*entry->pattern, data);
    stats_.drifted_rows += drifted;
    if (static_cast<float>(drifted) <=
        options_.drift_threshold * static_cast<float>(rows)) {
      ++stats_.reuses;
      return entry->pattern;
    }
    ++stats_.drift_reselects;
  } else {
    ++stats_.selects;
  }
  entry->pattern = RowTopKPattern(data, rows, cols, k);
  return entry->pattern;
}

Tensor SpMM(const CsrMatrix& a, const Tensor& x) {
  DenseDims d = CheckDense(x, a.cols(), "SpMM");
  Shape out_shape = x.dim() == 3 ? Shape{d.batch, a.rows(), d.f}
                                 : Shape{a.rows(), d.f};
  Tensor out(out_shape);
  SpMMCore(d.batch, a.rows(), a.row_ptr().data(), a.col_idx().data(),
           a.values().data(), nullptr, x.data(), d.rows, d.f, 0.0f,
           out.data());
  return out;
}

void SpMMInto(const CsrMatrix& a, const Tensor& x, float beta, Tensor* out) {
  DenseDims d = CheckDense(x, a.cols(), "SpMMInto");
  Shape out_shape = x.dim() == 3 ? Shape{d.batch, a.rows(), d.f}
                                 : Shape{a.rows(), d.f};
  DYHSL_CHECK_MSG(out->shape() == out_shape,
                  "SpMMInto: out shape " + ShapeToString(out->shape()) +
                      " != expected " + ShapeToString(out_shape));
  SpMMCore(d.batch, a.rows(), a.row_ptr().data(), a.col_idx().data(),
           a.values().data(), nullptr, x.data(), d.rows, d.f, beta,
           out->data());
}

Tensor SpMMPattern(const CsrPattern& p, const Tensor& values, const Tensor& x,
                   bool trans_a) {
  int64_t out_rows = trans_a ? p.cols : p.rows;
  int64_t in_rows = trans_a ? p.rows : p.cols;
  DenseDims d = CheckDense(x, in_rows, "SpMMPattern");
  Shape out_shape = x.dim() == 3 ? Shape{d.batch, out_rows, d.f}
                                 : Shape{out_rows, d.f};
  Tensor out(out_shape);
  SpMMPatternInto(p, values, x, trans_a, 0.0f, &out);
  return out;
}

void SpMMPatternInto(const CsrPattern& p, const Tensor& values,
                     const Tensor& x, bool trans_a, float beta, Tensor* out) {
  DYHSL_CHECK_EQ(values.numel(), p.nnz());
  int64_t out_rows = trans_a ? p.cols : p.rows;
  int64_t in_rows = trans_a ? p.rows : p.cols;
  DenseDims d = CheckDense(x, in_rows, "SpMMPatternInto");
  Shape out_shape = x.dim() == 3 ? Shape{d.batch, out_rows, d.f}
                                 : Shape{out_rows, d.f};
  DYHSL_CHECK_MSG(out->shape() == out_shape,
                  "SpMMPatternInto: out shape " + ShapeToString(out->shape()) +
                      " != expected " + ShapeToString(out_shape));
  if (trans_a) {
    SpMMCore(d.batch, p.cols, p.t_row_ptr.data(), p.t_col_idx.data(),
             values.data(), p.t_perm.data(), x.data(), d.rows, d.f, beta,
             out->data());
  } else {
    SpMMCore(d.batch, p.rows, p.row_ptr.data(), p.col_idx.data(),
             values.data(), nullptr, x.data(), d.rows, d.f, beta,
             out->data());
  }
}

void SpMMPatternSliceInto(const CsrPattern& p, const float* values,
                          const float* x, int64_t f, bool trans_a, float beta,
                          float* out) {
  if (trans_a) {
    SpMMCore(1, p.cols, p.t_row_ptr.data(), p.t_col_idx.data(), values,
             p.t_perm.data(), x, p.rows, f, beta, out);
  } else {
    SpMMCore(1, p.rows, p.row_ptr.data(), p.col_idx.data(), values, nullptr,
             x, p.cols, f, beta, out);
  }
}

Tensor Sddmm(const CsrPattern& p, const Tensor& a, const Tensor& b) {
  DenseDims da = CheckDense(a, p.rows, "Sddmm lhs");
  DenseDims db = CheckDense(b, p.cols, "Sddmm rhs");
  DYHSL_CHECK_EQ(a.dim(), b.dim());
  DYHSL_CHECK_EQ(da.batch, db.batch);
  DYHSL_CHECK_EQ(da.f, db.f);
  Tensor out({p.nnz()});
  const int64_t a_step = da.rows * da.f;
  const int64_t b_step = db.rows * db.f;
  // Parallel over A's rows; the batch reduction stays sequential per
  // nonzero, so the sum order (and the bits) never depend on thread count.
  const int64_t* row_ptr = p.row_ptr.data();
  const int64_t* col_idx = p.col_idx.data();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t d = da.f;
  const int64_t batch = da.batch;
  const int team = core::TeamThreads();
  (void)team;  // consumed only by the pragma; unused without OpenMP
#pragma omp parallel for num_threads(team) \
    if (p.nnz() * d * batch > 16384)
  for (int64_t r = 0; r < p.rows; ++r) {
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const int64_t c = col_idx[k];
      float acc = 0.0f;
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float* arow = pa + bi * a_step + r * d;
        const float* brow = pb + bi * b_step + c * d;
        for (int64_t j = 0; j < d; ++j) acc += arow[j] * brow[j];
      }
      po[k] = acc;
    }
  }
  return out;
}

void SddmmSliceInto(const CsrPattern& p, const float* a, const float* b,
                    int64_t d, float beta, float* out_values) {
  const int64_t* row_ptr = p.row_ptr.data();
  const int64_t* col_idx = p.col_idx.data();
  const int team = core::TeamThreads();
  (void)team;  // consumed only by the pragma; unused without OpenMP
#pragma omp parallel for num_threads(team) \
    if (p.nnz() * d > 16384)
  for (int64_t r = 0; r < p.rows; ++r) {
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const float* arow = a + r * d;
      const float* brow = b + col_idx[k] * d;
      float acc = 0.0f;
      for (int64_t j = 0; j < d; ++j) acc += arow[j] * brow[j];
      out_values[k] = (beta == 0.0f ? 0.0f : beta * out_values[k]) + acc;
    }
  }
}

namespace {

// Rescales the kept entries of one row so the row sum is preserved.
// Rows whose kept sum is not positive are left unscaled: renormalization
// targets stochastic (nonnegative) matrices, where a nonpositive kept sum
// only occurs for all-zero rows.
void RenormalizeRow(std::vector<Triplet>* triplets, size_t row_begin,
                    double original_sum) {
  double kept = 0.0;
  for (size_t i = row_begin; i < triplets->size(); ++i) {
    kept += (*triplets)[i].value;
  }
  if (kept <= 0.0) return;
  float scale = static_cast<float>(original_sum / kept);
  for (size_t i = row_begin; i < triplets->size(); ++i) {
    (*triplets)[i].value *= scale;
  }
}

}  // namespace

CsrMatrix RowTopKSlice(const float* data, int64_t rows, int64_t cols,
                       int64_t k, bool renormalize) {
  DYHSL_CHECK_GE(k, 1);
  k = std::min(k, cols);
  std::vector<Triplet> triplets;
  triplets.reserve(rows * k);
  // Same dispatched selection as RowTopKPattern: largest magnitude first,
  // equal magnitudes break toward the lower column index, deterministic at
  // every dispatch level.
  const simd::Ops& ops = simd::Active();
  std::vector<float> scratch(simd::TopKScratchFloats(cols));
  std::vector<int64_t> order(k);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    ops.topk_select(row, cols, k, scratch.data(), order.data());
    size_t row_begin = triplets.size();
    double row_sum = 0.0;
    if (renormalize) {
      for (int64_t c = 0; c < cols; ++c) row_sum += row[c];
    }
    for (int64_t i = 0; i < k; ++i) {
      triplets.push_back({r, order[i], row[order[i]]});
    }
    if (renormalize) RenormalizeRow(&triplets, row_begin, row_sum);
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

CsrMatrix RowTopK(const Tensor& dense, int64_t k, bool renormalize) {
  DYHSL_CHECK_EQ(dense.dim(), 2);
  return RowTopKSlice(dense.data(), dense.size(0), dense.size(1), k,
                      renormalize);
}

CsrMatrix RowThreshold(const Tensor& dense, float threshold,
                       bool renormalize) {
  DYHSL_CHECK_EQ(dense.dim(), 2);
  // A negative threshold keeps every entry — a densify disguised as a
  // sparsify, always a caller bug.
  DYHSL_CHECK_GE(threshold, 0.0f);
  const int64_t rows = dense.size(0), cols = dense.size(1);
  const float* data = dense.data();
  std::vector<Triplet> triplets;
  // Vectorized predicate + compress-store of the surviving columns; the
  // triplet build then only touches survivors.
  const simd::Ops& ops = simd::Active();
  std::vector<int32_t> kept(cols);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    size_t row_begin = triplets.size();
    double row_sum = 0.0;
    if (renormalize) {
      for (int64_t c = 0; c < cols; ++c) row_sum += row[c];
    }
    const int64_t count = ops.compress_ge_abs(row, cols, threshold,
                                              kept.data());
    for (int64_t i = 0; i < count; ++i) {
      triplets.push_back({r, kept[i], row[kept[i]]});
    }
    if (renormalize) RenormalizeRow(&triplets, row_begin, row_sum);
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

}  // namespace dyhsl::tensor
