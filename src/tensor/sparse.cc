#include "src/tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"

namespace dyhsl::tensor {

CsrMatrix CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                  std::vector<Triplet> triplets) {
  DYHSL_CHECK_GE(rows, 0);
  DYHSL_CHECK_GE(cols, 0);
  for (const Triplet& t : triplets) {
    DYHSL_CHECK_GE(t.row, 0);
    DYHSL_CHECK_LT(t.row, rows);
    DYHSL_CHECK_GE(t.col, 0);
    DYHSL_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  int64_t last_row = -1;
  int64_t last_col = -1;
  for (const Triplet& t : triplets) {
    if (t.row == last_row && t.col == last_col) {
      m.values_.back() += t.value;  // merge duplicate coordinate
      continue;
    }
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
    m.row_ptr_[t.row + 1] += 1;
    last_row = t.row;
    last_col = t.col;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (int64_t i = 0; i < n; ++i) t.push_back({i, i, 1.0f});
  return FromTriplets(n, n, std::move(t));
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> t;
  t.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({col_idx_[k], r, values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(t));
}

CsrMatrix CsrMatrix::RowNormalized() const {
  CsrMatrix m = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k];
    }
    if (sum <= 0.0) continue;
    float inv = static_cast<float>(1.0 / sum);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.values_[k] *= inv;
    }
  }
  return m;
}

CsrMatrix CsrMatrix::SymNormalized() const {
  DYHSL_CHECK_EQ(rows_, cols_);
  std::vector<double> degree(rows_, 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      degree[r] += values_[k];
    }
  }
  std::vector<float> dinv(rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    dinv[r] = degree[r] > 0.0
                  ? static_cast<float>(1.0 / std::sqrt(degree[r]))
                  : 0.0f;
  }
  CsrMatrix m = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.values_[k] *= dinv[r] * dinv[col_idx_[k]];
    }
  }
  return m;
}

CsrMatrix CsrMatrix::WithSelfLoops(float weight) const {
  DYHSL_CHECK_EQ(rows_, cols_);
  std::vector<Triplet> t;
  t.reserve(values_.size() + rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({r, col_idx_[k], values_[k]});
    }
    t.push_back({r, r, weight});
  }
  return FromTriplets(rows_, cols_, std::move(t));
}

Tensor CsrMatrix::ToDense() const {
  Tensor d = Tensor::Zeros({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d.data()[r * cols_ + col_idx_[k]] += values_[k];
    }
  }
  return d;
}

Tensor SpMM(const CsrMatrix& a, const Tensor& x) {
  DYHSL_CHECK(x.dim() == 2 || x.dim() == 3);
  bool batched = x.dim() == 3;
  int64_t batch = batched ? x.size(0) : 1;
  int64_t xrows = batched ? x.size(1) : x.size(0);
  int64_t f = batched ? x.size(2) : x.size(1);
  DYHSL_CHECK_MSG(xrows == a.cols(),
                  "SpMM dim mismatch: A is " + std::to_string(a.rows()) + "x" +
                      std::to_string(a.cols()) + ", X rows " +
                      std::to_string(xrows));
  Shape out_shape = batched ? Shape{batch, a.rows(), f} : Shape{a.rows(), f};
  Tensor out(out_shape);
  const int64_t* row_ptr = a.row_ptr().data();
  const int64_t* col_idx = a.col_idx().data();
  const float* vals = a.values().data();
  const float* px = x.data();
  float* po = out.data();
  int64_t x_step = xrows * f;
  int64_t o_step = a.rows() * f;
  // The first nonzero initializes the output row (skipping a separate
  // zero-fill pass over the whole output); the rest accumulate in CSR
  // order, so the per-element accumulation sequence is unchanged.
#pragma omp parallel for collapse(2) if (batch * a.nnz() * f > 16384)
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t r = 0; r < a.rows(); ++r) {
      float* orow = po + b * o_step + r * f;
      const int64_t k0 = row_ptr[r], k1 = row_ptr[r + 1];
      if (k0 == k1) {
        for (int64_t c = 0; c < f; ++c) orow[c] = 0.0f;
        continue;
      }
      {
        const float v = vals[k0];
        const float* xrow = px + b * x_step + col_idx[k0] * f;
        for (int64_t c = 0; c < f; ++c) orow[c] = v * xrow[c];
      }
      for (int64_t k = k0 + 1; k < k1; ++k) {
        const float v = vals[k];
        const float* xrow = px + b * x_step + col_idx[k] * f;
        for (int64_t c = 0; c < f; ++c) orow[c] += v * xrow[c];
      }
    }
  }
  return out;
}

}  // namespace dyhsl::tensor
