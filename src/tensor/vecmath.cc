#include "src/tensor/vecmath.h"

#include <cmath>

namespace dyhsl::tensor {
namespace {

// Same threshold as the elementwise kernels in ops.cc.
constexpr int64_t kParallelCutoff = 1 << 15;

}  // namespace

// Plain restrict-qualified loops: the vectorizer turns the libm calls
// into libmvec SIMD variants when this file is built with -ffast-math
// (see CMakeLists.txt; Release only). Every loop carries the identical
// OpenMP pragma (static schedule), so for a given element count the
// thread partition — and therefore the vector-lane/tail split per
// element — is the same across all of these kernels, which keeps the
// out-of-place, in-place and fused forms bit-identical to each other.

void TanhArray(const float* __restrict__ in, float* __restrict__ out,
               int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) out[i] = std::tanh(in[i]);
}

void SigmoidArray(const float* __restrict__ in, float* __restrict__ out,
                  int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-in[i]));
}

void ExpArray(const float* __restrict__ in, float* __restrict__ out,
              int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) out[i] = std::exp(in[i]);
}

void TanhInPlace(float* p, int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
}

void SigmoidInPlace(float* p, int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) p[i] = 1.0f / (1.0f + std::exp(-p[i]));
}

void TanhProductPlusReluArray(const float* __restrict__ a,
                              const float* __restrict__ b,
                              const float* __restrict__ c,
                              float* __restrict__ out, int64_t n) {
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) {
    float t = std::tanh(a[i] * b[i]);
    float r = c[i] > 0.0f ? c[i] : 0.0f;
    out[i] = t + r;
  }
}

}  // namespace dyhsl::tensor
