// Elementwise transcendental kernels, isolated in their own translation
// unit so the build can compile exactly these loops with -ffast-math.
//
// Under -ffast-math + -O3, GCC/Clang vectorize the libm calls through
// libmvec (_ZGVeN16v_tanhf and friends), which is ~25x faster than the
// scalar calls and accurate to a few ulp. Nothing here reassociates
// reductions, so the fast-math flags cannot change any accumulated
// value — each output element depends on exactly one input element.
// Without the flags (Debug builds, non-x86 targets) the loops degrade to
// the scalar libm calls and stay correct.
//
// Bit-identity scope: the taped/grad-free kernels (e.g. TanhArray vs
// TanhInPlace vs the fused combine) are bit-identical when the compiler
// picks the same vector factor and tail strategy for each loop — every
// loop here is written with the same shape and the same OpenMP pragma
// to make that the overwhelmingly likely outcome, and the equality is
// *enforced*, not assumed: the GradFreeForwardBitIdenticalToTaped tests
// in tests/{autograd,baselines,dyhsl_model}_test.cc fail the build's
// test matrix if a toolchain ever splits them.

#ifndef DYHSL_TENSOR_VECMATH_H_
#define DYHSL_TENSOR_VECMATH_H_

#include <cstdint>

namespace dyhsl::tensor {

/// \brief out[i] = tanh(in[i]).
void TanhArray(const float* in, float* out, int64_t n);

/// \brief out[i] = 1 / (1 + exp(-in[i])).
void SigmoidArray(const float* in, float* out, int64_t n);

/// \brief out[i] = exp(in[i]).
void ExpArray(const float* in, float* out, int64_t n);

/// \brief p[i] = tanh(p[i]) (aliasing-safe in-place form).
void TanhInPlace(float* p, int64_t n);

/// \brief p[i] = 1 / (1 + exp(-p[i])).
void SigmoidInPlace(float* p, int64_t n);

/// \brief out[i] = tanh(a[i] * b[i]) + max(c[i], 0) — the IGC combine
/// (Eq. 11 + 12) in one pass. Elementwise-identical to the
/// Mul/Tanh/Relu/Add chain (the component expressions are verbatim the
/// same), just without the intermediate tensors.
void TanhProductPlusReluArray(const float* a, const float* b, const float* c,
                              float* out, int64_t n);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_VECMATH_H_
