#include "src/tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "src/tensor/workspace.h"

namespace dyhsl::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DYHSL_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = NumElements(shape_);
  // Arena-backed when a WorkspaceScope is active, heap otherwise.
  storage_ = AllocateStorage(numel_);
}

Tensor Tensor::Zeros(Shape shape) {
  Tensor t(std::move(shape));
  t.Fill(0.0f);
  return t;
}

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, const std::vector<float>& values) {
  Tensor t(std::move(shape));
  DYHSL_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng->Gaussian() * stddev;
  return t;
}

Tensor Tensor::Uniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::FromStorage(std::shared_ptr<float[]> storage, Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = NumElements(t.shape_);
  DYHSL_CHECK(storage != nullptr || t.numel_ == 0);
  t.storage_ = std::move(storage);
  return t;
}

Tensor Tensor::Alias(int64_t offset_floats, Shape new_shape) const {
  DYHSL_CHECK(defined());
  DYHSL_CHECK_GE(offset_floats, 0);
  const int64_t view_numel = NumElements(new_shape);
  DYHSL_CHECK_LE(offset_floats + view_numel, numel_);
  // Aliasing constructor: shares this storage's control block but points
  // at the offset — the view pins the whole buffer.
  std::shared_ptr<float[]> view(storage_, storage_.get() + offset_floats);
  return FromStorage(std::move(view), std::move(new_shape));
}

int64_t Tensor::size(int64_t axis) const {
  if (axis < 0) axis += dim();
  DYHSL_CHECK_GE(axis, 0);
  DYHSL_CHECK_LT(axis, dim());
  return shape_[axis];
}

float Tensor::At(std::initializer_list<int64_t> index) const {
  std::vector<int64_t> idx(index);
  return data()[FlatIndex(shape_, idx)];
}

void Tensor::Set(std::initializer_list<int64_t> index, float value) {
  std::vector<int64_t> idx(index);
  data()[FlatIndex(shape_, idx)] = value;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  int64_t inferred_axis = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      DYHSL_CHECK_MSG(inferred_axis == -1, "at most one -1 axis in Reshape");
      inferred_axis = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    DYHSL_CHECK_GT(known, 0);
    DYHSL_CHECK_EQ(numel_ % known, 0);
    new_shape[inferred_axis] = numel_ / known;
  }
  DYHSL_CHECK_MSG(NumElements(new_shape) == numel_,
                  "Reshape " + ShapeToString(shape_) + " -> " +
                      ShapeToString(new_shape));
  Tensor out;
  out.storage_ = storage_;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  return out;
}

Tensor Tensor::Clone() const {
  Tensor out(shape_);
  if (numel_ > 0) std::memcpy(out.data(), data(), numel_ * sizeof(float));
  return out;
}

void Tensor::Fill(float value) {
  float* p = data();
  std::fill(p, p + numel_, value);
}

void Tensor::CopyDataFrom(const Tensor& other) {
  DYHSL_CHECK_EQ(numel_, other.numel_);
  if (numel_ > 0) std::memcpy(data(), other.data(), numel_ * sizeof(float));
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + numel_);
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  int64_t show = std::min(numel_, max_elements);
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) os << ", ";
    os << data()[i];
  }
  if (show < numel_) os << ", ...";
  os << "}";
  return os.str();
}

int64_t FlatIndex(const Shape& shape, const std::vector<int64_t>& index) {
  DYHSL_CHECK_EQ(shape.size(), index.size());
  int64_t flat = 0;
  for (size_t i = 0; i < shape.size(); ++i) {
    DYHSL_CHECK_GE(index[i], 0);
    DYHSL_CHECK_LT(index[i], shape[i]);
    flat = flat * shape[i] + index[i];
  }
  return flat;
}

}  // namespace dyhsl::tensor
