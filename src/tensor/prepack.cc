#include "src/tensor/prepack.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::tensor {
namespace {

// Per-thread serving counters, sampled by engine workers (the same
// publish-absolute-samples pattern as the TopKPatternCache stats).
struct ThreadTally {
  int64_t hits = 0;
  int64_t misses = 0;
};

ThreadTally* Tally() {
  static thread_local ThreadTally tally;
  return &tally;
}

thread_local int g_lookup_depth = 0;
std::atomic<bool> g_lookups_enabled{true};

// Pack slot per (side, trans) orientation of one enrolled pointer.
int SlotIndex(PackedPanels::Side side, bool trans) {
  return (side == PackedPanels::Side::kA ? 2 : 0) + (trans ? 1 : 0);
}

}  // namespace

struct PrepackCache::Impl {
  struct Entry {
    /// Keeps the storage alive: the pointer key cannot be recycled by an
    /// unrelated allocation while enrolled.
    Tensor owner;
    int64_t rows = 0;  // stored (untransposed) dimensions
    int64_t cols = 0;
    int64_t invalidations = 0;
    std::shared_ptr<const PackedPanels> packs[4];
  };

  mutable std::shared_mutex mu;
  std::unordered_map<const float*, Entry> entries;
  std::atomic<uint64_t> generation{0};

  // Packs the requested orientation from the entry's current bytes.
  // Caller holds the exclusive lock.
  std::shared_ptr<const PackedPanels> Pack(Entry* entry,
                                           PackedPanels::Side side,
                                           bool trans) {
    const float* ptr = entry->owner.data();
    if (side == PackedPanels::Side::kB) {
      const int64_t k = trans ? entry->cols : entry->rows;
      const int64_t n = trans ? entry->rows : entry->cols;
      return PackedPanels::PackBOperand(ptr, entry->cols, trans, k, n);
    }
    const int64_t m = trans ? entry->cols : entry->rows;
    const int64_t k = trans ? entry->rows : entry->cols;
    return PackedPanels::PackAOperand(ptr, entry->cols, trans, m, k);
  }
};

PrepackCache::PrepackCache() : impl_(new Impl()) {}
PrepackCache::~PrepackCache() { delete impl_; }

PrepackCache& PrepackCache::Instance() {
  // Leaked singleton: serving threads may outlive static destruction.
  static PrepackCache* cache = new PrepackCache();
  return *cache;
}

void PrepackCache::Enroll(const Tensor& weight) {
  DYHSL_CHECK(weight.defined());
  DYHSL_CHECK_EQ(weight.dim(), 2);
  std::unique_lock lock(impl_->mu);
  Impl::Entry& entry = impl_->entries[weight.data()];
  entry.owner = weight;
  entry.rows = weight.size(0);
  entry.cols = weight.size(1);
  for (auto& pack : entry.packs) pack.reset();
  // Eager pack of the dominant orientation: every Linear/Affine/
  // DiffusionConv weight multiplies as a no-trans B operand.
  const int slot = SlotIndex(PackedPanels::Side::kB, /*trans=*/false);
  entry.packs[slot] = impl_->Pack(&entry, PackedPanels::Side::kB, false);
}

std::shared_ptr<const PackedPanels> PrepackCache::Lookup(
    const float* ptr, PackedPanels::Side side, bool trans, int64_t k,
    int64_t mn) {
  const int slot = SlotIndex(side, trans);
  {
    std::shared_lock lock(impl_->mu);
    auto it = impl_->entries.find(ptr);
    if (it == impl_->entries.end()) return nullptr;  // not a candidate
    const Impl::Entry& entry = it->second;
    // The op() dimensions implied by the enrolled tensor must match the
    // call's — a reshaped or aliased use falls back to on-the-fly packing.
    const int64_t exp_k = trans == (side == PackedPanels::Side::kB)
                              ? entry.cols
                              : entry.rows;
    const int64_t exp_mn = trans == (side == PackedPanels::Side::kB)
                               ? entry.rows
                               : entry.cols;
    if (k != exp_k || mn != exp_mn) return nullptr;
    if (entry.packs[slot] != nullptr) {
      Tally()->hits += 1;
      return entry.packs[slot];
    }
  }
  // First use of this orientation (or first use after an invalidation):
  // pack now under the exclusive lock from the pointer's current bytes.
  std::unique_lock lock(impl_->mu);
  auto it = impl_->entries.find(ptr);
  if (it == impl_->entries.end()) return nullptr;
  Impl::Entry& entry = it->second;
  if (entry.packs[slot] == nullptr) {
    entry.packs[slot] = impl_->Pack(&entry, side, trans);
    Tally()->misses += 1;
  } else {
    Tally()->hits += 1;
  }
  return entry.packs[slot];
}

void PrepackCache::Invalidate(const float* ptr) {
  std::unique_lock lock(impl_->mu);
  auto it = impl_->entries.find(ptr);
  if (it == impl_->entries.end()) return;
  for (auto& pack : it->second.packs) pack.reset();
  it->second.invalidations += 1;
  impl_->generation.fetch_add(1, std::memory_order_acq_rel);
}

void PrepackCache::Release(const float* ptr) {
  std::unique_lock lock(impl_->mu);
  impl_->entries.erase(ptr);
}

uint64_t PrepackCache::generation() const {
  return impl_->generation.load(std::memory_order_acquire);
}

PrepackCache::Stats PrepackCache::StatsFor(
    const std::vector<const float*>& ptrs) const {
  Stats stats;
  std::shared_lock lock(impl_->mu);
  for (const float* ptr : ptrs) {
    auto it = impl_->entries.find(ptr);
    if (it == impl_->entries.end()) continue;
    stats.invalidations += it->second.invalidations;
    for (const auto& pack : it->second.packs) {
      if (pack != nullptr) {
        stats.panels += 1;
        stats.bytes += pack->bytes();
      }
    }
  }
  return stats;
}

PrepackCache::Stats PrepackCache::ThreadCounters() {
  Stats stats;
  stats.hits = Tally()->hits;
  stats.misses = Tally()->misses;
  return stats;
}

PrepackLookupScope::PrepackLookupScope() : previous_(g_lookup_depth > 0) {
  ++g_lookup_depth;
}

PrepackLookupScope::~PrepackLookupScope() {
  --g_lookup_depth;
  (void)previous_;
}

bool PrepackLookupActive() {
  return g_lookup_depth > 0 &&
         g_lookups_enabled.load(std::memory_order_relaxed);
}

bool SetPrepackLookupsEnabled(bool enabled) {
  return g_lookups_enabled.exchange(enabled, std::memory_order_relaxed);
}

}  // namespace dyhsl::tensor
