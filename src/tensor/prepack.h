// Process-wide cache of prepacked GEMM operands — the inference-plan
// layer that lets serving skip re-packing frozen checkpoint weights on
// every forward.
//
// Lifecycle
//  * Enroll(weight): registers a 2-D tensor as a prepack candidate and
//    eagerly packs its no-trans B-side panels (the orientation every
//    Linear/Affine/DiffusionConv weight in this repo uses). The cache
//    keeps a reference to the tensor's storage, so the pointer key can
//    never be recycled by an unrelated allocation while enrolled.
//  * Lookup(ptr, side, trans, ...): returns the packed panels for an
//    enrolled pointer, packing lazily on first use of a new (side, trans)
//    orientation — this also covers repacking after an invalidation.
//    Pointers that were never enrolled return null without touching any
//    counter (activations flow through here on every GEMM).
//  * Invalidate(ptr): drops the packed panels of an enrolled pointer and
//    bumps the generation — called by train::LoadCheckpoint after it
//    overwrites parameter storage in place, so stale panels are never
//    served; the next Lookup repacks from the fresh bytes.
//  * Release(ptr): removes the enrollment entirely (engine teardown).
//
// The transparent integration point is MatMul/BatchedMatMul in
// src/tensor/ops.cc: when a PrepackLookupScope is active on the calling
// thread, shared 2-D operands are looked up here and served prepacked.
// Training installs no scope and never pays the lookup.

#ifndef DYHSL_TENSOR_PREPACK_H_
#define DYHSL_TENSOR_PREPACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/gemm.h"
#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \brief Singleton cache of PackedPanels keyed by (storage pointer,
/// operand side, trans flag). Thread-safe: lookups take a shared lock,
/// enrollment/lazy packing/invalidation an exclusive one.
class PrepackCache {
 public:
  /// \brief Prepack observability counters. `panels`/`bytes` inventory
  /// the packed objects currently held for a pointer set; `hits`/
  /// `misses` are per-thread serving counters (a miss is an *enrolled*
  /// pointer that had to pack on demand — first use of a new orientation
  /// or the first use after an invalidation; un-enrolled pointers count
  /// nothing); `invalidations` counts checkpoint-reload drops.
  struct Stats {
    int64_t panels = 0;
    int64_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
  };

  static PrepackCache& Instance();

  /// \brief Enrolls a 2-D tensor and eagerly packs its (B, no-trans)
  /// panels. Re-enrolling the same storage refreshes the packed bytes.
  void Enroll(const Tensor& weight);

  /// \brief Packed panels for an enrolled pointer used as `side`/`trans`
  /// with the given op() dimensions (`k` x `mn` for B, `mn` x `k` for A),
  /// or null when the pointer is not enrolled or the dimensions do not
  /// match the enrolled tensor. Packs lazily on a first-use miss.
  std::shared_ptr<const PackedPanels> Lookup(const float* ptr,
                                             PackedPanels::Side side,
                                             bool trans, int64_t k,
                                             int64_t mn);

  /// \brief Drops the packed panels for `ptr` (the enrollment survives, so
  /// the next Lookup repacks from the pointer's current bytes) and bumps
  /// the generation. No-op for pointers that were never enrolled.
  void Invalidate(const float* ptr);

  /// \brief Removes the enrollment and packs for `ptr` entirely.
  void Release(const float* ptr);

  /// \brief Monotonic counter bumped by every effective Invalidate —
  /// cheap staleness probe for tests and engines.
  uint64_t generation() const;

  /// \brief Pack inventory (`panels`, `bytes`) and cumulative
  /// `invalidations` for a set of enrolled pointers — an engine passes
  /// its own weights so fleet stats sum cleanly across engines. `hits`/
  /// `misses` are zero here; they live in ThreadCounters().
  Stats StatsFor(const std::vector<const float*>& ptrs) const;

  /// \brief The calling thread's cumulative hit/miss counters (only those
  /// two fields are set). Monotonic; sample per worker and sum, exactly
  /// like the TopKPatternCache stats.
  static Stats ThreadCounters();

 private:
  PrepackCache();
  ~PrepackCache();
  struct Impl;
  Impl* impl_;
};

/// \brief RAII thread-local gate: while active, the MatMul family looks
/// shared 2-D operands up in the PrepackCache. Scopes nest.
class PrepackLookupScope {
 public:
  PrepackLookupScope();
  ~PrepackLookupScope();

  PrepackLookupScope(const PrepackLookupScope&) = delete;
  PrepackLookupScope& operator=(const PrepackLookupScope&) = delete;

 private:
  bool previous_;
};

/// \brief True when a PrepackLookupScope is active on this thread (and
/// lookups are not globally disabled).
bool PrepackLookupActive();

/// \brief Process-wide kill switch for scope lookups; returns the previous
/// value. On by default — benchmarks turn it off to measure the
/// attributable win of the inference plan in a forked phase.
bool SetPrepackLookupsEnabled(bool enabled);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_PREPACK_H_
