// Compressed-sparse-row matrices and the sparse kernel family.
//
// The structure operators of DyHSL are sparse at heart: the temporal graph
// Ā of paper Eq. 4–5 is a normalized road adjacency, the predefined
// hypergraph propagation G = D_v⁻¹ Λ D_e⁻¹ Λᵀ is a product of sparse
// incidences, and the learned incidence Λ is effectively sparse after
// normalization. This header provides the kernels the execution stack runs
// those operators on without densifying:
//
//  * CsrMatrix        — immutable structure + values (graphs, hypergraphs)
//  * SpMM / SpMMInto  — sparse × dense with batch support and beta
//                       accumulate modes (beta=1 writes straight into
//                       autograd gradient buffers)
//  * CsrPattern       — structure-only pattern with a precomputed transpose
//                       and the value permutation linking the two, shared
//                       by ops whose values change every step (learned Λ)
//  * Sddmm            — sampled dense-dense matmul, the VJP w.r.t. sparse
//                       values of an SpMM
//  * RowTopK / RowThreshold — deterministic sparsification of a dense
//                       matrix into CSR
//
// All kernels parallelize over output rows only, so results are
// bit-identical for every OpenMP thread count; outputs are allocated
// through Tensor and therefore land on the step Workspace arena whenever a
// scope is active.

#ifndef DYHSL_TENSOR_SPARSE_H_
#define DYHSL_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \brief One (row, col, value) entry used to build a CSR matrix.
struct Triplet {
  int64_t row;
  int64_t col;
  float value;
};

/// \brief Immutable CSR sparse matrix of float values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// \brief Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(int64_t rows, int64_t cols,
                                std::vector<Triplet> triplets);

  /// \brief Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// \brief Transposed copy (CSR of A^T).
  CsrMatrix Transposed() const;

  /// \brief Same structure, new values (`values.size()` must equal nnz).
  CsrMatrix WithValues(std::vector<float> values) const;

  /// \brief Returns a copy whose rows sum to 1 (zero rows left untouched).
  /// This is the normalization the paper uses for the temporal graph
  /// (sum_j A_bar(v, u) = 1 below Eq. 5).
  CsrMatrix RowNormalized() const;

  /// \brief Symmetric normalization D^-1/2 (A) D^-1/2 (for GCN baselines).
  CsrMatrix SymNormalized() const;

  /// \brief Returns A + I (self loops added; existing diagonal summed).
  CsrMatrix WithSelfLoops(float weight = 1.0f) const;

  /// \brief Dense copy (tests / small matrices only).
  Tensor ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

/// \brief Structure-only CSR pattern with a precomputed transpose and the
/// value permutation between them. Shared (immutably, via shared_ptr) by
/// ops whose values change every step while the sparsity stays fixed — the
/// taped sparse-values ops in src/autograd/sparse.h run both the forward
/// product and the transposed backward product against one pattern without
/// rebuilding structure.
struct CsrPattern {
  int64_t rows = 0;
  int64_t cols = 0;
  /// A structure (row-major CSR).
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  /// A^T structure; the value of A^T at slot k is values[t_perm[k]].
  std::vector<int64_t> t_row_ptr;
  std::vector<int64_t> t_col_idx;
  std::vector<int64_t> t_perm;

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }

  /// \brief Extracts the structure of `m` (values ignored).
  static std::shared_ptr<const CsrPattern> FromCsr(const CsrMatrix& m);
};

/// \brief Sparse-dense product  A (rows x cols)  *  X (cols x f)  ->
/// (rows x f). X may also be 3-D (batch, cols, f) giving (batch, rows, f).
Tensor SpMM(const CsrMatrix& a, const Tensor& x);

/// \brief out = A X + beta * out. `out` must be preallocated to the SpMM
/// result shape; beta 0 overwrites (out may be uninitialized), any other
/// beta scales the existing contents first. beta=1 accumulates straight
/// into autograd gradient buffers, mirroring the dense MatMulInto path.
void SpMMInto(const CsrMatrix& a, const Tensor& x, float beta, Tensor* out);

/// \brief Pattern + external values product: y = op(A) X where A has the
/// structure of `p` and the values of `values` (length nnz). With
/// `trans_a` the product runs against the precomputed transpose, reading
/// values through the pattern's permutation. X 2-D or 3-D batched.
Tensor SpMMPattern(const CsrPattern& p, const Tensor& values, const Tensor& x,
                   bool trans_a = false);

/// \brief out = op(A) X + beta * out variant of SpMMPattern.
void SpMMPatternInto(const CsrPattern& p, const Tensor& values,
                     const Tensor& x, bool trans_a, float beta, Tensor* out);

/// \brief Raw single-slice building block for per-batch sparse ops:
/// out (out_rows x f) = op(A) x (+ beta * out) over bare pointers, where
/// x has op(A).cols() rows of width f.
void SpMMPatternSliceInto(const CsrPattern& p, const float* values,
                          const float* x, int64_t f, bool trans_a, float beta,
                          float* out);

/// \brief Sampled dense-dense matmul: out[k] = dot(a[row_k, :], b[col_k, :])
/// for every structural nonzero k of the pattern — the VJP of SpMM w.r.t.
/// the sparse values. a is (rows, d) or (B, rows, d), b is (cols, d) or
/// (B, cols, d) with matching batch; batched inputs are summed over the
/// batch. Returns a dense (nnz) tensor.
Tensor Sddmm(const CsrPattern& p, const Tensor& a, const Tensor& b);

/// \brief Raw single-slice SDDMM: out_values[k] = beta * out_values[k] +
/// dot(a[row_k, :], b[col_k, :]) with a (rows x d), b (cols x d).
void SddmmSliceInto(const CsrPattern& p, const float* a, const float* b,
                    int64_t d, float beta, float* out_values);

/// \brief Sparsifies a dense matrix to its k largest-magnitude entries per
/// row (deterministic ties: the lower column index wins), k clamped to the
/// column count. With `renormalize`, kept entries of each row are rescaled
/// to preserve the row's original sum (so row-stochastic matrices stay
/// row-stochastic); rows whose kept sum is not positive are left unscaled.
CsrMatrix RowTopK(const Tensor& dense, int64_t k, bool renormalize = false);

/// \brief Raw variant of RowTopK over a (rows x cols) row-major buffer.
CsrMatrix RowTopKSlice(const float* data, int64_t rows, int64_t cols,
                       int64_t k, bool renormalize = false);

/// \brief One-pass top-k sparsification straight to a CsrPattern — the
/// per-step hot path of the DHSL sparse mode. Selection semantics match
/// RowTopK (largest magnitude, ties toward the lower column); every row
/// keeps exactly min(k, cols) entries so row_ptr is implicit. When
/// `out_values` is non-null it receives the kept entries (length
/// rows * min(k, cols)) in pattern order. Selection runs on the
/// runtime-dispatched SIMD layer (src/tensor/simd.h); all dispatch levels
/// are bit-identical, so the pattern never depends on the host ISA.
std::shared_ptr<const CsrPattern> RowTopKPattern(const float* data,
                                                 int64_t rows, int64_t cols,
                                                 int64_t k,
                                                 float* out_values = nullptr);

/// \brief Keeps entries with |value| >= threshold (rows may become empty;
/// threshold must be >= 0 — a negative threshold would silently keep
/// everything and is rejected). `renormalize` as in RowTopK, with the same
/// nonpositive-kept-sum guard: a row whose entries are all dropped (or
/// whose kept sum is not positive) is left unscaled rather than divided by
/// zero, so thresholding can never introduce NaNs — but such a row no
/// longer preserves its original sum. Callers that need row-stochastic
/// outputs must pick thresholds below each row's maximum.
CsrMatrix RowThreshold(const Tensor& dense, float threshold,
                       bool renormalize = false);

/// \brief Gathers the entries of a row-major (rows x cols) dense slab at
/// the pattern's structural nonzeros into `out_values` (length nnz,
/// pattern order) — the O(nnz) SDDMM-style value refresh that replaces
/// re-selection when a cached pattern is reused.
void GatherPatternSlice(const CsrPattern& p, const float* dense,
                        float* out_values);

/// \brief Counts the rows of a uniform-k top-k pattern whose selection is
/// no longer exactly the top-k of `dense` (rows x cols, row-major): a row
/// has drifted when its k-th/(k+1)-th magnitude margin flipped, i.e. some
/// non-kept entry now matches or exceeds the weakest kept one. The check
/// is conservative (boundary ties count as drift) and vectorized — one
/// k-entry gather plus one horizontal threshold count per row. `p` must
/// come from RowTopKPattern (every row holds exactly nnz/rows entries).
int64_t CountDriftedRows(const CsrPattern& p, const float* dense);

/// \brief Reuses top-k CsrPatterns across steps, amortizing selection.
///
/// The DHSL sparse step re-selected the top-k of Λ every MHCE iteration
/// and every time step, O(rows * cols) each, even though the learned
/// pattern barely moves between adjacent steps. SelectOrReuse instead
/// keeps the last pattern per (slot, rows, cols, k) stream and runs the
/// CountDriftedRows check (O(rows * cols / lanes)): while the drifted-row
/// fraction stays at or below `drift_threshold`, the cached pattern is
/// returned and callers refresh values with an O(nnz) gather; past it, a
/// fresh selection replaces the cache entry.
///
/// Exactness: a reuse with zero drifted rows is *exact* — the cached
/// pattern equals what fresh selection would produce, so downstream
/// products and gradients are identical. With 0 < drifted <= threshold *
/// rows the pattern is stale on the drifted rows only: products are
/// approximate there, and gradients remain the exact subgradients of the
/// *cached* selection (hard top-k is piecewise constant in its pattern).
/// drift_threshold = 0 reuses only exact patterns.
///
/// Not thread-safe: intended to live thread-local (one per serving worker
/// or training loop), which also keeps patterns warm per session.
class TopKPatternCache {
 public:
  struct Options {
    /// Fraction of rows allowed to drift before re-selecting, in [0, 1].
    float drift_threshold = 0.05f;
  };

  struct Stats {
    int64_t selects = 0;          ///< fresh selections (cold or shape change)
    int64_t reuses = 0;           ///< cache hits (drift at or below threshold)
    int64_t drift_reselects = 0;  ///< re-selections forced by drift
    int64_t drifted_rows = 0;     ///< total drifted rows seen on reuse checks
  };

  TopKPatternCache();
  explicit TopKPatternCache(Options options);

  /// \brief Pattern for the (rows x cols) row-major slab: cached when the
  /// drift check passes, freshly selected otherwise. `slot` separates
  /// independent streams sharing this cache (e.g. batch items).
  std::shared_ptr<const CsrPattern> SelectOrReuse(int64_t slot,
                                                  const float* data,
                                                  int64_t rows, int64_t cols,
                                                  int64_t k);

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }
  void Clear();

 private:
  struct Entry {
    int64_t slot;
    int64_t rows;
    int64_t cols;
    int64_t k;
    std::shared_ptr<const CsrPattern> pattern;
  };

  Options options_;
  Stats stats_;
  std::vector<Entry> entries_;  // a handful of (slot, shape) streams
};

/// \brief CSR matrix bundled with its transpose so autograd can run the
/// backward product without rebuilding structure every step.
struct SparseOp {
  CsrMatrix forward;
  CsrMatrix transpose;

  static std::shared_ptr<SparseOp> Create(CsrMatrix matrix) {
    auto op = std::make_shared<SparseOp>();
    op->transpose = matrix.Transposed();
    op->forward = std::move(matrix);
    return op;
  }
};

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_SPARSE_H_
