// Compressed-sparse-row matrix and sparse x dense kernels.
//
// The temporal graph of DyHSL (paper Eq. 4) and all baseline graph
// convolutions multiply a fixed sparse adjacency against dense feature
// matrices, so CSR with a precomputed transpose (needed by autograd:
// d/dX [A X] pulls gradients through A^T) is the core sparse structure.

#ifndef DYHSL_TENSOR_SPARSE_H_
#define DYHSL_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \brief One (row, col, value) entry used to build a CSR matrix.
struct Triplet {
  int64_t row;
  int64_t col;
  float value;
};

/// \brief Immutable CSR sparse matrix of float values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// \brief Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(int64_t rows, int64_t cols,
                                std::vector<Triplet> triplets);

  /// \brief Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// \brief Transposed copy (CSR of A^T).
  CsrMatrix Transposed() const;

  /// \brief Returns a copy whose rows sum to 1 (zero rows left untouched).
  /// This is the normalization the paper uses for the temporal graph
  /// (sum_j A_bar(v, u) = 1 below Eq. 5).
  CsrMatrix RowNormalized() const;

  /// \brief Symmetric normalization D^-1/2 (A) D^-1/2 (for GCN baselines).
  CsrMatrix SymNormalized() const;

  /// \brief Returns A + I (self loops added; existing diagonal summed).
  CsrMatrix WithSelfLoops(float weight = 1.0f) const;

  /// \brief Dense copy (tests / small matrices only).
  Tensor ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

/// \brief Sparse-dense product  A (rows x cols)  *  X (cols x f)  ->
/// (rows x f). X may also be 3-D (batch, cols, f) giving (batch, rows, f).
Tensor SpMM(const CsrMatrix& a, const Tensor& x);

/// \brief CSR matrix bundled with its transpose so autograd can run the
/// backward product without rebuilding structure every step.
struct SparseOp {
  CsrMatrix forward;
  CsrMatrix transpose;

  static std::shared_ptr<SparseOp> Create(CsrMatrix matrix) {
    auto op = std::make_shared<SparseOp>();
    op->transpose = matrix.Transposed();
    op->forward = std::move(matrix);
    return op;
  }
};

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_SPARSE_H_
