// Compressed-sparse-row matrices and the sparse kernel family.
//
// The structure operators of DyHSL are sparse at heart: the temporal graph
// Ā of paper Eq. 4–5 is a normalized road adjacency, the predefined
// hypergraph propagation G = D_v⁻¹ Λ D_e⁻¹ Λᵀ is a product of sparse
// incidences, and the learned incidence Λ is effectively sparse after
// normalization. This header provides the kernels the execution stack runs
// those operators on without densifying:
//
//  * CsrMatrix        — immutable structure + values (graphs, hypergraphs)
//  * SpMM / SpMMInto  — sparse × dense with batch support and beta
//                       accumulate modes (beta=1 writes straight into
//                       autograd gradient buffers)
//  * CsrPattern       — structure-only pattern with a precomputed transpose
//                       and the value permutation linking the two, shared
//                       by ops whose values change every step (learned Λ)
//  * Sddmm            — sampled dense-dense matmul, the VJP w.r.t. sparse
//                       values of an SpMM
//  * RowTopK / RowThreshold — deterministic sparsification of a dense
//                       matrix into CSR
//
// All kernels parallelize over output rows only, so results are
// bit-identical for every OpenMP thread count; outputs are allocated
// through Tensor and therefore land on the step Workspace arena whenever a
// scope is active.

#ifndef DYHSL_TENSOR_SPARSE_H_
#define DYHSL_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \brief One (row, col, value) entry used to build a CSR matrix.
struct Triplet {
  int64_t row;
  int64_t col;
  float value;
};

/// \brief Immutable CSR sparse matrix of float values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// \brief Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(int64_t rows, int64_t cols,
                                std::vector<Triplet> triplets);

  /// \brief Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// \brief Transposed copy (CSR of A^T).
  CsrMatrix Transposed() const;

  /// \brief Same structure, new values (`values.size()` must equal nnz).
  CsrMatrix WithValues(std::vector<float> values) const;

  /// \brief Returns a copy whose rows sum to 1 (zero rows left untouched).
  /// This is the normalization the paper uses for the temporal graph
  /// (sum_j A_bar(v, u) = 1 below Eq. 5).
  CsrMatrix RowNormalized() const;

  /// \brief Symmetric normalization D^-1/2 (A) D^-1/2 (for GCN baselines).
  CsrMatrix SymNormalized() const;

  /// \brief Returns A + I (self loops added; existing diagonal summed).
  CsrMatrix WithSelfLoops(float weight = 1.0f) const;

  /// \brief Dense copy (tests / small matrices only).
  Tensor ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

/// \brief Structure-only CSR pattern with a precomputed transpose and the
/// value permutation between them. Shared (immutably, via shared_ptr) by
/// ops whose values change every step while the sparsity stays fixed — the
/// taped sparse-values ops in src/autograd/sparse.h run both the forward
/// product and the transposed backward product against one pattern without
/// rebuilding structure.
struct CsrPattern {
  int64_t rows = 0;
  int64_t cols = 0;
  /// A structure (row-major CSR).
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  /// A^T structure; the value of A^T at slot k is values[t_perm[k]].
  std::vector<int64_t> t_row_ptr;
  std::vector<int64_t> t_col_idx;
  std::vector<int64_t> t_perm;

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }

  /// \brief Extracts the structure of `m` (values ignored).
  static std::shared_ptr<const CsrPattern> FromCsr(const CsrMatrix& m);
};

/// \brief Sparse-dense product  A (rows x cols)  *  X (cols x f)  ->
/// (rows x f). X may also be 3-D (batch, cols, f) giving (batch, rows, f).
Tensor SpMM(const CsrMatrix& a, const Tensor& x);

/// \brief out = A X + beta * out. `out` must be preallocated to the SpMM
/// result shape; beta 0 overwrites (out may be uninitialized), any other
/// beta scales the existing contents first. beta=1 accumulates straight
/// into autograd gradient buffers, mirroring the dense MatMulInto path.
void SpMMInto(const CsrMatrix& a, const Tensor& x, float beta, Tensor* out);

/// \brief Pattern + external values product: y = op(A) X where A has the
/// structure of `p` and the values of `values` (length nnz). With
/// `trans_a` the product runs against the precomputed transpose, reading
/// values through the pattern's permutation. X 2-D or 3-D batched.
Tensor SpMMPattern(const CsrPattern& p, const Tensor& values, const Tensor& x,
                   bool trans_a = false);

/// \brief out = op(A) X + beta * out variant of SpMMPattern.
void SpMMPatternInto(const CsrPattern& p, const Tensor& values,
                     const Tensor& x, bool trans_a, float beta, Tensor* out);

/// \brief Raw single-slice building block for per-batch sparse ops:
/// out (out_rows x f) = op(A) x (+ beta * out) over bare pointers, where
/// x has op(A).cols() rows of width f.
void SpMMPatternSliceInto(const CsrPattern& p, const float* values,
                          const float* x, int64_t f, bool trans_a, float beta,
                          float* out);

/// \brief Sampled dense-dense matmul: out[k] = dot(a[row_k, :], b[col_k, :])
/// for every structural nonzero k of the pattern — the VJP of SpMM w.r.t.
/// the sparse values. a is (rows, d) or (B, rows, d), b is (cols, d) or
/// (B, cols, d) with matching batch; batched inputs are summed over the
/// batch. Returns a dense (nnz) tensor.
Tensor Sddmm(const CsrPattern& p, const Tensor& a, const Tensor& b);

/// \brief Raw single-slice SDDMM: out_values[k] = beta * out_values[k] +
/// dot(a[row_k, :], b[col_k, :]) with a (rows x d), b (cols x d).
void SddmmSliceInto(const CsrPattern& p, const float* a, const float* b,
                    int64_t d, float beta, float* out_values);

/// \brief Sparsifies a dense matrix to its k largest-magnitude entries per
/// row (deterministic ties: the lower column index wins), k clamped to the
/// column count. With `renormalize`, kept entries of each row are rescaled
/// to preserve the row's original sum (so row-stochastic matrices stay
/// row-stochastic); rows whose kept sum is not positive are left unscaled.
CsrMatrix RowTopK(const Tensor& dense, int64_t k, bool renormalize = false);

/// \brief Raw variant of RowTopK over a (rows x cols) row-major buffer.
CsrMatrix RowTopKSlice(const float* data, int64_t rows, int64_t cols,
                       int64_t k, bool renormalize = false);

/// \brief One-pass top-k sparsification straight to a CsrPattern — the
/// per-step hot path of the DHSL sparse mode. Selection semantics match
/// RowTopK (largest magnitude, ties toward the lower column); every row
/// keeps exactly min(k, cols) entries so row_ptr is implicit. When
/// `out_values` is non-null it receives the kept entries (length
/// rows * min(k, cols)) in pattern order.
std::shared_ptr<const CsrPattern> RowTopKPattern(const float* data,
                                                 int64_t rows, int64_t cols,
                                                 int64_t k,
                                                 float* out_values = nullptr);

/// \brief Keeps entries with |value| >= threshold (rows may become empty).
/// `renormalize` as in RowTopK.
CsrMatrix RowThreshold(const Tensor& dense, float threshold,
                       bool renormalize = false);

/// \brief CSR matrix bundled with its transpose so autograd can run the
/// backward product without rebuilding structure every step.
struct SparseOp {
  CsrMatrix forward;
  CsrMatrix transpose;

  static std::shared_ptr<SparseOp> Create(CsrMatrix matrix) {
    auto op = std::make_shared<SparseOp>();
    op->transpose = matrix.Transposed();
    op->forward = std::move(matrix);
    return op;
  }
};

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_SPARSE_H_
