// Wraparound-safe sliding-window ring buffer for streaming ingestion.
//
// A streaming session appends one (frame_shape) frame per tick and
// forecasts from the most recent `steps` frames as one contiguous
// (steps, frame_shape...) tensor. A naive ring would make that window
// non-contiguous once the write cursor wraps, forcing a copy-out per
// forecast. RingWindow instead doubles the buffer: every frame is
// written twice, at slot q and slot q + steps, so the window starting at
// the oldest live slot is always contiguous and Window() is a zero-copy
// aliased view (Tensor::FromStorage) into the ring — the forecast path
// never re-materializes history.
//
// The doubled buffer costs 2x the window in memory (frames * numel — a
// few KB per session at city scale) and one extra frame memcpy per tick,
// in exchange for O(0) window assembly on the latency-critical path.
//
// Storage is allocated through AllocateStorage, so a SessionManager that
// installs a WorkspaceScope at construction places its rings in the
// arena. Not thread-safe: callers (the per-session lock in
// serve::SessionManager) serialize Push against Window/view consumers —
// a Push may overwrite the oldest frame of a still-live view.

#ifndef DYHSL_TENSOR_RING_H_
#define DYHSL_TENSOR_RING_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace dyhsl::tensor {

/// \brief Double-written ring of `steps` most-recent frames with a
/// zero-copy contiguous window view.
class RingWindow {
 public:
  /// \brief Rings hold `steps` frames of shape `frame_shape` each.
  RingWindow(int64_t steps, Shape frame_shape);

  /// \brief Appends one frame (frame_numel() floats), overwriting the
  /// oldest once the ring is full.
  void Push(const float* frame);

  int64_t steps() const { return steps_; }
  int64_t frame_numel() const { return frame_numel_; }
  /// Frames currently buffered, in [0, steps].
  int64_t count() const { return count_; }
  bool full() const { return count_ == steps_; }
  /// Total frames ever pushed (monotonic).
  int64_t total_pushed() const { return total_pushed_; }

  /// \brief The hot (steps, frame_shape...) window, oldest frame first,
  /// as a zero-copy view aliasing the ring's storage. Requires full().
  /// The view reflects — and is invalidated by — subsequent Push() calls.
  Tensor Window() const;

  /// \brief Like Window() but for the most recent `last` frames, shape
  /// (last, frame_shape...). Requires count() >= last.
  Tensor LastFrames(int64_t last) const;

  /// \brief Drops all buffered frames (storage is kept).
  void Clear();

 private:
  int64_t steps_;
  Shape frame_shape_;
  int64_t frame_numel_;
  /// Next write slot in [0, steps).
  int64_t cursor_ = 0;
  int64_t count_ = 0;
  int64_t total_pushed_ = 0;
  /// 2 * steps frames; slot q mirrors at q + steps.
  Tensor buffer_;
};

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_RING_H_
