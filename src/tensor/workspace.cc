#include "src/tensor/workspace.h"

#include <algorithm>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::tensor {
namespace {

thread_local Workspace* g_current_workspace = nullptr;

// 64-byte alignment keeps every allocation on its own cache line and SIMD
// loads aligned regardless of neighboring tensors.
constexpr int64_t kAlignFloats = 16;

int64_t AlignUp(int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

// Slabs cap their geometric growth here (256 MiB of floats) so one huge
// tensor does not commit the arena to huge slabs forever after.
constexpr int64_t kMaxSlabFloats = int64_t{1} << 26;

}  // namespace

Workspace* Workspace::Current() { return g_current_workspace; }

Workspace::Workspace(int64_t min_slab_floats)
    : next_slab_floats_(std::max<int64_t>(min_slab_floats, kAlignFloats)) {}

// Handles capture their slab's data shared_ptr, so outstanding tensors
// keep their memory alive past workspace destruction.
Workspace::~Workspace() = default;

Workspace::Slab* Workspace::SlabWithRoom(int64_t need) {
  for (Slab& slab : slabs_) {
    if (slab.capacity - slab.offset->load(std::memory_order_acquire) >= need) {
      return &slab;
    }
  }
  Slab slab;
  slab.capacity = std::max(need, next_slab_floats_);
  slab.data = std::shared_ptr<float[]>(new float[slab.capacity]);
  slab.offset = std::make_shared<std::atomic<int64_t>>(0);
  slab.live = std::make_shared<std::atomic<int64_t>>(0);
  next_slab_floats_ = std::min(slab.capacity * 2, kMaxSlabFloats);
  slabs_.push_back(std::move(slab));
  return &slabs_.back();
}

std::shared_ptr<float[]> Workspace::Allocate(int64_t numel) {
  DYHSL_CHECK_GE(numel, 0);
  int64_t need = AlignUp(std::max<int64_t>(numel, 1));
  Slab* slab = SlabWithRoom(need);
  int64_t start = slab->offset->load(std::memory_order_acquire);
  int64_t end = start + need;
  float* p = slab->data.get() + start;
  slab->offset->store(end, std::memory_order_release);
  slab->live->fetch_add(1, std::memory_order_relaxed);
  // The deleter owns a reference to the slab storage: the memory outlives
  // both Reset() retirement and the Workspace itself while handles exist.
  std::shared_ptr<float[]> keep_alive = slab->data;
  std::shared_ptr<std::atomic<int64_t>> offset = slab->offset;
  std::shared_ptr<std::atomic<int64_t>> live = slab->live;
  return std::shared_ptr<float[]>(
      p, [keep_alive, offset, live, start, end](float*) {
        // LIFO reclaim: if this was still the trailing allocation, rewind
        // the bump pointer so the region is reused immediately. A failed
        // exchange (later allocations still live, or a concurrent rewind)
        // just leaves the region to the next Reset().
        int64_t expected = end;
        offset->compare_exchange_strong(expected, start,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
        live->fetch_sub(1, std::memory_order_acq_rel);
      });
}

void Workspace::Reset() {
  // Reclaim retired slabs whose last handle has since dropped.
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [](const Slab& slab) {
                       return slab.live->load(std::memory_order_acquire) == 0;
                     }),
      retired_.end());
  for (auto it = slabs_.begin(); it != slabs_.end();) {
    if (it->live->load(std::memory_order_acquire) == 0) {
      it->offset->store(0, std::memory_order_release);
      ++it;
    } else {
      retired_.push_back(std::move(*it));
      it = slabs_.erase(it);
    }
  }
}

int64_t Workspace::live_allocations() const {
  int64_t total = 0;
  for (const Slab& slab : slabs_) {
    total += slab.live->load(std::memory_order_acquire);
  }
  for (const Slab& slab : retired_) {
    total += slab.live->load(std::memory_order_acquire);
  }
  return total;
}

int64_t Workspace::bytes_reserved() const {
  int64_t floats = 0;
  for (const Slab& slab : slabs_) floats += slab.capacity;
  for (const Slab& slab : retired_) floats += slab.capacity;
  return floats * static_cast<int64_t>(sizeof(float));
}

WorkspaceScope::WorkspaceScope(Workspace* workspace)
    : previous_(g_current_workspace) {
  DYHSL_CHECK(workspace != nullptr);
  g_current_workspace = workspace;
}

WorkspaceScope::~WorkspaceScope() { g_current_workspace = previous_; }

WorkspaceBypass::WorkspaceBypass() : previous_(g_current_workspace) {
  g_current_workspace = nullptr;
}

WorkspaceBypass::~WorkspaceBypass() { g_current_workspace = previous_; }

std::shared_ptr<float[]> AllocateStorage(int64_t numel) {
  if (Workspace* workspace = g_current_workspace) {
    return workspace->Allocate(numel);
  }
  return std::shared_ptr<float[]>(new float[std::max<int64_t>(numel, 1)]);
}

}  // namespace dyhsl::tensor
