// Cache-blocked, packed float32 GEMM — the compute core behind MatMul and
// BatchedMatMul in src/tensor/ops.cc.
//
// Design notes
//  * BLIS-style blocking: the K dimension is split into kKc panels, rows
//    into kMc blocks, and a kMr x kNr register tile is accumulated per
//    micro-kernel call. Both operands are packed into contiguous panels
//    first, so every trans_a/trans_b combination runs unit-stride inner
//    loops — the packing absorbs the strides.
//  * Deterministic for any OpenMP thread count: parallelism is over
//    (batch, row-block) tasks inside a K-panel, each output element is
//    written by exactly one task, and its floating-point accumulation
//    order (p ascending within a panel, panels ascending) never depends on
//    the thread count.
//  * beta semantics follow BLAS: C = beta * C + op(A) op(B), and beta == 0
//    never reads C, so the output may be uninitialized arena memory.

#ifndef DYHSL_TENSOR_GEMM_H_
#define DYHSL_TENSOR_GEMM_H_

#include <cstdint>

namespace dyhsl::tensor {

/// \brief C (m x n, row-major, leading dimension ldc) = beta * C +
/// op(A) op(B). op transposes when the matching flag is set; `lda`/`ldb`
/// are the leading dimensions of the *stored* (untransposed) operands.
void GemmInto(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
              const float* a, int64_t lda, const float* b, int64_t ldb,
              float beta, float* c, int64_t ldc);

/// \brief Batched GemmInto. `a_stride`/`b_stride`/`c_stride` advance each
/// operand between batch items; a stride of 0 shares that operand across
/// the whole batch, in which case it is packed once and reused by every
/// batch item (the shared-weight fast path).
void BatchedGemmInto(int64_t batch, bool trans_a, bool trans_b, int64_t m,
                     int64_t n, int64_t k, const float* a, int64_t a_stride,
                     int64_t lda, const float* b, int64_t b_stride,
                     int64_t ldb, float beta, float* c, int64_t c_stride,
                     int64_t ldc);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_GEMM_H_
