// Cache-blocked, packed float32 GEMM — the compute core behind MatMul and
// BatchedMatMul in src/tensor/ops.cc.
//
// Design notes
//  * BLIS-style blocking: the K dimension is split into kKc panels, rows
//    into kMc blocks, and a kMr x kNr register tile is accumulated per
//    micro-kernel call. Operands are packed into contiguous panels first,
//    so every trans_a/trans_b combination runs unit-stride inner loops —
//    the packing absorbs the strides.
//  * Deterministic for any OpenMP thread count: parallelism is over
//    (batch, row-block) tasks inside a K-panel, each output element is
//    written by exactly one task, and its floating-point accumulation
//    order (p ascending within a panel, panels ascending) never depends on
//    the thread count.
//  * beta semantics follow BLAS: C = beta * C + op(A) op(B), and beta == 0
//    never reads C, so the output may be uninitialized arena memory.
//  * Inference fast paths (on by default, see SetGemmFastPaths): a
//    no-trans A operand is consumed directly through strided row pointers
//    instead of being packed (activations dominate packing time), and
//    GEMMs under the parallel cutoff skip the arena plan and OpenMP
//    region entirely. Both paths replay the packed kernels' per-element
//    accumulation order exactly, so results stay bit-identical to the
//    legacy all-packed path.
//  * PackedPanels lets a caller pack a long-lived operand (a frozen
//    checkpoint weight) once and reuse the panels across calls — the
//    packed bytes are the same ones the on-the-fly path would produce,
//    so prepacked GEMMs are bit-identical too. See src/tensor/prepack.h
//    for the cache that serves them transparently.

#ifndef DYHSL_TENSOR_GEMM_H_
#define DYHSL_TENSOR_GEMM_H_

#include <cstdint>
#include <memory>

namespace dyhsl::tensor {

/// \brief A long-lived packed copy of one GEMM operand, laid out exactly
/// as the blocked kernel's per-K-panel packing (PackA/PackB in gemm.cc)
/// and heap-pinned (WorkspaceBypass) so it survives arena resets. Packed
/// size is the operand rounded up to whole register tiles: ~= the operand
/// bytes, plus tail padding.
class PackedPanels {
 public:
  enum class Side : int { kA, kB };

  /// \brief Packs op(B) — k x n after the optional transpose — of the
  /// stored matrix `b` with leading dimension `ldb`.
  static std::shared_ptr<const PackedPanels> PackBOperand(const float* b,
                                                          int64_t ldb,
                                                          bool trans,
                                                          int64_t k,
                                                          int64_t n);

  /// \brief Packs op(A) — m x k after the optional transpose — of the
  /// stored matrix `a` with leading dimension `lda`.
  static std::shared_ptr<const PackedPanels> PackAOperand(const float* a,
                                                          int64_t lda,
                                                          bool trans,
                                                          int64_t m,
                                                          int64_t k);

  Side side() const { return side_; }
  bool trans() const { return trans_; }
  int64_t k() const { return k_; }
  /// n for a B-side pack, m for an A-side pack.
  int64_t mn() const { return mn_; }
  int64_t bytes() const {
    return total_floats_ * static_cast<int64_t>(sizeof(float));
  }

  /// \name Kernel plumbing (used by BatchedGemmPrepackedInto)
  /// @{
  const float* data() const { return data_.get(); }
  /// Floats between consecutive full K panels.
  int64_t panel_stride() const { return panel_stride_; }
  /// @}

 private:
  PackedPanels() = default;

  Side side_ = Side::kB;
  bool trans_ = false;
  int64_t k_ = 0;
  int64_t mn_ = 0;
  int64_t panel_stride_ = 0;
  int64_t total_floats_ = 0;
  std::shared_ptr<float[]> data_;
};

/// \brief C (m x n, row-major, leading dimension ldc) = beta * C +
/// op(A) op(B). op transposes when the matching flag is set; `lda`/`ldb`
/// are the leading dimensions of the *stored* (untransposed) operands.
void GemmInto(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
              const float* a, int64_t lda, const float* b, int64_t ldb,
              float beta, float* c, int64_t ldc);

/// \brief Batched GemmInto. `a_stride`/`b_stride`/`c_stride` advance each
/// operand between batch items; a stride of 0 shares that operand across
/// the whole batch, in which case it is packed once and reused by every
/// batch item (the shared-weight fast path).
void BatchedGemmInto(int64_t batch, bool trans_a, bool trans_b, int64_t m,
                     int64_t n, int64_t k, const float* a, int64_t a_stride,
                     int64_t lda, const float* b, int64_t b_stride,
                     int64_t ldb, float beta, float* c, int64_t c_stride,
                     int64_t ldc);

/// \brief BatchedGemmInto accepting optional prepacked operands. A non-null
/// `pre_a`/`pre_b` must describe the matching shared operand (stride 0,
/// same trans flag and op() dimensions, packed from the same bytes) and
/// replaces its on-the-fly packing; results are bit-identical to the
/// unpacked call. The raw pointer for a prepacked operand may be null.
void BatchedGemmPrepackedInto(int64_t batch, bool trans_a, bool trans_b,
                              int64_t m, int64_t n, int64_t k, const float* a,
                              int64_t a_stride, int64_t lda,
                              const PackedPanels* pre_a, const float* b,
                              int64_t b_stride, int64_t ldb,
                              const PackedPanels* pre_b, float beta, float* c,
                              int64_t c_stride, int64_t ldc);

/// \brief Enables/disables the inference fast paths (direct-A kernels and
/// the small-size no-plan path) process-wide; returns the previous value.
/// On by default. The legacy all-packed path produces bit-identical
/// results — the toggle exists so benchmarks can measure the attributable
/// win and property tests can compare the paths in one process.
bool SetGemmFastPaths(bool enabled);

/// \brief Current fast-path setting.
bool GemmFastPathsEnabled();

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_GEMM_H_
