#include "src/tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "src/core/check.h"
#include "src/core/parallel.h"
#include "src/tensor/simd.h"
#include "src/tensor/workspace.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dyhsl::tensor {
namespace {

// Register tile: kMr rows x kNr columns accumulated per micro-kernel call.
// 6 x 16 keeps the accumulator tile (96 floats) plus one packed B row in
// registers on AVX2 (12 ymm accumulators) and degrades gracefully to
// scalar code; kMc is a multiple of kMr so packed row-groups align with
// row-block boundaries.
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
constexpr int64_t kMc = 120;  // rows per L2-resident packed A block
constexpr int64_t kKc = 240;  // K panel: B panel of kKc x kNr stays in L1

// Multiply-add count below which the OpenMP fork/join overhead dominates.
constexpr int64_t kParallelCutoff = 1 << 15;

// Inference fast paths (direct-A kernels, small-size no-plan path). The
// legacy all-packed path is bit-identical; the toggle lets benchmarks and
// property tests compare both in one process.
std::atomic<bool> g_fast_paths{true};

// Stand-in rows for the padded lanes of a row-group tail: the packed path
// zero-pads rows past mb, so the direct path points their row pointers at
// zeros — same values, same (unused) accumulator lanes.
alignas(64) constexpr float kZeroRow[kKc] = {};

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Fallback packing buffers for threads with no active WorkspaceScope:
// thread-local vectors, reused across calls so steady-state GEMMs perform
// no allocation at all. When a scope *is* installed (training steps, eval
// batches, serve workers), packing memory comes from the step arena
// instead — see the PackPlan below — so it is recycled with everything
// else at Reset() and stays cache-warm. The small-size fast path also
// routes its packs here: it is serial by construction, so the scratch is
// private to the call and skipping the arena plan saves the per-call
// allocation that dominates tiny GEMMs.
struct Scratch {
  std::vector<float> a_pack;
  std::vector<float> b_pack;
};

Scratch* TlsScratch() {
  static thread_local Scratch scratch;
  return &scratch;
}

int64_t ThreadNum() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

// Packing-buffer layout for one BatchedGemmInto call. With an active
// Workspace the whole plan is one arena allocation sized for the largest
// K panel (shared packs first, then one per-OpenMP-thread task region);
// the handle drops at end of call, which the arena's LIFO reclaim rewinds
// immediately. Without a workspace, the shared packs fall back to local
// vectors and task packs to the thread-local Scratch.
struct PackPlan {
  std::shared_ptr<float[]> arena;   // single arena block (may be null)
  float* shared_a = nullptr;
  float* shared_b = nullptr;
  float* tasks = nullptr;           // num_threads x task_stride floats
  int64_t task_a_floats = 0;
  int64_t task_b_floats = 0;
  int64_t task_stride = 0;
  std::vector<float> fallback_a;    // shared packs when no workspace
  std::vector<float> fallback_b;
};

// Packs op(A) rows [i0, i0+mb) x panel columns [p0, p0+kb) into kMr-row
// groups: out[g * kb * kMr + p * kMr + r] = op(A)[i0 + g*kMr + r][p0 + p].
// Rows past mb are zero-padded so the micro-kernel never branches on the
// row tail (padded lanes are simply not written back).
void PackA(const float* a, int64_t lda, bool trans, int64_t i0, int64_t mb,
           int64_t p0, int64_t kb, float* out) {
  int64_t groups = CeilDiv(mb, kMr);
  for (int64_t g = 0; g < groups; ++g) {
    float* dst = out + g * kb * kMr;
    int64_t rows = std::min<int64_t>(kMr, mb - g * kMr);
    if (!trans) {
      // op(A)[i][p] = a[i * lda + p]: unit-stride reads along p.
      for (int64_t r = 0; r < rows; ++r) {
        const float* src = a + (i0 + g * kMr + r) * lda + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kMr + r] = src[p];
      }
    } else {
      // op(A)[i][p] = a[p * lda + i]: unit-stride reads along r.
      for (int64_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + g * kMr;
        for (int64_t r = 0; r < rows; ++r) dst[p * kMr + r] = src[r];
      }
    }
    if (rows < kMr) {
      for (int64_t p = 0; p < kb; ++p) {
        for (int64_t r = rows; r < kMr; ++r) dst[p * kMr + r] = 0.0f;
      }
    }
  }
}

// Packs op(B) panel rows [p0, p0+kb) x all n columns into kNr-column
// panels: out[jp * kb * kNr + p * kNr + c] = op(B)[p0 + p][jp*kNr + c],
// zero-padding the column tail.
void PackB(const float* b, int64_t ldb, bool trans, int64_t p0, int64_t kb,
           int64_t n, float* out) {
  int64_t panels = CeilDiv(n, kNr);
  for (int64_t jp = 0; jp < panels; ++jp) {
    float* dst = out + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t cols = std::min<int64_t>(kNr, n - j0);
    if (!trans) {
      // op(B)[p][j] = b[p * ldb + j]: unit-stride reads along c.
      for (int64_t p = 0; p < kb; ++p) {
        const float* src = b + (p0 + p) * ldb + j0;
        for (int64_t c = 0; c < cols; ++c) dst[p * kNr + c] = src[c];
        for (int64_t c = cols; c < kNr; ++c) dst[p * kNr + c] = 0.0f;
      }
    } else {
      // op(B)[p][j] = b[j * ldb + p]: unit-stride reads along p.
      for (int64_t c = 0; c < cols; ++c) {
        const float* src = b + (j0 + c) * ldb + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kNr + c] = src[p];
      }
      for (int64_t c = cols; c < kNr; ++c) {
        for (int64_t p = 0; p < kb; ++p) dst[p * kNr + c] = 0.0f;
      }
    }
  }
}

// acc (kMr x kNr) = Apack panel * Bpack panel over kb steps. Both panels
// are contiguous, so every inner loop is unit-stride. The GCC/Clang vector
// extension variant pins the 6 accumulator rows in SIMD registers — the
// compiler picks the widest ISA available (one zmm, two ymm or four xmm
// per row) and the arithmetic stays elementwise, so results are identical
// across ISAs.
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec __attribute__((vector_size(sizeof(float) * kNr)));
// Unaligned, aliasing-safe view for loads from packed panels (std::vector
// storage only guarantees float alignment).
typedef float VecU
    __attribute__((vector_size(sizeof(float) * kNr), aligned(alignof(float)),
                   may_alias));

void MicroKernel(int64_t kb, const float* __restrict__ ap,
                 const float* __restrict__ bp, float* __restrict__ acc) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  // Two accumulators per row (even/odd K steps): 12 independent FMA
  // chains hide the FMA latency that 6 alone cannot (latency 4-5 x
  // throughput 2 wants ~10 in flight). The per-element reduction order
  // is fixed (evens in order, odds in order, one final add), so results
  // stay deterministic and identical across taped/grad-free calls.
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  int64_t p = 0;
  for (; p + 1 < kb; p += 2) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    const float* aq = ap + p * kMr;
    // scalar op vector splats the scalar lane-wise (vbroadcastss + FMA).
    c0 += aq[0] * b0;
    c1 += aq[1] * b0;
    c2 += aq[2] * b0;
    c3 += aq[3] * b0;
    c4 += aq[4] * b0;
    c5 += aq[5] * b0;
    const Vec b1 = *reinterpret_cast<const VecU*>(bp + (p + 1) * kNr);
    const float* ar = aq + kMr;
    d0 += ar[0] * b1;
    d1 += ar[1] * b1;
    d2 += ar[2] * b1;
    d3 += ar[3] * b1;
    d4 += ar[4] * b1;
    d5 += ar[5] * b1;
  }
  if (p < kb) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    const float* aq = ap + p * kMr;
    c0 += aq[0] * b0;
    c1 += aq[1] * b0;
    c2 += aq[2] * b0;
    c3 += aq[3] * b0;
    c4 += aq[4] * b0;
    c5 += aq[5] * b0;
  }
  VecU* out = reinterpret_cast<VecU*>(acc);
  out[0] = c0 + d0;
  out[1] = c1 + d1;
  out[2] = c2 + d2;
  out[3] = c3 + d3;
  out[4] = c4 + d4;
  out[5] = c5 + d5;
}

// Two adjacent B panels per pass: every A broadcast feeds two FMAs, and
// the per-call fixed cost (accumulator init, write-back) is amortized
// over twice the work. acc0/acc1 receive the kMr x kNr tiles of panels
// j and j+1. Each output element still accumulates sequentially over p,
// so results are deterministic for a fixed shape.
void MicroKernel2(int64_t kb, const float* __restrict__ ap,
                  const float* __restrict__ bp0,
                  const float* __restrict__ bp1, float* __restrict__ acc0,
                  float* __restrict__ acc1) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  for (int64_t p = 0; p < kb; ++p) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp0 + p * kNr);
    const Vec b1 = *reinterpret_cast<const VecU*>(bp1 + p * kNr);
    const float* aq = ap + p * kMr;
    const float a0 = aq[0], a1 = aq[1], a2 = aq[2];
    const float a3 = aq[3], a4 = aq[4], a5 = aq[5];
    c0 += a0 * b0;
    d0 += a0 * b1;
    c1 += a1 * b0;
    d1 += a1 * b1;
    c2 += a2 * b0;
    d2 += a2 * b1;
    c3 += a3 * b0;
    d3 += a3 * b1;
    c4 += a4 * b0;
    d4 += a4 * b1;
    c5 += a5 * b0;
    d5 += a5 * b1;
  }
  VecU* out0 = reinterpret_cast<VecU*>(acc0);
  out0[0] = c0;
  out0[1] = c1;
  out0[2] = c2;
  out0[3] = c3;
  out0[4] = c4;
  out0[5] = c5;
  VecU* out1 = reinterpret_cast<VecU*>(acc1);
  out1[0] = d0;
  out1[1] = d1;
  out1[2] = d2;
  out1[3] = d3;
  out1[4] = d4;
  out1[5] = d5;
}

// Direct-A variants: op(A) is consumed through per-row pointers (already
// offset to the K panel) instead of a packed panel. ar[r][p] reads the
// exact value PackA would have staged at ap[p * kMr + r], and the
// accumulation order replays MicroKernel's even/odd dual-accumulator
// schedule per element, so results are bit-identical to the packed path.
// Only valid for !trans_a, where op(A) rows are unit-stride in memory.
void MicroKernelDirectA(int64_t kb, const float* const* ar,
                        const float* __restrict__ bp,
                        float* __restrict__ acc) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  const float* a0 = ar[0];
  const float* a1 = ar[1];
  const float* a2 = ar[2];
  const float* a3 = ar[3];
  const float* a4 = ar[4];
  const float* a5 = ar[5];
  int64_t p = 0;
  for (; p + 1 < kb; p += 2) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    c0 += a0[p] * b0;
    c1 += a1[p] * b0;
    c2 += a2[p] * b0;
    c3 += a3[p] * b0;
    c4 += a4[p] * b0;
    c5 += a5[p] * b0;
    const Vec b1 = *reinterpret_cast<const VecU*>(bp + (p + 1) * kNr);
    d0 += a0[p + 1] * b1;
    d1 += a1[p + 1] * b1;
    d2 += a2[p + 1] * b1;
    d3 += a3[p + 1] * b1;
    d4 += a4[p + 1] * b1;
    d5 += a5[p + 1] * b1;
  }
  if (p < kb) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    c0 += a0[p] * b0;
    c1 += a1[p] * b0;
    c2 += a2[p] * b0;
    c3 += a3[p] * b0;
    c4 += a4[p] * b0;
    c5 += a5[p] * b0;
  }
  VecU* out = reinterpret_cast<VecU*>(acc);
  out[0] = c0 + d0;
  out[1] = c1 + d1;
  out[2] = c2 + d2;
  out[3] = c3 + d3;
  out[4] = c4 + d4;
  out[5] = c5 + d5;
}

// Direct-A twin of MicroKernel2: two B panels per pass, sequential
// accumulation over p — the same per-element order as the packed kernel.
void MicroKernelDirectA2(int64_t kb, const float* const* ar,
                         const float* __restrict__ bp0,
                         const float* __restrict__ bp1,
                         float* __restrict__ acc0, float* __restrict__ acc1) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  const float* r0 = ar[0];
  const float* r1 = ar[1];
  const float* r2 = ar[2];
  const float* r3 = ar[3];
  const float* r4 = ar[4];
  const float* r5 = ar[5];
  for (int64_t p = 0; p < kb; ++p) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp0 + p * kNr);
    const Vec b1 = *reinterpret_cast<const VecU*>(bp1 + p * kNr);
    const float a0 = r0[p], a1 = r1[p], a2 = r2[p];
    const float a3 = r3[p], a4 = r4[p], a5 = r5[p];
    c0 += a0 * b0;
    d0 += a0 * b1;
    c1 += a1 * b0;
    d1 += a1 * b1;
    c2 += a2 * b0;
    d2 += a2 * b1;
    c3 += a3 * b0;
    d3 += a3 * b1;
    c4 += a4 * b0;
    d4 += a4 * b1;
    c5 += a5 * b0;
    d5 += a5 * b1;
  }
  VecU* out0 = reinterpret_cast<VecU*>(acc0);
  out0[0] = c0;
  out0[1] = c1;
  out0[2] = c2;
  out0[3] = c3;
  out0[4] = c4;
  out0[5] = c5;
  VecU* out1 = reinterpret_cast<VecU*>(acc1);
  out1[0] = d0;
  out1[1] = d1;
  out1[2] = d2;
  out1[3] = d3;
  out1[4] = d4;
  out1[5] = d5;
}

// Strided twins for trans_a: op(A)[i0+r][p0+p] = a[(p0+p)*lda + i0+r], so
// the kMr lanes of one K step are contiguous in memory — the exact layout
// PackA stages at ap[p * kMr + r], just with row stride lda instead of
// kMr. These are MicroKernel/MicroKernel2 verbatim with `aq` advancing by
// `astr` per step, so every output element sees the identical even/odd
// accumulation schedule and results match the packed path bit for bit.
void MicroKernelDirectAT(int64_t kb, const float* __restrict__ a0,
                         int64_t astr, const float* __restrict__ bp,
                         float* __restrict__ acc) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  int64_t p = 0;
  for (; p + 1 < kb; p += 2) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    const float* aq = a0 + p * astr;
    c0 += aq[0] * b0;
    c1 += aq[1] * b0;
    c2 += aq[2] * b0;
    c3 += aq[3] * b0;
    c4 += aq[4] * b0;
    c5 += aq[5] * b0;
    const Vec b1 = *reinterpret_cast<const VecU*>(bp + (p + 1) * kNr);
    const float* ar = aq + astr;
    d0 += ar[0] * b1;
    d1 += ar[1] * b1;
    d2 += ar[2] * b1;
    d3 += ar[3] * b1;
    d4 += ar[4] * b1;
    d5 += ar[5] * b1;
  }
  if (p < kb) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp + p * kNr);
    const float* aq = a0 + p * astr;
    c0 += aq[0] * b0;
    c1 += aq[1] * b0;
    c2 += aq[2] * b0;
    c3 += aq[3] * b0;
    c4 += aq[4] * b0;
    c5 += aq[5] * b0;
  }
  VecU* out = reinterpret_cast<VecU*>(acc);
  out[0] = c0 + d0;
  out[1] = c1 + d1;
  out[2] = c2 + d2;
  out[3] = c3 + d3;
  out[4] = c4 + d4;
  out[5] = c5 + d5;
}

void MicroKernelDirectAT2(int64_t kb, const float* __restrict__ a0,
                          int64_t astr, const float* __restrict__ bp0,
                          const float* __restrict__ bp1,
                          float* __restrict__ acc0,
                          float* __restrict__ acc1) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  Vec d0 = {0.0f}, d1 = {0.0f}, d2 = {0.0f};
  Vec d3 = {0.0f}, d4 = {0.0f}, d5 = {0.0f};
  for (int64_t p = 0; p < kb; ++p) {
    const Vec b0 = *reinterpret_cast<const VecU*>(bp0 + p * kNr);
    const Vec b1 = *reinterpret_cast<const VecU*>(bp1 + p * kNr);
    const float* aq = a0 + p * astr;
    const float a0v = aq[0], a1v = aq[1], a2v = aq[2];
    const float a3v = aq[3], a4v = aq[4], a5v = aq[5];
    c0 += a0v * b0;
    d0 += a0v * b1;
    c1 += a1v * b0;
    d1 += a1v * b1;
    c2 += a2v * b0;
    d2 += a2v * b1;
    c3 += a3v * b0;
    d3 += a3v * b1;
    c4 += a4v * b0;
    d4 += a4v * b1;
    c5 += a5v * b0;
    d5 += a5v * b1;
  }
  VecU* out0 = reinterpret_cast<VecU*>(acc0);
  out0[0] = c0;
  out0[1] = c1;
  out0[2] = c2;
  out0[3] = c3;
  out0[4] = c4;
  out0[5] = c5;
  VecU* out1 = reinterpret_cast<VecU*>(acc1);
  out1[0] = d0;
  out1[1] = d1;
  out1[2] = d2;
  out1[3] = d3;
  out1[4] = d4;
  out1[5] = d5;
}

#else  // portable scalar fallback

void MicroKernel(int64_t kb, const float* __restrict__ ap,
                 const float* __restrict__ bp, float* __restrict__ acc) {
  for (int64_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  for (int64_t p = 0; p < kb; ++p) {
    const float* aq = ap + p * kMr;
    const float* bq = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = aq[i];
      float* arow = acc + i * kNr;
      for (int64_t j = 0; j < kNr; ++j) arow[j] += av * bq[j];
    }
  }
}

void MicroKernel2(int64_t kb, const float* __restrict__ ap,
                  const float* __restrict__ bp0,
                  const float* __restrict__ bp1, float* __restrict__ acc0,
                  float* __restrict__ acc1) {
  MicroKernel(kb, ap, bp0, acc0);
  MicroKernel(kb, ap, bp1, acc1);
}

// Scalar direct-A twins: same sequential accumulation order as the scalar
// MicroKernel/MicroKernel2 above, reading op(A) through row pointers.
void MicroKernelDirectA(int64_t kb, const float* const* ar,
                        const float* __restrict__ bp,
                        float* __restrict__ acc) {
  for (int64_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  for (int64_t p = 0; p < kb; ++p) {
    const float* bq = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = ar[i][p];
      float* arow = acc + i * kNr;
      for (int64_t j = 0; j < kNr; ++j) arow[j] += av * bq[j];
    }
  }
}

void MicroKernelDirectA2(int64_t kb, const float* const* ar,
                         const float* __restrict__ bp0,
                         const float* __restrict__ bp1,
                         float* __restrict__ acc0, float* __restrict__ acc1) {
  MicroKernelDirectA(kb, ar, bp0, acc0);
  MicroKernelDirectA(kb, ar, bp1, acc1);
}

// Scalar strided twins for trans_a: MicroKernel with `aq` advancing by
// `astr` (the caller's lda) instead of kMr per K step.
void MicroKernelDirectAT(int64_t kb, const float* __restrict__ a0,
                         int64_t astr, const float* __restrict__ bp,
                         float* __restrict__ acc) {
  for (int64_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  for (int64_t p = 0; p < kb; ++p) {
    const float* aq = a0 + p * astr;
    const float* bq = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = aq[i];
      float* arow = acc + i * kNr;
      for (int64_t j = 0; j < kNr; ++j) arow[j] += av * bq[j];
    }
  }
}

void MicroKernelDirectAT2(int64_t kb, const float* __restrict__ a0,
                          int64_t astr, const float* __restrict__ bp0,
                          const float* __restrict__ bp1,
                          float* __restrict__ acc0,
                          float* __restrict__ acc1) {
  MicroKernelDirectAT(kb, a0, astr, bp0, acc0);
  MicroKernelDirectAT(kb, a0, astr, bp1, acc1);
}

#endif

// Writes the valid (mr x nr) corner of the accumulator tile into C. Full-
// width tiles keep the inlined unit-stride loops (the compiler already
// vectorizes the fixed nr == kNr trip count); the column-tail tiles go
// through the runtime SIMD dispatch (src/tensor/simd.h), whose masked
// stores replace the scalar peel the autovectorizer emits for a variable
// nr. The arithmetic per element is identical either way (beta * c + acc
// in the same order), so results stay bit-identical across paths.
void WriteTile(const float* acc, float* c, int64_t ldc, int64_t mr,
               int64_t nr, float beta) {
  if (nr < kNr) {
    const simd::Ops& ops = simd::Active();
    for (int64_t i = 0; i < mr; ++i) {
      ops.tile_row_update(acc + i * kNr, c + i * ldc, nr, beta);
    }
    return;
  }
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * kNr;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) crow[j] = beta * crow[j] + arow[j];
    }
  }
}

// C block rows [i0, i0+mb): all panels of one packed A block against the
// packed B panels of the current K panel. Panels are consumed in pairs
// (MicroKernel2 shares every A broadcast across two panels); a lone
// trailing panel falls back to the single-panel kernel.
void ComputeBlock(const float* a_pack, const float* b_pack, int64_t mb,
                  int64_t n, int64_t kb, float* c, int64_t ldc, float beta) {
  int64_t panels = CeilDiv(n, kNr);
  int64_t groups = CeilDiv(mb, kMr);
  for (int64_t jp = 0; jp < panels; jp += 2) {
    const bool pair = jp + 1 < panels;
    const float* bp0 = b_pack + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t nr0 = std::min<int64_t>(kNr, n - j0);
    int64_t nr1 = pair ? std::min<int64_t>(kNr, n - (j0 + kNr)) : 0;
    for (int64_t g = 0; g < groups; ++g) {
      const float* ap = a_pack + g * kb * kMr;
      int64_t mr = std::min<int64_t>(kMr, mb - g * kMr);
      float* crow = c + g * kMr * ldc + j0;
      if (pair) {
        float acc0[kMr * kNr];  // fully written by MicroKernel2
        float acc1[kMr * kNr];
        MicroKernel2(kb, ap, bp0, bp0 + kb * kNr, acc0, acc1);
        WriteTile(acc0, crow, ldc, mr, nr0, beta);
        WriteTile(acc1, crow + kNr, ldc, mr, nr1, beta);
      } else {
        float acc[kMr * kNr];  // fully written by MicroKernel
        MicroKernel(kb, ap, bp0, acc);
        WriteTile(acc, crow, ldc, mr, nr0, beta);
      }
    }
  }
}

// Direct-A twin of ComputeBlock: op(A) rows [i0, i0+mb) are consumed in
// place through row pointers (no PackA anywhere), panel columns starting
// at p0. Tail row groups point their padded lanes at kZeroRow — the same
// zeros PackA would stage — and the jp pairing matches ComputeBlock
// exactly, so every output element sees an identical accumulation order.
void ComputeBlockDirectA(const float* a, int64_t lda, int64_t i0, int64_t p0,
                         const float* b_pack, int64_t mb, int64_t n,
                         int64_t kb, float* c, int64_t ldc, float beta) {
  int64_t panels = CeilDiv(n, kNr);
  int64_t groups = CeilDiv(mb, kMr);
  for (int64_t jp = 0; jp < panels; jp += 2) {
    const bool pair = jp + 1 < panels;
    const float* bp0 = b_pack + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t nr0 = std::min<int64_t>(kNr, n - j0);
    int64_t nr1 = pair ? std::min<int64_t>(kNr, n - (j0 + kNr)) : 0;
    for (int64_t g = 0; g < groups; ++g) {
      int64_t mr = std::min<int64_t>(kMr, mb - g * kMr);
      const float* arows[kMr];
      for (int64_t r = 0; r < mr; ++r) {
        arows[r] = a + (i0 + g * kMr + r) * lda + p0;
      }
      for (int64_t r = mr; r < kMr; ++r) arows[r] = kZeroRow;
      float* crow = c + g * kMr * ldc + j0;
      if (pair) {
        float acc0[kMr * kNr];  // fully written by MicroKernelDirectA2
        float acc1[kMr * kNr];
        MicroKernelDirectA2(kb, arows, bp0, bp0 + kb * kNr, acc0, acc1);
        WriteTile(acc0, crow, ldc, mr, nr0, beta);
        WriteTile(acc1, crow + kNr, ldc, mr, nr1, beta);
      } else {
        float acc[kMr * kNr];  // fully written by MicroKernelDirectA
        MicroKernelDirectA(kb, arows, bp0, acc);
        WriteTile(acc, crow, ldc, mr, nr0, beta);
      }
    }
  }
}

// Direct twin of ComputeBlock for trans_a: op(A)'s kMr lanes of one K step
// are contiguous in memory (one row of A), so the strided micro-kernels
// read them in place with row stride lda — no PackA for any full row
// group. Only the tail group (mr < kMr), whose padded lanes would read
// past the matrix edge, is staged through PackA into a stack buffer; it
// then runs the ordinary packed kernels. The jp pairing and per-element
// accumulation order match ComputeBlock exactly, so results are
// bit-identical to the packed path.
void ComputeBlockDirectAT(const float* a, int64_t lda, int64_t i0, int64_t p0,
                          const float* b_pack, int64_t mb, int64_t n,
                          int64_t kb, float* c, int64_t ldc, float beta) {
  int64_t panels = CeilDiv(n, kNr);
  int64_t groups = CeilDiv(mb, kMr);
  const int64_t tail_rows = mb - (groups - 1) * kMr;
  float tail_pack[kMr * kKc];  // one staged row group, zero-padded lanes
  if (tail_rows < kMr) {
    PackA(a, lda, /*trans=*/true, i0 + (groups - 1) * kMr, tail_rows, p0, kb,
          tail_pack);
  }
  for (int64_t jp = 0; jp < panels; jp += 2) {
    const bool pair = jp + 1 < panels;
    const float* bp0 = b_pack + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t nr0 = std::min<int64_t>(kNr, n - j0);
    int64_t nr1 = pair ? std::min<int64_t>(kNr, n - (j0 + kNr)) : 0;
    for (int64_t g = 0; g < groups; ++g) {
      int64_t mr = std::min<int64_t>(kMr, mb - g * kMr);
      const bool tail = mr < kMr;
      // op(A)[i0+g*kMr+r][p0+p] = a[(p0+p)*lda + i0+g*kMr+r].
      const float* a0 = a + p0 * lda + i0 + g * kMr;
      float* crow = c + g * kMr * ldc + j0;
      if (pair) {
        float acc0[kMr * kNr];  // fully written by the paired kernels
        float acc1[kMr * kNr];
        if (tail) {
          MicroKernel2(kb, tail_pack, bp0, bp0 + kb * kNr, acc0, acc1);
        } else {
          MicroKernelDirectAT2(kb, a0, lda, bp0, bp0 + kb * kNr, acc0, acc1);
        }
        WriteTile(acc0, crow, ldc, mr, nr0, beta);
        WriteTile(acc1, crow + kNr, ldc, mr, nr1, beta);
      } else {
        float acc[kMr * kNr];  // fully written by the single-panel kernels
        if (tail) {
          MicroKernel(kb, tail_pack, bp0, acc);
        } else {
          MicroKernelDirectAT(kb, a0, lda, bp0, acc);
        }
        WriteTile(acc, crow, ldc, mr, nr0, beta);
      }
    }
  }
}

// beta-only update for the degenerate k == 0 case (op(A) op(B) is empty).
void ScaleOutput(int64_t batch, int64_t m, int64_t n, float beta, float* c,
                 int64_t c_stride, int64_t ldc) {
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t i = 0; i < m; ++i) {
      float* row = c + bi * c_stride + i * ldc;
      if (beta == 0.0f) {
        std::fill(row, row + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) row[j] *= beta;
      }
    }
  }
}

}  // namespace

bool SetGemmFastPaths(bool enabled) {
  return g_fast_paths.exchange(enabled, std::memory_order_relaxed);
}

bool GemmFastPathsEnabled() {
  return g_fast_paths.load(std::memory_order_relaxed);
}

std::shared_ptr<const PackedPanels> PackedPanels::PackBOperand(
    const float* b, int64_t ldb, bool trans, int64_t k, int64_t n) {
  DYHSL_CHECK(b != nullptr);
  DYHSL_CHECK_GE(k, 1);
  DYHSL_CHECK_GE(n, 1);
  std::shared_ptr<PackedPanels> pp(new PackedPanels());
  pp->side_ = Side::kB;
  pp->trans_ = trans;
  pp->k_ = k;
  pp->mn_ = n;
  const int64_t panels = CeilDiv(n, kNr);
  pp->panel_stride_ = panels * kKc * kNr;
  pp->total_floats_ = panels * kNr * k;
  // Heap-pinned: the panels outlive any step arena and survive Reset().
  WorkspaceBypass bypass;
  pp->data_ = AllocateStorage(pp->total_floats_);
  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kb = std::min<int64_t>(kKc, k - p0);
    PackB(b, ldb, trans, p0, kb, n,
          pp->data_.get() + (p0 / kKc) * pp->panel_stride_);
  }
  return pp;
}

std::shared_ptr<const PackedPanels> PackedPanels::PackAOperand(
    const float* a, int64_t lda, bool trans, int64_t m, int64_t k) {
  DYHSL_CHECK(a != nullptr);
  DYHSL_CHECK_GE(m, 1);
  DYHSL_CHECK_GE(k, 1);
  std::shared_ptr<PackedPanels> pp(new PackedPanels());
  pp->side_ = Side::kA;
  pp->trans_ = trans;
  pp->k_ = k;
  pp->mn_ = m;
  const int64_t groups = CeilDiv(m, kMr);
  pp->panel_stride_ = groups * kMr * kKc;
  pp->total_floats_ = groups * kMr * k;
  WorkspaceBypass bypass;
  pp->data_ = AllocateStorage(pp->total_floats_);
  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kb = std::min<int64_t>(kKc, k - p0);
    PackA(a, lda, trans, 0, m, p0, kb,
          pp->data_.get() + (p0 / kKc) * pp->panel_stride_);
  }
  return pp;
}

void BatchedGemmPrepackedInto(int64_t batch, bool trans_a, bool trans_b,
                              int64_t m, int64_t n, int64_t k, const float* a,
                              int64_t a_stride, int64_t lda,
                              const PackedPanels* pre_a, const float* b,
                              int64_t b_stride, int64_t ldb,
                              const PackedPanels* pre_b, float beta, float* c,
                              int64_t c_stride, int64_t ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  if (k <= 0) {
    ScaleOutput(batch, m, n, beta, c, c_stride, ldc);
    return;
  }
  if (pre_b != nullptr) {
    // A prepacked operand must describe exactly the shared operand of this
    // call — the same op() and dimensions the on-the-fly pack would see.
    DYHSL_CHECK(b_stride == 0);
    DYHSL_CHECK(pre_b->side() == PackedPanels::Side::kB);
    DYHSL_CHECK(pre_b->trans() == trans_b);
    DYHSL_CHECK_EQ(pre_b->k(), k);
    DYHSL_CHECK_EQ(pre_b->mn(), n);
  }
  if (pre_a != nullptr) {
    DYHSL_CHECK(a_stride == 0);
    DYHSL_CHECK(pre_a->side() == PackedPanels::Side::kA);
    DYHSL_CHECK(pre_a->trans() == trans_a);
    DYHSL_CHECK_EQ(pre_a->k(), k);
    DYHSL_CHECK_EQ(pre_a->mn(), m);
  }
  const bool shared_a = a_stride == 0;
  const bool shared_b = b_stride == 0;
  const bool fast = GemmFastPathsEnabled();
  // Direct-A: when op(A) rows are unit-stride in memory (!trans_a), the
  // kernels read them in place — no A packing at all. Profiling shows the
  // activation side is ~90% of grad-free packing time, so this is the
  // main lever; the prepacked/packed paths remain for trans_a and for
  // callers that supplied panels.
  const bool direct_a = fast && !trans_a && pre_a == nullptr;
  // Direct-A for trans_a: op(A)'s row lanes of one K step are contiguous
  // (a row of A), so the strided kernels read them in place; only the row
  // tail group stages through PackA (see ComputeBlockDirectAT).
  const bool direct_at = fast && trans_a && pre_a == nullptr;
  const int64_t ic_blocks = CeilDiv(m, kMc);
  const int64_t panels = CeilDiv(n, kNr);
  const int64_t kb_max = std::min<int64_t>(kKc, k);
  // Small-size fast path: the call runs serial either way — below the
  // parallel cutoff, or the calling thread's team budget is one (a pinned
  // engine worker) — so skip the arena plan and the OpenMP region and
  // stage any packs in the thread-local scratch.
  const int avail_team = core::TeamThreads();
  const bool small =
      fast &&
      (avail_team == 1 || batch * m * n * kb_max <= kParallelCutoff);

  // Packing buffers, sized for the largest K panel. With an active
  // WorkspaceScope the plan is one step-arena allocation, released (and
  // LIFO-rewound) when this call returns; otherwise shared packs use
  // local vectors and task packs the thread-local Scratch. Prepacked and
  // direct operands need no buffer at all.
  const int64_t shared_a_floats =
      (shared_a && pre_a == nullptr && !direct_a && !direct_at)
          ? CeilDiv(m, kMr) * kb_max * kMr
          : 0;
  const int64_t shared_b_floats =
      (shared_b && pre_b == nullptr) ? panels * kb_max * kNr : 0;
  PackPlan plan;
  plan.task_a_floats =
      (shared_a || direct_a || direct_at)
          ? 0
          : CeilDiv(std::min<int64_t>(kMc, m), kMr) * kb_max * kMr;
  plan.task_b_floats = shared_b ? 0 : panels * kb_max * kNr;
  plan.task_stride = plan.task_a_floats + plan.task_b_floats;
  // Intra-op team scoping: the region below is bounded by the calling
  // thread's ThreadBudget slice (TeamScope), so an engine worker's GEMMs
  // can never spawn a machine-wide team and oversubscribe its peers.
  const int team = small ? 1 : avail_team;
  (void)team;  // consumed only by the pragma; unused without OpenMP
  Workspace* workspace = small ? nullptr : Workspace::Current();
  if (workspace != nullptr) {
    plan.arena = workspace->Allocate(shared_a_floats + shared_b_floats +
                                     plan.task_stride * team);
    float* cursor = plan.arena.get();
    plan.shared_a = shared_a_floats > 0 ? cursor : nullptr;
    cursor += shared_a_floats;
    plan.shared_b = shared_b_floats > 0 ? cursor : nullptr;
    cursor += shared_b_floats;
    plan.tasks = cursor;
  } else if (small) {
    // Serial: shared and per-task packs are mutually exclusive per side,
    // so both can draw from the same thread-local scratch vectors.
    Scratch* scratch = TlsScratch();
    if (shared_a_floats > 0) {
      scratch->a_pack.resize(shared_a_floats);
      plan.shared_a = scratch->a_pack.data();
    }
    if (shared_b_floats > 0) {
      scratch->b_pack.resize(shared_b_floats);
      plan.shared_b = scratch->b_pack.data();
    }
  } else {
    plan.fallback_a.resize(shared_a_floats);
    plan.fallback_b.resize(shared_b_floats);
    plan.shared_a = shared_a_floats > 0 ? plan.fallback_a.data() : nullptr;
    plan.shared_b = shared_b_floats > 0 ? plan.fallback_b.data() : nullptr;
  }

  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kb = std::min<int64_t>(kKc, k - p0);
    // The first K panel applies the caller's beta; later panels accumulate.
    const float eff_beta = p0 == 0 ? beta : 1.0f;
    // Shared packed panels for this K panel: prepacked bytes when the
    // caller supplied them (identical to what PackB/PackA would write),
    // packed on the fly otherwise.
    const float* sb = nullptr;
    if (shared_b) {
      if (pre_b != nullptr) {
        sb = pre_b->data() + (p0 / kKc) * pre_b->panel_stride();
      } else {
        PackB(b, ldb, trans_b, p0, kb, n, plan.shared_b);
        sb = plan.shared_b;
      }
    }
    const float* sa = nullptr;
    if (shared_a && !direct_a && !direct_at) {
      if (pre_a != nullptr) {
        sa = pre_a->data() + (p0 / kKc) * pre_a->panel_stride();
      } else {
        // kMc is a multiple of kMr, so row-block g starts at packed group
        // i0 / kMr and per-block consumption aligns with one whole-M pack.
        PackA(a, lda, trans_a, 0, m, p0, kb, plan.shared_a);
        sa = plan.shared_a;
      }
    }

    const int64_t tasks = batch * ic_blocks;
    auto run_task = [&](int64_t t) {
      const int64_t bi = t / ic_blocks;
      const int64_t ic = t % ic_blocks;
      const int64_t i0 = ic * kMc;
      const int64_t mb = std::min<int64_t>(kMc, m - i0);
      const bool need_task_a = !shared_a && !direct_a && !direct_at;
      float* task_a = nullptr;
      float* task_b = nullptr;
      if (plan.arena != nullptr) {
        float* mine = plan.tasks + ThreadNum() * plan.task_stride;
        task_a = need_task_a ? mine : nullptr;
        task_b = shared_b ? nullptr : mine + plan.task_a_floats;
      } else {
        Scratch* scratch = TlsScratch();
        if (need_task_a) {
          scratch->a_pack.resize(plan.task_a_floats);
          task_a = scratch->a_pack.data();
        }
        if (!shared_b) {
          scratch->b_pack.resize(plan.task_b_floats);
          task_b = scratch->b_pack.data();
        }
      }

      const float* b_pack;
      if (shared_b) {
        b_pack = sb;
      } else {
        PackB(b + bi * b_stride, ldb, trans_b, p0, kb, n, task_b);
        b_pack = task_b;
      }
      float* cdst = c + bi * c_stride + i0 * ldc;
      if (direct_a) {
        ComputeBlockDirectA(a + bi * a_stride, lda, i0, p0, b_pack, mb, n,
                            kb, cdst, ldc, eff_beta);
        return;
      }
      if (direct_at) {
        ComputeBlockDirectAT(a + bi * a_stride, lda, i0, p0, b_pack, mb, n,
                             kb, cdst, ldc, eff_beta);
        return;
      }
      const float* a_pack;
      if (shared_a) {
        a_pack = sa + (i0 / kMr) * kb * kMr;
      } else {
        PackA(a + bi * a_stride, lda, trans_a, i0, mb, p0, kb, task_a);
        a_pack = task_a;
      }
      ComputeBlock(a_pack, b_pack, mb, n, kb, cdst, ldc, eff_beta);
    };
    // Deterministic per thread count: tasks partition the output, and each
    // element's accumulation order is fixed by the (p0, p) loop structure.
    if (!small && batch * m * n * kb > kParallelCutoff) {
#pragma omp parallel for schedule(static) num_threads(team)
      for (int64_t t = 0; t < tasks; ++t) run_task(t);
    } else {
      for (int64_t t = 0; t < tasks; ++t) run_task(t);
    }
  }
}

void BatchedGemmInto(int64_t batch, bool trans_a, bool trans_b, int64_t m,
                     int64_t n, int64_t k, const float* a, int64_t a_stride,
                     int64_t lda, const float* b, int64_t b_stride,
                     int64_t ldb, float beta, float* c, int64_t c_stride,
                     int64_t ldc) {
  BatchedGemmPrepackedInto(batch, trans_a, trans_b, m, n, k, a, a_stride,
                           lda, /*pre_a=*/nullptr, b, b_stride, ldb,
                           /*pre_b=*/nullptr, beta, c, c_stride, ldc);
}

void GemmInto(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
              const float* a, int64_t lda, const float* b, int64_t ldb,
              float beta, float* c, int64_t ldc) {
  BatchedGemmInto(1, trans_a, trans_b, m, n, k, a, /*a_stride=*/0, lda, b,
                  /*b_stride=*/0, ldb, beta, c, /*c_stride=*/0, ldc);
}

}  // namespace dyhsl::tensor
