#include "src/tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "src/core/check.h"

namespace dyhsl::tensor {
namespace {

// Register tile: kMr rows x kNr columns accumulated per micro-kernel call.
// 6 x 16 keeps the accumulator tile (96 floats) plus one packed B row in
// registers on AVX2 (12 ymm accumulators) and degrades gracefully to
// scalar code; kMc is a multiple of kMr so packed row-groups align with
// row-block boundaries.
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
constexpr int64_t kMc = 120;  // rows per L2-resident packed A block
constexpr int64_t kKc = 240;  // K panel: B panel of kKc x kNr stays in L1

// Multiply-add count below which the OpenMP fork/join overhead dominates.
constexpr int64_t kParallelCutoff = 1 << 15;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Thread-local packing buffers, reused across calls so steady-state GEMMs
// perform no allocation at all.
struct Scratch {
  std::vector<float> a_pack;
  std::vector<float> b_pack;
};

Scratch* TlsScratch() {
  static thread_local Scratch scratch;
  return &scratch;
}

// Packs op(A) rows [i0, i0+mb) x panel columns [p0, p0+kb) into kMr-row
// groups: out[g * kb * kMr + p * kMr + r] = op(A)[i0 + g*kMr + r][p0 + p].
// Rows past mb are zero-padded so the micro-kernel never branches on the
// row tail (padded lanes are simply not written back).
void PackA(const float* a, int64_t lda, bool trans, int64_t i0, int64_t mb,
           int64_t p0, int64_t kb, float* out) {
  int64_t groups = CeilDiv(mb, kMr);
  for (int64_t g = 0; g < groups; ++g) {
    float* dst = out + g * kb * kMr;
    int64_t rows = std::min<int64_t>(kMr, mb - g * kMr);
    if (!trans) {
      // op(A)[i][p] = a[i * lda + p]: unit-stride reads along p.
      for (int64_t r = 0; r < rows; ++r) {
        const float* src = a + (i0 + g * kMr + r) * lda + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kMr + r] = src[p];
      }
    } else {
      // op(A)[i][p] = a[p * lda + i]: unit-stride reads along r.
      for (int64_t p = 0; p < kb; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + g * kMr;
        for (int64_t r = 0; r < rows; ++r) dst[p * kMr + r] = src[r];
      }
    }
    if (rows < kMr) {
      for (int64_t p = 0; p < kb; ++p) {
        for (int64_t r = rows; r < kMr; ++r) dst[p * kMr + r] = 0.0f;
      }
    }
  }
}

// Packs op(B) panel rows [p0, p0+kb) x all n columns into kNr-column
// panels: out[jp * kb * kNr + p * kNr + c] = op(B)[p0 + p][jp*kNr + c],
// zero-padding the column tail.
void PackB(const float* b, int64_t ldb, bool trans, int64_t p0, int64_t kb,
           int64_t n, float* out) {
  int64_t panels = CeilDiv(n, kNr);
  for (int64_t jp = 0; jp < panels; ++jp) {
    float* dst = out + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t cols = std::min<int64_t>(kNr, n - j0);
    if (!trans) {
      // op(B)[p][j] = b[p * ldb + j]: unit-stride reads along c.
      for (int64_t p = 0; p < kb; ++p) {
        const float* src = b + (p0 + p) * ldb + j0;
        for (int64_t c = 0; c < cols; ++c) dst[p * kNr + c] = src[c];
        for (int64_t c = cols; c < kNr; ++c) dst[p * kNr + c] = 0.0f;
      }
    } else {
      // op(B)[p][j] = b[j * ldb + p]: unit-stride reads along p.
      for (int64_t c = 0; c < cols; ++c) {
        const float* src = b + (j0 + c) * ldb + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kNr + c] = src[p];
      }
      for (int64_t c = cols; c < kNr; ++c) {
        for (int64_t p = 0; p < kb; ++p) dst[p * kNr + c] = 0.0f;
      }
    }
  }
}

// acc (kMr x kNr) = Apack panel * Bpack panel over kb steps. Both panels
// are contiguous, so every inner loop is unit-stride. The GCC/Clang vector
// extension variant pins the 6 accumulator rows in SIMD registers — the
// compiler picks the widest ISA available (one zmm, two ymm or four xmm
// per row) and the arithmetic stays elementwise, so results are identical
// across ISAs.
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec __attribute__((vector_size(sizeof(float) * kNr)));
// Unaligned, aliasing-safe view for loads from packed panels (std::vector
// storage only guarantees float alignment).
typedef float VecU
    __attribute__((vector_size(sizeof(float) * kNr), aligned(alignof(float)),
                   may_alias));

void MicroKernel(int64_t kb, const float* __restrict__ ap,
                 const float* __restrict__ bp, float* __restrict__ acc) {
  static_assert(kMr == 6, "accumulator rows are unrolled by hand");
  Vec c0 = {0.0f}, c1 = {0.0f}, c2 = {0.0f};
  Vec c3 = {0.0f}, c4 = {0.0f}, c5 = {0.0f};
  for (int64_t p = 0; p < kb; ++p) {
    const Vec b = *reinterpret_cast<const VecU*>(bp + p * kNr);
    const float* aq = ap + p * kMr;
    // scalar op vector splats the scalar lane-wise (vbroadcastss + FMA).
    c0 += aq[0] * b;
    c1 += aq[1] * b;
    c2 += aq[2] * b;
    c3 += aq[3] * b;
    c4 += aq[4] * b;
    c5 += aq[5] * b;
  }
  VecU* out = reinterpret_cast<VecU*>(acc);
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
  out[4] = c4;
  out[5] = c5;
}

#else  // portable scalar fallback

void MicroKernel(int64_t kb, const float* __restrict__ ap,
                 const float* __restrict__ bp, float* __restrict__ acc) {
  for (int64_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  for (int64_t p = 0; p < kb; ++p) {
    const float* aq = ap + p * kMr;
    const float* bq = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = aq[i];
      float* arow = acc + i * kNr;
      for (int64_t j = 0; j < kNr; ++j) arow[j] += av * bq[j];
    }
  }
}

#endif

// Writes the valid (mr x nr) corner of the accumulator tile into C.
void WriteTile(const float* acc, float* c, int64_t ldc, int64_t mr,
               int64_t nr, float beta) {
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * kNr;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) crow[j] = beta * crow[j] + arow[j];
    }
  }
}

// C block rows [i0, i0+mb): all panels of one packed A block against the
// packed B panels of the current K panel.
void ComputeBlock(const float* a_pack, const float* b_pack, int64_t mb,
                  int64_t n, int64_t kb, float* c, int64_t ldc, float beta) {
  int64_t panels = CeilDiv(n, kNr);
  int64_t groups = CeilDiv(mb, kMr);
  for (int64_t jp = 0; jp < panels; ++jp) {
    const float* bp = b_pack + jp * kb * kNr;
    int64_t j0 = jp * kNr;
    int64_t nr = std::min<int64_t>(kNr, n - j0);
    for (int64_t g = 0; g < groups; ++g) {
      float acc[kMr * kNr];  // fully written by MicroKernel
      MicroKernel(kb, a_pack + g * kb * kMr, bp, acc);
      WriteTile(acc, c + g * kMr * ldc + j0, ldc,
                std::min<int64_t>(kMr, mb - g * kMr), nr, beta);
    }
  }
}

// beta-only update for the degenerate k == 0 case (op(A) op(B) is empty).
void ScaleOutput(int64_t batch, int64_t m, int64_t n, float beta, float* c,
                 int64_t c_stride, int64_t ldc) {
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t i = 0; i < m; ++i) {
      float* row = c + bi * c_stride + i * ldc;
      if (beta == 0.0f) {
        std::fill(row, row + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) row[j] *= beta;
      }
    }
  }
}

}  // namespace

void BatchedGemmInto(int64_t batch, bool trans_a, bool trans_b, int64_t m,
                     int64_t n, int64_t k, const float* a, int64_t a_stride,
                     int64_t lda, const float* b, int64_t b_stride,
                     int64_t ldb, float beta, float* c, int64_t c_stride,
                     int64_t ldc) {
  if (batch <= 0 || m <= 0 || n <= 0) return;
  if (k <= 0) {
    ScaleOutput(batch, m, n, beta, c, c_stride, ldc);
    return;
  }
  const bool shared_a = a_stride == 0;
  const bool shared_b = b_stride == 0;
  const int64_t ic_blocks = CeilDiv(m, kMc);
  const int64_t panels = CeilDiv(n, kNr);

  // Shared operands are packed once per K panel and reused by every
  // (batch, row-block) task; per-batch operands are packed into
  // thread-local scratch inside the task.
  std::vector<float> shared_a_pack;
  std::vector<float> shared_b_pack;

  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kb = std::min<int64_t>(kKc, k - p0);
    // The first K panel applies the caller's beta; later panels accumulate.
    const float eff_beta = p0 == 0 ? beta : 1.0f;
    if (shared_b) {
      shared_b_pack.resize(panels * kb * kNr);
      PackB(b, ldb, trans_b, p0, kb, n, shared_b_pack.data());
    }
    if (shared_a) {
      // kMc is a multiple of kMr, so row-block g starts at packed group
      // i0 / kMr and per-block consumption aligns with one whole-M pack.
      shared_a_pack.resize(CeilDiv(m, kMr) * kb * kMr);
      PackA(a, lda, trans_a, 0, m, p0, kb, shared_a_pack.data());
    }

    const int64_t tasks = batch * ic_blocks;
    // Deterministic per thread count: tasks partition the output, and each
    // element's accumulation order is fixed by the (p0, p) loop structure.
#pragma omp parallel for schedule(static) \
    if (batch * m * n * kb > kParallelCutoff)
    for (int64_t t = 0; t < tasks; ++t) {
      const int64_t bi = t / ic_blocks;
      const int64_t ic = t % ic_blocks;
      const int64_t i0 = ic * kMc;
      const int64_t mb = std::min<int64_t>(kMc, m - i0);
      Scratch* scratch = TlsScratch();

      const float* b_pack;
      if (shared_b) {
        b_pack = shared_b_pack.data();
      } else {
        scratch->b_pack.resize(panels * kb * kNr);
        PackB(b + bi * b_stride, ldb, trans_b, p0, kb, n,
              scratch->b_pack.data());
        b_pack = scratch->b_pack.data();
      }
      const float* a_pack;
      if (shared_a) {
        a_pack = shared_a_pack.data() + (i0 / kMr) * kb * kMr;
      } else {
        scratch->a_pack.resize(CeilDiv(mb, kMr) * kb * kMr);
        PackA(a + bi * a_stride, lda, trans_a, i0, mb, p0, kb,
              scratch->a_pack.data());
        a_pack = scratch->a_pack.data();
      }
      ComputeBlock(a_pack, b_pack, mb, n, kb,
                   c + bi * c_stride + i0 * ldc, ldc, eff_beta);
    }
  }
}

void GemmInto(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
              const float* a, int64_t lda, const float* b, int64_t ldb,
              float beta, float* c, int64_t ldc) {
  BatchedGemmInto(1, trans_a, trans_b, m, n, k, a, /*a_stride=*/0, lda, b,
                  /*b_stride=*/0, ldb, beta, c, /*c_stride=*/0, ldc);
}

}  // namespace dyhsl::tensor
