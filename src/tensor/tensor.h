// Dense float32 N-dimensional tensor.
//
// Design notes
//  * Row-major and always contiguous: Reshape shares storage, every other
//    movement op copies. This rules out an entire class of stride bugs at a
//    small cost in copies, which profiling shows are dwarfed by matmuls for
//    the workloads in this repository.
//  * Storage is shared (shared_ptr), so Tensor is a cheap value type; Clone()
//    makes a deep copy when isolation is required. Allocation goes through
//    AllocateStorage (src/tensor/workspace.h): heap by default, arena-backed
//    inside a WorkspaceScope (the training loop installs one per step).
//  * Only float32 is supported: every model and kernel in the paper operates
//    on float features; index arrays use std::vector<int64_t> directly.

#ifndef DYHSL_TENSOR_TENSOR_H_
#define DYHSL_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/core/check.h"
#include "src/core/rng.h"

namespace dyhsl::tensor {

/// \brief Dimension sizes of a tensor, outermost first.
using Shape = std::vector<int64_t>;

/// \brief Number of elements implied by a shape (1 for rank-0).
int64_t NumElements(const Shape& shape);

/// \brief "[2, 3, 4]"-style rendering for error messages.
std::string ShapeToString(const Shape& shape);

/// \brief Contiguous row-major float tensor with shared storage.
class Tensor {
 public:
  /// Creates an empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Creates an uninitialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// \name Factories
  /// @{
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Wraps a copy of `values`; total size must match the shape.
  static Tensor FromVector(Shape shape, const std::vector<float>& values);
  /// Standard-normal entries scaled by `stddev`.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f);
  /// Uniform entries in [lo, hi).
  static Tensor Uniform(Shape shape, Rng* rng, float lo, float hi);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);
  /// Rank-0-like scalar represented as shape {1}.
  static Tensor Scalar(float value);
  /// Wraps existing storage without copying — the zero-copy view factory
  /// used by ring buffers (src/tensor/ring.h), which alias a window inside
  /// a larger buffer via the shared_ptr aliasing constructor. The wrapped
  /// pointer must stay valid for the storage's lifetime; because the view
  /// shares ownership, UniqueStorage() is false on both sides, which is
  /// exactly what keeps the in-place inference fast paths from mutating
  /// the underlying buffer through the view.
  static Tensor FromStorage(std::shared_ptr<float[]> storage, Shape shape);
  /// @}

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return numel_; }
  bool defined() const { return storage_ != nullptr; }

  float* data() { return storage_.get(); }
  const float* data() const { return storage_.get(); }

  /// \brief Element access by multi-index (test/debug convenience, slow).
  float At(std::initializer_list<int64_t> index) const;
  void Set(std::initializer_list<int64_t> index, float value);

  /// \brief Returns a tensor sharing this storage with a new shape.
  /// One dimension may be -1 (inferred). Element count must match.
  Tensor Reshape(Shape new_shape) const;

  /// \brief Zero-copy view of `new_shape` starting `offset_floats` into
  /// this storage (shared_ptr aliasing constructor: the view keeps the
  /// whole buffer alive). The window [offset, offset + numel) must lie
  /// inside this tensor. Like Reshape, the view stays contiguous
  /// row-major; unlike Reshape it may cover a strict sub-range.
  Tensor Alias(int64_t offset_floats, Shape new_shape) const;

  /// \brief Deep copy.
  Tensor Clone() const;

  /// \brief Sets every element to `value`.
  void Fill(float value);

  /// \brief Copies the contents of `other` (same numel) into this storage.
  void CopyDataFrom(const Tensor& other);

  /// \brief True if both tensors share the same underlying buffer.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// \brief True if no other Tensor (e.g. a Reshape view) references this
  /// storage — the precondition for safe in-place mutation.
  bool UniqueStorage() const {
    return storage_ != nullptr && storage_.use_count() == 1;
  }

  /// \brief All elements as a vector (test convenience).
  std::vector<float> ToVector() const;

  /// \brief Compact human-readable rendering (truncated for large tensors).
  std::string ToString(int64_t max_elements = 32) const;

 private:
  std::shared_ptr<float[]> storage_;
  Shape shape_;
  int64_t numel_ = 0;
};

/// \brief Flat offset of a multi-index in a row-major tensor of `shape`.
int64_t FlatIndex(const Shape& shape, const std::vector<int64_t>& index);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_TENSOR_H_
