#include "src/tensor/ring.h"

#include <cstring>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::tensor {

namespace {

Shape DoubledShape(int64_t steps, const Shape& frame_shape) {
  Shape shape;
  shape.reserve(frame_shape.size() + 1);
  shape.push_back(2 * steps);
  for (int64_t d : frame_shape) shape.push_back(d);
  return shape;
}

}  // namespace

RingWindow::RingWindow(int64_t steps, Shape frame_shape)
    : steps_(steps),
      frame_shape_(std::move(frame_shape)),
      frame_numel_(NumElements(frame_shape_)),
      buffer_(DoubledShape(steps, frame_shape_)) {
  DYHSL_CHECK_GE(steps_, 1);
  DYHSL_CHECK_GE(frame_numel_, 1);
}

void RingWindow::Push(const float* frame) {
  const size_t bytes = static_cast<size_t>(frame_numel_) * sizeof(float);
  float* base = buffer_.data();
  // The double write: slot q and its mirror q + steps. Any window of
  // `steps` consecutive slots starting in [0, steps) is then contiguous.
  std::memcpy(base + cursor_ * frame_numel_, frame, bytes);
  std::memcpy(base + (cursor_ + steps_) * frame_numel_, frame, bytes);
  cursor_ = (cursor_ + 1) % steps_;
  count_ = std::min(count_ + 1, steps_);
  total_pushed_ += 1;
}

Tensor RingWindow::Window() const {
  DYHSL_CHECK(full());
  return LastFrames(steps_);
}

Tensor RingWindow::LastFrames(int64_t last) const {
  DYHSL_CHECK_GE(last, 1);
  DYHSL_CHECK_LE(last, count_);
  // cursor_ is the next write slot == the oldest live slot once full; the
  // newest frame sits at cursor_ - 1 (mod steps), so the last `last`
  // frames start `last` slots before the mirror of the cursor.
  const int64_t start = cursor_ - last < 0 ? cursor_ - last + steps_
                                           : cursor_ - last;
  Shape view_shape;
  view_shape.reserve(frame_shape_.size() + 1);
  view_shape.push_back(last);
  for (int64_t d : frame_shape_) view_shape.push_back(d);
  // Zero-copy alias into the doubled buffer. The view shares the ring's
  // storage (UniqueStorage() false on both sides), so inference in-place
  // fast paths can never write through the view into the ring.
  return buffer_.Alias(start * frame_numel_, std::move(view_shape));
}

void RingWindow::Clear() {
  cursor_ = 0;
  count_ = 0;
}

}  // namespace dyhsl::tensor
