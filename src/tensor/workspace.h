// Step-scoped arena allocator for tensor storage.
//
// Training allocates thousands of short-lived tensors per step (forward
// activations, backward temporaries, gradient buffers). A Workspace
// bump-allocates them from large slabs and recycles the whole arena with
// one Reset() per step, eliminating the per-op malloc/free traffic in the
// hot loop.
//
// Safety model
//  * Handles are ordinary shared_ptr<float[]> deleters that keep the
//    owning slab's memory alive. A tensor that outlives Reset() — e.g. a
//    parameter gradient that the optimizer keeps across steps — therefore
//    stays valid; its slab is merely *retired* (no longer bump-allocated
//    from) instead of rewound, and its memory is reclaimed once the last
//    handle drops.
//  * Reset() rewinds every slab whose live-allocation count is zero. The
//    steady state of a training loop is one slab rewound per step with no
//    allocation at all after warm-up.
//  * Allocation is single-threaded (the owning thread of the installing
//    WorkspaceScope); handle release may happen on any thread.

#ifndef DYHSL_TENSOR_WORKSPACE_H_
#define DYHSL_TENSOR_WORKSPACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dyhsl::tensor {

/// \brief Bump-allocating arena for float tensor storage with per-step
/// Reset() recycling. See the file comment for the safety model.
class Workspace {
 public:
  /// \brief `min_slab_floats` sizes the first slab; later slabs grow
  /// geometrically so arbitrary workloads settle on O(1) slabs.
  explicit Workspace(int64_t min_slab_floats = int64_t{1} << 18);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// \brief Bump-allocates uninitialized storage for `numel` floats.
  std::shared_ptr<float[]> Allocate(int64_t numel);

  /// \brief Starts a new step: slabs with no live allocations rewind and
  /// are reused; still-referenced slabs are retired (memory stays valid
  /// until their last handle drops).
  void Reset();

  /// \name Introspection (tests and diagnostics)
  /// @{
  int64_t slab_count() const { return static_cast<int64_t>(slabs_.size()); }
  int64_t retired_count() const {
    return static_cast<int64_t>(retired_.size());
  }
  int64_t live_allocations() const;
  int64_t bytes_reserved() const;
  /// @}

  /// \brief Workspace installed by the innermost active WorkspaceScope on
  /// the calling thread, or nullptr when none is active.
  static Workspace* Current();

 private:
  struct Slab {
    std::shared_ptr<float[]> data;
    int64_t capacity = 0;  // floats
    /// Bump pointer (floats). Atomic and shared with handle deleters: a
    /// handle that is freed while it is still the slab's trailing
    /// allocation rewinds the pointer (LIFO reclaim), so tape-less
    /// forwards reuse a small, cache-hot region instead of sweeping the
    /// arena. Allocation stays single-threaded; the deleter's
    /// compare-exchange makes cross-thread release safe.
    std::shared_ptr<std::atomic<int64_t>> offset;
    std::shared_ptr<std::atomic<int64_t>> live;
  };

  Slab* SlabWithRoom(int64_t need);

  int64_t next_slab_floats_;
  std::vector<Slab> slabs_;
  std::vector<Slab> retired_;
};

/// \brief RAII guard installing a workspace as the calling thread's
/// current allocator. While active, Tensor storage allocation (see
/// AllocateStorage) draws from the arena. Scopes nest; the previous
/// current workspace is restored on destruction.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace* workspace);
  ~WorkspaceScope();

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace* previous_;
};

/// \brief RAII guard forcing heap allocation even while a WorkspaceScope
/// is active. Used for buffers that intentionally outlive the step — e.g.
/// parameter gradients, which the optimizer keeps across steps; letting
/// them land in the arena would retire (pin) whole step slabs forever.
class WorkspaceBypass {
 public:
  WorkspaceBypass();
  ~WorkspaceBypass();

  WorkspaceBypass(const WorkspaceBypass&) = delete;
  WorkspaceBypass& operator=(const WorkspaceBypass&) = delete;

 private:
  Workspace* previous_;
};

/// \brief Storage for `numel` floats: bump-allocated from the current
/// workspace when a scope is active on this thread, heap-allocated
/// otherwise. This is the single allocation path used by Tensor.
std::shared_ptr<float[]> AllocateStorage(int64_t numel);

}  // namespace dyhsl::tensor

#endif  // DYHSL_TENSOR_WORKSPACE_H_
