#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/vecmath.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dyhsl::tensor {
namespace {

// Threshold below which elementwise loops stay single-threaded.
constexpr int64_t kParallelCutoff = 1 << 15;

// Row-major strides for a shape.
std::vector<int64_t> StridesOf(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

// Strides of `shape` expanded to `out_rank` dims with broadcast axes zeroed.
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out) {
  std::vector<int64_t> strides(out.size(), 0);
  auto own = StridesOf(shape);
  int64_t offset = static_cast<int64_t>(out.size() - shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] != 1) strides[offset + i] = own[i];
  }
  return strides;
}

template <typename F>
Tensor BinaryOp(const Tensor& a, const Tensor& b, F f) {
  // Fast path: identical shapes.
  if (SameShape(a, b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    int64_t n = a.numel();
#pragma omp parallel for if (n > kParallelCutoff)
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return out;
  }
  // Fast path: b is a scalar.
  if (b.numel() == 1) {
    Tensor out(a.shape());
    const float* pa = a.data();
    float s = b.data()[0];
    float* po = out.data();
    int64_t n = a.numel();
#pragma omp parallel for if (n > kParallelCutoff)
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], s);
    return out;
  }
  // Fast path: row broadcast — rank-1 b pairs elementwise with the trailing
  // axis of a. Valid only when the broadcast result *is* a.shape: b must
  // match a's trailing axis exactly and no axis of a may need expanding
  // against b (a size-1 trailing axis with a longer b, say, must fall
  // through to the general path, which produces a wider output).
  if (b.dim() == 1 && a.dim() >= 1 && a.size(-1) == b.size(0) &&
      BroadcastShape(a.shape(), b.shape()) == a.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    int64_t cols = b.size(0);
    int64_t rows = a.numel() / cols;
#pragma omp parallel for if (a.numel() > kParallelCutoff)
    for (int64_t r = 0; r < rows; ++r) {
      const float* ra = pa + r * cols;
      float* ro = po + r * cols;
      for (int64_t c = 0; c < cols; ++c) ro[c] = f(ra[c], pb[c]);
    }
    return out;
  }
  // Fast path: column broadcast — b matches a except its last axis is 1
  // (the LayerNorm/Softmax "per-row statistic" pattern). One scalar load
  // per row instead of the general path's per-element index arithmetic.
  if (a.dim() == b.dim() && a.dim() >= 1 && b.size(-1) == 1) {
    bool column = true;
    for (int64_t d = 0; d + 1 < a.dim(); ++d) {
      if (a.size(d) != b.size(d)) {
        column = false;
        break;
      }
    }
    if (column && a.size(-1) >= 1) {
      Tensor out(a.shape());
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      int64_t cols = a.size(-1);
      int64_t rows = a.numel() / cols;
#pragma omp parallel for if (a.numel() > kParallelCutoff)
      for (int64_t r = 0; r < rows; ++r) {
        const float* ra = pa + r * cols;
        float s = pb[r];
        float* ro = po + r * cols;
        for (int64_t c = 0; c < cols; ++c) ro[c] = f(ra[c], s);
      }
      return out;
    }
  }
  // General broadcasting, iterated by output row (the last axis): the
  // div/mod index arithmetic runs once per row, and the inner loop is one
  // of four unit-stride forms picked by whether each operand broadcasts
  // along the last axis. Orders of magnitude faster than per-element
  // index math for the embedding-add / row-stat patterns.
  Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  if (out.numel() == 0) return out;  // zero-size axis: nothing to compute
  auto sa = BroadcastStrides(a.shape(), out_shape);
  auto sb = BroadcastStrides(b.shape(), out_shape);
  auto so = StridesOf(out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t rank = static_cast<int64_t>(out_shape.size());
  int64_t cols = out_shape[rank - 1];
  int64_t rows = out.numel() / cols;
  int64_t sa_col = sa[rank - 1];  // 0 or 1 (operands are contiguous)
  int64_t sb_col = sb[rank - 1];
#pragma omp parallel for if (out.numel() > kParallelCutoff)
  for (int64_t r = 0; r < rows; ++r) {
    int64_t rem = r * cols, ia = 0, ib = 0;
    for (int64_t d = 0; d < rank - 1; ++d) {
      int64_t idx = rem / so[d];
      rem -= idx * so[d];
      ia += idx * sa[d];
      ib += idx * sb[d];
    }
    const float* ra = pa + ia;
    const float* rb = pb + ib;
    float* ro = po + r * cols;
    if (sa_col == 1 && sb_col == 1) {
      for (int64_t c = 0; c < cols; ++c) ro[c] = f(ra[c], rb[c]);
    } else if (sa_col == 1) {
      float s = rb[0];
      for (int64_t c = 0; c < cols; ++c) ro[c] = f(ra[c], s);
    } else if (sb_col == 1) {
      float s = ra[0];
      for (int64_t c = 0; c < cols; ++c) ro[c] = f(s, rb[c]);
    } else {
      float v = f(ra[0], rb[0]);
      for (int64_t c = 0; c < cols; ++c) ro[c] = v;
    }
  }
  return out;
}

template <typename F>
Tensor UnaryOp(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    DYHSL_CHECK_MSG(da == db || da == 1 || db == 1,
                    "incompatible broadcast " + ShapeToString(a) + " vs " +
                        ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  Tensor cur = t;
  // Sum away leading extra axes.
  while (cur.dim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdims=*/false);
  }
  // Sum broadcast axes (size 1 in target) keeping dims.
  for (int64_t d = 0; d < cur.dim(); ++d) {
    if (target[d] == 1 && cur.size(d) != 1) {
      cur = Sum(cur, d, /*keepdims=*/true);
    }
  }
  DYHSL_CHECK_MSG(cur.shape() == target,
                  "ReduceToShape failed: " + ShapeToString(t.shape()) +
                      " -> " + ShapeToString(target));
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x > y ? x : y; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}

void AddInPlace(Tensor* dst, const Tensor& src) { AddInto(*dst, src, dst); }

void AxpyInPlace(Tensor* dst, float alpha, const Tensor& src) {
  DYHSL_CHECK(SameShape(*dst, src));
  float* pd = dst->data();
  const float* ps = src.data();
  int64_t n = dst->numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) pd[i] += alpha * ps[i];
}

void ScaleInPlace(Tensor* dst, float s) {
  float* pd = dst->data();
  int64_t n = dst->numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) pd[i] *= s;
}

void AddBroadcastInPlace(Tensor* dst, const Tensor& b) {
  Shape out_shape = BroadcastShape(dst->shape(), b.shape());
  DYHSL_CHECK_MSG(out_shape == dst->shape(),
                  "AddBroadcastInPlace: b must broadcast to dst's shape");
  if (dst->numel() == 0) return;
  auto sb = BroadcastStrides(b.shape(), out_shape);
  auto so = StridesOf(out_shape);
  const float* pb = b.data();
  float* pd = dst->data();
  int64_t rank = static_cast<int64_t>(out_shape.size());
  if (rank == 0) {
    pd[0] += pb[0];
    return;
  }
  int64_t cols = out_shape[rank - 1];
  int64_t rows = dst->numel() / cols;
  int64_t sb_col = sb[rank - 1];
#pragma omp parallel for if (dst->numel() > kParallelCutoff)
  for (int64_t r = 0; r < rows; ++r) {
    int64_t rem = r * cols, ib = 0;
    for (int64_t d = 0; d < rank - 1; ++d) {
      int64_t idx = rem / so[d];
      rem -= idx * so[d];
      ib += idx * sb[d];
    }
    const float* rb = pb + ib;
    float* rd = pd + r * cols;
    if (sb_col == 1) {
      for (int64_t c = 0; c < cols; ++c) rd[c] = rd[c] + rb[c];
    } else {
      float s = rb[0];
      for (int64_t c = 0; c < cols; ++c) rd[c] = rd[c] + s;
    }
  }
}

// The single fused addition kernel; AddInPlace is the aliasing special
// case AddInto(dst, src, dst).
void AddInto(const Tensor& a, const Tensor& b, Tensor* out) {
  DYHSL_CHECK(SameShape(a, b));
  DYHSL_CHECK(SameShape(a, *out));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  int64_t n = a.numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
void ReluInPlace(Tensor* t) {
  float* p = t->data();
  int64_t n = t->numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}
void AddScalarInPlace(Tensor* t, float s) {
  float* p = t->data();
  int64_t n = t->numel();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) p[i] += s;
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}
// Sigmoid/Tanh/Exp route through vecmath.cc, whose loops vectorize the
// libm calls (Release builds; see that file's comment).
Tensor Sigmoid(const Tensor& a) {
  Tensor out(a.shape());
  SigmoidArray(a.data(), out.data(), a.numel());
  return out;
}
Tensor Tanh(const Tensor& a) {
  Tensor out(a.shape());
  TanhArray(a.data(), out.data(), a.numel());
  return out;
}
Tensor Exp(const Tensor& a) {
  Tensor out(a.shape());
  ExpArray(a.data(), out.data(), a.numel());
  return out;
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Rsqrt(const Tensor& a, float eps) {
  return UnaryOp(a, [eps](float x) { return 1.0f / std::sqrt(x + eps); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Sign(const Tensor& a) {
  return UnaryOp(a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}
Tensor Heaviside(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return UnaryOp(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

namespace {

// Validated logical dimensions of a (possibly batched) matmul. A stride of
// 0 marks an operand shared across the batch.
struct MatMulDims {
  int64_t batch;
  int64_t m, n, k;
  int64_t a_stride, b_stride;
  int64_t lda, ldb;
};

MatMulDims ResolveMatMulDims(const Tensor& a, const Tensor& b, bool trans_a,
                             bool trans_b, bool batched) {
  MatMulDims d;
  if (batched) {
    DYHSL_CHECK(a.dim() == 3 || a.dim() == 2);
    DYHSL_CHECK(b.dim() == 3 || b.dim() == 2);
    DYHSL_CHECK_MSG(a.dim() == 3 || b.dim() == 3,
                    "BatchedMatMul needs at least one 3-D operand");
    d.batch = a.dim() == 3 ? a.size(0) : b.size(0);
    if (a.dim() == 3 && b.dim() == 3) DYHSL_CHECK_EQ(b.size(0), d.batch);
  } else {
    DYHSL_CHECK_EQ(a.dim(), 2);
    DYHSL_CHECK_EQ(b.dim(), 2);
    d.batch = 1;
  }
  int64_t a_rows = a.size(a.dim() - 2);
  int64_t a_cols = a.size(-1);
  int64_t b_rows = b.size(b.dim() - 2);
  int64_t b_cols = b.size(-1);
  d.m = trans_a ? a_cols : a_rows;
  d.k = trans_a ? a_rows : a_cols;
  int64_t kb = trans_b ? b_cols : b_rows;
  d.n = trans_b ? b_rows : b_cols;
  DYHSL_CHECK_MSG(d.k == kb, "MatMul inner dim mismatch " +
                                 ShapeToString(a.shape()) + " x " +
                                 ShapeToString(b.shape()));
  d.a_stride = a.dim() == 3 ? a_rows * a_cols : 0;
  d.b_stride = b.dim() == 3 ? b_rows * b_cols : 0;
  d.lda = a_cols;
  d.ldb = b_cols;
  return d;
}

// Prepacked-operand resolution: under an active PrepackLookupScope (the
// serving paths), shared 2-D operands are looked up in the PrepackCache
// and enrolled weights skip their packing entirely — bit-identical, since
// the cached panels hold the same bytes the on-the-fly pack would write.
// Training installs no scope and pays nothing here.
struct PrepackedOperands {
  std::shared_ptr<const PackedPanels> a;
  std::shared_ptr<const PackedPanels> b;
};

PrepackedOperands LookupPrepacked(const Tensor& a, const Tensor& b,
                                  bool trans_a, bool trans_b,
                                  const MatMulDims& d) {
  PrepackedOperands pre;
  if (!PrepackLookupActive()) return pre;
  PrepackCache& cache = PrepackCache::Instance();
  if (d.b_stride == 0 && b.dim() == 2) {
    pre.b = cache.Lookup(b.data(), PackedPanels::Side::kB, trans_b, d.k, d.n);
  }
  if (d.a_stride == 0 && a.dim() == 2) {
    pre.a = cache.Lookup(a.data(), PackedPanels::Side::kA, trans_a, d.k, d.m);
  }
  return pre;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  MatMulDims d = ResolveMatMulDims(a, b, trans_a, trans_b, /*batched=*/false);
  PrepackedOperands pre = LookupPrepacked(a, b, trans_a, trans_b, d);
  Tensor out({d.m, d.n});  // uninitialized: beta == 0 fully overwrites
  BatchedGemmPrepackedInto(1, trans_a, trans_b, d.m, d.n, d.k, a.data(),
                           /*a_stride=*/0, d.lda, pre.a.get(), b.data(),
                           /*b_stride=*/0, d.ldb, pre.b.get(),
                           /*beta=*/0.0f, out.data(), /*c_stride=*/0, d.n);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                float beta, Tensor* out) {
  MatMulDims d = ResolveMatMulDims(a, b, trans_a, trans_b, /*batched=*/false);
  DYHSL_CHECK_MSG(out->shape() == Shape({d.m, d.n}),
                  "MatMulInto output shape " + ShapeToString(out->shape()) +
                      " != " + ShapeToString({d.m, d.n}));
  PrepackedOperands pre = LookupPrepacked(a, b, trans_a, trans_b, d);
  BatchedGemmPrepackedInto(1, trans_a, trans_b, d.m, d.n, d.k, a.data(),
                           /*a_stride=*/0, d.lda, pre.a.get(), b.data(),
                           /*b_stride=*/0, d.ldb, pre.b.get(), beta,
                           out->data(), /*c_stride=*/0, d.n);
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                     bool trans_b) {
  MatMulDims d = ResolveMatMulDims(a, b, trans_a, trans_b, /*batched=*/true);
  PrepackedOperands pre = LookupPrepacked(a, b, trans_a, trans_b, d);
  Tensor out({d.batch, d.m, d.n});
  BatchedGemmPrepackedInto(d.batch, trans_a, trans_b, d.m, d.n, d.k,
                           a.data(), d.a_stride, d.lda, pre.a.get(),
                           b.data(), d.b_stride, d.ldb, pre.b.get(),
                           /*beta=*/0.0f, out.data(), d.m * d.n, d.n);
  return out;
}

void BatchedMatMulInto(const Tensor& a, const Tensor& b, bool trans_a,
                       bool trans_b, float beta, Tensor* out) {
  MatMulDims d = ResolveMatMulDims(a, b, trans_a, trans_b, /*batched=*/true);
  DYHSL_CHECK_MSG(out->shape() == Shape({d.batch, d.m, d.n}),
                  "BatchedMatMulInto output shape " +
                      ShapeToString(out->shape()) + " != " +
                      ShapeToString({d.batch, d.m, d.n}));
  PrepackedOperands pre = LookupPrepacked(a, b, trans_a, trans_b, d);
  BatchedGemmPrepackedInto(d.batch, trans_a, trans_b, d.m, d.n, d.k,
                           a.data(), d.a_stride, d.lda, pre.a.get(),
                           b.data(), d.b_stride, d.ldb, pre.b.get(), beta,
                           out->data(), d.m * d.n, d.n);
}

void BatchedMatMulReduceInto(const Tensor& a, const Tensor& b, bool trans_a,
                             bool trans_b, float beta, Tensor* out) {
  DYHSL_CHECK_EQ(a.dim(), 3);
  DYHSL_CHECK_EQ(b.dim(), 3);
  MatMulDims d = ResolveMatMulDims(a, b, trans_a, trans_b, /*batched=*/true);
  DYHSL_CHECK_MSG(out->shape() == Shape({d.m, d.n}),
                  "BatchedMatMulReduceInto output shape " +
                      ShapeToString(out->shape()) + " != " +
                      ShapeToString({d.m, d.n}));
  if (d.batch == 0) {
    if (beta == 0.0f) {
      out->Fill(0.0f);
    } else if (beta != 1.0f) {
      ScaleInPlace(out, beta);
    }
    return;
  }
  // Sequential over the batch (deterministic reduction order); each GEMM
  // parallelizes internally.
  for (int64_t bi = 0; bi < d.batch; ++bi) {
    GemmInto(trans_a, trans_b, d.m, d.n, d.k, a.data() + bi * d.a_stride,
             d.lda, b.data() + bi * d.b_stride, d.ldb,
             bi == 0 ? beta : 1.0f, out->data(), d.n);
  }
}

Tensor Transpose2D(const Tensor& a) {
  DYHSL_CHECK_EQ(a.dim(), 2);
  return TransposePerm(a, {1, 0});
}

Tensor TransposePerm(const Tensor& a, const std::vector<int64_t>& perm) {
  DYHSL_CHECK_EQ(static_cast<int64_t>(perm.size()), a.dim());
  Shape out_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) out_shape[i] = a.size(perm[i]);
  Tensor out(out_shape);
  auto in_strides = StridesOf(a.shape());
  auto out_strides = StridesOf(out_shape);
  std::vector<int64_t> gather(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) gather[i] = in_strides[perm[i]];
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  int64_t rank = a.dim();
#pragma omp parallel for if (n > kParallelCutoff)
  for (int64_t i = 0; i < n; ++i) {
    int64_t rem = i, src = 0;
    for (int64_t d = 0; d < rank; ++d) {
      int64_t idx = rem / out_strides[d];
      rem -= idx * out_strides[d];
      src += idx * gather[d];
    }
    po[i] = pa[src];
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  DYHSL_CHECK(!parts.empty());
  if (axis < 0) axis += parts[0].dim();
  Shape out_shape = parts[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& p : parts) {
    DYHSL_CHECK_EQ(p.dim(), parts[0].dim());
    for (int64_t d = 0; d < p.dim(); ++d) {
      if (d != axis) DYHSL_CHECK_EQ(p.size(d), parts[0].size(d));
    }
    total_axis += p.size(axis);
  }
  out_shape[axis] = total_axis;
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[d];
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < static_cast<int64_t>(out_shape.size()); ++d) {
    inner *= out_shape[d];
  }
  int64_t out_row = total_axis * inner;
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    int64_t p_axis = p.size(axis);
    int64_t p_row = p_axis * inner;
    const float* ps = p.data();
    float* pd = out.data() + offset * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(pd + o * out_row, ps + o * p_row, p_row * sizeof(float));
    }
    offset += p_axis;
  }
  return out;
}

Tensor PackBatch(const std::vector<Tensor>& items) {
  DYHSL_CHECK(!items.empty());
  DYHSL_CHECK(items[0].defined());
  Shape batched;
  batched.reserve(items[0].dim() + 1);
  batched.push_back(static_cast<int64_t>(items.size()));
  batched.insert(batched.end(), items[0].shape().begin(),
                 items[0].shape().end());
  if (items.size() == 1) return items[0].Reshape(std::move(batched));
  const int64_t item_numel = items[0].numel();
  Tensor out(batched);
  for (size_t i = 0; i < items.size(); ++i) {
    DYHSL_CHECK(items[i].shape() == items[0].shape());
    std::memcpy(out.data() + static_cast<int64_t>(i) * item_numel,
                items[i].data(),
                static_cast<size_t>(item_numel) * sizeof(float));
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length) {
  if (axis < 0) axis += a.dim();
  DYHSL_CHECK_GE(start, 0);
  DYHSL_CHECK_LE(start + length, a.size(axis));
  Shape out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  int64_t in_row = a.size(axis) * inner;
  int64_t out_row = length * inner;
  const float* ps = a.data() + start * inner;
  float* pd = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(pd + o * out_row, ps + o * in_row, out_row * sizeof(float));
  }
  return out;
}

Tensor TakeRows(const Tensor& a, const std::vector<int64_t>& indices) {
  DYHSL_CHECK_EQ(a.dim(), 2);
  int64_t cols = a.size(1);
  Tensor out({static_cast<int64_t>(indices.size()), cols});
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t r = indices[i];
    DYHSL_CHECK_GE(r, 0);
    DYHSL_CHECK_LT(r, a.size(0));
    std::memcpy(out.data() + i * cols, a.data() + r * cols,
                cols * sizeof(float));
  }
  return out;
}

void ScatterAddRows(Tensor* dst, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  DYHSL_CHECK_EQ(dst->dim(), 2);
  DYHSL_CHECK_EQ(src.dim(), 2);
  DYHSL_CHECK_EQ(src.size(0), static_cast<int64_t>(indices.size()));
  DYHSL_CHECK_EQ(src.size(1), dst->size(1));
  int64_t cols = dst->size(1);
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t r = indices[i];
    DYHSL_CHECK_GE(r, 0);
    DYHSL_CHECK_LT(r, dst->size(0));
    float* pd = dst->data() + r * cols;
    const float* ps = src.data() + i * cols;
    for (int64_t c = 0; c < cols; ++c) pd[c] += ps[c];
  }
}

float SumAllScalar(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float MeanAllScalar(const Tensor& a) {
  DYHSL_CHECK_GT(a.numel(), 0);
  return SumAllScalar(a) / static_cast<float>(a.numel());
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdims) {
  if (axis < 0) axis += a.dim();
  DYHSL_CHECK_GE(axis, 0);
  DYHSL_CHECK_LT(axis, a.dim());
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  int64_t mid = a.size(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  Shape out_shape;
  for (int64_t d = 0; d < a.dim(); ++d) {
    if (d == axis) {
      if (keepdims) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(d));
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out = Tensor::Zeros(out_shape);
  const float* pa = a.data();
  float* po = out.data();
#pragma omp parallel for if (outer * inner > kParallelCutoff)
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const float* row = pa + (o * mid + m) * inner;
      float* orow = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) orow[i] += row[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdims) {
  if (axis < 0) axis += a.dim();
  Tensor s = Sum(a, axis, keepdims);
  ScaleInPlace(&s, 1.0f / static_cast<float>(a.size(axis)));
  return s;
}

void SoftmaxLastAxisInPlace(Tensor* a) {
  int64_t cols = a->size(-1);
  int64_t rows = a->numel() / cols;
  float* pa = a->data();
#pragma omp parallel for if (a->numel() > kParallelCutoff)
  for (int64_t r = 0; r < rows; ++r) {
    float* o = pa + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t c = 0; c < cols; ++c) mx = std::max(mx, o[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(o[c] - mx);
      denom += o[c];
    }
    float inv = 1.0f / denom;
    for (int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
}

Tensor SoftmaxLastAxis(const Tensor& a) {
  Tensor out = a.Clone();
  SoftmaxLastAxisInPlace(&out);
  return out;
}

void LayerNormLastAxisInto(const Tensor& x, const Tensor& gamma,
                           const Tensor& beta, float eps, Tensor* y,
                           Tensor* xhat, Tensor* inv_std) {
  DYHSL_CHECK_GE(x.dim(), 1);
  int64_t cols = x.size(-1);
  DYHSL_CHECK_EQ(gamma.numel(), cols);
  DYHSL_CHECK_EQ(beta.numel(), cols);
  DYHSL_CHECK(y != nullptr);
  DYHSL_CHECK(y->shape() == x.shape());
  int64_t rows = x.numel() / cols;
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* py = y->data();
  float* ph = xhat != nullptr ? xhat->data() : nullptr;
  float* pi = inv_std != nullptr ? inv_std->data() : nullptr;
  float inv_cols = 1.0f / static_cast<float>(cols);
#pragma omp parallel for if (x.numel() > kParallelCutoff)
  for (int64_t r = 0; r < rows; ++r) {
    const float* rx = px + r * cols;
    float* ry = py + r * cols;
    // Lane-parallel row reductions: independent partial sums vectorize,
    // where a single sequential accumulator would serialize on add
    // latency. The reduction order is fixed (lane-major, then a fixed
    // final sweep), so results are deterministic and mode-independent.
    constexpr int64_t kLanes = 16;
    float partial[kLanes] = {0.0f};
    int64_t c = 0;
    for (; c + kLanes <= cols; c += kLanes) {
      for (int64_t j = 0; j < kLanes; ++j) partial[j] += rx[c + j];
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < kLanes; ++j) sum += partial[j];
    for (; c < cols; ++c) sum += rx[c];
    float mean = sum * inv_cols;
    float sq_partial[kLanes] = {0.0f};
    c = 0;
    for (; c + kLanes <= cols; c += kLanes) {
      for (int64_t j = 0; j < kLanes; ++j) {
        float d = rx[c + j] - mean;
        sq_partial[j] += d * d;
      }
    }
    float sq = 0.0f;
    for (int64_t j = 0; j < kLanes; ++j) sq += sq_partial[j];
    for (; c < cols; ++c) {
      float d = rx[c] - mean;
      sq += d * d;
    }
    float inv = 1.0f / std::sqrt(sq * inv_cols + eps);
    if (pi != nullptr) pi[r] = inv;
    if (ph != nullptr) {
      float* rh = ph + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        float h = (rx[c] - mean) * inv;
        rh[c] = h;
        ry[c] = h * pg[c] + pb[c];
      }
    } else {
      // Arithmetic kept textually identical to the xhat branch so taped
      // and grad-free forwards round (and contract) the same way.
      for (int64_t c = 0; c < cols; ++c) {
        float h = (rx[c] - mean) * inv;
        ry[c] = h * pg[c] + pb[c];
      }
    }
  }
}

Tensor LayerNormLastAxis(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps) {
  Tensor y(x.shape());
  LayerNormLastAxisInto(x, gamma, beta, eps, &y);
  return y;
}

PoolResult MaxPoolAxis(const Tensor& a, int64_t axis, int64_t window) {
  if (axis < 0) axis += a.dim();
  DYHSL_CHECK_GT(window, 0);
  DYHSL_CHECK_EQ(a.size(axis) % window, 0);
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  int64_t mid = a.size(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  int64_t out_mid = mid / window;
  Shape out_shape = a.shape();
  out_shape[axis] = out_mid;
  PoolResult result;
  result.values = Tensor(out_shape);
  result.argmax.assign(result.values.numel(), 0);
  const float* pa = a.data();
  float* po = result.values.data();
  int64_t* arg = result.argmax.data();
#pragma omp parallel for if (outer * out_mid * inner > kParallelCutoff)
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t om = 0; om < out_mid; ++om) {
      for (int64_t i = 0; i < inner; ++i) {
        int64_t best_idx = (o * mid + om * window) * inner + i;
        float best = pa[best_idx];
        for (int64_t w = 1; w < window; ++w) {
          int64_t idx = (o * mid + om * window + w) * inner + i;
          if (pa[idx] > best) {
            best = pa[idx];
            best_idx = idx;
          }
        }
        int64_t out_idx = (o * out_mid + om) * inner + i;
        po[out_idx] = best;
        arg[out_idx] = best_idx;
      }
    }
  }
  return result;
}

Tensor MaxPoolAxisValues(const Tensor& a, int64_t axis, int64_t window) {
  if (axis < 0) axis += a.dim();
  DYHSL_CHECK_GT(window, 0);
  DYHSL_CHECK_EQ(a.size(axis) % window, 0);
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  int64_t mid = a.size(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  int64_t out_mid = mid / window;
  Shape out_shape = a.shape();
  out_shape[axis] = out_mid;
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
#pragma omp parallel for if (outer * out_mid * inner > kParallelCutoff)
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t om = 0; om < out_mid; ++om) {
      const float* base = pa + (o * mid + om * window) * inner;
      float* orow = po + (o * out_mid + om) * inner;
      for (int64_t i = 0; i < inner; ++i) orow[i] = base[i];
      for (int64_t w = 1; w < window; ++w) {
        const float* row = base + w * inner;
        for (int64_t i = 0; i < inner; ++i) {
          if (row[i] > orow[i]) orow[i] = row[i];
        }
      }
    }
  }
  return out;
}

Tensor Conv1d(const Tensor& x, const Tensor& w, int64_t dilation,
              int64_t pad_left, int64_t pad_right) {
  DYHSL_CHECK_EQ(x.dim(), 3);
  DYHSL_CHECK_EQ(w.dim(), 3);
  int64_t batch = x.size(0), cin = x.size(1), len = x.size(2);
  int64_t cout = w.size(0), kcin = w.size(1), ksize = w.size(2);
  DYHSL_CHECK_EQ(cin, kcin);
  int64_t reach = (ksize - 1) * dilation;
  int64_t lout = len + pad_left + pad_right - reach;
  DYHSL_CHECK_GT(lout, 0);
  Tensor out = Tensor::Zeros({batch, cout, lout});
  const float* px = x.data();
  const float* pw = w.data();
  float* po = out.data();
#pragma omp parallel for collapse(2) if (batch * cout * lout > 1024)
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t co = 0; co < cout; ++co) {
      float* orow = po + (b * cout + co) * lout;
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* xrow = px + (b * cin + ci) * len;
        const float* wrow = pw + (co * cin + ci) * ksize;
        for (int64_t k = 0; k < ksize; ++k) {
          float wv = wrow[k];
          if (wv == 0.0f) continue;
          // out[t] += w[k] * x[t - pad_left + k*dilation]
          int64_t shift = k * dilation - pad_left;
          int64_t t_lo = std::max<int64_t>(0, -shift);
          int64_t t_hi = std::min<int64_t>(lout, len - shift);
          for (int64_t t = t_lo; t < t_hi; ++t) {
            orow[t] += wv * xrow[t + shift];
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv1dBackwardInput(const Tensor& grad_out, const Tensor& w,
                           const Shape& x_shape, int64_t dilation,
                           int64_t pad_left) {
  int64_t batch = x_shape[0], cin = x_shape[1], len = x_shape[2];
  int64_t cout = w.size(0), ksize = w.size(2);
  int64_t lout = grad_out.size(2);
  Tensor gx = Tensor::Zeros(x_shape);
  const float* pg = grad_out.data();
  const float* pw = w.data();
  float* px = gx.data();
#pragma omp parallel for collapse(2) if (batch * cin > 8)
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ci = 0; ci < cin; ++ci) {
      float* xrow = px + (b * cin + ci) * len;
      for (int64_t co = 0; co < cout; ++co) {
        const float* grow = pg + (b * cout + co) * lout;
        const float* wrow = pw + (co * cin + ci) * ksize;
        for (int64_t k = 0; k < ksize; ++k) {
          float wv = wrow[k];
          if (wv == 0.0f) continue;
          int64_t shift = k * dilation - pad_left;
          int64_t t_lo = std::max<int64_t>(0, -shift);
          int64_t t_hi = std::min<int64_t>(lout, len - shift);
          for (int64_t t = t_lo; t < t_hi; ++t) {
            xrow[t + shift] += wv * grow[t];
          }
        }
      }
    }
  }
  return gx;
}

Tensor Conv1dBackwardWeight(const Tensor& grad_out, const Tensor& x,
                            const Shape& w_shape, int64_t dilation,
                            int64_t pad_left) {
  int64_t batch = x.size(0), cin = x.size(1), len = x.size(2);
  int64_t cout = w_shape[0], ksize = w_shape[2];
  int64_t lout = grad_out.size(2);
  Tensor gw = Tensor::Zeros(w_shape);
  const float* pg = grad_out.data();
  const float* px = x.data();
  float* pw = gw.data();
#pragma omp parallel for collapse(2) if (cout * cin > 8)
  for (int64_t co = 0; co < cout; ++co) {
    for (int64_t ci = 0; ci < cin; ++ci) {
      float* wrow = pw + (co * cin + ci) * ksize;
      for (int64_t b = 0; b < batch; ++b) {
        const float* grow = pg + (b * cout + co) * lout;
        const float* xrow = px + (b * cin + ci) * len;
        for (int64_t k = 0; k < ksize; ++k) {
          int64_t shift = k * dilation - pad_left;
          int64_t t_lo = std::max<int64_t>(0, -shift);
          int64_t t_hi = std::min<int64_t>(lout, len - shift);
          double acc = 0.0;
          for (int64_t t = t_lo; t < t_hi; ++t) {
            acc += static_cast<double>(grow[t]) * xrow[t + shift];
          }
          wrow[k] += static_cast<float>(acc);
        }
      }
    }
  }
  return gw;
}

float MaxAllScalar(const Tensor& a) {
  DYHSL_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float mx = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) mx = std::max(mx, p[i]);
  return mx;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace dyhsl::tensor
