// Forecast error metrics with the PEMS masking convention.
//
// PEMS sensors report exact zeros during outages; following the standard
// protocol (STSGCN and successors, which the paper adopts), readings whose
// ground truth is ~0 are excluded from MAE/RMSE and MAPE.

#ifndef DYHSL_METRICS_METRICS_H_
#define DYHSL_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace dyhsl::metrics {

/// \brief Aggregate MAE / RMSE / MAPE over a stream of (pred, truth) pairs.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(float mask_threshold = 1e-3f)
      : mask_threshold_(mask_threshold) {}

  /// \brief Adds every element of `pred` vs `truth` (same shape, raw scale).
  void Add(const tensor::Tensor& pred, const tensor::Tensor& truth);

  /// \brief Adds a single raw pair.
  void AddValue(float pred, float truth);

  double Mae() const;
  double Rmse() const;
  /// MAPE in percent (paper reports e.g. "14.38%").
  double Mape() const;
  int64_t count() const { return count_; }

  /// \brief Merges another accumulator (for per-horizon aggregation).
  void Merge(const MetricAccumulator& other);

 private:
  float mask_threshold_;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t count_ = 0;
};

/// \brief MAE/RMSE/MAPE triple.
struct ForecastMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // percent

  std::string ToString() const;
};

/// \brief Convenience: metrics of one (pred, truth) tensor pair.
ForecastMetrics Evaluate(const tensor::Tensor& pred,
                         const tensor::Tensor& truth,
                         float mask_threshold = 1e-3f);

/// \brief Per-horizon metrics for (B, T', N) prediction tensors: result[t]
/// covers horizon step t.
std::vector<ForecastMetrics> EvaluatePerHorizon(const tensor::Tensor& pred,
                                                const tensor::Tensor& truth);

}  // namespace dyhsl::metrics

#endif  // DYHSL_METRICS_METRICS_H_
