#include "src/metrics/metrics.h"

#include <cmath>
#include <sstream>

#include "src/core/check.h"
#include "src/tensor/ops.h"

namespace dyhsl::metrics {

void MetricAccumulator::Add(const tensor::Tensor& pred,
                            const tensor::Tensor& truth) {
  DYHSL_CHECK(tensor::SameShape(pred, truth));
  const float* p = pred.data();
  const float* t = truth.data();
  for (int64_t i = 0; i < pred.numel(); ++i) AddValue(p[i], t[i]);
}

void MetricAccumulator::AddValue(float pred, float truth) {
  if (std::fabs(truth) <= mask_threshold_) return;  // masked reading
  double err = static_cast<double>(pred) - truth;
  abs_sum_ += std::fabs(err);
  sq_sum_ += err * err;
  ape_sum_ += std::fabs(err) / std::fabs(truth);
  ++count_;
}

double MetricAccumulator::Mae() const {
  return count_ == 0 ? 0.0 : abs_sum_ / count_;
}

double MetricAccumulator::Rmse() const {
  return count_ == 0 ? 0.0 : std::sqrt(sq_sum_ / count_);
}

double MetricAccumulator::Mape() const {
  return count_ == 0 ? 0.0 : 100.0 * ape_sum_ / count_;
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  ape_sum_ += other.ape_sum_;
  count_ += other.count_;
}

std::string ForecastMetrics::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "MAE " << mae << "  RMSE " << rmse << "  MAPE " << mape << "%";
  return os.str();
}

ForecastMetrics Evaluate(const tensor::Tensor& pred,
                         const tensor::Tensor& truth, float mask_threshold) {
  MetricAccumulator acc(mask_threshold);
  acc.Add(pred, truth);
  return {acc.Mae(), acc.Rmse(), acc.Mape()};
}

std::vector<ForecastMetrics> EvaluatePerHorizon(const tensor::Tensor& pred,
                                                const tensor::Tensor& truth) {
  DYHSL_CHECK_EQ(pred.dim(), 3);
  DYHSL_CHECK(tensor::SameShape(pred, truth));
  int64_t horizon = pred.size(1);
  std::vector<ForecastMetrics> out;
  out.reserve(horizon);
  for (int64_t t = 0; t < horizon; ++t) {
    out.push_back(Evaluate(tensor::Slice(pred, 1, t, 1),
                           tensor::Slice(truth, 1, t, 1)));
  }
  return out;
}

}  // namespace dyhsl::metrics
