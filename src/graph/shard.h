// Sensor-range sharding of a road network for multi-engine serving.
//
// A ShardPlan partitions the global sensor index space [0, N) into
// contiguous owned ranges (one per shard) and augments each shard with a
// halo: every node within `halo_hops` hops of the owned set (following
// edges in either direction). Shard-scoped models run on the induced
// subgraph over owned + halo nodes, so a forecast for the owned sensors is
// exact whenever the halo covers the model's receptive field — see the
// README's halo-width guidance (an operator normalized over node degrees
// needs one extra hop of halo beyond the hop count of the propagation,
// because a fringe node's degree is clipped by the cut).
//
// Local id convention: `locals` is ascending in *global* id — halo nodes
// below the owned range first, then the owned block, then halo nodes
// above it (`owned_offset` marks where the owned block starts). Keeping
// global order means an induced CSR row holds the same values in the same
// order as its global row, so sparse row reductions (and their degree
// normalizations) accumulate bit-identically — shard outputs for owned
// sensors are not merely close to the unsharded ones, they are equal
// whenever the halo covers the receptive field. The owned block stays
// contiguous (halo ids are all strictly below `begin` or at/above `end`),
// so stitching a shard output back into global order remains one
// contiguous copy per step.

#ifndef DYHSL_GRAPH_SHARD_H_
#define DYHSL_GRAPH_SHARD_H_

#include <cstdint>
#include <vector>

#include "src/autograd/sparse.h"
#include "src/graph/temporal_graph.h"
#include "src/tensor/sparse.h"

namespace dyhsl::graph {

/// \brief One shard of a ShardPlan: the owned global sensor range plus the
/// halo nodes that feed cross-shard edges.
struct ShardSpec {
  int64_t shard_id = 0;
  /// Owned global sensor range [begin, end).
  int64_t begin = 0;
  int64_t end = 0;
  /// Global ids of every local node, ascending; the owned block
  /// [owned_offset, owned_offset + owned_count()) sits between the
  /// below-range and above-range halo nodes.
  std::vector<int64_t> locals;
  /// Index of global id `begin` within `locals`.
  int64_t owned_offset = 0;

  int64_t owned_count() const { return end - begin; }
  int64_t halo_count() const {
    return static_cast<int64_t>(locals.size()) - owned_count();
  }
  int64_t num_local() const { return static_cast<int64_t>(locals.size()); }
};

/// \brief Contiguous sensor-range partition of a road network with
/// halo expansion over the adjacency.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// \brief Splits the `adjacency.rows()` sensors into `num_shards`
  /// contiguous ranges whose sizes differ by at most one, then grows each
  /// shard's halo to every node within `halo_hops` hops of its owned set
  /// (edges followed in both directions so cross-shard senders and
  /// receivers are both carried). Aborts on invalid arguments
  /// (non-square adjacency, num_shards outside [1, N], halo_hops < 0).
  static ShardPlan Build(const tensor::CsrMatrix& adjacency,
                         int64_t num_shards, int64_t halo_hops);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }
  int64_t halo_hops() const { return halo_hops_; }
  const ShardSpec& shard(int64_t s) const { return shards_.at(s); }
  const std::vector<ShardSpec>& shards() const { return shards_; }

  /// \brief Shard owning a global sensor id (ranges are contiguous, so
  /// this is a binary search over shard boundaries).
  int64_t OwnerOf(int64_t global_node) const;

 private:
  int64_t num_nodes_ = 0;
  int64_t halo_hops_ = 0;
  std::vector<ShardSpec> shards_;
};

/// \brief Induced subgraph of `adjacency` over the shard's local nodes:
/// keeps every edge whose endpoints are both local, with node ids remapped
/// to the shard-local convention. Nodes that lose all their edges to the
/// cut keep an empty row/column (the zero-degree guarantee of the
/// normalization helpers applies unchanged).
tensor::CsrMatrix InducedSubgraph(const tensor::CsrMatrix& adjacency,
                                  const ShardSpec& shard);

/// \brief Row-normalized temporal-graph operator (paper Eq. 4-5) of the
/// shard's induced subgraph, as a tape-ready sparse constant of size
/// (num_steps * num_local) squared — the per-shard counterpart of
/// BuildNormalizedTemporalOp.
autograd::SparseConstant ShardTemporalOperator(
    const tensor::CsrMatrix& spatial, const ShardSpec& shard,
    int64_t num_steps, const TemporalGraphOptions& options = {});

}  // namespace dyhsl::graph

#endif  // DYHSL_GRAPH_SHARD_H_
