// Weighted road-network graph and conversions to sparse operators.

#ifndef DYHSL_GRAPH_GRAPH_H_
#define DYHSL_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/tensor/sparse.h"

namespace dyhsl::graph {

/// \brief Directed weighted edge (road networks store both directions
/// explicitly when symmetric).
struct WeightedEdge {
  int64_t src;
  int64_t dst;
  float weight;
};

/// \brief A sensor network: nodes are detector locations, edges are road
/// segments with a proximity weight in (0, 1].
class Graph {
 public:
  Graph() = default;
  Graph(int64_t num_nodes, std::vector<WeightedEdge> edges)
      : num_nodes_(num_nodes), edges_(std::move(edges)) {}

  int64_t num_nodes() const { return num_nodes_; }
  const std::vector<WeightedEdge>& edges() const { return edges_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// \brief Adds one directed edge.
  void AddEdge(int64_t src, int64_t dst, float weight) {
    edges_.push_back({src, dst, weight});
  }

  /// \brief Adds src->dst and dst->src with the same weight.
  void AddUndirectedEdge(int64_t src, int64_t dst, float weight) {
    AddEdge(src, dst, weight);
    AddEdge(dst, src, weight);
  }

  /// \brief Weighted adjacency matrix (N x N) without self loops.
  tensor::CsrMatrix ToAdjacency() const;

  /// \brief Count of undirected neighbor pairs (paper's |E| convention).
  int64_t UndirectedEdgeCount() const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<WeightedEdge> edges_;
};

/// \brief kNN graph over row vectors of `features` (R x d) by Euclidean
/// distance; each row points to its k nearest other rows with weight 1.
/// Used by the DHGNN baseline's dynamic hyperedge construction.
tensor::CsrMatrix KnnGraph(const tensor::Tensor& features, int64_t k);

}  // namespace dyhsl::graph

#endif  // DYHSL_GRAPH_GRAPH_H_
