#include "src/graph/shard.h"

#include <algorithm>

#include "src/core/check.h"

namespace dyhsl::graph {

ShardPlan ShardPlan::Build(const tensor::CsrMatrix& adjacency,
                           int64_t num_shards, int64_t halo_hops) {
  const int64_t n = adjacency.rows();
  DYHSL_CHECK_MSG(adjacency.cols() == n,
                  "ShardPlan adjacency must be square");
  DYHSL_CHECK_MSG(num_shards >= 1 && num_shards <= n,
                  "ShardPlan num_shards must lie in [1, num_nodes]");
  DYHSL_CHECK_MSG(halo_hops >= 0, "ShardPlan halo_hops must be >= 0");

  // Halo expansion follows edges in both directions: a halo node either
  // feeds the owned set (in-edge) or receives from it (out-edge); both
  // matter once the operator is applied more than once.
  const tensor::CsrMatrix transpose = adjacency.Transposed();

  ShardPlan plan;
  plan.num_nodes_ = n;
  plan.halo_hops_ = halo_hops;
  plan.shards_.resize(num_shards);
  const int64_t base = n / num_shards;
  const int64_t remainder = n % num_shards;
  int64_t begin = 0;
  for (int64_t s = 0; s < num_shards; ++s) {
    ShardSpec& shard = plan.shards_[s];
    shard.shard_id = s;
    shard.begin = begin;
    shard.end = begin + base + (s < remainder ? 1 : 0);
    begin = shard.end;

    // BFS out to halo_hops hops from the owned range.
    std::vector<char> visited(n, 0);
    std::vector<int64_t> frontier;
    frontier.reserve(shard.owned_count());
    for (int64_t g = shard.begin; g < shard.end; ++g) {
      visited[g] = 1;
      frontier.push_back(g);
    }
    std::vector<int64_t> halo;
    for (int64_t hop = 0; hop < halo_hops && !frontier.empty(); ++hop) {
      std::vector<int64_t> next;
      for (int64_t g : frontier) {
        for (const tensor::CsrMatrix* m : {&adjacency, &transpose}) {
          for (int64_t k = m->row_ptr()[g]; k < m->row_ptr()[g + 1]; ++k) {
            const int64_t neighbor = m->col_idx()[k];
            if (!visited[neighbor]) {
              visited[neighbor] = 1;
              next.push_back(neighbor);
            }
          }
        }
      }
      halo.insert(halo.end(), next.begin(), next.end());
      frontier = std::move(next);
    }
    std::sort(halo.begin(), halo.end());

    // Merge into one globally ascending local id list; every halo id is
    // strictly below `begin` or at/above `end`, so the owned block stays
    // contiguous at `owned_offset`.
    shard.locals.reserve(shard.owned_count() + halo.size());
    auto above = std::lower_bound(halo.begin(), halo.end(), shard.begin);
    shard.locals.insert(shard.locals.end(), halo.begin(), above);
    shard.owned_offset = static_cast<int64_t>(shard.locals.size());
    for (int64_t g = shard.begin; g < shard.end; ++g) {
      shard.locals.push_back(g);
    }
    shard.locals.insert(shard.locals.end(), above, halo.end());
  }
  return plan;
}

int64_t ShardPlan::OwnerOf(int64_t global_node) const {
  DYHSL_CHECK_MSG(global_node >= 0 && global_node < num_nodes_,
                  "OwnerOf: node id out of range");
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), global_node,
      [](int64_t node, const ShardSpec& shard) { return node < shard.end; });
  return it->shard_id;
}

tensor::CsrMatrix InducedSubgraph(const tensor::CsrMatrix& adjacency,
                                  const ShardSpec& shard) {
  DYHSL_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "InducedSubgraph adjacency must be square");
  const int64_t n = adjacency.rows();
  std::vector<int64_t> global_to_local(n, -1);
  for (size_t i = 0; i < shard.locals.size(); ++i) {
    const int64_t g = shard.locals[i];
    DYHSL_CHECK_MSG(g >= 0 && g < n, "shard local id out of range");
    global_to_local[g] = static_cast<int64_t>(i);
  }
  std::vector<tensor::Triplet> triplets;
  for (size_t i = 0; i < shard.locals.size(); ++i) {
    const int64_t g = shard.locals[i];
    for (int64_t k = adjacency.row_ptr()[g]; k < adjacency.row_ptr()[g + 1];
         ++k) {
      const int64_t local_dst = global_to_local[adjacency.col_idx()[k]];
      if (local_dst >= 0) {
        triplets.push_back({static_cast<int64_t>(i), local_dst,
                            adjacency.values()[k]});
      }
    }
  }
  return tensor::CsrMatrix::FromTriplets(shard.num_local(),
                                         shard.num_local(),
                                         std::move(triplets));
}

autograd::SparseConstant ShardTemporalOperator(
    const tensor::CsrMatrix& spatial, const ShardSpec& shard,
    int64_t num_steps, const TemporalGraphOptions& options) {
  return BuildNormalizedTemporalOp(InducedSubgraph(spatial, shard), num_steps,
                                   options);
}

}  // namespace dyhsl::graph
