// Temporal graph construction (paper Eq. 4).
//
// The temporal graph G_H has one node per (time step, sensor) observation.
// Index convention throughout this repository is time-major:
//
//   NodeIndex(t, i) = t * N + i,   t in [0, T), i in [0, N)
//
// matching the row order obtained by reshaping a (T, N, d) tensor to
// (T*N, d). Spatial edges replicate the road network inside each step;
// temporal edges connect the same sensor across consecutive steps; every
// observation gets a self loop (the "t' = t" case of Eq. 4).

#ifndef DYHSL_GRAPH_TEMPORAL_GRAPH_H_
#define DYHSL_GRAPH_TEMPORAL_GRAPH_H_

#include "src/autograd/sparse.h"
#include "src/tensor/sparse.h"

namespace dyhsl::graph {

/// \brief Options for BuildTemporalGraph.
struct TemporalGraphOptions {
  /// Also add t -> t-1 edges. Eq. 4 writes only t' = t + 1, but aggregation
  /// from the past is what a forecaster needs; with row normalization the
  /// bidirectional variant subsumes the paper's and is the default.
  bool bidirectional_time = true;
  /// Weight of temporal edges and self loops (Eq. 4 uses 1).
  float temporal_weight = 1.0f;
};

/// \brief Builds the adjacency \hat{A} of Eq. 4 for `num_steps` copies of
/// the spatial adjacency `spatial` (N x N, no self loops), size (TN x TN).
tensor::CsrMatrix BuildTemporalGraph(const tensor::CsrMatrix& spatial,
                                     int64_t num_steps,
                                     const TemporalGraphOptions& options = {});

/// \brief Row-normalized temporal graph as a tape-ready sparse constant
/// (\bar{A} below Eq. 5: every row sums to 1). Consumers run it with
/// autograd::SpMM — the adjacency never densifies.
autograd::SparseConstant BuildNormalizedTemporalOp(
    const tensor::CsrMatrix& spatial, int64_t num_steps,
    const TemporalGraphOptions& options = {});

/// \brief Flat observation index for (t, i) with N sensors.
inline int64_t TemporalNodeIndex(int64_t t, int64_t i, int64_t num_nodes) {
  return t * num_nodes + i;
}

}  // namespace dyhsl::graph

#endif  // DYHSL_GRAPH_TEMPORAL_GRAPH_H_
