#include "src/graph/temporal_graph.h"

#include <utility>
#include <vector>

#include "src/core/check.h"

namespace dyhsl::graph {

tensor::CsrMatrix BuildTemporalGraph(const tensor::CsrMatrix& spatial,
                                     int64_t num_steps,
                                     const TemporalGraphOptions& options) {
  DYHSL_CHECK_EQ(spatial.rows(), spatial.cols());
  DYHSL_CHECK_GE(num_steps, 1);
  int64_t n = spatial.rows();
  int64_t total = num_steps * n;
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(num_steps * spatial.nnz() + 3 * total);

  for (int64_t t = 0; t < num_steps; ++t) {
    int64_t base = t * n;
    // Spatial edges: A_ij within the step (Eq. 4, case t == t').
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t k = spatial.row_ptr()[r]; k < spatial.row_ptr()[r + 1];
           ++k) {
        triplets.push_back(
            {base + r, base + spatial.col_idx()[k], spatial.values()[k]});
      }
      // Self loop (case i == j, t' == t).
      triplets.push_back({base + r, base + r, options.temporal_weight});
      // Temporal edge to the next step (case i == j, t' == t + 1).
      if (t + 1 < num_steps) {
        triplets.push_back({base + r, base + n + r, options.temporal_weight});
      }
      // Backward temporal edge (aggregation from the past).
      if (options.bidirectional_time && t > 0) {
        triplets.push_back({base + r, base - n + r, options.temporal_weight});
      }
    }
  }
  return tensor::CsrMatrix::FromTriplets(total, total, std::move(triplets));
}

autograd::SparseConstant BuildNormalizedTemporalOp(
    const tensor::CsrMatrix& spatial, int64_t num_steps,
    const TemporalGraphOptions& options) {
  return autograd::SparseConstant(
      BuildTemporalGraph(spatial, num_steps, options).RowNormalized());
}

}  // namespace dyhsl::graph
