#include "src/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::graph {

tensor::CsrMatrix Graph::ToAdjacency() const {
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(edges_.size());
  for (const WeightedEdge& e : edges_) {
    if (e.src == e.dst) continue;
    triplets.push_back({e.src, e.dst, e.weight});
  }
  return tensor::CsrMatrix::FromTriplets(num_nodes_, num_nodes_,
                                         std::move(triplets));
}

int64_t Graph::UndirectedEdgeCount() const {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const WeightedEdge& e : edges_) {
    if (e.src == e.dst) continue;
    pairs.insert({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  return static_cast<int64_t>(pairs.size());
}

tensor::CsrMatrix KnnGraph(const tensor::Tensor& features, int64_t k) {
  DYHSL_CHECK_EQ(features.dim(), 2);
  int64_t rows = features.size(0);
  int64_t dim = features.size(1);
  DYHSL_CHECK_LT(k, rows);
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(rows * k);
  const float* p = features.data();
  std::vector<std::pair<float, int64_t>> dists(rows);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < rows; ++j) {
      float d2 = 0.0f;
      for (int64_t c = 0; c < dim; ++c) {
        float diff = p[i * dim + c] - p[j * dim + c];
        d2 += diff * diff;
      }
      dists[j] = {i == j ? std::numeric_limits<float>::infinity() : d2, j};
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    for (int64_t n = 0; n < k; ++n) {
      triplets.push_back({i, dists[n].second, 1.0f});
    }
  }
  return tensor::CsrMatrix::FromTriplets(rows, rows, std::move(triplets));
}

}  // namespace dyhsl::graph
