// Batched forecast-serving engine.
//
// ForecastEngine is the query-time counterpart of the training harness:
// it builds one DyHSL model (whose constructor pre-computes and caches
// the normalized temporal operator of every pooling scale), loads a
// checkpoint once, keeps the ForecastTask scaler for de-normalization,
// and serves Submit() requests from a micro-batching queue. Worker
// threads collect concurrent requests and flush them as one (B, T, N, F)
// grad-free forward — tape-less (autograd::InferenceModeGuard) and
// allocated from a warm per-worker Workspace arena — when either
// `max_batch` requests are waiting or the oldest has waited
// `max_delay_us` microseconds.
//
// Model forwards are read-only in inference mode, so any number of
// workers may share the one model; every per-request quantity lives in
// the request/response structs. Responses are heap-backed (never
// arena-backed) so they stay valid for as long as the caller keeps them.

#ifndef DYHSL_SERVE_ENGINE_H_
#define DYHSL_SERVE_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/status.h"
#include "src/models/dyhsl.h"
#include "src/tensor/tensor.h"
#include "src/train/forecast_model.h"

namespace dyhsl::serve {

/// \brief One forecast query: a single scaled input window (T, N, F) in
/// the feature layout produced by TrafficDataset::MakeInput.
struct ForecastRequest {
  tensor::Tensor window;
};

/// \brief The served forecast plus per-request telemetry. `status` is
/// checked first: on failure `forecast` is undefined.
struct ForecastResponse {
  Status status;
  /// Raw-flow forecast (T', N).
  tensor::Tensor forecast;
  /// Size of the micro-batch this request was served in.
  int64_t batch_size = 0;
  /// Time spent waiting in the queue before the flush started.
  double queue_micros = 0.0;
  /// Wall time of the batched forward that served the request.
  double compute_micros = 0.0;
};

/// \brief Micro-batching and threading knobs.
struct EngineOptions {
  /// Flush the queue once this many requests are waiting.
  int64_t max_batch = 16;
  /// ... or once the oldest waiting request is this old (microseconds).
  int64_t max_delay_us = 1000;
  /// Worker threads, each with its own warm Workspace arena.
  int64_t num_workers = 1;
  /// Admission control: with `max_queue` > 0, a Submit() arriving while
  /// that many requests are already waiting is rejected immediately with a
  /// kUnavailable Status instead of growing the queue without bound.
  /// 0 keeps the queue unbounded.
  int64_t max_queue = 0;
};

/// \brief Aggregate serving counters (monotonic since engine start).
struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t max_batch_observed = 0;
  /// Submissions rejected by max_queue admission control.
  int64_t rejected = 0;
};

/// \brief Loads a model + checkpoint once and serves batched grad-free
/// forecasts. Thread-safe: Submit may be called from any thread.
class ForecastEngine {
 public:
  /// \brief Builds the DyHSL model for `task` / `config` and, when
  /// `checkpoint_path` is non-empty, restores its parameters from disk.
  /// Fails (rather than aborts) on unreadable or mismatched checkpoints.
  static Result<std::unique_ptr<ForecastEngine>> Create(
      const train::ForecastTask& task, const models::DyHslConfig& config,
      const std::string& checkpoint_path = "",
      const EngineOptions& options = EngineOptions());

  /// Drains the queue and joins the workers.
  ~ForecastEngine();

  ForecastEngine(const ForecastEngine&) = delete;
  ForecastEngine& operator=(const ForecastEngine&) = delete;

  /// \brief Enqueues one window for the next micro-batch. The future is
  /// always fulfilled — with a failed Status for malformed requests or
  /// an engine shutting down, never with a broken promise.
  std::future<ForecastResponse> Submit(ForecastRequest request);

  /// \brief Stops accepting new requests, serves everything already
  /// queued, and joins the worker threads. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  const train::ForecastTask& task() const { return task_; }
  const models::DyHsl& model() const { return *model_; }
  /// Non-const access for analysis paths (Forward/IncidenceFor are
  /// non-const overrides); do not mutate parameters while serving.
  models::DyHsl* mutable_model() { return model_.get(); }
  const EngineOptions& options() const { return options_; }
  EngineStats stats() const;

 private:
  struct Pending {
    tensor::Tensor window;
    std::promise<ForecastResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  ForecastEngine(const train::ForecastTask& task,
                 const models::DyHslConfig& config,
                 const EngineOptions& options);

  void WorkerLoop();
  /// Runs one packed grad-free forward and fulfills every promise.
  void ServeBatch(std::vector<Pending>* batch);

  train::ForecastTask task_;
  EngineOptions options_;
  std::unique_ptr<models::DyHsl> model_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  EngineStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace dyhsl::serve

#endif  // DYHSL_SERVE_ENGINE_H_
