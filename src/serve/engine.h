// Batched forecast-serving engine.
//
// ForecastEngine is the query-time counterpart of the training harness:
// it builds one ForecastModel through a ModelFactory (model construction
// pre-computes and caches the sparse structure operators), loads a
// checkpoint once, keeps the ForecastTask scaler for de-normalization,
// and serves Submit() requests from a micro-batching queue. Worker
// threads collect concurrent requests and flush them as one (B, T, N, F)
// grad-free forward — tape-less (autograd::InferenceModeGuard) and
// allocated from a warm per-worker Workspace arena — when either the
// effective batch target is reached or the oldest request has waited
// `max_delay_us` microseconds. With `adaptive_batch` the target tracks
// the observed queue depth, so a shallow queue flushes immediately
// instead of paying the full delay for batch slots that never fill.
//
// Model forwards are read-only in inference mode, so any number of
// workers may share the one model; every per-request quantity lives in
// the request/response structs. Responses are heap-backed (never
// arena-backed) so they stay valid for as long as the caller keeps them.
//
// Sparse models served with DyHslConfig::sparse_pattern_reuse keep their
// top-k CSR patterns in *thread-local* caches (see tensor::TopKPatternCache),
// so each warm worker reuses the patterns of the requests it served before
// — per-worker/session reuse with zero cross-worker sharing. The cached
// patterns are heap-backed shared_ptrs, unaffected by the per-worker
// Workspace arena resets between flushes.
//
// Threading: each worker scopes its kernels to an OpenMP team of
// team_size() threads (core::TeamScope), so num_workers engines never
// multiply into workers x machine-wide teams; with
// EngineOptions::pin_cores the workers additionally pin to the engine's
// core set, making the engine the unit of placement (see
// src/core/parallel.h and the RouterOptions placement policies).
//
// An engine serves exactly one (model, sensor range); a fleet of engines
// behind a ForecastRouter (src/serve/router.h) serves many models and
// sharded networks.

#ifndef DYHSL_SERVE_ENGINE_H_
#define DYHSL_SERVE_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/baselines/gnn_models.h"
#include "src/core/status.h"
#include "src/models/dyhsl.h"
#include "src/tensor/prepack.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/train/checkpoint.h"
#include "src/train/forecast_model.h"
#include "src/train/model_zoo.h"
#include "src/train/streaming.h"

namespace dyhsl::serve {

/// \brief Builds the model an engine owns, given the (possibly
/// shard-scoped) task it must serve. The factory is invoked exactly once
/// per engine, at Create time.
using ModelFactory = std::function<std::unique_ptr<train::ForecastModel>(
    const train::ForecastTask&)>;

/// \brief Factory for a DyHSL model with the given config.
ModelFactory DyHslFactory(const models::DyHslConfig& config);

/// \brief Factory for any model-zoo key ("STGCN", "DCRNN", "DyHSL", ...;
/// see train::MakeNeuralModel).
ModelFactory ZooFactory(const std::string& key,
                        const train::ZooConfig& config = train::ZooConfig());

/// \brief One forecast query: a single scaled input window (T, N, F) in
/// the feature layout produced by TrafficDataset::MakeInput.
struct ForecastRequest {
  tensor::Tensor window;
};

/// \brief The served forecast plus per-request telemetry. `status` is
/// checked first: on failure `forecast` is undefined.
struct ForecastResponse {
  Status status;
  /// Raw-flow forecast (T', N).
  tensor::Tensor forecast;
  /// Size of the micro-batch this request was served in.
  int64_t batch_size = 0;
  /// Time spent waiting in the queue before the flush started.
  double queue_micros = 0.0;
  /// Wall time of the batched forward that served the request.
  double compute_micros = 0.0;
};

/// \brief Response of the pre-packed batch fast paths (SubmitBatch /
/// ForecastFromStateBatch): one status and one stacked forecast tensor
/// for the whole batch. On failure `forecasts` is undefined.
struct BatchForecastResponse {
  Status status;
  /// Raw-flow forecasts (B, T', N), heap-backed.
  tensor::Tensor forecasts;
  int64_t batch_size = 0;
  /// Wall time of the one batched forward that served the batch.
  double compute_micros = 0.0;
};

/// \brief Micro-batching and threading knobs.
struct EngineOptions {
  /// Flush the queue once this many requests are waiting.
  int64_t max_batch = 16;
  /// ... or once the oldest waiting request is this old (microseconds).
  int64_t max_delay_us = 1000;
  /// Worker threads, each with its own warm Workspace arena.
  int64_t num_workers = 1;
  /// Admission control: with `max_queue` > 0, a Submit() arriving while
  /// that many requests are already waiting is rejected immediately with a
  /// kUnavailable Status instead of growing the queue without bound.
  /// 0 keeps the queue unbounded.
  int64_t max_queue = 0;
  /// Latency-aware dynamic batching: track an exponential moving average
  /// of the queue depth seen at flush time and cap each flush's wait
  /// target at that depth (>= 1, <= max_batch). A single-stream client
  /// then never waits max_delay_us for batch slots that cannot fill,
  /// while bursts still pack toward max_batch.
  bool adaptive_batch = false;
  /// OpenMP team size each worker scopes its kernels to (core::TeamScope).
  /// 0 = auto: the creating thread's own team budget (core::TeamThreads()
  /// at Create time) is partitioned evenly across num_workers, so with
  /// one worker the engine keeps today's whole-machine kernels and with
  /// N workers the workers split the budget instead of each forking a
  /// full team (num_workers x team <= budget — no oversubscription).
  int64_t team_size = 0;
  /// Optional engine-to-core placement: when non-empty, every worker
  /// thread pins itself to exactly this core set before its first kernel
  /// (OpenMP team threads inherit the mask, so the whole engine is
  /// confined). A router partitioning shards across the machine fills
  /// this per engine; a failed pin logs a warning and serves unpinned.
  std::vector<int> pin_cores;
};

/// \brief Aggregate serving counters (monotonic since engine start except
/// where noted). Always read as one consistent Snapshot() — the fields
/// are updated together under the engine mutex and must never be observed
/// mid-flush.
struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t max_batch_observed = 0;
  /// Submissions rejected by max_queue admission control.
  int64_t rejected = 0;
  /// Current flush target: max_batch, or the adaptive estimate when
  /// EngineOptions::adaptive_batch is on.
  int64_t effective_max_batch = 0;
  /// Requests waiting at snapshot time (not monotonic).
  int64_t queue_depth = 0;
  /// Requests served through the synchronous streaming fast paths
  /// (ForecastNow / ForecastFromState), counted in `requests` too.
  int64_t streamed = 0;
  /// Pre-packed batch fast-path calls (SubmitBatch and the batched warm
  /// forecasts), the requests they carried (counted in `requests` and
  /// `streamed` too), and the largest such batch observed.
  int64_t batched_submits = 0;
  int64_t batched_requests = 0;
  int64_t batched_max = 0;
  /// Structure-reuse efficacy, summed over every thread that served
  /// through this engine: the DyHSL TopKPatternCache counters when the
  /// model is a pattern-reuse DyHSL, the DHGNN structure-cache counters
  /// when it is a structure-reuse DHGNN, all zeros otherwise. Reuse is
  /// observable in serving snapshots, not only in unit tests.
  tensor::TopKPatternCache::Stats pattern;
  /// Inference-plan (weight prepack) counters for this engine's weights:
  /// `panels`/`bytes` inventory the packed panels currently held (bytes is
  /// ~the engine's 2-D weight bytes once warm), `hits`/`misses` count
  /// prepacked-operand lookups from this engine's serving calls, and
  /// `invalidations` counts checkpoint-reload drops of this engine's
  /// panels. See tensor::PrepackCache.
  tensor::PrepackCache::Stats prepack;
};

/// \brief Loads a model + checkpoint once and serves batched grad-free
/// forecasts. Thread-safe: Submit may be called from any thread.
class ForecastEngine {
 public:
  /// \brief Builds the model for `task` through `factory` and, when
  /// `checkpoint_path` is non-empty, restores its parameters from disk
  /// (the model must then be an nn::Module). Fails (rather than aborts)
  /// on unreadable or mismatched checkpoints.
  static Result<std::unique_ptr<ForecastEngine>> Create(
      const train::ForecastTask& task, const ModelFactory& factory,
      const std::string& checkpoint_path = "",
      const EngineOptions& options = EngineOptions());

  /// \brief Convenience overload: a DyHSL model from `config` (whose
  /// constructor pre-computes the normalized temporal operator of every
  /// pooling scale).
  static Result<std::unique_ptr<ForecastEngine>> Create(
      const train::ForecastTask& task, const models::DyHslConfig& config,
      const std::string& checkpoint_path = "",
      const EngineOptions& options = EngineOptions());

  /// Drains the queue and joins the workers.
  ~ForecastEngine();

  ForecastEngine(const ForecastEngine&) = delete;
  ForecastEngine& operator=(const ForecastEngine&) = delete;

  /// \brief Enqueues one window for the next micro-batch. The future is
  /// always fulfilled — with a failed Status for malformed requests or
  /// an engine shutting down, never with a broken promise.
  std::future<ForecastResponse> Submit(ForecastRequest request);

  /// \brief Synchronous streaming fast path: one grad-free forward over
  /// `window` (T, N, F) on the *calling* thread, skipping the queue and
  /// micro-batch delay entirely. The window may be (and in the session
  /// path is) a zero-copy ring view — it is only read. Kernels run under
  /// the same worker team size as the queue path, so the result is
  /// bit-identical to a Submit of the same window at batch 1.
  /// Thread-safe and usable concurrently with Submit.
  ForecastResponse ForecastNow(const tensor::Tensor& window);

  /// \brief Synchronous pre-packed batch fast path: one grad-free
  /// forward over `windows` (B, T, N, F) on the calling thread,
  /// bypassing the micro-batch queue entirely — the batch is already
  /// packed, so there is nothing for the queue to amortize. `windows` is
  /// only read (it may be a zero-copy pack of live ring views). Each
  /// batch item's forecast is bit-identical to ForecastNow over the same
  /// window: the batched kernels process every item with the same
  /// accumulation order as at B = 1. Thread-safe, usable concurrently
  /// with Submit/ForecastNow.
  BatchForecastResponse SubmitBatch(const tensor::Tensor& windows);

  /// \name Warm recurrent-state serving
  ///
  /// Available when the model implements train::RecurrentStreamModel
  /// (supports_streaming()); the non-Forecast calls abort otherwise.
  /// All run on the calling thread under the engine's worker team size —
  /// a ResyncState followed by ForecastFromState is bit-identical to
  /// ForecastNow over the same window.
  /// @{
  bool supports_streaming() const { return streaming_ != nullptr; }
  std::unique_ptr<train::StreamState> NewStreamState() const;
  void AdvanceState(train::StreamState* state, const tensor::Tensor& frame);
  void ResyncState(train::StreamState* state, const tensor::Tensor& window);
  ForecastResponse ForecastFromState(const train::StreamState& state);
  /// Batched warm carry: one stacked cell step / decoder rollout for B
  /// sessions ready at the same tick (train::RecurrentStreamModel's
  /// batched methods, run under the engine team with a warm arena).
  /// `frames` is the (B, N, F) stack pairing frames[i] with states[i].
  void AdvanceStateBatch(const std::vector<train::StreamState*>& states,
                         const tensor::Tensor& frames);
  BatchForecastResponse ForecastFromStateBatch(
      const std::vector<const train::StreamState*>& states);
  /// @}

  /// \brief Stops accepting new requests, serves everything already
  /// queued, and joins the worker threads. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  const train::ForecastTask& task() const { return task_; }
  const train::ForecastModel& model() const { return *model_; }
  /// Non-const access for analysis paths (Forward is a non-const
  /// override); do not mutate parameters while serving.
  train::ForecastModel* mutable_model() { return model_.get(); }
  const EngineOptions& options() const { return options_; }
  /// The resolved per-worker OpenMP team size (EngineOptions::team_size,
  /// or the auto partition when that was 0). Workers hold a
  /// core::TeamScope of exactly this size for their whole lifetime;
  /// num_workers * team_size() never exceeds the budget the engine was
  /// created under.
  int team_size() const { return worker_team_; }
  /// Shard metadata of the loaded checkpoint (unsharded when the engine
  /// was created without one, or from a version-1/2 file).
  const train::ShardMeta& shard_meta() const { return shard_meta_; }

  /// \brief One consistent view of every counter, taken under the engine
  /// mutex — a reader can never observe a batch's `requests` without its
  /// `batches` increment or tear `effective_max_batch` mid-flush.
  EngineStats Snapshot() const;

 private:
  struct Pending {
    tensor::Tensor window;
    std::promise<ForecastResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  ForecastEngine(const train::ForecastTask& task,
                 std::unique_ptr<train::ForecastModel> model,
                 const EngineOptions& options);

  void WorkerLoop();
  /// Runs one packed grad-free forward and fulfills every promise.
  void ServeBatch(std::vector<Pending>* batch);
  /// Publishes the calling thread's structure-cache counters (thread-
  /// local caches) into pattern_by_thread_ so Snapshot() can sum them.
  void SamplePatternStats();
  /// Enrolls every 2-D parameter/constant of the model in the process
  /// PrepackCache (called once at Create, after the checkpoint load) and
  /// remembers the pointers for stats attribution and Release.
  void EnrollPrepack();
  /// Adds this thread's prepack hit/miss growth since `before` (sampled
  /// at the start of a serving call) into stats_.prepack — exact
  /// per-engine attribution even when one thread serves many engines.
  void AccumulatePrepackDelta(const tensor::PrepackCache::Stats& before);

  train::ForecastTask task_;
  EngineOptions options_;
  std::unique_ptr<train::ForecastModel> model_;
  /// Set when model_ implements the streaming capability (DCRNN-style).
  const train::RecurrentStreamModel* streaming_ = nullptr;
  /// Set when model_ is a pattern-reuse DyHSL / structure-reuse DHGNN
  /// (the models with observable cache counters).
  const models::DyHsl* dyhsl_view_ = nullptr;
  const baselines::Dhgnn* dhgnn_view_ = nullptr;
  train::ShardMeta shard_meta_;
  /// Resolved OpenMP team size per worker (see team_size()).
  int worker_team_ = 1;
  /// Storage pointers of the weights this engine enrolled in the
  /// PrepackCache. Immutable once the workers start; released (and the
  /// packed panels with them) in the destructor.
  std::vector<const float*> prepack_ptrs_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  EngineStats stats_;
  /// Latest cache counters per serving thread (caches are thread-local;
  /// snapshots sum across threads). Under mu_.
  std::unordered_map<std::thread::id, tensor::TopKPatternCache::Stats>
      pattern_by_thread_;
  /// EWMA of queue depth at flush (adaptive_batch mode), under mu_.
  double depth_ewma_ = 1.0;
  std::vector<std::thread> workers_;
};

}  // namespace dyhsl::serve

#endif  // DYHSL_SERVE_ENGINE_H_
