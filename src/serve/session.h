// Stateful streaming sessions: per-client ring buffers, incremental
// window updates and online forecasting.
//
// The batch path (ForecastEngine::Submit / ForecastRouter::Submit)
// treats every request as independent: the client re-materializes and
// re-sends the full (T, N, F) window each time, and the server re-packs
// and re-routes it from scratch. Under a tick stream that is almost all
// redundant work — consecutive windows share T-1 frames. A
// SessionManager instead keeps the window *server-side*:
//
//  * Open() resolves the model's route once (ForecastRouter::RouteFor)
//    and allocates per-engine ring buffers (tensor::RingWindow) in the
//    manager's Workspace arena — for a sharded model, one ring of
//    shard-local (L, F) frames per shard, gathered at Append time, so
//    routing work happens once per tick instead of once per request.
//  * Append() ingests one tick of raw flow (N floats), derives the
//    MakeInput feature layout (scaled flow, time-of-day, day-of-week)
//    bit-identically from the absolute tick index, and pushes the frame
//    into every ring. Ticks are strictly sequential: a duplicate,
//    out-of-order or gapped tick is rejected with kInvalidArgument and
//    the session stays on its last consistent state.
//  * Forecast() serves from the hot window with zero window assembly:
//    each ring's contiguous (T, L, F) view feeds the shard engine's
//    synchronous ForecastNow fast path on the calling thread (no queue,
//    no micro-batch delay, no window copy), and the shard forecasts are
//    stitched into the global (T', N) exactly like the router does.
//
// Exactness. A default (windowed) session forecast is bit-identical to
// submitting the same window through ForecastRouter::Submit: the ring
// view holds the same floats MakeInput would produce, and ForecastNow
// runs under the engine's worker team size. With
// SessionOptions::warm_state (models implementing
// train::RecurrentStreamModel), Append additionally advances a carried
// encoder state by one cell step and Forecast runs only the T'-step
// decoder; the carry equals a cold encoder pass over *every* tick since
// the session opened (bit-identical by construction), and is therefore
// drift-bounded relative to the last-T-window reference — it remembers
// what the window forgot. resync_every bounds that drift by periodically
// rebuilding the state from the ring window, after which the next
// forecast is again bit-identical to the windowed reference.
//
// Sessions also maintain rolling (EMA) statistics of the masked raw
// flow. Serving always normalizes with the *training* scaler — swapping
// scalers would silently change every forecast — so the rolling stats
// are a drift monitor: drift_score measures how far live traffic has
// moved from the training distribution in training-std units.
//
// Concurrency. The manager map is guarded by a manager mutex; each
// session has its own mutex held for the whole Append or Forecast (a
// Push overwrites the oldest frame of the window view a concurrent
// Forecast would read, so the two must serialize per session; distinct
// sessions proceed in parallel). Sessions are shared_ptr-pinned by
// in-flight calls, so Close/eviction never pulls memory out from under
// a running Forecast — the evicted session simply finishes detached.
// Capacity is bounded by max_sessions (least-recently-used eviction at
// Open) and ttl_ms (idle expiry, swept at Open or via EvictExpired).
//
// The router must outlive the manager (StreamRoute pointer contract).

#ifndef DYHSL_SERVE_SESSION_H_
#define DYHSL_SERVE_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/serve/router.h"
#include "src/tensor/ring.h"
#include "src/tensor/workspace.h"
#include "src/train/streaming.h"

namespace dyhsl::serve {

/// \brief Per-session knobs, fixed at Open().
struct SessionOptions {
  /// Model to serve (ForecastRouter::RouteFor semantics: may be empty
  /// when the router hosts exactly one model).
  std::string model;
  /// Absolute tick index of the first Append — the stream's position in
  /// calendar time, driving the time-of-day / day-of-week features.
  int64_t start_tick = 0;
  /// Carry recurrent encoder state across ticks and serve decoder-only
  /// forecasts. Requires every engine on the route to support streaming
  /// (train::RecurrentStreamModel); Open fails otherwise.
  bool warm_state = false;
  /// With warm_state, rebuild the carried state from the ring window
  /// every this many ticks (0 = never): bounds drift relative to the
  /// windowed reference at the cost of one T-step replay per cadence.
  int64_t resync_every = 0;
  /// EMA weight of the rolling raw-flow statistics.
  float stats_alpha = 0.05f;
  /// Readings at or below this are sensor dropouts, excluded from the
  /// rolling statistics (PEMS masking convention).
  float mask_threshold = 1e-3f;
};

/// \brief Manager-wide knobs.
struct SessionManagerOptions {
  /// Maximum concurrently open sessions; opening past the cap evicts the
  /// least-recently-used session. 0 = unbounded.
  int64_t max_sessions = 0;
  /// Idle time-to-live in milliseconds: a session untouched for longer
  /// is evicted by the sweep at Open() / EvictExpired(). 0 = never.
  int64_t ttl_ms = 0;
};

/// \brief Point-in-time view of one session's counters.
struct SessionStats {
  std::string model;
  bool warm = false;
  /// The tick the next Append must carry.
  int64_t next_tick = 0;
  int64_t ticks = 0;
  int64_t forecasts = 0;
  /// Warm-state rebuilds performed by the resync cadence.
  int64_t resyncs = 0;
  /// Appends rejected for tick-sequence violations.
  int64_t rejected_ticks = 0;
  /// Frames currently buffered, in [0, history].
  int64_t buffered = 0;
  /// Rolling (EMA) mean / stddev of masked raw readings.
  float rolling_mean = 0.0f;
  float rolling_std = 0.0f;
  /// |rolling_mean - training_mean| / training_std: how far live traffic
  /// has drifted from the distribution the scaler was fitted on.
  float drift_score = 0.0f;
};

/// \brief Batch-scheduler occupancy counters: how efficiently the
/// cross-session path is packing. One "batched forecast" is one group
/// forward — all sessions of one (model, warm-path) group served by a
/// single ForecastBatch/ForecastAll call — so the mean occupancy is
/// batch_size_sum / batched_forecasts.
struct SessionBatchStats {
  int64_t batched_forecasts = 0;
  /// Sessions served across those group forwards.
  int64_t batch_size_sum = 0;
  int64_t batch_size_max = 0;
};

/// \brief Manager-level counters (monotonic except `open`).
struct SessionManagerStats {
  int64_t open = 0;
  int64_t opened = 0;
  int64_t closed = 0;
  /// Evictions by the max_sessions LRU policy / by TTL expiry.
  int64_t evicted_lru = 0;
  int64_t evicted_ttl = 0;
  int64_t ticks = 0;
  int64_t forecasts = 0;
  int64_t rejected_ticks = 0;
  /// Cross-session batch occupancy, fleet-wide and per model. The
  /// engine-side view (EngineStats::batched_*) additionally surfaces
  /// through RouterStats totals.
  SessionBatchStats batch;
  std::map<std::string, SessionBatchStats> batch_by_model;
};

/// \brief Hosts streaming sessions over a ForecastRouter's fleet.
/// Thread-safe; see the file comment for the locking model.
class SessionManager {
 public:
  /// \brief `router` is borrowed and must outlive the manager.
  explicit SessionManager(ForecastRouter* router,
                          const SessionManagerOptions& options =
                              SessionManagerOptions());
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// \brief Opens a session. Fails with kAlreadyExists on a live id,
  /// kNotFound / kInvalidArgument on an unroutable model, and
  /// kInvalidArgument when warm_state is requested for a model that does
  /// not stream.
  Status Open(const std::string& session_id,
              const SessionOptions& options = SessionOptions());

  /// \brief Ingests one tick: `raw_flow` is the (N,) raw readings at
  /// absolute tick `tick`, which must be exactly the session's next
  /// expected tick — duplicates, reorders and gaps are rejected with
  /// kInvalidArgument without touching the window.
  Status Append(const std::string& session_id, int64_t tick,
                const tensor::Tensor& raw_flow);

  /// \brief Tick-barrier ingest: appends raw_flows[i] to session
  /// session_ids[i], all at the same absolute tick. Per-session
  /// validation and error isolation match Append (statuses align with
  /// session_ids; one bad session fails only itself), but warm sessions
  /// of the same model advance their carried state in ONE batched cell
  /// step per engine instead of one step per session. A session whose
  /// resync cadence fires this tick is masked out of the warm batch and
  /// rebuilt from its ring instead (the rebuild overwrites the carried
  /// state completely, so the result equals advance-then-resync).
  /// Duplicate ids within one call are rejected with kInvalidArgument —
  /// a session cannot ingest the same tick twice.
  std::vector<Status> AppendMany(const std::vector<std::string>& session_ids,
                                 int64_t tick,
                                 const std::vector<tensor::Tensor>& raw_flows);

  /// \brief Serves a forecast from the session's current window. Fails
  /// with kUnavailable until `history` ticks have been appended. The
  /// response's forecast is heap-backed, valid after the session dies.
  ForecastResponse Forecast(const std::string& session_id);

  /// \brief Cross-session batched forecasting: groups the ready sessions
  /// per (model, warm-path), packs each group's ring windows into one
  /// (B, T, L, F) tensor per shard engine (B = 1 passes the ring view
  /// through zero-copy), runs ONE grad-free batched forward per
  /// (group, shard), and scatters the (T', N) responses back per session.
  /// Responses align with session_ids and are heap-backed. Error
  /// isolation: an unknown or not-yet-full session fails only itself; an
  /// engine failure fails only that group's members. Forecasts are
  /// bit-identical to per-session Forecast for windowed sessions (and
  /// any group of size 1) and match within 1e-5 for batched warm carry.
  /// Duplicate ids are rejected with kInvalidArgument.
  std::vector<ForecastResponse> ForecastBatch(
      const std::vector<std::string>& session_ids);

  /// \brief ForecastBatch over every open session — the tick-barrier
  /// fan-in a scheduler calls once per tick. Pair order is unspecified.
  std::vector<std::pair<std::string, ForecastResponse>> ForecastAll();

  /// \brief Closes a session; kNotFound if it is not open.
  Status Close(const std::string& session_id);

  /// \brief Sweeps idle sessions past ttl_ms; returns how many were
  /// evicted (always 0 with ttl_ms == 0).
  int64_t EvictExpired();

  Result<SessionStats> SessionInfo(const std::string& session_id) const;
  SessionManagerStats Stats() const;
  int64_t OpenSessions() const;

 private:
  struct Session;

  /// Looks up and pins a session (nullptr if unknown), stamping its
  /// LRU/TTL recency.
  std::shared_ptr<Session> Find(const std::string& session_id) const;
  /// Under mu_: TTL sweep + LRU eviction down to max_sessions - 1.
  void EvictLocked();
  /// Under s->mu: validates and ingests one tick frame — feature
  /// staging, ring pushes, rolling stats, tick accounting — everything
  /// except the warm-state advance, which Append runs per session and
  /// AppendMany runs batched across sessions.
  Status IngestFrameLocked(Session* s, int64_t tick,
                           const tensor::Tensor& raw_flow);
  /// Under s->mu: rebuilds warm state from the full ring if the resync
  /// cadence fires this tick. True means the session resynced and must
  /// be masked out of (or skip) this tick's encoder advance — safe
  /// because the rebuild overwrites the carried state completely.
  static bool MaybeResyncLocked(Session* s);
  /// ForecastBatch over already-pinned sessions (nullptr = unknown id).
  std::vector<ForecastResponse> ForecastPinned(
      const std::vector<std::string>& session_ids,
      const std::vector<std::shared_ptr<Session>>& pinned);
  /// Accumulates one group forward into the occupancy counters.
  void RecordBatch(const std::string& model, int64_t batch_size);

  ForecastRouter* router_;
  SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  /// Arena backing every session's ring storage; allocation happens only
  /// under mu_ (Open), so the single-threaded-allocation contract of
  /// Workspace holds by serialization.
  tensor::Workspace arena_;
  /// Global recency clock for LRU stamps.
  mutable std::atomic<uint64_t> use_seq_{0};

  std::atomic<int64_t> opened_{0};
  std::atomic<int64_t> closed_{0};
  std::atomic<int64_t> evicted_lru_{0};
  std::atomic<int64_t> evicted_ttl_{0};
  std::atomic<int64_t> ticks_{0};
  std::atomic<int64_t> forecasts_{0};
  std::atomic<int64_t> rejected_ticks_{0};

  /// Batch occupancy counters (fleet-wide + per model), under their own
  /// mutex so hot Append/Forecast paths never contend on them.
  mutable std::mutex batch_mu_;
  SessionBatchStats batch_stats_;
  std::map<std::string, SessionBatchStats> batch_by_model_;
};

}  // namespace dyhsl::serve

#endif  // DYHSL_SERVE_SESSION_H_
