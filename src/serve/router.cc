#include "src/serve/router.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/core/check.h"
#include "src/core/parallel.h"
#include "src/tensor/workspace.h"
#include "src/train/checkpoint.h"

namespace dyhsl::serve {

ScratchPool::ScratchPool(int64_t numel) : state_(std::make_shared<State>()) {
  DYHSL_CHECK_GE(numel, 1);
  state_->numel = numel;
}

tensor::Tensor ScratchPool::Acquire(tensor::Shape shape) {
  DYHSL_CHECK_EQ(tensor::NumElements(shape), state_->numel);
  std::shared_ptr<float[]> base;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->free_list.empty()) {
      base = std::move(state_->free_list.back());
      state_->free_list.pop_back();
    } else {
      state_->allocated += 1;
    }
  }
  if (base == nullptr) {
    // Always heap: pooled buffers outlive any step scope by design.
    tensor::WorkspaceBypass bypass;
    base = tensor::AllocateStorage(state_->numel);
  }
  // Hand out a fresh handle whose deleter returns the buffer. It captures
  // the pool state (not the pool object), so a return that races pool
  // destruction lands in a free list that is simply freed afterwards.
  std::shared_ptr<State> state = state_;
  std::shared_ptr<float[]> handle(
      base.get(), [state, base](float*) mutable {
        std::lock_guard<std::mutex> lock(state->mu);
        state->free_list.push_back(std::move(base));
      });
  return tensor::Tensor::FromStorage(std::move(handle), std::move(shape));
}

int64_t ScratchPool::allocated() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->allocated;
}

int64_t ScratchPool::available() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return static_cast<int64_t>(state_->free_list.size());
}

Result<std::unique_ptr<ForecastRouter>> ForecastRouter::Create(
    const RouterOptions& options) {
  if (options.num_stitchers < 1) {
    return Status::InvalidArgument("RouterOptions.num_stitchers must be >= 1");
  }
  if (options.thread_budget < 0) {
    return Status::InvalidArgument("RouterOptions.thread_budget must be >= 0");
  }
  std::unique_ptr<ForecastRouter> router(new ForecastRouter(options));
  for (int64_t s = 0; s < options.num_stitchers; ++s) {
    router->stitchers_.emplace_back(
        [raw = router.get()] { raw->StitcherLoop(); });
  }
  return router;
}

ForecastRouter::ForecastRouter(const RouterOptions& options)
    : options_(options) {}

ForecastRouter::~ForecastRouter() { Shutdown(); }

void ForecastRouter::Shutdown() {
  // Stop accepting requests, then shut the engines down *first*: every
  // already-fanned-out request was accepted by its engines before
  // stopping_ flipped (Submit fans out under mu_), and Engine::Shutdown
  // flushes its queue immediately instead of waiting out max_delay. The
  // stitchers then drain the job queue against already-resolved futures —
  // no in-flight promise is ever abandoned.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    claimed.swap(stitchers_);
    for (auto& [name, entry] : models_) {
      for (auto& engine : entry.engines) engine->Shutdown();
    }
  }
  cv_.notify_all();
  for (std::thread& stitcher : claimed) {
    if (stitcher.joinable()) stitcher.join();
  }
}

EngineOptions ForecastRouter::PlaceEngineOptions(const EngineOptions& base,
                                                 int64_t engine_index,
                                                 int64_t num_engines) const {
  EngineOptions placed = base;
  if (options_.placement == Placement::kInherit) return placed;
  const int budget =
      options_.thread_budget > 0 ? static_cast<int>(options_.thread_budget)
                                 : core::HardwareThreads();
  // Shards are the parallel unit: each engine gets an equal slice of the
  // budget, and its workers split the slice (workers x team <= slice).
  const int slice = std::max<int>(1, budget / static_cast<int>(num_engines));
  const core::ThreadBudget engine_budget = core::ThreadBudget::Partition(
      slice, static_cast<int>(base.num_workers));
  placed.num_workers = engine_budget.num_workers;
  if (placed.team_size == 0) placed.team_size = engine_budget.team_size;
  if (options_.placement == Placement::kPinned) {
    // Engine i owns the i-th contiguous slice of the cores this process
    // may run on. More engines than cores wraps around — engines then
    // share cores but still never oversubscribe their slices.
    const std::vector<int> cores = core::AvailableCores();
    placed.pin_cores.clear();
    placed.pin_cores.reserve(static_cast<size_t>(slice));
    for (int c = 0; c < slice; ++c) {
      placed.pin_cores.push_back(
          cores[static_cast<size_t>(engine_index * slice + c) % cores.size()]);
    }
  }
  return placed;
}

Status ForecastRouter::AddEntry(const std::string& name, ModelEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    return Status::InvalidArgument("ForecastRouter is shut down");
  }
  if (!models_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("model '" + name + "' already registered");
  }
  return Status::OK();
}

Status ForecastRouter::AddModel(const std::string& name,
                                const train::ForecastTask& task,
                                const ModelFactory& factory,
                                const std::string& checkpoint_path,
                                const EngineOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  auto created = ForecastEngine::Create(
      task, factory, checkpoint_path,
      PlaceEngineOptions(options, /*engine_index=*/0, /*num_engines=*/1));
  if (!created.ok()) return created.status();

  ModelEntry entry;
  entry.name = name;
  entry.num_nodes = task.num_nodes;
  entry.history = task.history;
  entry.horizon = task.horizon;
  entry.input_dim = task.input_dim;
  entry.sharded = false;
  // A well-formed single "shard" owning every sensor with no halo, so
  // the ShardSpec invariants (locals/owned_offset) hold even though the
  // unsharded fast paths never gather or stitch through it.
  graph::ShardSpec whole;
  whole.shard_id = 0;
  whole.begin = 0;
  whole.end = task.num_nodes;
  whole.locals.resize(task.num_nodes);
  for (int64_t i = 0; i < task.num_nodes; ++i) whole.locals[i] = i;
  whole.owned_offset = 0;
  entry.shards.push_back(std::move(whole));
  entry.engines.push_back(std::move(created).ValueOrDie());
  return AddEntry(name, std::move(entry));
}

Status ForecastRouter::AddShardedModel(const std::string& name,
                                       const train::ForecastTask& task,
                                       const graph::ShardPlan& plan,
                                       const ModelFactory& factory,
                                       const std::string& checkpoint_prefix,
                                       const EngineOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (plan.num_nodes() != task.num_nodes) {
    return Status::InvalidArgument(
        "shard plan covers " + std::to_string(plan.num_nodes()) +
        " sensors, task has " + std::to_string(task.num_nodes));
  }
  if (!checkpoint_prefix.empty()) {
    // Refuse an inconsistent family up front, before any engine exists.
    auto validated = train::ShardCheckpointSet::Validate(checkpoint_prefix,
                                                         plan);
    if (!validated.ok()) return validated.status();
  }

  ModelEntry entry;
  entry.name = name;
  entry.num_nodes = task.num_nodes;
  entry.history = task.history;
  entry.horizon = task.horizon;
  entry.input_dim = task.input_dim;
  entry.sharded = true;
  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    const graph::ShardSpec& shard = plan.shard(s);
    const std::string path =
        checkpoint_prefix.empty()
            ? std::string()
            : train::ShardCheckpointSet::ShardPath(checkpoint_prefix, s);
    auto created = ForecastEngine::Create(
        train::ShardTask(task, shard), factory, path,
        PlaceEngineOptions(options, s, plan.num_shards()));
    if (!created.ok()) return created.status();
    entry.slice_pools.emplace_back(task.history * shard.num_local() *
                                   task.input_dim);
    entry.shards.push_back(shard);
    entry.engines.push_back(std::move(created).ValueOrDie());
  }
  return AddEntry(name, std::move(entry));
}

namespace {

// Gathers one shard's local columns of a global (T, N, F) window into the
// (T, L, F) slice `out` (a pooled scratch buffer): the owned block is one
// contiguous copy per step, the halo columns (before and after it) follow
// one node at a time.
void GatherShardWindow(const tensor::Tensor& window,
                       const graph::ShardSpec& shard, tensor::Tensor* out) {
  const int64_t t_steps = window.size(0);
  const int64_t n = window.size(1);
  const int64_t f = window.size(2);
  const int64_t local = shard.num_local();
  const int64_t owned = shard.owned_count();
  const int64_t offset = shard.owned_offset;
  const float* src = window.data();
  float* dst = out->data();
  for (int64_t t = 0; t < t_steps; ++t) {
    const float* src_t = src + t * n * f;
    float* dst_t = dst + t * local * f;
    for (int64_t j = 0; j < offset; ++j) {
      std::memcpy(dst_t + j * f, src_t + shard.locals[j] * f,
                  static_cast<size_t>(f) * sizeof(float));
    }
    std::memcpy(dst_t + offset * f, src_t + shard.begin * f,
                static_cast<size_t>(owned * f) * sizeof(float));
    for (int64_t j = offset + owned; j < local; ++j) {
      std::memcpy(dst_t + j * f, src_t + shard.locals[j] * f,
                  static_cast<size_t>(f) * sizeof(float));
    }
  }
}

}  // namespace

std::future<ForecastResponse> ForecastRouter::Submit(RouterRequest request) {
  std::promise<ForecastResponse> promise;
  std::future<ForecastResponse> future = promise.get_future();
  auto fail = [&promise](Status status) {
    ForecastResponse response;
    response.status = std::move(status);
    promise.set_value(std::move(response));
  };

  // Phase 1, under the lock: resolve and validate. Entry pointers are
  // stable (std::map nodes) and a registered entry is immutable, so the
  // pointer stays usable after the lock drops.
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      fail(Status::InvalidArgument("ForecastRouter is shut down"));
      return future;
    }
    if (!request.model.empty()) {
      auto it = models_.find(request.model);
      if (it == models_.end()) {
        routing_errors_ += 1;
        fail(Status::NotFound("no model '" + request.model + "' registered"));
        return future;
      }
      entry = &it->second;
    } else if (models_.size() == 1) {
      entry = &models_.begin()->second;
    } else {
      routing_errors_ += 1;
      fail(Status::InvalidArgument(
          models_.empty() ? "no models registered"
                          : "request must name one of the " +
                                std::to_string(models_.size()) +
                                " registered models"));
      return future;
    }
    const tensor::Shape expected = {entry->history, entry->num_nodes,
                                    entry->input_dim};
    if (!request.window.defined() || request.window.shape() != expected) {
      routing_errors_ += 1;
      fail(Status::InvalidArgument(
          "request window shape " +
          (request.window.defined()
               ? tensor::ShapeToString(request.window.shape())
               : std::string("<undefined>")) +
          " != expected " + tensor::ShapeToString(expected)));
      return future;
    }
    requests_ += 1;
  }

  // Phase 2, unlocked: the per-shard column gathers are the memcpy-heavy
  // part of routing — keeping them outside mu_ lets concurrent clients
  // slice their windows in parallel. Slice buffers come from the
  // per-shard scratch pools and return there when the engines finish
  // with them, so steady-state routing allocates nothing.
  std::vector<tensor::Tensor> slices;
  if (entry->sharded) {
    slices.reserve(entry->shards.size());
    for (size_t s = 0; s < entry->shards.size(); ++s) {
      const graph::ShardSpec& shard = entry->shards[s];
      slices.push_back(entry->slice_pools[s].Acquire(
          {entry->history, shard.num_local(), entry->input_dim}));
      GatherShardWindow(request.window, shard, &slices.back());
    }
  }

  // Phase 3, under the lock again: fan out and enqueue. Shutdown also
  // takes mu_, so a job is either fully enqueued before the stitchers
  // start draining or rejected here — a promise can never be stranded.
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    requests_ -= 1;  // counted in phase 1, never fanned out
    fail(Status::InvalidArgument("ForecastRouter is shut down"));
    return future;
  }
  StitchJob job;
  job.entry = entry;
  job.promise = std::move(promise);
  job.shard_futures.reserve(entry->engines.size());
  if (!entry->sharded) {
    job.shard_futures.push_back(
        entry->engines[0]->Submit(ForecastRequest{std::move(request.window)}));
  } else {
    for (size_t s = 0; s < entry->engines.size(); ++s) {
      job.shard_futures.push_back(
          entry->engines[s]->Submit(ForecastRequest{std::move(slices[s])}));
    }
  }
  jobs_.push_back(std::move(job));
  cv_.notify_one();
  return future;
}

void ForecastRouter::StitcherLoop() {
  while (true) {
    StitchJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    // Waiting on engine futures must happen outside the lock, or one slow
    // shard would stall every Submit.
    Stitch(&job);
  }
}

void ForecastRouter::Stitch(StitchJob* job) {
  const ModelEntry& entry = *job->entry;
  if (!entry.sharded) {
    // Single engine: the shard response *is* the global response.
    job->promise.set_value(job->shard_futures[0].get());
    return;
  }
  ForecastResponse out;
  out.forecast = tensor::Tensor({entry.horizon, entry.num_nodes});
  for (size_t s = 0; s < job->shard_futures.size(); ++s) {
    ForecastResponse shard_response = job->shard_futures[s].get();
    if (!shard_response.status.ok()) {
      // Per-request error surfacing: this request fails with the shard's
      // Status (e.g. kUnavailable from admission control); every other
      // request keeps its own fate.
      ForecastResponse failed;
      failed.status = std::move(shard_response.status);
      job->promise.set_value(std::move(failed));
      return;
    }
    const graph::ShardSpec& shard = entry.shards[s];
    const tensor::Tensor& f = shard_response.forecast;  // (T', local)
    DYHSL_CHECK_EQ(f.size(0), entry.horizon);
    DYHSL_CHECK_EQ(f.size(1), shard.num_local());
    const int64_t owned = shard.owned_count();
    // The owned block is contiguous inside the local id space, so
    // dropping halo columns and scattering back to global order is one
    // contiguous copy per step.
    for (int64_t t = 0; t < entry.horizon; ++t) {
      std::memcpy(out.forecast.data() + t * entry.num_nodes + shard.begin,
                  f.data() + t * shard.num_local() + shard.owned_offset,
                  static_cast<size_t>(owned) * sizeof(float));
    }
    // The request's critical path: the slowest shard on every axis.
    out.batch_size = std::max(out.batch_size, shard_response.batch_size);
    out.queue_micros = std::max(out.queue_micros, shard_response.queue_micros);
    out.compute_micros =
        std::max(out.compute_micros, shard_response.compute_micros);
  }
  job->promise.set_value(std::move(out));
}

std::vector<std::string> ForecastRouter::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

int64_t ForecastRouter::ShardCountOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end()
             ? 0
             : static_cast<int64_t>(it->second.engines.size());
}

Result<StreamRoute> ForecastRouter::RouteFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    return Status::InvalidArgument("ForecastRouter is shut down");
  }
  const ModelEntry* entry = nullptr;
  if (!name.empty()) {
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound("no model '" + name + "' registered");
    }
    entry = &it->second;
  } else if (models_.size() == 1) {
    entry = &models_.begin()->second;
  } else {
    return Status::InvalidArgument(
        models_.empty() ? "no models registered"
                        : "route must name one of the " +
                              std::to_string(models_.size()) +
                              " registered models");
  }
  StreamRoute route;
  route.model = entry->name;
  route.sharded = entry->sharded;
  route.num_nodes = entry->num_nodes;
  route.history = entry->history;
  route.horizon = entry->horizon;
  route.input_dim = entry->input_dim;
  route.shards = &entry->shards;
  route.engines.reserve(entry->engines.size());
  for (const auto& engine : entry->engines) route.engines.push_back(engine.get());
  return route;
}

int64_t ForecastRouter::ScratchAllocated(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return 0;
  int64_t total = 0;
  for (const ScratchPool& pool : it->second.slice_pools) {
    total += pool.allocated();
  }
  return total;
}

RouterStats ForecastRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterStats stats;
  stats.requests = requests_;
  stats.routing_errors = routing_errors_;
  for (const auto& [name, entry] : models_) {
    for (size_t s = 0; s < entry.engines.size(); ++s) {
      EngineStatsEntry e;
      e.model = name;
      e.shard_id = entry.shards[s].shard_id;
      e.shard = entry.engines[s]->shard_meta();
      e.num_workers = entry.engines[s]->options().num_workers;
      e.team_size = entry.engines[s]->team_size();
      e.stats = entry.engines[s]->Snapshot();
      stats.total.requests += e.stats.requests;
      stats.total.batches += e.stats.batches;
      stats.total.max_batch_observed = std::max(
          stats.total.max_batch_observed, e.stats.max_batch_observed);
      stats.total.rejected += e.stats.rejected;
      stats.total.effective_max_batch = std::max(
          stats.total.effective_max_batch, e.stats.effective_max_batch);
      stats.total.queue_depth += e.stats.queue_depth;
      stats.total.streamed += e.stats.streamed;
      stats.total.batched_submits += e.stats.batched_submits;
      stats.total.batched_requests += e.stats.batched_requests;
      stats.total.batched_max =
          std::max(stats.total.batched_max, e.stats.batched_max);
      stats.total.pattern.selects += e.stats.pattern.selects;
      stats.total.pattern.reuses += e.stats.pattern.reuses;
      stats.total.pattern.drift_reselects += e.stats.pattern.drift_reselects;
      stats.total.pattern.drifted_rows += e.stats.pattern.drifted_rows;
      // Prepack counters sum cleanly: every engine enrolls its own
      // weights, so no panel or lookup is attributed twice.
      stats.total.prepack.panels += e.stats.prepack.panels;
      stats.total.prepack.bytes += e.stats.prepack.bytes;
      stats.total.prepack.hits += e.stats.prepack.hits;
      stats.total.prepack.misses += e.stats.prepack.misses;
      stats.total.prepack.invalidations += e.stats.prepack.invalidations;
      stats.engines.push_back(std::move(e));
    }
  }
  return stats;
}

}  // namespace dyhsl::serve
