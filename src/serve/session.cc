#include "src/serve/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/core/check.h"
#include "src/tensor/ops.h"
#include "src/train/forecast_model.h"

namespace dyhsl::serve {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One open session. `mu` serializes Append against Forecast (a Push
/// overwrites the oldest frame of a live window view); everything below
/// it is guarded by `mu` except the lock-free recency stamps.
struct SessionManager::Session {
  std::mutex mu;

  SessionOptions options;
  StreamRoute route;
  /// Scaling / calendar constants, copied once from the engine task so
  /// the per-tick feature derivation never touches shared state.
  float scaler_mean = 0.0f;
  float scaler_std = 1.0f;
  int64_t steps_per_day = 288;

  int64_t next_tick = 0;
  int64_t ticks = 0;
  int64_t forecasts = 0;
  int64_t resyncs = 0;
  int64_t rejected = 0;
  int64_t since_resync = 0;

  /// One ring per engine: (N, F) frames unsharded, shard-local (L, F)
  /// frames per shard. Ring storage lives in the manager arena.
  std::vector<tensor::RingWindow> rings;
  /// Per-tick feature staging, (N, F): the Push source for unsharded
  /// sessions and the gather source for sharded ones.
  tensor::Tensor staging;
  /// Per-shard gathered frames, (L, F) in shard-local id order.
  std::vector<tensor::Tensor> shard_frames;
  /// Carried recurrent state per engine (warm sessions only).
  std::vector<std::unique_ptr<train::StreamState>> states;

  /// Rolling masked raw-flow moments (EMA of per-tick mean / mean-square
  /// over unmasked readings).
  bool stats_init = false;
  double ema_mean = 0.0;
  double ema_sq = 0.0;

  /// Recency stamps, written through the shared_ptr outside `mu`.
  std::atomic<uint64_t> last_used{0};
  std::atomic<int64_t> last_touch_ns{0};
};

SessionManager::SessionManager(ForecastRouter* router,
                               const SessionManagerOptions& options)
    : router_(router), options_(options) {
  DYHSL_CHECK(router_ != nullptr);
  DYHSL_CHECK_GE(options_.max_sessions, 0);
  DYHSL_CHECK_GE(options_.ttl_ms, 0);
}

SessionManager::~SessionManager() = default;

std::shared_ptr<SessionManager::Session> SessionManager::Find(
    const std::string& session_id) const {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return nullptr;
    session = it->second;
  }
  session->last_used.store(use_seq_.fetch_add(1) + 1,
                           std::memory_order_relaxed);
  session->last_touch_ns.store(NowNs(), std::memory_order_relaxed);
  return session;
}

void SessionManager::EvictLocked() {
  // TTL first: an expired session should not survive just because it is
  // also the LRU candidate someone else would have paid for.
  if (options_.ttl_ms > 0) {
    const int64_t cutoff = NowNs() - options_.ttl_ms * 1'000'000;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->last_touch_ns.load(std::memory_order_relaxed) <
          cutoff) {
        it = sessions_.erase(it);
        evicted_ttl_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  while (options_.max_sessions > 0 &&
         static_cast<int64_t>(sessions_.size()) >= options_.max_sessions) {
    auto victim = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->last_used.load(std::memory_order_relaxed) <
          victim->second->last_used.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    sessions_.erase(victim);
    evicted_lru_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status SessionManager::Open(const std::string& session_id,
                            const SessionOptions& options) {
  if (session_id.empty()) {
    return Status::InvalidArgument("session id must be non-empty");
  }
  if (options.start_tick < 0) {
    return Status::InvalidArgument("SessionOptions.start_tick must be >= 0");
  }
  if (options.resync_every < 0) {
    return Status::InvalidArgument("SessionOptions.resync_every must be >= 0");
  }
  if (!(options.stats_alpha > 0.0f && options.stats_alpha <= 1.0f)) {
    return Status::InvalidArgument(
        "SessionOptions.stats_alpha must be in (0, 1]");
  }
  auto routed = router_->RouteFor(options.model);
  if (!routed.ok()) return routed.status();
  StreamRoute route = std::move(routed).ValueOrDie();
  if (route.input_dim != 3) {
    return Status::InvalidArgument(
        "streaming sessions require the 3-feature MakeInput layout; model '" +
        route.model + "' has input_dim " + std::to_string(route.input_dim));
  }
  if (options.warm_state) {
    for (ForecastEngine* engine : route.engines) {
      if (!engine->supports_streaming()) {
        return Status::InvalidArgument(
            "model '" + route.model +
            "' does not implement warm-state streaming "
            "(train::RecurrentStreamModel)");
      }
    }
  }

  auto session = std::make_shared<Session>();
  session->options = options;
  session->route = std::move(route);
  const train::ForecastTask& task = session->route.engines[0]->task();
  session->scaler_mean = task.scaler_mean;
  session->scaler_std = task.scaler_std;
  session->steps_per_day = task.steps_per_day;
  session->next_tick = options.start_tick;
  if (options.warm_state) {
    session->states.reserve(session->route.engines.size());
    for (ForecastEngine* engine : session->route.engines) {
      session->states.push_back(engine->NewStreamState());
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(session_id) != 0) {
    return Status::AlreadyExists("session '" + session_id +
                                 "' is already open");
  }
  EvictLocked();
  {
    // Ring and staging storage lands in the manager arena; allocation is
    // serialized by mu_, satisfying the Workspace threading contract.
    tensor::WorkspaceScope scope(&arena_);
    const StreamRoute& r = session->route;
    if (r.sharded) {
      session->rings.reserve(r.shards->size());
      session->shard_frames.reserve(r.shards->size());
      for (const graph::ShardSpec& shard : *r.shards) {
        session->rings.emplace_back(
            r.history, tensor::Shape{shard.num_local(), r.input_dim});
        session->shard_frames.emplace_back(
            tensor::Shape{shard.num_local(), r.input_dim});
      }
    } else {
      session->rings.emplace_back(
          r.history, tensor::Shape{r.num_nodes, r.input_dim});
    }
    session->staging = tensor::Tensor({session->route.num_nodes,
                                       session->route.input_dim});
  }
  session->last_used.store(use_seq_.fetch_add(1) + 1,
                           std::memory_order_relaxed);
  session->last_touch_ns.store(NowNs(), std::memory_order_relaxed);
  sessions_.emplace(session_id, std::move(session));
  opened_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SessionManager::Append(const std::string& session_id, int64_t tick,
                              const tensor::Tensor& raw_flow) {
  std::shared_ptr<Session> s = Find(session_id);
  if (s == nullptr) {
    return Status::NotFound("no open session '" + session_id + "'");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  Status ingested = IngestFrameLocked(s.get(), tick, raw_flow);
  if (!ingested.ok()) return ingested;

  if (s->options.warm_state) {
    // One encoder cell step per tick — the whole point of the warm path:
    // Forecast later runs only the decoder. A tick whose resync cadence
    // fires skips the step: the ring rebuild overwrites the carried
    // state completely, so advance-then-resync and resync-alone land on
    // the same state (and AppendMany masks resync members the same way).
    const StreamRoute& route = s->route;
    if (!MaybeResyncLocked(s.get())) {
      for (size_t k = 0; k < route.engines.size(); ++k) {
        const tensor::Tensor& frame =
            route.sharded ? s->shard_frames[k] : s->staging;
        route.engines[k]->AdvanceState(s->states[k].get(), frame);
      }
      s->since_resync += 1;
    }
  }
  return Status::OK();
}

Status SessionManager::IngestFrameLocked(Session* s, int64_t tick,
                                         const tensor::Tensor& raw_flow) {
  const StreamRoute& route = s->route;
  const tensor::Shape expected = {route.num_nodes};
  if (!raw_flow.defined() || raw_flow.shape() != expected) {
    return Status::InvalidArgument(
        "tick frame shape " +
        (raw_flow.defined() ? tensor::ShapeToString(raw_flow.shape())
                            : std::string("<undefined>")) +
        " != expected " + tensor::ShapeToString(expected));
  }
  if (tick != s->next_tick) {
    s->rejected += 1;
    rejected_ticks_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        (tick < s->next_tick
             ? std::string("duplicate or out-of-order tick ")
             : std::string("gapped tick ")) +
        std::to_string(tick) + ": session expects tick " +
        std::to_string(s->next_tick));
  }

  // Derive the MakeInput feature layout from the absolute tick, with the
  // training scaler — bit-identical to TrafficDataset::MakeInput, which
  // is what makes windowed session forecasts match batch submissions.
  const int64_t n = route.num_nodes;
  const int64_t f = route.input_dim;
  const int64_t spd = s->steps_per_day;
  const float tod =
      static_cast<float>(tick % spd) / static_cast<float>(spd);
  const float dow =
      static_cast<float>((tick / spd) % 7) / 7.0f;
  const float* raw = raw_flow.data();
  float* staged = s->staging.data();
  for (int64_t i = 0; i < n; ++i) {
    float* dst = staged + i * f;
    dst[0] = (raw[i] - s->scaler_mean) / s->scaler_std;
    dst[1] = tod;
    dst[2] = dow;
  }

  if (!route.sharded) {
    s->rings[0].Push(staged);
  } else {
    for (size_t k = 0; k < route.shards->size(); ++k) {
      const graph::ShardSpec& shard = (*route.shards)[k];
      float* frame = s->shard_frames[k].data();
      for (int64_t j = 0; j < shard.num_local(); ++j) {
        std::memcpy(frame + j * f, staged + shard.locals[j] * f,
                    static_cast<size_t>(f) * sizeof(float));
      }
      s->rings[k].Push(frame);
    }
  }

  // Rolling masked raw-flow moments (drift monitor; serving keeps the
  // training scaler).
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t unmasked = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float v = raw[i];
    if (v > s->options.mask_threshold) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      unmasked += 1;
    }
  }
  if (unmasked > 0) {
    const double mean = sum / static_cast<double>(unmasked);
    const double sq = sum_sq / static_cast<double>(unmasked);
    if (!s->stats_init) {
      s->ema_mean = mean;
      s->ema_sq = sq;
      s->stats_init = true;
    } else {
      const double a = s->options.stats_alpha;
      s->ema_mean += a * (mean - s->ema_mean);
      s->ema_sq += a * (sq - s->ema_sq);
    }
  }

  s->next_tick += 1;
  s->ticks += 1;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool SessionManager::MaybeResyncLocked(Session* s) {
  if (s->options.resync_every <= 0 || !s->rings[0].full() ||
      s->since_resync + 1 < s->options.resync_every) {
    return false;
  }
  const StreamRoute& route = s->route;
  for (size_t k = 0; k < route.engines.size(); ++k) {
    route.engines[k]->ResyncState(s->states[k].get(), s->rings[k].Window());
  }
  s->since_resync = 0;
  s->resyncs += 1;
  return true;
}

std::vector<Status> SessionManager::AppendMany(
    const std::vector<std::string>& session_ids, int64_t tick,
    const std::vector<tensor::Tensor>& raw_flows) {
  std::vector<Status> statuses(session_ids.size(), Status::OK());
  if (session_ids.size() != raw_flows.size()) {
    const Status bad = Status::InvalidArgument(
        "AppendMany got " + std::to_string(session_ids.size()) +
        " session ids but " + std::to_string(raw_flows.size()) + " frames");
    std::fill(statuses.begin(), statuses.end(), bad);
    return statuses;
  }
  const size_t n = session_ids.size();
  std::vector<std::shared_ptr<Session>> pinned(n);
  // std::map keys double as the distinct-session set in address order —
  // the lock order every multi-session path uses, so overlapping
  // AppendMany / ForecastBatch calls can never deadlock.
  std::map<Session*, size_t> distinct;
  for (size_t i = 0; i < n; ++i) {
    pinned[i] = Find(session_ids[i]);
    if (pinned[i] == nullptr) {
      statuses[i] =
          Status::NotFound("no open session '" + session_ids[i] + "'");
      continue;
    }
    if (!distinct.emplace(pinned[i].get(), i).second) {
      statuses[i] = Status::InvalidArgument(
          "duplicate session '" + session_ids[i] +
          "' in one AppendMany call: a session cannot ingest tick " +
          std::to_string(tick) + " twice");
      pinned[i] = nullptr;
    }
  }
  for (auto& entry : distinct) entry.first->mu.lock();

  // Phase 1: per-session ingest with per-session error isolation.
  for (size_t i = 0; i < n; ++i) {
    if (pinned[i] == nullptr || !statuses[i].ok()) continue;
    statuses[i] = IngestFrameLocked(pinned[i].get(), tick, raw_flows[i]);
  }

  // Phase 2: warm carry. Members whose resync cadence fires this tick
  // rebuild from the ring and are masked out; the rest of each model's
  // sessions advance in ONE batched cell step per engine.
  std::map<std::string, std::vector<Session*>> warm_groups;
  for (size_t i = 0; i < n; ++i) {
    if (pinned[i] == nullptr || !statuses[i].ok()) continue;
    Session* s = pinned[i].get();
    if (!s->options.warm_state) continue;
    if (MaybeResyncLocked(s)) continue;
    warm_groups[s->route.model].push_back(s);
  }
  if (!warm_groups.empty()) {
    // Pack scratch lives in a thread-local arena whose slabs recycle at
    // the batch high-water mark across ticks.
    thread_local tensor::Workspace pack_arena;
    tensor::WorkspaceScope scope(&pack_arena);
    for (auto& group : warm_groups) {
      std::vector<Session*>& members = group.second;
      const StreamRoute& route = members[0]->route;
      std::vector<train::StreamState*> states(members.size());
      std::vector<tensor::Tensor> frames(members.size());
      for (size_t k = 0; k < route.engines.size(); ++k) {
        for (size_t m = 0; m < members.size(); ++m) {
          states[m] = members[m]->states[k].get();
          frames[m] =
              route.sharded ? members[m]->shard_frames[k] : members[m]->staging;
        }
        route.engines[k]->AdvanceStateBatch(states, tensor::PackBatch(frames));
      }
      for (Session* s : members) s->since_resync += 1;
      frames.clear();
      pack_arena.Reset();
    }
  }

  for (auto it = distinct.rbegin(); it != distinct.rend(); ++it) {
    it->first->mu.unlock();
  }
  return statuses;
}

ForecastResponse SessionManager::Forecast(const std::string& session_id) {
  ForecastResponse out;
  std::shared_ptr<Session> s = Find(session_id);
  if (s == nullptr) {
    out.status = Status::NotFound("no open session '" + session_id + "'");
    return out;
  }
  std::lock_guard<std::mutex> lock(s->mu);
  const StreamRoute& route = s->route;
  if (!s->rings[0].full()) {
    out.status = Status::Unavailable(
        "session has " + std::to_string(s->rings[0].count()) + " of " +
        std::to_string(route.history) + " ticks buffered");
    return out;
  }

  const bool warm = s->options.warm_state;
  if (!route.sharded) {
    out = warm ? route.engines[0]->ForecastFromState(*s->states[0])
               : route.engines[0]->ForecastNow(s->rings[0].Window());
  } else {
    // Stitch shard forecasts exactly like the router: the owned block is
    // contiguous in local id order, so dropping halos is one contiguous
    // copy per horizon step. Shards run sequentially on the calling
    // thread (the session fast path is a latency path, not a throughput
    // path), so compute_micros sums over shards.
    {
      tensor::WorkspaceBypass bypass;
      out.forecast = tensor::Tensor({route.horizon, route.num_nodes});
    }
    out.batch_size = 1;
    for (size_t k = 0; k < route.engines.size(); ++k) {
      ForecastResponse shard_response =
          warm ? route.engines[k]->ForecastFromState(*s->states[k])
               : route.engines[k]->ForecastNow(s->rings[k].Window());
      if (!shard_response.status.ok()) {
        ForecastResponse failed;
        failed.status = std::move(shard_response.status);
        return failed;
      }
      const graph::ShardSpec& shard = (*route.shards)[k];
      const tensor::Tensor& fc = shard_response.forecast;  // (T', local)
      DYHSL_CHECK_EQ(fc.size(0), route.horizon);
      DYHSL_CHECK_EQ(fc.size(1), shard.num_local());
      const int64_t owned = shard.owned_count();
      for (int64_t t = 0; t < route.horizon; ++t) {
        std::memcpy(
            out.forecast.data() + t * route.num_nodes + shard.begin,
            fc.data() + t * shard.num_local() + shard.owned_offset,
            static_cast<size_t>(owned) * sizeof(float));
      }
      out.compute_micros += shard_response.compute_micros;
    }
  }
  if (out.status.ok()) {
    s->forecasts += 1;
    forecasts_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

std::vector<ForecastResponse> SessionManager::ForecastBatch(
    const std::vector<std::string>& session_ids) {
  std::vector<std::shared_ptr<Session>> pinned(session_ids.size());
  for (size_t i = 0; i < session_ids.size(); ++i) {
    pinned[i] = Find(session_ids[i]);
  }
  return ForecastPinned(session_ids, pinned);
}

std::vector<std::pair<std::string, ForecastResponse>>
SessionManager::ForecastAll() {
  std::vector<std::string> ids;
  std::vector<std::shared_ptr<Session>> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sessions_.size());
    pinned.reserve(sessions_.size());
    for (const auto& entry : sessions_) {
      ids.push_back(entry.first);
      pinned.push_back(entry.second);
    }
  }
  // A fleet forecast is a use: stamp recency like Find() so the tick
  // scheduler keeps its own sessions alive.
  for (const std::shared_ptr<Session>& s : pinned) {
    s->last_used.store(use_seq_.fetch_add(1) + 1, std::memory_order_relaxed);
    s->last_touch_ns.store(NowNs(), std::memory_order_relaxed);
  }
  std::vector<ForecastResponse> responses = ForecastPinned(ids, pinned);
  std::vector<std::pair<std::string, ForecastResponse>> out;
  out.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    out.emplace_back(std::move(ids[i]), std::move(responses[i]));
  }
  return out;
}

std::vector<ForecastResponse> SessionManager::ForecastPinned(
    const std::vector<std::string>& session_ids,
    const std::vector<std::shared_ptr<Session>>& pinned) {
  const size_t n = session_ids.size();
  std::vector<ForecastResponse> out(n);
  std::vector<bool> active(n, false);
  std::map<Session*, size_t> distinct;  // address order = lock order
  for (size_t i = 0; i < n; ++i) {
    if (pinned[i] == nullptr) {
      out[i].status =
          Status::NotFound("no open session '" + session_ids[i] + "'");
      continue;
    }
    if (!distinct.emplace(pinned[i].get(), i).second) {
      out[i].status = Status::InvalidArgument(
          "duplicate session '" + session_ids[i] + "' in one batched forecast");
      continue;
    }
    active[i] = true;
  }
  // Hold every distinct session's mutex across the batched compute so
  // each response is a consistent snapshot of that session's window —
  // the same serialization a per-session Forecast gives.
  for (auto& entry : distinct) entry.first->mu.lock();

  // Group the ready sessions per (model, warm-path). Warm and windowed
  // sessions of one model take different engine entry points, so they
  // batch separately.
  std::map<std::pair<std::string, bool>, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    Session* s = pinned[i].get();
    if (!s->rings[0].full()) {
      out[i].status = Status::Unavailable(
          "session has " + std::to_string(s->rings[0].count()) + " of " +
          std::to_string(s->route.history) + " ticks buffered");
      active[i] = false;
      continue;
    }
    groups[{s->route.model, s->options.warm_state}].push_back(i);
  }

  {
    // Window packing scratch: thread-local arena, slabs recycled at the
    // batch high-water mark across ticks.
    thread_local tensor::Workspace pack_arena;
    tensor::WorkspaceScope scope(&pack_arena);
    for (auto& group : groups) {
      const bool warm = group.first.second;
      const std::vector<size_t>& idxs = group.second;
      const StreamRoute& route = pinned[idxs[0]]->route;
      const int64_t b = static_cast<int64_t>(idxs.size());

      // One grad-free batched forward per shard engine.
      Status group_status = Status::OK();
      std::vector<BatchForecastResponse> per_shard(route.engines.size());
      for (size_t k = 0; k < route.engines.size() && group_status.ok(); ++k) {
        if (warm) {
          std::vector<const train::StreamState*> states;
          states.reserve(idxs.size());
          for (size_t i : idxs) states.push_back(pinned[i]->states[k].get());
          per_shard[k] = route.engines[k]->ForecastFromStateBatch(states);
        } else {
          // Ring windows gather zero-copy: Window() is a live view of
          // ring storage and a one-member group passes that view through
          // PackBatch without a copy.
          std::vector<tensor::Tensor> windows;
          windows.reserve(idxs.size());
          for (size_t i : idxs) windows.push_back(pinned[i]->rings[k].Window());
          per_shard[k] =
              route.engines[k]->SubmitBatch(tensor::PackBatch(windows));
        }
        if (!per_shard[k].status.ok()) group_status = per_shard[k].status;
      }
      if (!group_status.ok()) {
        // Engine failure fails this group only; other groups still serve.
        for (size_t i : idxs) {
          out[i] = ForecastResponse{};
          out[i].status = group_status;
        }
        continue;
      }
      double micros = 0.0;
      for (const BatchForecastResponse& r : per_shard) {
        micros += r.compute_micros;
      }

      // Scatter the (B, T', L) shard outputs back into per-session heap
      // responses, dropping halos exactly like the sequential path.
      for (size_t j = 0; j < idxs.size(); ++j) {
        const size_t i = idxs[j];
        ForecastResponse& r = out[i];
        {
          tensor::WorkspaceBypass bypass;
          r.forecast = tensor::Tensor({route.horizon, route.num_nodes});
        }
        r.batch_size = b;
        r.compute_micros = micros;
        if (!route.sharded) {
          const tensor::Tensor& fc = per_shard[0].forecasts;  // (B, T', N)
          DYHSL_CHECK_EQ(fc.size(1), route.horizon);
          DYHSL_CHECK_EQ(fc.size(2), route.num_nodes);
          std::memcpy(
              r.forecast.data(),
              fc.data() + static_cast<int64_t>(j) * route.horizon *
                              route.num_nodes,
              static_cast<size_t>(route.horizon * route.num_nodes) *
                  sizeof(float));
        } else {
          for (size_t k = 0; k < route.engines.size(); ++k) {
            const graph::ShardSpec& shard = (*route.shards)[k];
            const tensor::Tensor& fc = per_shard[k].forecasts;  // (B, T', L)
            const int64_t local = shard.num_local();
            DYHSL_CHECK_EQ(fc.size(1), route.horizon);
            DYHSL_CHECK_EQ(fc.size(2), local);
            const int64_t owned = shard.owned_count();
            for (int64_t t = 0; t < route.horizon; ++t) {
              std::memcpy(
                  r.forecast.data() + t * route.num_nodes + shard.begin,
                  fc.data() +
                      (static_cast<int64_t>(j) * route.horizon + t) * local +
                      shard.owned_offset,
                  static_cast<size_t>(owned) * sizeof(float));
            }
          }
        }
        pinned[i]->forecasts += 1;
        forecasts_.fetch_add(1, std::memory_order_relaxed);
      }
      RecordBatch(route.model, b);
      pack_arena.Reset();
    }
  }

  for (auto it = distinct.rbegin(); it != distinct.rend(); ++it) {
    it->first->mu.unlock();
  }
  return out;
}

void SessionManager::RecordBatch(const std::string& model,
                                 int64_t batch_size) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  batch_stats_.batched_forecasts += 1;
  batch_stats_.batch_size_sum += batch_size;
  batch_stats_.batch_size_max =
      std::max(batch_stats_.batch_size_max, batch_size);
  SessionBatchStats& per_model = batch_by_model_[model];
  per_model.batched_forecasts += 1;
  per_model.batch_size_sum += batch_size;
  per_model.batch_size_max = std::max(per_model.batch_size_max, batch_size);
}

Status SessionManager::Close(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no open session '" + session_id + "'");
  }
  sessions_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

int64_t SessionManager::EvictExpired() {
  if (options_.ttl_ms <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t before = evicted_ttl_.load(std::memory_order_relaxed);
  const int64_t cutoff = NowNs() - options_.ttl_ms * 1'000'000;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->last_touch_ns.load(std::memory_order_relaxed) < cutoff) {
      it = sessions_.erase(it);
      evicted_ttl_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  return evicted_ttl_.load(std::memory_order_relaxed) - before;
}

Result<SessionStats> SessionManager::SessionInfo(
    const std::string& session_id) const {
  std::shared_ptr<Session> session;
  {
    // Deliberately not Find(): monitoring must not refresh recency and
    // keep an idle session alive forever.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no open session '" + session_id + "'");
    }
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mu);
  SessionStats stats;
  stats.model = session->route.model;
  stats.warm = session->options.warm_state;
  stats.next_tick = session->next_tick;
  stats.ticks = session->ticks;
  stats.forecasts = session->forecasts;
  stats.resyncs = session->resyncs;
  stats.rejected_ticks = session->rejected;
  stats.buffered = session->rings[0].count();
  stats.rolling_mean = static_cast<float>(session->ema_mean);
  const double var = session->ema_sq - session->ema_mean * session->ema_mean;
  stats.rolling_std = static_cast<float>(std::sqrt(var > 0.0 ? var : 0.0));
  if (session->scaler_std > 0.0f) {
    stats.drift_score =
        std::fabs(stats.rolling_mean - session->scaler_mean) /
        session->scaler_std;
  }
  return stats;
}

SessionManagerStats SessionManager::Stats() const {
  SessionManagerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.open = static_cast<int64_t>(sessions_.size());
  }
  stats.opened = opened_.load(std::memory_order_relaxed);
  stats.closed = closed_.load(std::memory_order_relaxed);
  stats.evicted_lru = evicted_lru_.load(std::memory_order_relaxed);
  stats.evicted_ttl = evicted_ttl_.load(std::memory_order_relaxed);
  stats.ticks = ticks_.load(std::memory_order_relaxed);
  stats.forecasts = forecasts_.load(std::memory_order_relaxed);
  stats.rejected_ticks = rejected_ticks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    stats.batch = batch_stats_;
    stats.batch_by_model = batch_by_model_;
  }
  return stats;
}

int64_t SessionManager::OpenSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

}  // namespace dyhsl::serve
