// Sharded, multi-model forecast routing.
//
// A ForecastRouter owns a fleet of ForecastEngines — one per registered
// (model, shard) — and presents the same Submit -> future<Response>
// surface over the *global* sensor space. For a sharded model the router
// splits an incoming (T, N, F) window by sensor range (gathering each
// shard's owned + halo columns in the shard-local id order), fans the
// slices out to the shard engines, and stitches the shard responses back
// into one globally ordered (T', N) forecast, dropping every halo column.
// Requests name the model they want ("STGCN", "dyhsl-v2", ...); a router
// hosting exactly one model also accepts an empty name.
//
// Error surfacing is per-request: a shard engine shedding load with
// kUnavailable (or failing in any other way) fails that one request's
// future with the shard's Status — other in-flight requests, and other
// shards of the same request's batch, are unaffected.
//
// Stitching happens on a small pool of router threads that wait on the
// shard futures in submission order; per-request work there is a couple
// of column copies, so the pool never becomes the bottleneck before the
// engines do.

#ifndef DYHSL_SERVE_ROUTER_H_
#define DYHSL_SERVE_ROUTER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/status.h"
#include "src/graph/shard.h"
#include "src/serve/engine.h"
#include "src/train/forecast_model.h"

namespace dyhsl::serve {

/// \brief One forecast query against a router: a scaled (T, N, F) window
/// over the *global* sensor space, plus the name of the model to serve it
/// with (optional only when a single model is registered).
struct RouterRequest {
  std::string model;
  tensor::Tensor window;
};

/// \brief Recycles fixed-size tensor buffers across requests. The router
/// allocates one (T, L, F) slice per shard per Submit; at steady load
/// that is pure allocator churn, since the slice count in flight is
/// bounded by the engine queues. Acquire() hands out a pooled buffer
/// whose deleter returns it to the free list — the pool only ever
/// heap-allocates up to the high-water mark of concurrent slices.
///
/// Thread-safe. Copies share the pool. The deleter captures the shared
/// pool state, so buffers released after the owning router is gone are
/// still returned (to a free list that then just gets destroyed).
class ScratchPool {
 public:
  explicit ScratchPool(int64_t numel);

  /// \brief A pooled tensor of `shape` (its element count must equal the
  /// pool's buffer size). Contents are uninitialized.
  tensor::Tensor Acquire(tensor::Shape shape);

  /// Buffers ever heap-allocated (the churn observable; tests assert it
  /// stays at the concurrency high-water mark, not the request count).
  int64_t allocated() const;
  /// Buffers currently in the free list.
  int64_t available() const;

 private:
  struct State {
    std::mutex mu;
    int64_t numel = 0;
    int64_t allocated = 0;
    std::vector<std::shared_ptr<float[]>> free_list;
  };
  std::shared_ptr<State> state_;
};

/// \brief Routing metadata for one registered model, resolved once per
/// streaming session instead of per request: engine pointers and shard
/// specs so a SessionManager can split ticks by shard range at Append
/// time and hit the engines' synchronous fast paths at Forecast time.
/// Pointers stay valid until ForecastRouter::Shutdown (entries are
/// immutable after registration and map nodes are stable).
struct StreamRoute {
  std::string model;
  bool sharded = false;
  int64_t num_nodes = 0;
  int64_t history = 0;
  int64_t horizon = 0;
  int64_t input_dim = 0;
  const std::vector<graph::ShardSpec>* shards = nullptr;
  std::vector<ForecastEngine*> engines;
};

/// \brief Per-engine stats snapshot, tagged with its fleet position and
/// resolved threading (workers x team as actually placed).
struct EngineStatsEntry {
  std::string model;
  int64_t shard_id = 0;  // 0 for unsharded models
  train::ShardMeta shard;
  /// Worker threads and per-worker OpenMP team the engine runs with
  /// (after any router placement override).
  int64_t num_workers = 1;
  int64_t team_size = 1;
  EngineStats stats;
};

/// \brief Aggregated fleet statistics: the router's own counters plus a
/// per-engine Snapshot() of every engine.
///
/// Consistency: all engine snapshots are taken in one pass under the
/// router lock, and each snapshot is internally consistent (engine
/// mutex), but engines keep serving while the pass walks the fleet — so
/// `total` sums counters sampled microseconds apart. The monotonic
/// counters (requests/batches/rejected) can therefore disagree with the
/// router's own `requests` by at most the number of requests in flight
/// during the pass, and `total.queue_depth` is an instant-by-instant
/// approximation while traffic is moving. The totals are exact whenever
/// the fleet is quiescent; in particular Shutdown() drains every engine,
/// so post-shutdown stats always report queue_depth == 0 and stable
/// totals — never a transient or inflated figure.
struct RouterStats {
  /// Requests accepted by the router (fanned out to engines).
  int64_t requests = 0;
  /// Requests failed before fan-out (unknown model, bad window shape).
  int64_t routing_errors = 0;
  /// Sum of every engine's counters (see consistency note above).
  EngineStats total;
  std::vector<EngineStatsEntry> engines;
};

/// \brief How the router spends the machine's cores across a model's
/// engines (shards are the natural parallel unit).
enum class Placement {
  /// Engines keep the EngineOptions they were registered with; kernels
  /// inherit the process-wide OpenMP default. The legacy single-core
  /// behavior — engines time-slice one thread pool.
  kInherit,
  /// Divide `thread_budget` evenly across a model's engines: each engine
  /// gets a budget/num_engines slice, its workers split the slice via
  /// core::ThreadBudget (workers x team <= slice). Engines then run
  /// concurrently without oversubscribing — a 2-shard fleet on 2 cores
  /// runs both shard forwards in parallel.
  kPartition,
  /// kPartition plus engine-to-core pinning: engine i's workers (and
  /// their OpenMP teams, which inherit the mask) are confined to the
  /// i-th contiguous slice of core::AvailableCores(), so shards stop
  /// migrating across each other's caches.
  kPinned,
};

/// \brief Threading knobs for the router itself (engine knobs live in
/// EngineOptions, passed per model).
struct RouterOptions {
  /// Threads stitching shard responses into global forecasts.
  int64_t num_stitchers = 2;
  /// Engine-to-core placement policy applied at AddModel /
  /// AddShardedModel time (registration order is placement order).
  Placement placement = Placement::kInherit;
  /// Threads divided among a model's engines under kPartition/kPinned;
  /// 0 = core::HardwareThreads(). Each *model* gets the full budget
  /// (models time-share the machine; shards within a model split it).
  int64_t thread_budget = 0;
};

/// \brief Hosts one ForecastEngine per (model, shard) and routes global
/// requests across the fleet. Thread-safe: Submit may be called from any
/// thread; models must be registered before the first Submit.
class ForecastRouter {
 public:
  static Result<std::unique_ptr<ForecastRouter>> Create(
      const RouterOptions& options = RouterOptions());

  /// Drains in-flight requests and shuts down every engine.
  ~ForecastRouter();

  ForecastRouter(const ForecastRouter&) = delete;
  ForecastRouter& operator=(const ForecastRouter&) = delete;

  /// \brief Registers an unsharded model under `name`: one engine serving
  /// the full task, optionally restored from `checkpoint_path`.
  Status AddModel(const std::string& name, const train::ForecastTask& task,
                  const ModelFactory& factory,
                  const std::string& checkpoint_path = "",
                  const EngineOptions& options = EngineOptions());

  /// \brief Registers a sharded model under `name`: one engine per shard
  /// of `plan`, each built from the shard-scoped task. With a non-empty
  /// `checkpoint_prefix` the shard checkpoint family is validated against
  /// the plan (ShardCheckpointSet::Validate) and each engine loads its
  /// shard's file; otherwise every shard starts from the factory's
  /// initialization.
  Status AddShardedModel(const std::string& name,
                         const train::ForecastTask& task,
                         const graph::ShardPlan& plan,
                         const ModelFactory& factory,
                         const std::string& checkpoint_prefix = "",
                         const EngineOptions& options = EngineOptions());

  /// \brief Routes one global window to the named model's engines. The
  /// future is always fulfilled; failures (unknown model, wrong shape, a
  /// shard's Status) arrive as a failed ForecastResponse::status.
  std::future<ForecastResponse> Submit(RouterRequest request);

  /// \brief Stops accepting requests, stitches everything in flight, and
  /// shuts down every engine (draining their queues). Idempotent; also
  /// run by the destructor.
  void Shutdown();

  std::vector<std::string> ModelNames() const;
  /// Engines hosted for `name` (1 for unsharded models), 0 if unknown.
  int64_t ShardCountOf(const std::string& name) const;

  /// \brief Resolves the routing metadata for `name` (or the single
  /// registered model when empty) — the once-per-session lookup the
  /// streaming path uses instead of a per-request map walk. See
  /// StreamRoute for the pointer-validity contract.
  Result<StreamRoute> RouteFor(const std::string& name) const;

  /// \brief Buffers the gather pools of `name` ever heap-allocated,
  /// summed over its shards (0 for unknown or unsharded models). Tests
  /// assert this tracks concurrency, not request count.
  int64_t ScratchAllocated(const std::string& name) const;

  /// \brief Consistent per-engine snapshots plus fleet totals.
  RouterStats Stats() const;

 private:
  struct ModelEntry {
    std::string name;
    int64_t num_nodes = 0;   // global sensor count
    int64_t history = 0;
    int64_t horizon = 0;
    int64_t input_dim = 0;
    bool sharded = false;
    /// Shard specs (one identity-like spec for unsharded models).
    std::vector<graph::ShardSpec> shards;
    std::vector<std::unique_ptr<ForecastEngine>> engines;
    /// Per-shard gather scratch pools (sharded models only): Submit
    /// acquires each request's (T, L, F) slices here instead of
    /// allocating fresh windows every request.
    std::vector<ScratchPool> slice_pools;
  };

  struct StitchJob {
    ModelEntry* entry = nullptr;
    std::vector<std::future<ForecastResponse>> shard_futures;
    std::promise<ForecastResponse> promise;
  };

  explicit ForecastRouter(const RouterOptions& options);

  /// Applies the placement policy to one engine's options: under
  /// kPartition/kPinned, engine `engine_index` of `num_engines` gets an
  /// equal thread_budget slice (workers clamped into it, team auto
  /// unless explicitly set) and, when pinned, the matching contiguous
  /// core slice. kInherit returns `base` untouched.
  EngineOptions PlaceEngineOptions(const EngineOptions& base,
                                   int64_t engine_index,
                                   int64_t num_engines) const;

  Status AddEntry(const std::string& name, ModelEntry entry);
  void StitcherLoop();
  /// Waits on the job's shard futures and fulfills its promise.
  static void Stitch(StitchJob* job);

  RouterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Registered models; pointers into the map stay valid (std::map nodes
  /// are stable) for jobs in flight.
  std::map<std::string, ModelEntry> models_;
  std::deque<StitchJob> jobs_;
  bool stopping_ = false;
  int64_t requests_ = 0;
  int64_t routing_errors_ = 0;
  std::vector<std::thread> stitchers_;
};

}  // namespace dyhsl::serve

#endif  // DYHSL_SERVE_ROUTER_H_
