#include "src/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/autograd/inference.h"
#include "src/core/check.h"
#include "src/core/logging.h"
#include "src/core/parallel.h"
#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"

namespace dyhsl::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - start).count();
}

// How fast the adaptive batch target tracks the observed queue depth.
// 0.25 reaches a sustained burst's depth within ~10 flushes while a
// single spike barely moves the target.
constexpr double kDepthEwmaWeight = 0.25;

}  // namespace

ModelFactory DyHslFactory(const models::DyHslConfig& config) {
  return [config](const train::ForecastTask& task) {
    return std::make_unique<models::DyHsl>(task, config);
  };
}

ModelFactory ZooFactory(const std::string& key,
                        const train::ZooConfig& config) {
  return [key, config](const train::ForecastTask& task) {
    return train::MakeNeuralModel(key, task, config);
  };
}

Result<std::unique_ptr<ForecastEngine>> ForecastEngine::Create(
    const train::ForecastTask& task, const ModelFactory& factory,
    const std::string& checkpoint_path, const EngineOptions& options) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("EngineOptions.max_batch must be >= 1");
  }
  if (options.max_delay_us < 0) {
    return Status::InvalidArgument("EngineOptions.max_delay_us must be >= 0");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("EngineOptions.num_workers must be >= 1");
  }
  if (options.max_queue < 0) {
    return Status::InvalidArgument("EngineOptions.max_queue must be >= 0");
  }
  if (options.team_size < 0) {
    return Status::InvalidArgument("EngineOptions.team_size must be >= 0");
  }
  for (int c : options.pin_cores) {
    if (c < 0) {
      return Status::InvalidArgument("EngineOptions.pin_cores has core id " +
                                     std::to_string(c) + " < 0");
    }
  }
  if (!factory) {
    return Status::InvalidArgument("ForecastEngine needs a model factory");
  }
  // The factory builds the model, which pre-computes its sparse structure
  // operators — the expensive part of bring-up, paid exactly once.
  std::unique_ptr<train::ForecastModel> model = factory(task);
  if (model == nullptr) {
    return Status::InvalidArgument("model factory returned null");
  }
  std::unique_ptr<ForecastEngine> engine(
      new ForecastEngine(task, std::move(model), options));
  if (!checkpoint_path.empty()) {
    auto* module = dynamic_cast<nn::Module*>(engine->model_.get());
    if (module == nullptr) {
      return Status::InvalidArgument(
          "model '" + engine->model_->name() +
          "' is not an nn::Module; cannot load " + checkpoint_path);
    }
    DYHSL_RETURN_NOT_OK(
        train::LoadCheckpoint(module, checkpoint_path, &engine->shard_meta_));
  }
  // Build the inference plan once, after the weights reached their final
  // bytes: every 2-D weight is prepacked before the first request.
  engine->EnrollPrepack();
  for (int64_t w = 0; w < options.num_workers; ++w) {
    engine->workers_.emplace_back([raw = engine.get()] { raw->WorkerLoop(); });
  }
  return engine;
}

Result<std::unique_ptr<ForecastEngine>> ForecastEngine::Create(
    const train::ForecastTask& task, const models::DyHslConfig& config,
    const std::string& checkpoint_path, const EngineOptions& options) {
  return Create(task, DyHslFactory(config), checkpoint_path, options);
}

ForecastEngine::ForecastEngine(const train::ForecastTask& task,
                               std::unique_ptr<train::ForecastModel> model,
                               const EngineOptions& options)
    : task_(task), options_(options), model_(std::move(model)) {
  stats_.effective_max_batch = options_.max_batch;
  // Capability probes, once per engine: warm-state streaming and
  // observable structure-cache counters.
  streaming_ = dynamic_cast<const train::RecurrentStreamModel*>(model_.get());
  if (const auto* dyhsl = dynamic_cast<const models::DyHsl*>(model_.get());
      dyhsl != nullptr && dyhsl->config().sparse_pattern_reuse) {
    dyhsl_view_ = dyhsl;
  }
  if (const auto* dhgnn = dynamic_cast<const baselines::Dhgnn*>(model_.get());
      dhgnn != nullptr && dhgnn->structure_reuse()) {
    dhgnn_view_ = dhgnn;
  }
  if (options_.team_size > 0) {
    worker_team_ = static_cast<int>(options_.team_size);
  } else {
    // Auto partition: the creating thread's own team budget — the
    // ConfigureParallelism default, or the enclosing TeamScope when a
    // router is placing this engine into a slice — is split across the
    // workers. One worker keeps the whole budget (legacy single-worker
    // behavior); N workers get budget/N each, never a full team apiece.
    worker_team_ = core::ThreadBudget::Partition(
                       core::TeamThreads(),
                       static_cast<int>(options_.num_workers))
                       .team_size;
  }
}

ForecastEngine::~ForecastEngine() {
  Shutdown();
  // Drop this engine's inference plan: the cache entries keep the weight
  // storage alive, so without the release a destroyed engine would pin
  // its model's weights (and their packed panels) forever.
  for (const float* ptr : prepack_ptrs_) {
    tensor::PrepackCache::Instance().Release(ptr);
  }
}

void ForecastEngine::EnrollPrepack() {
  const auto* module = dynamic_cast<const nn::Module*>(model_.get());
  if (module == nullptr) return;
  tensor::PrepackCache& cache = tensor::PrepackCache::Instance();
  // Every 2-D parameter and registered constant is a GEMM weight
  // candidate; higher-rank tensors (embeddings indexed per row, conv
  // stacks) never reach MatMul as a whole operand and are skipped.
  auto enroll = [&](const std::vector<std::pair<std::string, autograd::Variable>>&
                        named) {
    for (const auto& [name, var] : named) {
      if (!var.value().defined() || var.value().dim() != 2) continue;
      cache.Enroll(var.value());
      prepack_ptrs_.push_back(var.value().data());
    }
  };
  enroll(module->NamedParameters());
  enroll(module->NamedConstants());
}

void ForecastEngine::AccumulatePrepackDelta(
    const tensor::PrepackCache::Stats& before) {
  const tensor::PrepackCache::Stats now =
      tensor::PrepackCache::ThreadCounters();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.prepack.hits += now.hits - before.hits;
  stats_.prepack.misses += now.misses - before.misses;
}

void ForecastEngine::Shutdown() {
  // Claim the worker set under the lock so concurrent Shutdown calls
  // (or Shutdown racing the destructor) cannot double-join a thread.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    claimed.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& worker : claimed) {
    if (worker.joinable()) worker.join();
  }
}

std::future<ForecastResponse> ForecastEngine::Submit(ForecastRequest request) {
  std::promise<ForecastResponse> promise;
  std::future<ForecastResponse> future = promise.get_future();
  const tensor::Shape expected = {task_.history, task_.num_nodes,
                                  task_.input_dim};
  if (!request.window.defined() || request.window.shape() != expected) {
    ForecastResponse response;
    response.status = Status::InvalidArgument(
        "request window shape " +
        (request.window.defined() ? tensor::ShapeToString(request.window.shape())
                                  : std::string("<undefined>")) +
        " != expected " + tensor::ShapeToString(expected));
    promise.set_value(std::move(response));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ForecastResponse response;
      response.status =
          Status::InvalidArgument("ForecastEngine is shut down");
      promise.set_value(std::move(response));
      return future;
    }
    if (options_.max_queue > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
      // Admission control: shed load now rather than queueing past the
      // point where every response is late. The future still resolves —
      // callers always get a Status, never a broken promise.
      stats_.rejected += 1;
      ForecastResponse response;
      response.status = Status::Unavailable(
          "queue full (" + std::to_string(queue_.size()) + " waiting, "
          "max_queue " + std::to_string(options_.max_queue) + ")");
      promise.set_value(std::move(response));
      return future;
    }
    Pending pending;
    pending.window = std::move(request.window);
    pending.promise = std::move(promise);
    pending.enqueued = Clock::now();
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

EngineStats ForecastEngine::Snapshot() const {
  // Pack inventory first, outside mu_: prepack_ptrs_ is immutable once
  // the workers start, and StatsFor takes the cache's own lock.
  const tensor::PrepackCache::Stats inventory =
      tensor::PrepackCache::Instance().StatsFor(prepack_ptrs_);
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  for (const auto& [tid, pattern] : pattern_by_thread_) {
    snapshot.pattern.selects += pattern.selects;
    snapshot.pattern.reuses += pattern.reuses;
    snapshot.pattern.drift_reselects += pattern.drift_reselects;
    snapshot.pattern.drifted_rows += pattern.drifted_rows;
  }
  snapshot.prepack.panels = inventory.panels;
  snapshot.prepack.bytes = inventory.bytes;
  snapshot.prepack.invalidations = inventory.invalidations;
  return snapshot;
}

void ForecastEngine::SamplePatternStats() {
  if (dyhsl_view_ == nullptr && dhgnn_view_ == nullptr) return;
  // The caches are thread-local: read this thread's counters outside the
  // lock, publish the (absolute) sample under it. Snapshot() sums the
  // latest sample of every thread that ever served through this engine.
  tensor::TopKPatternCache::Stats sample;
  if (dyhsl_view_ != nullptr) {
    sample = dyhsl_view_->dhsl().PatternCacheStats();
  } else {
    sample = dhgnn_view_->StructureCacheStats();
  }
  std::lock_guard<std::mutex> lock(mu_);
  pattern_by_thread_[std::this_thread::get_id()] = sample;
}

ForecastResponse ForecastEngine::ForecastNow(const tensor::Tensor& window) {
  ForecastResponse response;
  const tensor::Shape expected = {task_.history, task_.num_nodes,
                                  task_.input_dim};
  if (!window.defined() || window.shape() != expected) {
    response.status = Status::InvalidArgument(
        "stream window shape " +
        (window.defined() ? tensor::ShapeToString(window.shape())
                          : std::string("<undefined>")) +
        " != expected " + tensor::ShapeToString(expected));
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      response.status = Status::InvalidArgument("ForecastEngine is shut down");
      return response;
    }
  }
  const Clock::time_point started = Clock::now();
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  // Same team size as the worker loop: GEMM is bit-deterministic per
  // thread count, so the fast path reproduces the queue path exactly.
  core::TeamScope team(worker_team_);
  autograd::InferenceModeGuard no_grad;
  tensor::PrepackLookupScope prepack;
  // One warm arena per calling thread — session threads get the same
  // allocation-free steady state as engine workers.
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    // Reshape shares the window's storage (it may be a live ring view) —
    // the forward only reads it.
    autograd::Variable pred =
        model_->Forward(window.Reshape({1, expected[0], expected[1],
                                        expected[2]}),
                        /*training=*/false);
    const tensor::Tensor& p = pred.value();  // (1, T', N)
    {
      tensor::WorkspaceBypass bypass;
      response.forecast = tensor::Tensor({p.size(1), p.size(2)});
    }
    std::memcpy(response.forecast.data(), p.data(),
                static_cast<size_t>(p.numel()) * sizeof(float));
  }
  workspace.Reset();
  response.batch_size = 1;
  response.compute_micros = MicrosSince(started, Clock::now());
  SamplePatternStats();
  AccumulatePrepackDelta(pp_before);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += 1;
    stats_.streamed += 1;
  }
  return response;
}

BatchForecastResponse ForecastEngine::SubmitBatch(
    const tensor::Tensor& windows) {
  BatchForecastResponse response;
  if (!windows.defined() || windows.dim() != 4 || windows.size(0) < 1 ||
      windows.size(1) != task_.history || windows.size(2) != task_.num_nodes ||
      windows.size(3) != task_.input_dim) {
    response.status = Status::InvalidArgument(
        "batch windows shape " +
        (windows.defined() ? tensor::ShapeToString(windows.shape())
                           : std::string("<undefined>")) +
        " != expected (B, " + std::to_string(task_.history) + ", " +
        std::to_string(task_.num_nodes) + ", " +
        std::to_string(task_.input_dim) + ")");
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      response.status = Status::InvalidArgument("ForecastEngine is shut down");
      return response;
    }
  }
  const int64_t b = windows.size(0);
  const Clock::time_point started = Clock::now();
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  autograd::InferenceModeGuard no_grad;
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    // The batch is already packed (possibly sharing ring storage at
    // B = 1) — one forward, no queue, no per-request repacking.
    autograd::Variable pred = model_->Forward(windows, /*training=*/false);
    const tensor::Tensor& p = pred.value();  // (B, T', N)
    DYHSL_CHECK_EQ(p.size(0), b);
    {
      tensor::WorkspaceBypass bypass;
      response.forecasts = tensor::Tensor(p.shape());
    }
    std::memcpy(response.forecasts.data(), p.data(),
                static_cast<size_t>(p.numel()) * sizeof(float));
  }
  workspace.Reset();
  response.batch_size = b;
  response.compute_micros = MicrosSince(started, Clock::now());
  SamplePatternStats();
  AccumulatePrepackDelta(pp_before);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += b;
    stats_.streamed += b;
    stats_.batched_submits += 1;
    stats_.batched_requests += b;
    stats_.batched_max = std::max(stats_.batched_max, b);
  }
  return response;
}

std::unique_ptr<train::StreamState> ForecastEngine::NewStreamState() const {
  DYHSL_CHECK(streaming_ != nullptr);
  return streaming_->MakeStreamState();
}

void ForecastEngine::AdvanceState(train::StreamState* state,
                                  const tensor::Tensor& frame) {
  DYHSL_CHECK(streaming_ != nullptr);
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    streaming_->StreamStep(state, frame);
  }
  workspace.Reset();
  AccumulatePrepackDelta(pp_before);
}

void ForecastEngine::ResyncState(train::StreamState* state,
                                 const tensor::Tensor& window) {
  DYHSL_CHECK(streaming_ != nullptr);
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    streaming_->ResyncState(state, window);
  }
  workspace.Reset();
  AccumulatePrepackDelta(pp_before);
}

ForecastResponse ForecastEngine::ForecastFromState(
    const train::StreamState& state) {
  DYHSL_CHECK(streaming_ != nullptr);
  ForecastResponse response;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      response.status = Status::InvalidArgument("ForecastEngine is shut down");
      return response;
    }
  }
  const Clock::time_point started = Clock::now();
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    // StreamForecast heap-pins its result, so it survives the Reset.
    response.forecast = streaming_->StreamForecast(state);
  }
  workspace.Reset();
  response.batch_size = 1;
  response.compute_micros = MicrosSince(started, Clock::now());
  SamplePatternStats();
  AccumulatePrepackDelta(pp_before);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += 1;
    stats_.streamed += 1;
  }
  return response;
}

void ForecastEngine::AdvanceStateBatch(
    const std::vector<train::StreamState*>& states,
    const tensor::Tensor& frames) {
  DYHSL_CHECK(streaming_ != nullptr);
  if (states.empty()) return;
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    streaming_->AdvanceStateBatch(states, frames);
  }
  workspace.Reset();
  AccumulatePrepackDelta(pp_before);
}

BatchForecastResponse ForecastEngine::ForecastFromStateBatch(
    const std::vector<const train::StreamState*>& states) {
  DYHSL_CHECK(streaming_ != nullptr);
  BatchForecastResponse response;
  if (states.empty()) {
    response.status = Status::InvalidArgument("empty stream-state batch");
    return response;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      response.status = Status::InvalidArgument("ForecastEngine is shut down");
      return response;
    }
  }
  const int64_t b = static_cast<int64_t>(states.size());
  const Clock::time_point started = Clock::now();
  const tensor::PrepackCache::Stats pp_before =
      tensor::PrepackCache::ThreadCounters();
  core::TeamScope team(worker_team_);
  tensor::PrepackLookupScope prepack;
  thread_local tensor::Workspace workspace;
  {
    tensor::WorkspaceScope scope(&workspace);
    // One stacked decoder rollout; the model's result lives in the
    // arena, so copy it into the heap-backed response before the reset.
    tensor::Tensor stacked = streaming_->ForecastFromStateBatch(states);
    DYHSL_CHECK_EQ(stacked.size(0), b);
    {
      tensor::WorkspaceBypass bypass;
      response.forecasts = tensor::Tensor(stacked.shape());
    }
    std::memcpy(response.forecasts.data(), stacked.data(),
                static_cast<size_t>(stacked.numel()) * sizeof(float));
  }
  workspace.Reset();
  response.batch_size = b;
  response.compute_micros = MicrosSince(started, Clock::now());
  SamplePatternStats();
  AccumulatePrepackDelta(pp_before);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += b;
    stats_.streamed += b;
    stats_.batched_submits += 1;
    stats_.batched_requests += b;
    stats_.batched_max = std::max(stats_.batched_max, b);
  }
  return response;
}

void ForecastEngine::WorkerLoop() {
  // Engine-to-core placement: pin before the first kernel so the lazily
  // spawned OpenMP team inherits the mask and the whole engine stays on
  // its cores. A failed pin is a performance event, not a correctness
  // one — log and serve unpinned.
  if (!options_.pin_cores.empty()) {
    Status pinned = core::PinCurrentThread(options_.pin_cores);
    if (!pinned.ok()) {
      DYHSL_LOG(Warning) << "engine worker pin failed: " << pinned.ToString();
    }
  }
  // Every kernel this worker runs — GEMM/SpMM via their explicit
  // num_threads(core::TeamThreads()) clauses, the elementwise ops via
  // this thread's OpenMP ICV — is scoped to the worker's ThreadBudget
  // slice for the lifetime of the loop.
  core::TeamScope team(worker_team_);
  // The warm per-worker arena: after the first few batches every forward
  // runs allocation-free out of recycled slabs.
  tensor::Workspace workspace;
  const auto max_delay = std::chrono::microseconds(options_.max_delay_us);
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Latency-aware dynamic batching: the flush target follows the
      // queue depth the engine has actually been seeing, so a shallow
      // queue is served the moment it arrives instead of waiting
      // max_delay_us for slots that history says will stay empty.
      const auto effective_target = [this] {
        return std::min<int64_t>(
            options_.max_batch,
            std::max<int64_t>(1, static_cast<int64_t>(
                                     std::ceil(depth_ewma_ - 1e-9))));
      };
      int64_t effective = options_.max_batch;
      if (options_.adaptive_batch) {
        depth_ewma_ =
            (1.0 - kDepthEwmaWeight) * depth_ewma_ +
            kDepthEwmaWeight * static_cast<double>(queue_.size());
        effective = effective_target();
        stats_.effective_max_batch = effective;
      }
      // Micro-batching: hold the flush until the target is reached or the
      // oldest request has aged past max_delay_us. Shutdown flushes
      // immediately.
      const Clock::time_point deadline = queue_.front().enqueued + max_delay;
      bool timed_out = false;
      while (!stopping_ && !queue_.empty() &&
             static_cast<int64_t>(queue_.size()) < effective) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
          timed_out = true;
          break;
        }
      }
      if (options_.adaptive_batch && timed_out && !queue_.empty() &&
          static_cast<int64_t>(queue_.size()) < effective) {
        // (The !empty() guard matters with several workers: a peer may
        // have drained the queue while this one slept — that is not
        // evidence traffic went shallow, just that the peer won the
        // race, so only a genuinely under-filled wait collapses.)
        // The full delay elapsed without the target filling: that is hard
        // evidence traffic has gone shallow, so collapse the estimate to
        // what actually arrived instead of letting it decay over many
        // flushes — after a burst, a lone client pays at most one delay
        // window before the engine is serving it immediately again.
        depth_ewma_ = std::min(
            depth_ewma_,
            static_cast<double>(std::max<int64_t>(
                1, static_cast<int64_t>(queue_.size()))));
        stats_.effective_max_batch = effective_target();
      }
      // Another worker may have drained the queue while this one waited
      // (wait_until releases the lock) — go back to sleep, don't flush
      // an empty batch.
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      int64_t take = std::min<int64_t>(options_.max_batch,
                                       static_cast<int64_t>(queue_.size()));
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.batches += 1;
      stats_.requests += take;
      stats_.max_batch_observed = std::max(stats_.max_batch_observed, take);
    }
    // More requests may still be waiting (queue longer than max_batch);
    // wake another worker — or ourselves on the next loop iteration.
    cv_.notify_one();
    const tensor::PrepackCache::Stats pp_before =
        tensor::PrepackCache::ThreadCounters();
    {
      tensor::PrepackLookupScope prepack;
      tensor::WorkspaceScope scope(&workspace);
      ServeBatch(&batch);
    }
    workspace.Reset();
    SamplePatternStats();
    AccumulatePrepackDelta(pp_before);
  }
}

void ForecastEngine::ServeBatch(std::vector<Pending>* batch) {
  const int64_t b = static_cast<int64_t>(batch->size());
  const Clock::time_point started = Clock::now();

  autograd::InferenceModeGuard no_grad;
  // Pack the windows into one (B, T, N, F) forward. A B = 1 flush (the
  // common case for a single-stream client) passes the request's own
  // contiguous window straight through — PackBatch reshapes it in place,
  // no batch tensor, no memcpy. Larger flushes pack into an arena-backed
  // buffer recycled by the worker's Reset().
  std::vector<tensor::Tensor> windows;
  windows.reserve(static_cast<size_t>(b));
  for (const Pending& pending : *batch) windows.push_back(pending.window);
  tensor::Tensor x = tensor::PackBatch(windows);
  autograd::Variable pred = model_->Forward(x, /*training=*/false);
  const tensor::Tensor& p = pred.value();  // (B, T', N)
  DYHSL_CHECK_EQ(p.size(0), b);
  const int64_t out_numel = p.numel() / b;
  const Clock::time_point finished = Clock::now();
  const double compute_micros = MicrosSince(started, finished);

  for (int64_t i = 0; i < b; ++i) {
    ForecastResponse response;
    {
      // Responses outlive this step: keep them off the arena so they
      // cannot pin a worker slab.
      tensor::WorkspaceBypass bypass;
      response.forecast = tensor::Tensor({p.size(1), p.size(2)});
    }
    std::memcpy(response.forecast.data(), p.data() + i * out_numel,
                static_cast<size_t>(out_numel) * sizeof(float));
    response.batch_size = b;
    response.queue_micros = MicrosSince((*batch)[i].enqueued, started);
    response.compute_micros = compute_micros;
    (*batch)[i].promise.set_value(std::move(response));
  }
}

}  // namespace dyhsl::serve
