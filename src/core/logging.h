// Minimal leveled logger used by the training pipeline and benches.

#ifndef DYHSL_CORE_LOGGING_H_
#define DYHSL_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace dyhsl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is emitted (default: Info).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DYHSL_LOG(level)                                              \
  ::dyhsl::internal::LogMessage(::dyhsl::LogLevel::k##level, __FILE__, \
                                __LINE__)

}  // namespace dyhsl

#endif  // DYHSL_CORE_LOGGING_H_
