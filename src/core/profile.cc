#include "src/core/profile.h"

#include <cstdlib>
#include <mutex>

namespace dyhsl {

RunProfile ParseRunProfile(const std::string& name) {
  if (name == "tiny") return RunProfile::kTiny;
  if (name == "full") return RunProfile::kFull;
  return RunProfile::kQuick;
}

RunProfile GetRunProfile() {
  static RunProfile profile = [] {
    const char* env = std::getenv("DYHSL_PROFILE");
    return ParseRunProfile(env == nullptr ? "quick" : env);
  }();
  return profile;
}

const char* RunProfileName(RunProfile profile) {
  switch (profile) {
    case RunProfile::kTiny:
      return "tiny";
    case RunProfile::kQuick:
      return "quick";
    case RunProfile::kFull:
      return "full";
  }
  return "quick";
}

ProfileKnobs GetProfileKnobs(RunProfile profile) {
  switch (profile) {
    case RunProfile::kTiny:
      return ProfileKnobs{/*node_scale=*/0.08, /*sim_days=*/2,
                          /*train_epochs=*/1, /*hidden_dim=*/16,
                          /*batch_size=*/8, /*max_batches_per_epoch=*/12};
    case RunProfile::kQuick:
      return ProfileKnobs{/*node_scale=*/0.12, /*sim_days=*/3,
                          /*train_epochs=*/5, /*hidden_dim=*/24,
                          /*batch_size=*/16, /*max_batches_per_epoch=*/25};
    case RunProfile::kFull:
      return ProfileKnobs{/*node_scale=*/1.0, /*sim_days=*/14,
                          /*train_epochs=*/30, /*hidden_dim=*/64,
                          /*batch_size=*/32, /*max_batches_per_epoch=*/0};
  }
  return GetProfileKnobs(RunProfile::kQuick);
}

}  // namespace dyhsl
