// OpenMP thread-count policy.
//
// The kernels in this repository operate on small-to-medium matrices where
// per-region fork/join overhead dominates past ~8 threads; benches and
// examples cap the pool unless the user set OMP_NUM_THREADS explicitly.

#ifndef DYHSL_CORE_PARALLEL_H_
#define DYHSL_CORE_PARALLEL_H_

namespace dyhsl {

/// \brief Caps OpenMP threads at min(max_threads, hardware). Respects an
/// explicit OMP_NUM_THREADS and the DYHSL_THREADS override. Returns the
/// thread count now in effect (always 1 without OpenMP).
int ConfigureParallelism(int max_threads = 8);

}  // namespace dyhsl

#endif  // DYHSL_CORE_PARALLEL_H_
