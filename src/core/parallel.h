// Thread-count policy: one machine, two kinds of parallelism.
//
// This repository runs two parallel axes that must not multiply:
//
//  * inter-engine / inter-request workers — std::threads owned by
//    serve::ForecastEngine (one per EngineOptions::num_workers) and the
//    ForecastRouter's stitcher pool;
//  * intra-op OpenMP teams — the `#pragma omp` regions inside the tensor
//    kernels (GEMM, SpMM, elementwise ops).
//
// Left to its defaults, OpenMP gives *every* thread that enters a kernel
// a full machine-sized team, so an engine with 4 workers on 4 cores runs
// 16+ live threads and throughput collapses into context switching. The
// ThreadBudget layer here makes the split explicit: a budget of `total`
// threads is partitioned into `num_workers` workers of `team_size`
// OpenMP threads each (num_workers * team_size <= total), and a worker
// scopes every kernel it calls to its slice by holding a TeamScope.
//
// The kernels are bit-deterministic per thread count, so scoping a
// worker's team never changes results — only where the machine's
// parallelism is spent.
//
// Precedence of the process-wide default (ConfigureParallelism):
//   OMP_NUM_THREADS (explicit user choice, still capped at max_threads)
//   > DYHSL_THREADS (strict positive integer; junk is ignored with a
//     logged warning)
//   > min(max_threads, hardware).
// A TeamScope overrides the default for the holding thread only.

#ifndef DYHSL_CORE_PARALLEL_H_
#define DYHSL_CORE_PARALLEL_H_

#include <atomic>
#include <vector>

#include "src/core/status.h"

namespace dyhsl {

/// \brief Sets the process-wide OpenMP thread-count default to
/// min(max_threads, hardware), honoring the OMP_NUM_THREADS and
/// DYHSL_THREADS overrides (both still capped at max_threads), and
/// disables nested parallel regions (omp_set_max_active_levels(1)) so
/// a kernel reached from inside a parallel region serializes instead of
/// forking a second level. Returns the thread count now in effect
/// (always 1 without OpenMP).
int ConfigureParallelism(int max_threads = 8);

namespace core {

/// \brief An explicit partition of the machine between inter-engine
/// workers and intra-op OpenMP teams.
struct ThreadBudget {
  /// Threads this budget may keep live at once.
  int total = 1;
  /// Inter-engine / inter-request worker threads.
  int num_workers = 1;
  /// OpenMP team size each worker scopes its kernels to.
  int team_size = 1;

  /// \brief Splits `total` threads across `num_workers` workers:
  /// workers are clamped to [1, max(1, total)], each worker's team is
  /// total / num_workers (>= 1), so num_workers * team_size <= total
  /// always holds. Leftover threads (total not divisible by workers)
  /// stay idle rather than oversubscribe.
  static ThreadBudget Partition(int total, int num_workers);
};

/// \brief Hardware threads available to *this process* — the affinity
/// mask's population on Linux (a container pinned to 2 of 64 cores
/// reports 2), std::thread::hardware_concurrency elsewhere. Always >= 1.
int HardwareThreads();

/// \brief The logical core ids this process may run on, in ascending
/// order (the affinity mask on Linux, 0..HardwareThreads()-1 elsewhere).
/// Placement policies index into this list rather than assuming cores
/// are numbered 0..n-1.
std::vector<int> AvailableCores();

/// \brief The OpenMP team size kernels on the calling thread should use:
/// the innermost active TeamScope's size, or the OpenMP default
/// (omp_get_max_threads) when no scope is held. The GEMM/SpMM entry
/// points pass this to an explicit num_threads clause, so a worker's
/// kernels can never outgrow its slice even if some library reset the
/// OpenMP ICV behind its back.
int TeamThreads();

/// \brief RAII: scopes the calling thread's kernels to an OpenMP team of
/// `team_size` (clamped to >= 1) until destruction. Sets both the
/// thread-local override consumed via TeamThreads() and the calling
/// thread's OpenMP nthreads ICV (covering pragmas without an explicit
/// num_threads clause), and pins max_active_levels to 1. Nestable; the
/// destructor restores the previous scope. Worker threads hold one for
/// their whole lifetime.
class TeamScope {
 public:
  explicit TeamScope(int team_size);
  ~TeamScope();

  TeamScope(const TeamScope&) = delete;
  TeamScope& operator=(const TeamScope&) = delete;

  int team_size() const { return team_size_; }

 private:
  int team_size_;
  int previous_override_;
  int previous_icv_;
};

/// \brief Pins the calling thread to `cores` (logical ids, e.g. from
/// AvailableCores()). OpenMP team threads are spawned lazily by the
/// thread that first enters a parallel region and inherit its affinity
/// mask, so pinning a worker before its first kernel confines its whole
/// team. Returns InvalidArgument on an empty/out-of-range list, IoError
/// if the kernel rejects the mask; a silent no-op success on platforms
/// without thread affinity.
Status PinCurrentThread(const std::vector<int>& cores);

/// \brief Concurrency introspection used by the oversubscription
/// regression tests: runs one parallel region scoped exactly the way the
/// tensor kernels scope theirs (num_threads(TeamThreads())); every team
/// member increments *live, folds the observed concurrency into *peak
/// (a process-wide high watermark when shared across probing threads),
/// spins for ~spin_micros, then decrements. Returns the team size that
/// actually ran (1 without OpenMP).
int TeamConcurrencyProbe(std::atomic<int>* live, std::atomic<int>* peak,
                         int spin_micros);

}  // namespace core
}  // namespace dyhsl

#endif  // DYHSL_CORE_PARALLEL_H_
