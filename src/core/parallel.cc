#include "src/core/parallel.h"

#include <algorithm>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dyhsl {

void ConfigureParallelism(int max_threads) {
#ifdef _OPENMP
  if (std::getenv("OMP_NUM_THREADS") != nullptr) return;  // user decided
  if (const char* env = std::getenv("DYHSL_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) {
      omp_set_num_threads(n);
      return;
    }
  }
  omp_set_num_threads(std::min(max_threads, omp_get_num_procs()));
#else
  (void)max_threads;
#endif
}

}  // namespace dyhsl
