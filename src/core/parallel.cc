#include "src/core/parallel.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <thread>

#include "src/core/logging.h"

#ifdef _OPENMP
#include <omp.h>
#endif

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dyhsl {
namespace {

// Strictly parses a positive thread count: optional leading whitespace,
// digits, end of string. Returns 0 (never a valid count) for anything
// else — "4abc", "0", "-2", "", overflow.
int ParseThreadCount(const char* text) {
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (errno == ERANGE || value <= 0 || value > INT_MAX) return 0;
  return static_cast<int>(value);
}

}  // namespace

int ConfigureParallelism(int max_threads) {
  max_threads = std::max(1, max_threads);
#ifdef _OPENMP
  // Single-level parallelism: a kernel reached from inside a parallel
  // region (e.g. a future refactor putting engine workers themselves in
  // an OpenMP team) serializes instead of forking teams-of-teams.
  omp_set_max_active_levels(1);
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    // The user chose a count explicitly — respect it, but the caller's
    // documented cap still applies (benches and tests pass the cap
    // precisely so a 64-core box does not drown small kernels in
    // fork/join overhead).
    int n = std::min(max_threads, omp_get_max_threads());
    omp_set_num_threads(n);
    return n;
  }
  if (const char* env = std::getenv("DYHSL_THREADS")) {
    int n = ParseThreadCount(env);
    if (n == 0) {
      DYHSL_LOG(Warning) << "ignoring DYHSL_THREADS='" << env
                         << "' (expected a positive integer); falling back "
                            "to the default thread policy";
    } else {
      n = std::min(n, max_threads);
      omp_set_num_threads(n);
      return n;
    }
  }
  int n = std::min(max_threads, omp_get_num_procs());
  n = std::max(1, n);
  omp_set_num_threads(n);
  return n;
#else
  return 1;
#endif
}

namespace core {
namespace {

// The innermost TeamScope's size for this thread; 0 = no scope active.
thread_local int tls_team_override = 0;

}  // namespace

ThreadBudget ThreadBudget::Partition(int total, int num_workers) {
  ThreadBudget budget;
  budget.total = std::max(1, total);
  budget.num_workers = std::min(std::max(1, num_workers), budget.total);
  budget.team_size = budget.total / budget.num_workers;
  return budget;
}

int HardwareThreads() {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

std::vector<int> AvailableCores() {
  std::vector<int> cores;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0 && CPU_COUNT(&set) > 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cores.push_back(c);
    }
    return cores;
  }
#endif
  const int n = HardwareThreads();
  cores.reserve(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) cores.push_back(c);
  return cores;
}

int TeamThreads() {
  if (tls_team_override > 0) return tls_team_override;
#ifdef _OPENMP
  return std::max(1, omp_get_max_threads());
#else
  return 1;
#endif
}

TeamScope::TeamScope(int team_size)
    : team_size_(std::max(1, team_size)),
      previous_override_(tls_team_override) {
  tls_team_override = team_size_;
#ifdef _OPENMP
  // Also set this thread's OpenMP ICV so pragmas *without* an explicit
  // num_threads clause (elementwise ops, vecmath) stay inside the slice.
  // omp_set_num_threads only affects the calling thread's data
  // environment, so concurrent workers' scopes never interfere.
  previous_icv_ = omp_get_max_threads();
  omp_set_num_threads(team_size_);
  omp_set_max_active_levels(1);
#else
  previous_icv_ = 1;
#endif
}

TeamScope::~TeamScope() {
  tls_team_override = previous_override_;
#ifdef _OPENMP
  omp_set_num_threads(previous_icv_);
#endif
}

Status PinCurrentThread(const std::vector<int>& cores) {
  if (cores.empty()) {
    return Status::InvalidArgument("PinCurrentThread needs >= 1 core");
  }
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cores) {
    if (c < 0 || c >= CPU_SETSIZE) {
      return Status::InvalidArgument("core id " + std::to_string(c) +
                                     " out of range");
    }
    CPU_SET(c, &set);
  }
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    return Status::IoError("pthread_setaffinity_np failed (errno " +
                           std::to_string(rc) + ")");
  }
#endif
  // Platforms without thread affinity: placement degrades to a no-op and
  // the ThreadBudget partition alone prevents oversubscription.
  return Status::OK();
}

int TeamConcurrencyProbe(std::atomic<int>* live, std::atomic<int>* peak,
                         int spin_micros) {
  const int team = TeamThreads();
  (void)team;  // consumed only by the pragma; unused without OpenMP
  std::atomic<int> ran{0};
#pragma omp parallel num_threads(team)
  {
    const int now = live->fetch_add(1, std::memory_order_acq_rel) + 1;
    int prev = peak->load(std::memory_order_relaxed);
    while (now > prev &&
           !peak->compare_exchange_weak(prev, now, std::memory_order_acq_rel)) {
    }
    ran.fetch_add(1, std::memory_order_relaxed);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(spin_micros);
    while (std::chrono::steady_clock::now() < until) {
    }
    live->fetch_sub(1, std::memory_order_acq_rel);
  }
  return std::max(1, ran.load(std::memory_order_relaxed));
}

}  // namespace core
}  // namespace dyhsl
