#include "src/core/parallel.h"

#include <algorithm>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace dyhsl {

int ConfigureParallelism(int max_threads) {
#ifdef _OPENMP
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    return omp_get_max_threads();  // user decided
  }
  if (const char* env = std::getenv("DYHSL_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) {
      omp_set_num_threads(n);
      return n;
    }
  }
  int n = std::min(max_threads, omp_get_num_procs());
  omp_set_num_threads(n);
  return n;
#else
  (void)max_threads;
  return 1;
#endif
}

}  // namespace dyhsl
