// Deterministic pseudo-random number generation.
//
// All stochastic components (data simulation, weight init, dropout, batch
// shuffling) draw from an explicitly seeded Rng so every experiment in the
// benches is reproducible bit-for-bit on one machine.

#ifndef DYHSL_CORE_RNG_H_
#define DYHSL_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dyhsl {

/// \brief SplitMix64-based generator with Gaussian and integer helpers.
///
/// SplitMix64 passes BigCrush, is trivially seedable, and two generators
/// seeded differently are independent for our purposes. Not thread-safe;
/// create one per thread (see Split()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// \brief Next raw 64-bit value.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// \brief Standard normal via Box-Muller (cached pair).
  float Gaussian();

  /// \brief Normal with the given mean / standard deviation.
  float Gaussian(float mean, float stddev) {
    return mean + stddev * Gaussian();
  }

  /// \brief Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Derives an independent child generator (for worker threads).
  Rng Split() { return Rng(NextUint64() ^ 0xA02BDBF7BB3C0A7ULL); }

  /// \brief Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace dyhsl

#endif  // DYHSL_CORE_RNG_H_
