#include "src/core/status.h"

#include <cstdio>
#include <cstdlib>

namespace dyhsl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortWithStatus(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dyhsl
