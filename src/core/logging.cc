#include "src/core/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dyhsl {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  using Clock = std::chrono::system_clock;
  auto now = Clock::to_time_t(Clock::now());
  struct tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %s\n", LevelTag(level_), ts,
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace dyhsl
