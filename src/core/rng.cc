#include "src/core/rng.h"

#include <cmath>

#include "src/core/check.h"

namespace dyhsl {

uint64_t Rng::NextBelow(uint64_t n) {
  DYHSL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

float Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = static_cast<float>(radius * std::sin(theta));
  has_cached_gaussian_ = true;
  return static_cast<float>(radius * std::cos(theta));
}

}  // namespace dyhsl
