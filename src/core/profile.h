// Run profiles scale every experiment between smoke-test and paper scale.
//
// The environment variable DYHSL_PROFILE selects "tiny", "quick" (default)
// or "full". Benches and examples read the profile once at startup; the
// profile controls dataset size, hidden dimensions and epoch counts so the
// whole bench suite finishes on a laptop CPU while "full" approaches the
// paper's configuration.

#ifndef DYHSL_CORE_PROFILE_H_
#define DYHSL_CORE_PROFILE_H_

#include <string>

namespace dyhsl {

enum class RunProfile : int { kTiny = 0, kQuick = 1, kFull = 2 };

/// \brief Parses a profile name; unknown names fall back to kQuick.
RunProfile ParseRunProfile(const std::string& name);

/// \brief Reads DYHSL_PROFILE from the environment (cached after first call).
RunProfile GetRunProfile();

/// \brief "tiny" / "quick" / "full".
const char* RunProfileName(RunProfile profile);

/// \brief Multiplicative knobs derived from a profile.
struct ProfileKnobs {
  /// Fraction of the paper's node count retained by synthetic datasets.
  double node_scale;
  /// Number of simulated days of 5-minute traffic.
  int sim_days;
  /// Training epochs for neural models in experiment benches.
  int train_epochs;
  /// Hidden dimension used by experiment benches (paper: 64).
  int hidden_dim;
  /// Mini-batch size (paper: 32).
  int batch_size;
  /// Cap on training batches per epoch (0 = no cap).
  int max_batches_per_epoch;
};

/// \brief Returns the knob set for a profile.
ProfileKnobs GetProfileKnobs(RunProfile profile);

}  // namespace dyhsl

#endif  // DYHSL_CORE_PROFILE_H_
