// CHECK macros for programmer-error invariants (glog style, always on).
//
// These abort the process with a source location; they are for conditions
// that indicate a bug in this library, never for user input (which is
// reported through Status, see core/status.h).

#ifndef DYHSL_CORE_CHECK_H_
#define DYHSL_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dyhsl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& extra) {
  std::fprintf(stderr, "%s:%d: DYHSL_CHECK failed: %s %s\n", file, line,
               condition, extra.c_str());
  std::abort();
}

template <typename A, typename B>
std::string DescribeBinary(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace dyhsl::internal

#define DYHSL_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dyhsl::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (false)

#define DYHSL_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dyhsl::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                  \
  } while (false)

#define DYHSL_CHECK_OP_(a, b, op)                                      \
  do {                                                                 \
    auto&& _va = (a);                                                  \
    auto&& _vb = (b);                                                  \
    if (!(_va op _vb)) {                                               \
      ::dyhsl::internal::CheckFailed(                                  \
          __FILE__, __LINE__, #a " " #op " " #b,                       \
          ::dyhsl::internal::DescribeBinary(_va, _vb));                \
    }                                                                  \
  } while (false)

#define DYHSL_CHECK_EQ(a, b) DYHSL_CHECK_OP_(a, b, ==)
#define DYHSL_CHECK_NE(a, b) DYHSL_CHECK_OP_(a, b, !=)
#define DYHSL_CHECK_LT(a, b) DYHSL_CHECK_OP_(a, b, <)
#define DYHSL_CHECK_LE(a, b) DYHSL_CHECK_OP_(a, b, <=)
#define DYHSL_CHECK_GT(a, b) DYHSL_CHECK_OP_(a, b, >)
#define DYHSL_CHECK_GE(a, b) DYHSL_CHECK_OP_(a, b, >=)

/// Aborts if a Status-returning expression fails. For tests and tools.
#define DYHSL_CHECK_OK(expr)                                           \
  do {                                                                 \
    ::dyhsl::Status _st = (expr);                                      \
    DYHSL_CHECK_MSG(_st.ok(), _st.ToString());                         \
  } while (false)

#endif  // DYHSL_CORE_CHECK_H_
