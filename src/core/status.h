// Status / Result<T> error handling in the Arrow / RocksDB style.
//
// Library code never throws; recoverable errors are returned as Status (or
// Result<T> when a value is produced), and programmer errors abort through
// the DYHSL_CHECK macros in core/check.h.

#ifndef DYHSL_CORE_STATUS_H_
#define DYHSL_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dyhsl {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  /// Transient overload: the caller may retry later (e.g. a serving queue
  /// at its admission limit).
  kUnavailable = 8,
};

/// \brief Returns a human-readable name for a StatusCode ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a produced value.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation) and are annotated [[nodiscard]] so callers cannot silently
/// drop failures.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or a failure Status.
///
/// Mirrors arrow::Result. Accessing the value of a failed Result aborts, so
/// callers must test ok() (or use DYHSL_ASSIGN_OR_ABORT in tests/tools).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}                 // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {}          // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) const {
    if (!ok()) return alternative;
    return std::get<T>(repr_);
  }

 private:
  void AbortIfError() const;
  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortWithStatus(std::get<Status>(repr_));
}

/// \brief Propagates a non-OK Status from the current function.
#define DYHSL_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::dyhsl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace dyhsl

#endif  // DYHSL_CORE_STATUS_H_
