#include "src/hypergraph/hypergraph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/core/check.h"

namespace dyhsl::hypergraph {

Hypergraph Hypergraph::FromCommunities(const std::vector<int64_t>& labels) {
  DYHSL_CHECK(!labels.empty());
  // Compact labels to [0, E).
  std::unordered_map<int64_t, int64_t> remap;
  for (int64_t l : labels) {
    if (remap.find(l) == remap.end()) {
      int64_t next = static_cast<int64_t>(remap.size());
      remap[l] = next;
    }
  }
  int64_t num_nodes = static_cast<int64_t>(labels.size());
  int64_t num_edges = static_cast<int64_t>(remap.size());
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(labels.size());
  for (int64_t v = 0; v < num_nodes; ++v) {
    triplets.push_back({v, remap[labels[v]], 1.0f});
  }
  return Hypergraph(
      num_nodes, num_edges,
      tensor::CsrMatrix::FromTriplets(num_nodes, num_edges,
                                      std::move(triplets)));
}

Hypergraph Hypergraph::FromKMeans(const tensor::Tensor& features,
                                  int64_t num_clusters, int64_t iterations,
                                  Rng* rng) {
  std::vector<int64_t> labels =
      KMeansLabels(features, num_clusters, iterations, rng);
  return FromCommunities(labels);
}

namespace {

// Weighted degrees of every hyperedge (column sums) and node (row sums)
// of an incidence matrix. Zero degrees are legal — empty hyperedges and
// isolated nodes simply stay disconnected — so every 1/degree scaling
// below guards on degree > 0 rather than dividing blindly.
void IncidenceDegrees(const tensor::CsrMatrix& incidence,
                      std::vector<double>* node_degree,
                      std::vector<double>* edge_degree) {
  node_degree->assign(incidence.rows(), 0.0);
  edge_degree->assign(incidence.cols(), 0.0);
  const auto& rp = incidence.row_ptr();
  const auto& ci = incidence.col_idx();
  const auto& vals = incidence.values();
  for (int64_t v = 0; v < incidence.rows(); ++v) {
    for (int64_t k = rp[v]; k < rp[v + 1]; ++k) {
      (*edge_degree)[ci[k]] += vals[k];
      (*node_degree)[v] += vals[k];
    }
  }
}

}  // namespace

autograd::SparseConstant Hypergraph::NormalizedOperator() const {
  // G = D_v^-1 Λ D_e^-1 Λ^T, assembled sparsely through edge membership.
  std::vector<double> edge_degree;
  std::vector<double> node_degree;
  IncidenceDegrees(incidence_, &node_degree, &edge_degree);
  const auto& rp = incidence_.row_ptr();
  const auto& ci = incidence_.col_idx();
  const auto& vals = incidence_.values();
  // Members per edge.
  std::vector<std::vector<std::pair<int64_t, float>>> members(num_edges_);
  for (int64_t v = 0; v < num_nodes_; ++v) {
    for (int64_t k = rp[v]; k < rp[v + 1]; ++k) {
      members[ci[k]].push_back({v, vals[k]});
    }
  }
  std::vector<tensor::Triplet> triplets;
  for (int64_t e = 0; e < num_edges_; ++e) {
    // Empty hyperedge: no members, nothing to propagate (and no 1/0).
    if (edge_degree[e] <= 0.0) continue;
    float inv_edge = static_cast<float>(1.0 / edge_degree[e]);
    for (const auto& [u, wu] : members[e]) {
      // Isolated-by-weight node: skip, matching RowNormalized's contract
      // of leaving zero rows zero.
      if (node_degree[u] <= 0.0) continue;
      float inv_node = static_cast<float>(1.0 / node_degree[u]);
      for (const auto& [v, wv] : members[e]) {
        triplets.push_back({u, v, wu * wv * inv_edge * inv_node});
      }
    }
  }
  return autograd::SparseConstant(tensor::CsrMatrix::FromTriplets(
      num_nodes_, num_nodes_, std::move(triplets)));
}

FactoredIncidence Hypergraph::FactoredOperator() const {
  std::vector<double> edge_degree;
  std::vector<double> node_degree;
  IncidenceDegrees(incidence_, &node_degree, &edge_degree);
  const auto& rp = incidence_.row_ptr();
  const auto& ci = incidence_.col_idx();
  const auto& vals = incidence_.values();
  std::vector<tensor::Triplet> to_edge;    // D_e^-1 Λ^T  (E x N)
  std::vector<tensor::Triplet> to_node;    // D_v^-1 Λ    (N x E)
  to_edge.reserve(vals.size());
  to_node.reserve(vals.size());
  for (int64_t v = 0; v < num_nodes_; ++v) {
    for (int64_t k = rp[v]; k < rp[v + 1]; ++k) {
      int64_t e = ci[k];
      if (edge_degree[e] > 0.0) {
        to_edge.push_back(
            {e, v, static_cast<float>(vals[k] / edge_degree[e])});
      }
      if (node_degree[v] > 0.0) {
        to_node.push_back(
            {v, e, static_cast<float>(vals[k] / node_degree[v])});
      }
    }
  }
  FactoredIncidence factored;
  factored.node_to_edge = autograd::SparseConstant(
      tensor::CsrMatrix::FromTriplets(num_edges_, num_nodes_,
                                      std::move(to_edge)));
  factored.edge_to_node = autograd::SparseConstant(
      tensor::CsrMatrix::FromTriplets(num_nodes_, num_edges_,
                                      std::move(to_node)));
  return factored;
}

Hypergraph Hypergraph::Induced(const std::vector<int64_t>& nodes) const {
  const auto& rp = incidence_.row_ptr();
  const auto& ci = incidence_.col_idx();
  const auto& vals = incidence_.values();
  std::vector<tensor::Triplet> triplets;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t g = nodes[i];
    DYHSL_CHECK_MSG(g >= 0 && g < num_nodes_,
                    "Hypergraph::Induced node id out of range");
    for (int64_t k = rp[g]; k < rp[g + 1]; ++k) {
      triplets.push_back({static_cast<int64_t>(i), ci[k], vals[k]});
    }
  }
  const int64_t local_nodes = static_cast<int64_t>(nodes.size());
  return Hypergraph(local_nodes, num_edges_,
                    tensor::CsrMatrix::FromTriplets(local_nodes, num_edges_,
                                                    std::move(triplets)));
}

std::vector<int64_t> KMeansLabels(const tensor::Tensor& points,
                                  int64_t num_clusters, int64_t iterations,
                                  Rng* rng) {
  DYHSL_CHECK_EQ(points.dim(), 2);
  int64_t rows = points.size(0);
  int64_t dim = points.size(1);
  DYHSL_CHECK_GE(rows, num_clusters);
  const float* p = points.data();

  // Initialize centroids from distinct random rows.
  std::vector<int64_t> perm(rows);
  for (int64_t i = 0; i < rows; ++i) perm[i] = i;
  rng->Shuffle(&perm);
  std::vector<float> centroids(num_clusters * dim);
  for (int64_t c = 0; c < num_clusters; ++c) {
    std::copy(p + perm[c] * dim, p + (perm[c] + 1) * dim,
              centroids.begin() + c * dim);
  }

  std::vector<int64_t> labels(rows, 0);
  for (int64_t iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (int64_t i = 0; i < rows; ++i) {
      float best = std::numeric_limits<float>::infinity();
      int64_t best_c = 0;
      for (int64_t c = 0; c < num_clusters; ++c) {
        float d2 = 0.0f;
        for (int64_t k = 0; k < dim; ++k) {
          float diff = p[i * dim + k] - centroids[c * dim + k];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      labels[i] = best_c;
    }
    // Update.
    std::vector<double> sums(num_clusters * dim, 0.0);
    std::vector<int64_t> counts(num_clusters, 0);
    for (int64_t i = 0; i < rows; ++i) {
      counts[labels[i]] += 1;
      for (int64_t k = 0; k < dim; ++k) {
        sums[labels[i] * dim + k] += p[i * dim + k];
      }
    }
    for (int64_t c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        int64_t r = static_cast<int64_t>(rng->NextBelow(rows));
        std::copy(p + r * dim, p + (r + 1) * dim,
                  centroids.begin() + c * dim);
        continue;
      }
      for (int64_t k = 0; k < dim; ++k) {
        centroids[c * dim + k] =
            static_cast<float>(sums[c * dim + k] / counts[c]);
      }
    }
  }
  return labels;
}

}  // namespace dyhsl::hypergraph
