// Static hypergraph structures and HGNN-style convolution operators.
//
// DyHSL itself *learns* a dense incidence matrix inside the model
// (src/models/dhsl_block.h); this module provides the predefined-hypergraph
// machinery needed by the HGC-RNN / DSTHGCN-style baselines and by analysis
// tools: incidence construction from community labels or clustering, and
// the normalized two-step propagation operator
//
//   G = D_v^{-1} Λ D_e^{-1} Λ^T
//
// so hypergraph convolution reduces to SpMM(G, X) W.

#ifndef DYHSL_HYPERGRAPH_HYPERGRAPH_H_
#define DYHSL_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/autograd/sparse.h"
#include "src/core/rng.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace dyhsl::hypergraph {

/// \brief The two-step factorization of the propagation operator
/// G = D_v⁻¹ Λ D_e⁻¹ Λᵀ: apply as edge_to_node * (node_to_edge * X).
/// O(nnz(Λ) · d) per product versus O(Σ_e |e|² · d) for the materialized
/// G — for dense districts (|e| ~ N/E nodes per hyperedge) the factored
/// form is what keeps hypergraph convolution sparse at scale.
struct FactoredIncidence {
  /// D_e⁻¹ Λᵀ, (num_edges x num_nodes): average node features per edge.
  autograd::SparseConstant node_to_edge;
  /// D_v⁻¹ Λ, (num_nodes x num_edges): average edge features per node.
  autograd::SparseConstant edge_to_node;
};

/// \brief A hypergraph as a sparse node x hyperedge incidence matrix.
class Hypergraph {
 public:
  Hypergraph() = default;
  Hypergraph(int64_t num_nodes, int64_t num_edges,
             tensor::CsrMatrix incidence)
      : num_nodes_(num_nodes),
        num_edges_(num_edges),
        incidence_(std::move(incidence)) {}

  /// \brief One hyperedge per distinct label; node v joins hyperedge
  /// labels[v]. This encodes the paper's Fig. 1 intuition: districts
  /// (residential / business areas) act as static hyperedges.
  static Hypergraph FromCommunities(const std::vector<int64_t>& labels);

  /// \brief Builds hyperedges by k-means clustering of node features
  /// (R x d): one hyperedge per cluster (the DHGNN construction).
  static Hypergraph FromKMeans(const tensor::Tensor& features,
                               int64_t num_clusters, int64_t iterations,
                               Rng* rng);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }
  const tensor::CsrMatrix& incidence() const { return incidence_; }

  /// \brief Normalized propagation operator D_v^-1 Λ D_e^-1 Λ^T as a
  /// reusable sparse constant (num_nodes x num_nodes). Degenerate inputs
  /// are handled like CsrMatrix::RowNormalized handles zero rows: empty
  /// hyperedges and zero-degree (isolated) nodes contribute nothing —
  /// their rows stay empty instead of dividing by zero.
  autograd::SparseConstant NormalizedOperator() const;

  /// \brief The same propagation split into its two sparse factors (see
  /// FactoredIncidence): cheaper than the materialized product whenever
  /// hyperedges are large, and exactly equal to it in exact arithmetic.
  /// The same zero-degree guards apply.
  FactoredIncidence FactoredOperator() const;

  /// \brief Sub-hypergraph induced on `nodes` (global node ids, which
  /// become local ids 0..|nodes|-1 in order): incidence rows are restricted
  /// to the kept nodes while every hyperedge id survives, so hyperedges
  /// whose members all fall outside the shard become empty — and the
  /// zero-degree guards of NormalizedOperator / FactoredOperator make
  /// empty hyperedges propagate nothing rather than divide by zero.
  /// Note the label-derived baselines (HGC-RNN) don't need this: their
  /// shard models rebuild FromCommunities over ShardTask's gathered
  /// district labels, which induces the same structure minus the empty
  /// edges. Induced is for hypergraphs that exist only as incidence
  /// (k-means/kNN-built, or externally supplied) where hyperedge ids
  /// must stay aligned across shards.
  Hypergraph Induced(const std::vector<int64_t>& nodes) const;

 private:
  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  tensor::CsrMatrix incidence_;  // (num_nodes, num_edges)
};

/// \brief K-means over rows of `points` (R x d); returns cluster labels.
/// Deterministic given the rng. Empty clusters are re-seeded randomly.
std::vector<int64_t> KMeansLabels(const tensor::Tensor& points,
                                  int64_t num_clusters, int64_t iterations,
                                  Rng* rng);

}  // namespace dyhsl::hypergraph

#endif  // DYHSL_HYPERGRAPH_HYPERGRAPH_H_
