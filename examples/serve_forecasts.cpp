// End-to-end serving flow: train a small DyHSL forecaster, checkpoint it,
// bring up a ForecastEngine from the checkpoint, and serve concurrent
// forecast queries through the micro-batching queue.
//
//   $ ./build/example_serve_forecasts
//
// Environment: DYHSL_PROFILE=tiny|quick|full scales dataset and schedule.

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/serve/engine.h"
#include "src/train/checkpoint.h"
#include "src/train/trainer.h"

int main() {
  using namespace dyhsl;
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  // 1. Data + task: a PEMS08-like network, as in the quickstart.
  data::DatasetSpec spec =
      data::DatasetSpec::Pems08Like(knobs.node_scale, knobs.sim_days);
  data::TrafficDataset dataset = data::TrafficDataset::Generate(spec);
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  std::printf("dataset %s: %lld sensors, %lld steps\n",
              dataset.name().c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_steps()));

  // 2. Train briefly and checkpoint — the offline half of the pipeline.
  models::DyHslConfig config;
  config.hidden_dim = knobs.hidden_dim;
  config.prior_layers = 2;
  config.mhce_layers = 1;
  config.num_hyperedges = 8;
  models::DyHsl model(task, config);
  train::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  tc.learning_rate = 2e-3f;
  train::TrainModel(&model, dataset, tc);
  const std::string ckpt = "serve_demo.ckpt";
  Status saved = train::SaveCheckpoint(model, ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed %lld parameters to %s\n",
              static_cast<long long>(model.ParameterCount()), ckpt.c_str());

  // 3. Serving side: one engine, built once from the checkpoint. The
  //    model construction pre-computes every pooling scale's temporal
  //    operator; workers keep warm arenas.
  serve::EngineOptions options;
  options.max_batch = 8;
  options.max_delay_us = 2000;
  auto created =
      serve::ForecastEngine::Create(task, config, ckpt, options);
  if (!created.ok()) {
    std::fprintf(stderr, "engine bring-up failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(created).ValueOrDie();
  std::printf("engine up: max_batch=%lld max_delay_us=%lld\n",
              static_cast<long long>(options.max_batch),
              static_cast<long long>(options.max_delay_us));

  // 4. Concurrent queries: one window per test position, all in flight
  //    at once; the queue packs them into shared forwards.
  const int64_t kQueries = 6;
  std::vector<std::future<serve::ForecastResponse>> futures;
  int64_t start = dataset.test_range().begin;
  for (int64_t q = 0; q < kQueries; ++q) {
    futures.push_back(engine->Submit(
        serve::ForecastRequest{dataset.MakeInput(start + q)}));
  }
  for (int64_t q = 0; q < kQueries; ++q) {
    serve::ForecastResponse response = futures[q].get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query %lld failed: %s\n", static_cast<long long>(q),
                   response.status.ToString().c_str());
      return 1;
    }
    std::printf(
        "query %lld: batch=%lld queue %.0f us compute %.0f us; sensor 0 "
        "next hour:",
        static_cast<long long>(q), static_cast<long long>(response.batch_size),
        response.queue_micros, response.compute_micros);
    for (int64_t t = 0; t < response.forecast.size(0); t += 3) {
      std::printf(" %6.1f", response.forecast.At({t, 0}));
    }
    std::printf("\n");
  }
  serve::EngineStats stats = engine->Snapshot();
  std::printf("served %lld requests in %lld batches (largest %lld)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.max_batch_observed));
  std::remove(ckpt.c_str());
  return 0;
}
