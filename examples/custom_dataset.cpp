// Using the library with your own data: exports a simulated series to CSV
// (stand-in for a real PEMS export), reads it back through data::LoadCsv,
// assembles a ForecastTask manually, and trains a compact DyHSL on it.
// This is the adoption path for users with real loop-detector data.

#include <cstdio>
#include <string>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/models/dyhsl.h"
#include "src/train/trainer.h"

int main() {
  using namespace dyhsl;
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  // --- Step 1: pretend this CSV came from your own sensor network. ------
  data::DatasetSpec source =
      data::DatasetSpec::Pems08Like(knobs.node_scale, knobs.sim_days);
  data::TrafficDataset original = data::TrafficDataset::Generate(source);
  const std::string csv_path = "my_traffic_export.csv";
  Status save = data::SaveCsv(original.traffic().flow, csv_path);
  if (!save.ok()) {
    std::fprintf(stderr, "export failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld steps x %lld sensors)\n", csv_path.c_str(),
              static_cast<long long>(original.num_steps()),
              static_cast<long long>(original.num_nodes()));

  // --- Step 2: load it back as an external user would. ------------------
  Result<tensor::Tensor> loaded = data::LoadCsv(csv_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  tensor::Tensor series = loaded.ValueOrDie();
  std::printf("loaded series %s\n",
              tensor::ShapeToString(series.shape()).c_str());

  // --- Step 3: wire a ForecastTask from your own graph + statistics. ----
  // Here we reuse the generated road graph; with real data you would build
  // graph::Graph from your sensor adjacency list.
  train::ForecastTask task = train::ForecastTask::FromDataset(original);

  models::DyHslConfig cfg;
  cfg.hidden_dim = knobs.hidden_dim;
  cfg.prior_layers = 2;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 8;
  cfg.window_sizes = {1, 3, 12};
  models::DyHsl model(task, cfg);

  train::TrainConfig tc;
  tc.epochs = knobs.train_epochs;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  train::TrainResult tr = train::TrainModel(&model, original, tc);
  std::printf("trained: final masked-MAE loss %.3f\n", tr.final_train_loss);

  train::EvalResult ev = train::EvaluateModel(
      &model, original, original.test_range(), tc.batch_size, 16);
  std::printf("held-out: %s\n", ev.overall.ToString().c_str());
  std::remove(csv_path.c_str());
  return 0;
}
