// Multi-scale analysis: inspects what the MHCE module (paper IV-D) learns.
// Trains DyHSL, then reports (1) the softmax fusion weights over the six
// temporal scales (Eq. 14) and (2) how the learned hypergraph incidence
// drifts across the 12 window steps (the paper's Fig. 7 narrative),
// correlating hyperedge membership with the simulator's latent districts.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/train/trainer.h"

int main() {
  using namespace dyhsl;
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  data::DatasetSpec spec =
      data::DatasetSpec::Pems08Like(knobs.node_scale, knobs.sim_days);
  data::TrafficDataset ds = data::TrafficDataset::Generate(spec);
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);

  models::DyHslConfig cfg;
  cfg.hidden_dim = knobs.hidden_dim;
  cfg.prior_layers = 3;
  cfg.mhce_layers = 2;
  cfg.num_hyperedges = 8;
  models::DyHsl model(task, cfg);

  train::TrainConfig tc;
  tc.epochs = knobs.train_epochs;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  tc.learning_rate = 2e-3f;
  train::TrainModel(&model, ds, tc);

  // (1) Scale fusion weights (Eq. 14).
  std::printf("Learned scale-fusion weights (window size eps -> weight):\n");
  std::vector<float> weights = model.ScaleWeights();
  for (size_t j = 0; j < weights.size(); ++j) {
    std::printf("  eps=%-3lld %.3f  %s\n",
                static_cast<long long>(cfg.window_sizes[j]), weights[j],
                std::string(static_cast<int>(weights[j] * 60), '#').c_str());
  }

  // (2) Incidence drift and district alignment.
  data::BatchIterator it(&ds,
                         {ds.test_range().begin, ds.test_range().begin + 1},
                         1, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  tensor::Tensor inc = model.IncidenceFor(batch.x);  // (1, T*N, I)
  int64_t n = ds.num_nodes();
  int64_t edges = cfg.num_hyperedges;

  // Drift between consecutive steps.
  std::printf("\nMean |dLambda| between consecutive steps (dynamics of the\n"
              "learned structure; flat = static, spiky = event response):\n");
  for (int64_t t = 1; t < task.history; ++t) {
    double drift = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      for (int64_t e = 0; e < edges; ++e) {
        drift += std::fabs(inc.At({0, t * n + v, e}) -
                           inc.At({0, (t - 1) * n + v, e}));
      }
    }
    drift /= static_cast<double>(n * edges);
    std::printf("  t=%-2lld %.4f %s\n", static_cast<long long>(t), drift,
                std::string(static_cast<int>(drift * 200), '*').c_str());
  }

  // District alignment: does each node's strongest hyperedge correlate
  // with its latent district (the simulator's ground truth communities)?
  const std::vector<int64_t>& district = ds.network().district;
  int64_t num_districts = ds.network().district_type.size();
  std::vector<std::vector<int64_t>> votes(
      num_districts, std::vector<int64_t>(edges, 0));
  for (int64_t v = 0; v < n; ++v) {
    int64_t best = 0;
    float best_val = -1.0f;
    for (int64_t e = 0; e < edges; ++e) {
      float a = std::fabs(inc.At({0, (task.history - 1) * n + v, e}));
      if (a > best_val) {
        best_val = a;
        best = e;
      }
    }
    votes[district[v]][best] += 1;
  }
  std::printf("\nDominant hyperedge per latent district (t = 12):\n");
  double agree = 0.0;
  int64_t total = 0;
  for (int64_t d = 0; d < num_districts; ++d) {
    int64_t members = 0, top = 0, top_edge = 0;
    for (int64_t e = 0; e < edges; ++e) {
      members += votes[d][e];
      if (votes[d][e] > top) {
        top = votes[d][e];
        top_edge = e;
      }
    }
    if (members == 0) continue;
    std::printf("  district %-2lld (%lld nodes) -> hyperedge E%lld "
                "(%.0f%% of its nodes)\n",
                static_cast<long long>(d), static_cast<long long>(members),
                static_cast<long long>(top_edge), 100.0 * top / members);
    agree += top;
    total += members;
  }
  std::printf("\nOverall, %.0f%% of nodes share their district's dominant "
              "hyperedge —\nthe learned structure recovers the latent "
              "communities the simulator\nplanted (the business/residential "
              "areas of the paper's Fig. 1).\n",
              100.0 * agree / std::max<int64_t>(total, 1));
  return 0;
}
