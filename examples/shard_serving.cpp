// Sharded, multi-model serving end to end: partition a generated road
// network with a ShardPlan, train one graph-operator model whose
// parameters are node-count independent, write a shard checkpoint
// family, and serve concurrent mixed-model queries through a
// ForecastRouter — one engine per (model, shard).
//
//   $ ./build/example_shard_serving
//
// Environment: DYHSL_PROFILE=tiny|quick|full scales dataset and schedule.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/graph/shard.h"
#include "src/models/dyhsl.h"
#include "src/serve/router.h"
#include "src/train/checkpoint.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"

int main() {
  using namespace dyhsl;
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  // 1. Data + task: a PEMS08-like network, then a 2-way contiguous
  //    sensor-range partition with a halo wide enough for STGCN's one
  //    graph-conv hop (+1 hop so fringe degrees stay exact).
  data::DatasetSpec spec =
      data::DatasetSpec::Pems08Like(knobs.node_scale, knobs.sim_days);
  data::TrafficDataset dataset = data::TrafficDataset::Generate(spec);
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 2);
  std::printf("dataset %s: %lld sensors -> %lld shards\n",
              dataset.name().c_str(),
              static_cast<long long>(task.num_nodes),
              static_cast<long long>(plan.num_shards()));
  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    const graph::ShardSpec& shard = plan.shard(s);
    std::printf("  shard %lld: sensors [%lld, %lld) + %lld halo\n",
                static_cast<long long>(s),
                static_cast<long long>(shard.begin),
                static_cast<long long>(shard.end),
                static_cast<long long>(shard.halo_count()));
  }

  // 2. Train once, globally. STGCN's parameters are node-count
  //    independent, so the same weights serve every shard-scoped model.
  train::ZooConfig zoo;
  zoo.hidden_dim = knobs.hidden_dim;
  std::unique_ptr<train::ForecastModel> stgcn =
      train::MakeNeuralModel("STGCN", task, zoo);
  train::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  tc.learning_rate = 2e-3f;
  train::TrainModel(stgcn.get(), dataset, tc);

  // 3. Write the shard checkpoint family (one DYH2-v3 file per shard,
  //    each stamped with its sensor range and halo count).
  const std::string prefix = "shard_demo_stgcn";
  auto* stgcn_module = dynamic_cast<nn::Module*>(stgcn.get());
  if (stgcn_module == nullptr) {
    std::fprintf(stderr, "STGCN is not checkpointable (not an nn::Module)\n");
    return 1;
  }
  Status saved = train::ShardCheckpointSet::Save(plan, *stgcn_module, prefix);
  if (!saved.ok()) {
    std::fprintf(stderr, "family save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote shard checkpoint family %s.shard{0,1}.ckpt\n",
              prefix.c_str());

  // 4. A second model for mixed-model routing: a small DyHSL served
  //    unsharded from a fresh init (real deployments would load another
  //    trained checkpoint here).
  models::DyHslConfig dyhsl_config;
  dyhsl_config.hidden_dim = knobs.hidden_dim;
  dyhsl_config.prior_layers = 2;
  dyhsl_config.mhce_layers = 1;
  dyhsl_config.num_hyperedges = 8;

  // 5. Router bring-up: one engine per (model, shard). The family is
  //    validated against the plan before any engine loads it.
  serve::EngineOptions engine_options;
  engine_options.max_batch = 8;
  engine_options.max_delay_us = 2000;
  engine_options.adaptive_batch = true;
  auto created = serve::ForecastRouter::Create();
  if (!created.ok()) return 1;
  auto router = std::move(created).ValueOrDie();
  Status added = router->AddShardedModel(
      "stgcn", task, plan, serve::ZooFactory("STGCN", zoo), prefix,
      engine_options);
  if (added.ok()) {
    added = router->AddModel("dyhsl", task,
                             serve::DyHslFactory(dyhsl_config), "",
                             engine_options);
  }
  if (!added.ok()) {
    std::fprintf(stderr, "router bring-up failed: %s\n",
                 added.ToString().c_str());
    return 1;
  }
  std::printf("router up: %lld stgcn shard engines + 1 dyhsl engine\n",
              static_cast<long long>(router->ShardCountOf("stgcn")));

  // 6. Concurrent mixed-model queries over the test split: all in
  //    flight at once, alternating models per query.
  const int64_t kQueries = 8;
  std::vector<std::future<serve::ForecastResponse>> futures;
  std::vector<std::string> names;
  int64_t start = dataset.test_range().begin;
  for (int64_t q = 0; q < kQueries; ++q) {
    names.push_back(q % 2 == 0 ? "stgcn" : "dyhsl");
    futures.push_back(router->Submit(
        serve::RouterRequest{names.back(), dataset.MakeInput(start + q)}));
  }
  for (int64_t q = 0; q < kQueries; ++q) {
    serve::ForecastResponse response = futures[q].get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query %lld failed: %s\n",
                   static_cast<long long>(q),
                   response.status.ToString().c_str());
      return 1;
    }
    std::printf("query %lld via %-5s: batch=%lld  sensor 0 next hour:",
                static_cast<long long>(q), names[q].c_str(),
                static_cast<long long>(response.batch_size));
    for (int64_t t = 0; t < response.forecast.size(0); t += 3) {
      std::printf(" %6.1f", response.forecast.At({t, 0}));
    }
    std::printf("\n");
  }

  // 7. Fleet telemetry: per-engine snapshots plus totals.
  serve::RouterStats stats = router->Stats();
  std::printf("router served %lld requests (%lld engine-requests, "
              "%lld batches across the fleet)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.total.requests),
              static_cast<long long>(stats.total.batches));
  for (const serve::EngineStatsEntry& e : stats.engines) {
    std::printf("  %-5s shard %lld: %lld requests in %lld batches"
                " (effective batch %lld)\n",
                e.model.c_str(), static_cast<long long>(e.shard_id),
                static_cast<long long>(e.stats.requests),
                static_cast<long long>(e.stats.batches),
                static_cast<long long>(e.stats.effective_max_batch));
  }

  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    std::remove(train::ShardCheckpointSet::ShardPath(prefix, s).c_str());
  }
  return 0;
}
