// Quickstart: generate a synthetic traffic dataset, train DyHSL for a few
// epochs, evaluate on the held-out test period, and print a 12-step
// forecast for one sensor.
//
//   $ ./build/examples/quickstart
//
// Environment: DYHSL_PROFILE=tiny|quick|full scales dataset and schedule.

#include <cstdio>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/train/trainer.h"

int main() {
  using namespace dyhsl;
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  // 1. Data: a PEMS08-like network (170 sensors at full scale) with three
  //    simulated days of 5-minute flow readings.
  data::DatasetSpec spec =
      data::DatasetSpec::Pems08Like(knobs.node_scale, knobs.sim_days);
  data::TrafficDataset dataset = data::TrafficDataset::Generate(spec);
  std::printf("dataset %s: %lld sensors, %lld edges, %lld steps\n",
              dataset.name().c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(
                  dataset.network().graph.UndirectedEdgeCount()),
              static_cast<long long>(dataset.num_steps()));

  // 2. Model: DyHSL with the paper's architecture, profile-sized.
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  models::DyHslConfig config;
  config.hidden_dim = knobs.hidden_dim;
  config.prior_layers = 3;   // paper: 6
  config.mhce_layers = 2;    // paper: 2
  config.num_hyperedges = 16;  // paper: 32
  models::DyHsl model(task, config);
  std::printf("DyHSL parameters: %lld\n",
              static_cast<long long>(model.ParameterCount()));

  // 3. Train with masked MAE (the paper's loss), Adam, gradient clipping.
  train::TrainConfig tc;
  tc.epochs = knobs.train_epochs;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  tc.learning_rate = 2e-3f;
  tc.verbose = true;
  train::TrainResult result = train::TrainModel(&model, dataset, tc);
  std::printf("trained %lld epochs in %.1f s (%.2f s/epoch), final loss %.3f\n",
              static_cast<long long>(result.epochs_run),
              result.total_seconds, result.seconds_per_epoch,
              result.final_train_loss);

  // 4. Evaluate on the chronologically held-out test windows.
  train::EvalResult eval = train::EvaluateModel(
      &model, dataset, dataset.test_range(), tc.batch_size,
      /*max_batches=*/24);
  std::printf("test: %s  (over %lld windows)\n",
              eval.overall.ToString().c_str(),
              static_cast<long long>(eval.windows));
  std::printf("per-horizon MAE:");
  for (size_t t = 0; t < eval.per_horizon.size(); ++t) {
    std::printf(" %.1f", eval.per_horizon[t].mae);
  }
  std::printf("   (5 min ... 60 min ahead)\n");

  // 5. One concrete forecast: sensor 0, first test window.
  data::BatchIterator it(&dataset,
                         {dataset.test_range().begin,
                          dataset.test_range().begin + 1},
                         1, /*shuffle=*/false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  autograd::Variable pred = model.Forward(batch.x, /*training=*/false);
  std::printf("\nsensor 0, next hour (5-minute steps):\n  truth:");
  for (int64_t t = 0; t < dataset.horizon(); ++t) {
    std::printf(" %6.1f", batch.y.At({0, t, 0}));
  }
  std::printf("\n  DyHSL:");
  for (int64_t t = 0; t < dataset.horizon(); ++t) {
    std::printf(" %6.1f", pred.value().At({0, t, 0}));
  }
  std::printf("\n");
  return 0;
}
