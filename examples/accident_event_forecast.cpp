// Accident-event scenario (the paper's Fig. 1 motivation): a car accident
// suppresses flow in a spreading graph neighborhood; this example shows
// how forecast quality around simulated incidents compares between DyHSL
// (dynamic hypergraph) and a purely pairwise graph baseline (DCRNN).
//
// It measures MAE restricted to (sensor, step) pairs inside event impact
// zones versus the rest, i.e. exactly where dynamic non-pairwise structure
// should matter.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/data/road_network_gen.h"
#include "src/metrics/metrics.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"

namespace {

using namespace dyhsl;

// Marks (step, node) cells affected by any event (same spreading rule as
// the simulator).
std::vector<bool> EventMask(const data::TrafficDataset& ds) {
  int64_t steps = ds.num_steps();
  int64_t n = ds.num_nodes();
  std::vector<bool> mask(steps * n, false);
  for (const data::TrafficEvent& e : ds.traffic().events) {
    std::vector<int64_t> hops =
        data::HopDistances(ds.network().graph, e.epicenter);
    for (int64_t i = 0; i < n; ++i) {
      if (hops[i] < 0 || hops[i] > e.radius_hops) continue;
      int64_t start = e.start_step + hops[i] * 2;
      int64_t end = std::min(steps, start + e.duration_steps);
      for (int64_t s = std::max<int64_t>(0, start); s < end; ++s) {
        mask[s * n + i] = true;
      }
    }
  }
  return mask;
}

struct SplitMae {
  metrics::MetricAccumulator in_event;
  metrics::MetricAccumulator elsewhere;
};

SplitMae EvaluateAroundEvents(train::ForecastModel* model,
                              const data::TrafficDataset& ds,
                              const std::vector<bool>& mask,
                              int64_t max_batches) {
  SplitMae result;
  data::BatchIterator it(&ds, ds.test_range(), 16, /*shuffle=*/false, 1);
  data::BatchIterator::Batch batch;
  int64_t batches = 0;
  while (it.Next(&batch) && batches++ < max_batches) {
    autograd::Variable pred = model->Forward(batch.x, false);
    for (int64_t b = 0; b < batch.x.size(0); ++b) {
      int64_t t0 = batch.window_starts[b];
      for (int64_t t = 0; t < ds.horizon(); ++t) {
        int64_t step = t0 + ds.history() + t;
        for (int64_t i = 0; i < ds.num_nodes(); ++i) {
          float p = pred.value().At({b, t, i});
          float y = batch.y.At({b, t, i});
          if (mask[step * ds.num_nodes() + i]) {
            result.in_event.AddValue(p, y);
          } else {
            result.elsewhere.AddValue(p, y);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  ConfigureParallelism();
  ProfileKnobs knobs = GetProfileKnobs(GetRunProfile());

  // Dataset with a deliberately incident-heavy test period.
  data::DatasetSpec spec =
      data::DatasetSpec::Pems04Like(knobs.node_scale, knobs.sim_days);
  spec.sim.events_per_day = 8.0f;
  data::TrafficDataset ds = data::TrafficDataset::Generate(spec);
  std::vector<bool> mask = EventMask(ds);
  int64_t affected = 0;
  for (bool b : mask) affected += b;
  std::printf("SynPEMS04 with %zu incidents; %.1f%% of readings inside an "
              "impact zone\n\n",
              ds.traffic().events.size(),
              100.0 * affected / static_cast<double>(mask.size()));

  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  train::ZooConfig zoo;
  zoo.hidden_dim = knobs.hidden_dim;
  train::TrainConfig tc;
  tc.epochs = knobs.train_epochs;
  tc.batch_size = knobs.batch_size;
  tc.max_batches_per_epoch = knobs.max_batches_per_epoch;
  tc.learning_rate = 2e-3f;

  std::printf("%-14s %16s %16s %10s\n", "Model", "MAE in events",
              "MAE elsewhere", "gap");
  for (const char* key : {"DCRNN", "DyHSL"}) {
    auto model = train::MakeNeuralModel(key, task, zoo);
    train::TrainModel(model.get(), ds, tc);
    SplitMae split = EvaluateAroundEvents(model.get(), ds, mask, 16);
    std::printf("%-14s %16.2f %16.2f %9.2f%%\n", key,
                split.in_event.Mae(), split.elsewhere.Mae(),
                100.0 * (split.in_event.Mae() / split.elsewhere.Mae() - 1.0));
  }
  std::printf(
      "\nReading: both models degrade inside event zones (events are rare\n"
      "and abrupt); the dynamic-hypergraph model should show the smaller\n"
      "event penalty, mirroring the paper's Table VI discussion of MAPE\n"
      "under sudden external events.\n");
  return 0;
}
