// Tests for the streaming ingestion path: RingWindow wraparound and
// zero-copy views, TickStream replay, SessionManager lifecycle (strict
// tick sequencing, eviction, TTL, rolling stats), exactness of session
// forecasts against full-window submission for every zoo model, warm
// recurrent-state carry and resync on DCRNN, DHGNN structure reuse, and
// the router's pooled gather scratch.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/inference.h"
#include "src/data/dataset.h"
#include "src/data/stream.h"
#include "src/graph/shard.h"
#include "src/serve/engine.h"
#include "src/serve/router.h"
#include "src/serve/session.h"
#include "src/tensor/ops.h"
#include "src/tensor/ring.h"
#include "src/tensor/workspace.h"
#include "src/train/model_zoo.h"
#include "tests/testing_utils.h"

namespace dyhsl::serve {
namespace {

namespace T = ::dyhsl::tensor;

using ::dyhsl::testing::TensorEq;
using ::dyhsl::testing::TensorNear;

// One small dataset shared by every test in this file.
const data::TrafficDataset& SharedDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetSpec spec = data::DatasetSpec::Pems08Like(0.1, 2, 5);
    return new data::TrafficDataset(data::TrafficDataset::Generate(spec));
  }();
  return *dataset;
}

train::ZooConfig TinyZoo(uint64_t seed = 13) {
  train::ZooConfig cfg;
  cfg.hidden_dim = 8;
  cfg.seed = seed;
  return cfg;
}

// Streams ticks [start, start + count) from the shared dataset into a
// session, asserting every Append is accepted.
void StreamTicks(SessionManager* manager, const std::string& id,
                 int64_t start, int64_t count) {
  data::TickStream stream(SharedDataset().traffic(), start, start + count);
  for (; !stream.Done(); stream.Advance()) {
    Status s = manager->Append(id, stream.tick(), stream.Frame());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

// ----------------------------------------------------------- RingWindow --

TEST(RingWindowTest, WindowIsContiguousAcrossWraparound) {
  constexpr int64_t kSteps = 5;
  constexpr int64_t kFrame = 3;
  T::RingWindow ring(kSteps, {kFrame});
  // Push 2.5x the capacity so the cursor wraps multiple times.
  for (int64_t tick = 0; tick < 13; ++tick) {
    float frame[kFrame];
    for (int64_t i = 0; i < kFrame; ++i) {
      frame[i] = static_cast<float>(tick * 100 + i);
    }
    ring.Push(frame);
    EXPECT_EQ(ring.total_pushed(), tick + 1);
    EXPECT_EQ(ring.count(), std::min<int64_t>(tick + 1, kSteps));
    if (!ring.full()) continue;
    T::Tensor window = ring.Window();
    ASSERT_EQ(window.shape(), (T::Shape{kSteps, kFrame}));
    // Oldest-first: row r holds tick (tick - kSteps + 1 + r).
    for (int64_t r = 0; r < kSteps; ++r) {
      for (int64_t i = 0; i < kFrame; ++i) {
        EXPECT_EQ(window.data()[r * kFrame + i],
                  static_cast<float>((tick - kSteps + 1 + r) * 100 + i))
            << "tick " << tick << " row " << r;
      }
    }
  }
}

TEST(RingWindowTest, WindowIsZeroCopyAndLastFramesAgree) {
  T::RingWindow ring(4, {2, 3});
  std::vector<float> frame(6);
  for (int64_t tick = 0; tick < 9; ++tick) {
    for (size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<float>(tick * 10) + static_cast<float>(i);
    }
    ring.Push(frame.data());
  }
  T::Tensor window = ring.Window();
  ASSERT_EQ(window.shape(), (T::Shape{4, 2, 3}));
  // A second view of the same state aliases the same storage — no copy.
  EXPECT_EQ(ring.Window().data(), window.data());
  T::Tensor last2 = ring.LastFrames(2);
  ASSERT_EQ(last2.shape(), (T::Shape{2, 2, 3}));
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(last2.data()[i], window.data()[2 * 6 + i]);
    EXPECT_EQ(last2.data()[6 + i], window.data()[3 * 6 + i]);
  }
  // Views alias the live ring: the next Push is visible through them.
  ring.Clear();
  EXPECT_EQ(ring.count(), 0);
  EXPECT_FALSE(ring.full());
}

// ----------------------------------------------------------- TickStream --

TEST(TickStreamTest, ReplaysRawFlowRowsZeroCopy) {
  const data::TrafficData& traffic = SharedDataset().traffic();
  const int64_t n = traffic.flow.size(1);
  data::TickStream stream(traffic, 3, 8);
  EXPECT_EQ(stream.num_nodes(), n);
  int64_t expected_tick = 3;
  for (; !stream.Done(); stream.Advance()) {
    EXPECT_EQ(stream.tick(), expected_tick);
    T::Tensor frame = stream.Frame();
    ASSERT_EQ(frame.shape(), (T::Shape{n}));
    // Zero-copy: the frame points straight into the series.
    EXPECT_EQ(frame.data(), traffic.flow.data() + expected_tick * n);
    ++expected_tick;
  }
  EXPECT_EQ(expected_tick, 8);
  EXPECT_EQ(stream.remaining(), 0);
}

// ------------------------------------------- Session forecast exactness --

// The headline acceptance: for every model in the zoo, a streamed
// session's forecast is bit-identical to submitting the full window
// through the batch router path.
TEST(StreamSessionTest, SessionForecastMatchesFullWindowSubmitForAllModels) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  for (const std::string& key : train::NeuralModelKeys()) {
    Status s = router->AddModel(key, task, ZooFactory(key, TinyZoo()));
    ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
  }
  SessionManager manager(router.get());

  const int64_t t0 = 17;  // arbitrary stream start inside the series
  for (const std::string& key : train::NeuralModelKeys()) {
    SessionOptions options;
    options.model = key;
    options.start_tick = t0;
    ASSERT_TRUE(manager.Open("s-" + key, options).ok()) << key;
  }
  // Stream past one full window plus a few slides, comparing at each
  // position: the session window must equal MakeInput of the same start.
  const int64_t slides = 3;
  data::TickStream stream(ds.traffic(), t0, t0 + task.history + slides);
  for (; !stream.Done(); stream.Advance()) {
    for (const std::string& key : train::NeuralModelKeys()) {
      Status s =
          manager.Append("s-" + key, stream.tick(), stream.Frame());
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
    }
    const int64_t appended = stream.tick() - t0 + 1;
    if (appended < task.history) continue;
    const int64_t window_start = stream.tick() + 1 - task.history;
    T::Tensor window = ds.MakeInput(window_start);
    for (const std::string& key : train::NeuralModelKeys()) {
      ForecastResponse streamed = manager.Forecast("s-" + key);
      ASSERT_TRUE(streamed.status.ok())
          << key << ": " << streamed.status.ToString();
      ForecastResponse batch =
          router->Submit(RouterRequest{key, window.Clone()}).get();
      ASSERT_TRUE(batch.status.ok())
          << key << ": " << batch.status.ToString();
      EXPECT_TRUE(TensorEq(streamed.forecast, batch.forecast))
          << key << " at window start " << window_start;
    }
  }
  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.open, static_cast<int64_t>(train::NeuralModelKeys().size()));
  EXPECT_GT(stats.forecasts, 0);
}

TEST(StreamSessionTest, ShardedSessionMatchesShardedRouterSubmit) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(router
                  ->AddShardedModel("stgcn2", task, plan,
                                    ZooFactory("STGCN", TinyZoo()))
                  .ok());
  SessionManager manager(router.get());
  SessionOptions options;
  options.model = "stgcn2";
  ASSERT_TRUE(manager.Open("shardy", options).ok());

  StreamTicks(&manager, "shardy", 0, task.history + 2);
  T::Tensor window = ds.MakeInput(2);
  ForecastResponse streamed = manager.Forecast("shardy");
  ASSERT_TRUE(streamed.status.ok()) << streamed.status.ToString();
  ForecastResponse batch =
      router->Submit(RouterRequest{"stgcn2", window.Clone()}).get();
  ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
  EXPECT_TRUE(TensorEq(streamed.forecast, batch.forecast));
}

// ------------------------------------------------- Warm-state streaming --

TEST(StreamSessionTest, WarmCarryIsBitIdenticalToColdEncoderOverAllTicks) {
  // The carry contract: StreamStep over every tick since open equals a
  // cold encoder pass over the whole stream. Checked by comparing a warm
  // DCRNN session fed S ticks against a *cold* session of a history=S
  // DCRNN built from the same seed (parameter init does not depend on
  // history, so the two models share every weight bit).
  const data::TrafficDataset& ds = SharedDataset();
  const int64_t kStream = 18;
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  train::ForecastTask long_task = task;
  long_task.history = kStream;

  auto warm_router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      warm_router->AddModel("dcrnn", task, ZooFactory("DCRNN", TinyZoo()))
          .ok());
  auto long_router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(long_router
                  ->AddModel("dcrnn", long_task,
                             ZooFactory("DCRNN", TinyZoo()))
                  .ok());

  SessionManager warm_manager(warm_router.get());
  SessionOptions warm_options;
  warm_options.warm_state = true;
  ASSERT_TRUE(warm_manager.Open("w", warm_options).ok());
  SessionManager long_manager(long_router.get());
  ASSERT_TRUE(long_manager.Open("c", SessionOptions()).ok());

  data::TickStream stream(ds.traffic(), 0, kStream);
  for (; !stream.Done(); stream.Advance()) {
    ASSERT_TRUE(warm_manager.Append("w", stream.tick(), stream.Frame()).ok());
    ASSERT_TRUE(long_manager.Append("c", stream.tick(), stream.Frame()).ok());
  }
  ForecastResponse warm = warm_manager.Forecast("w");
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  ForecastResponse cold = long_manager.Forecast("c");
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_TRUE(TensorEq(warm.forecast, cold.forecast));
}

TEST(StreamSessionTest, ResyncEveryTickMatchesWindowedReferenceExactly) {
  // resync_every=1 rebuilds the carried state from the ring window after
  // every Append, so a warm session must then be bit-identical to the
  // windowed (cold) session at every position.
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("dcrnn", task, ZooFactory("DCRNN", TinyZoo())).ok());
  SessionManager manager(router.get());

  SessionOptions warm_options;
  warm_options.warm_state = true;
  warm_options.resync_every = 1;
  ASSERT_TRUE(manager.Open("warm", warm_options).ok());
  ASSERT_TRUE(manager.Open("cold", SessionOptions()).ok());

  data::TickStream stream(ds.traffic(), 0, task.history + 4);
  for (; !stream.Done(); stream.Advance()) {
    ASSERT_TRUE(manager.Append("warm", stream.tick(), stream.Frame()).ok());
    ASSERT_TRUE(manager.Append("cold", stream.tick(), stream.Frame()).ok());
    if (stream.tick() + 1 < task.history) continue;
    ForecastResponse warm = manager.Forecast("warm");
    ForecastResponse cold = manager.Forecast("cold");
    ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
    ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
    EXPECT_TRUE(TensorEq(warm.forecast, cold.forecast))
        << "at tick " << stream.tick();
  }
  auto info = manager.SessionInfo("warm");
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info.ValueOrDie().resyncs, 4);
  EXPECT_TRUE(info.ValueOrDie().warm);
}

TEST(StreamSessionTest, WarmWithoutResyncDriftsThenResyncRestoresExactness) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("dcrnn", task, ZooFactory("DCRNN", TinyZoo())).ok());
  SessionManager manager(router.get());

  const int64_t kCadence = 8;
  SessionOptions warm_options;
  warm_options.warm_state = true;
  warm_options.resync_every = kCadence;
  ASSERT_TRUE(manager.Open("warm", warm_options).ok());
  ASSERT_TRUE(manager.Open("cold", SessionOptions()).ok());

  // Stream until the ring has been full for exactly one resync cadence:
  // the final Append triggers the rebuild, after which the forecast must
  // again match the windowed reference bit for bit. Forecasts *between*
  // resyncs may drift (the carry remembers pre-window ticks) but must
  // stay finite.
  data::TickStream stream(ds.traffic(), 0, task.history + kCadence);
  bool saw_mid_cadence_forecast = false;
  for (; !stream.Done(); stream.Advance()) {
    ASSERT_TRUE(manager.Append("warm", stream.tick(), stream.Frame()).ok());
    ASSERT_TRUE(manager.Append("cold", stream.tick(), stream.Frame()).ok());
    const int64_t appended = stream.tick() + 1;
    if (appended >= task.history && appended < task.history + kCadence) {
      ForecastResponse warm = manager.Forecast("warm");
      ASSERT_TRUE(warm.status.ok());
      for (int64_t i = 0; i < warm.forecast.numel(); ++i) {
        ASSERT_TRUE(std::isfinite(warm.forecast.data()[i]));
      }
      saw_mid_cadence_forecast = true;
    }
  }
  EXPECT_TRUE(saw_mid_cadence_forecast);
  auto info = manager.SessionInfo("warm");
  ASSERT_TRUE(info.ok());
  // The cadence counts Appends since open, so the first resync fires the
  // moment the ring fills (12 >= 8) and the second one 8 ticks later, on
  // the final Append.
  EXPECT_EQ(info.ValueOrDie().resyncs, 2);
  ForecastResponse warm = manager.Forecast("warm");
  ForecastResponse cold = manager.Forecast("cold");
  ASSERT_TRUE(warm.status.ok());
  ASSERT_TRUE(cold.status.ok());
  EXPECT_TRUE(TensorEq(warm.forecast, cold.forecast));
}

TEST(StreamSessionTest, WarmStateRequiresStreamingModel) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  SessionOptions options;
  options.warm_state = true;
  Status s = manager.Open("nope", options);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.OpenSessions(), 0);
}

// ------------------------------------------------ Lifecycle and policy --

TEST(StreamSessionTest, RejectsDuplicateOutOfOrderAndGappedTicks) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());

  data::TickStream stream(ds.traffic(), 0, 4);
  T::Tensor frame0 = stream.Frame().Clone();
  ASSERT_TRUE(manager.Append("s", 0, frame0).ok());
  // Duplicate.
  Status dup = manager.Append("s", 0, frame0);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  // Out of order (before the stream position).
  Status old = manager.Append("s", -3, frame0);
  EXPECT_EQ(old.code(), StatusCode::kInvalidArgument);
  // Gap (skipping ahead).
  Status gap = manager.Append("s", 5, frame0);
  EXPECT_EQ(gap.code(), StatusCode::kInvalidArgument);
  // Wrong shape.
  Status shape = manager.Append("s", 1, T::Tensor({3}));
  EXPECT_EQ(shape.code(), StatusCode::kInvalidArgument);
  // The session is untouched: the correct next tick still lands.
  ASSERT_TRUE(manager.Append("s", 1, frame0).ok());

  auto info = manager.SessionInfo("s");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().ticks, 2);
  EXPECT_EQ(info.ValueOrDie().rejected_ticks, 3);  // shape is not a tick error
  EXPECT_EQ(info.ValueOrDie().next_tick, 2);
  EXPECT_EQ(manager.Stats().rejected_ticks, 3);
}

TEST(StreamSessionTest, ForecastUnavailableUntilWindowFills) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());

  ForecastResponse empty = manager.Forecast("s");
  EXPECT_EQ(empty.status.code(), StatusCode::kUnavailable);
  StreamTicks(&manager, "s", 0, task.history - 1);
  ForecastResponse short_one = manager.Forecast("s");
  EXPECT_EQ(short_one.status.code(), StatusCode::kUnavailable);
  data::TickStream last(ds.traffic(), task.history - 1, task.history);
  ASSERT_TRUE(manager.Append("s", last.tick(), last.Frame()).ok());
  ForecastResponse full = manager.Forecast("s");
  EXPECT_TRUE(full.status.ok()) << full.status.ToString();
  // Unknown session.
  EXPECT_EQ(manager.Forecast("ghost").status.code(), StatusCode::kNotFound);
}

TEST(StreamSessionTest, OpenValidatesAndCloseRemoves) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());

  EXPECT_EQ(manager.Open("", SessionOptions()).code(),
            StatusCode::kInvalidArgument);
  SessionOptions unknown;
  unknown.model = "nope";
  EXPECT_EQ(manager.Open("s", unknown).code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());
  EXPECT_EQ(manager.Open("s", SessionOptions()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(manager.Close("s").ok());
  EXPECT_EQ(manager.Close("s").code(), StatusCode::kNotFound);
  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.opened, 1);
  EXPECT_EQ(stats.closed, 1);
  EXPECT_EQ(stats.open, 0);
}

TEST(StreamSessionTest, LruEvictionAtCapacityKeepsRecentlyUsed) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManagerOptions mgr_options;
  mgr_options.max_sessions = 2;
  SessionManager manager(router.get(), mgr_options);

  ASSERT_TRUE(manager.Open("a", SessionOptions()).ok());
  ASSERT_TRUE(manager.Open("b", SessionOptions()).ok());
  // Touch "a" so "b" becomes the LRU victim.
  T::Tensor frame({8});
  frame.Fill(1.0f);
  ASSERT_TRUE(manager.Append("a", 0, frame).ok());
  ASSERT_TRUE(manager.Open("c", SessionOptions()).ok());
  EXPECT_EQ(manager.OpenSessions(), 2);
  EXPECT_TRUE(manager.SessionInfo("a").ok());
  EXPECT_FALSE(manager.SessionInfo("b").ok());
  EXPECT_TRUE(manager.SessionInfo("c").ok());
  EXPECT_EQ(manager.Stats().evicted_lru, 1);
}

TEST(StreamSessionTest, TtlEvictsIdleSessions) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManagerOptions mgr_options;
  mgr_options.ttl_ms = 50;
  SessionManager manager(router.get(), mgr_options);

  ASSERT_TRUE(manager.Open("idle", SessionOptions()).ok());
  EXPECT_EQ(manager.EvictExpired(), 0);  // freshly touched
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(manager.EvictExpired(), 1);
  EXPECT_EQ(manager.OpenSessions(), 0);
  EXPECT_EQ(manager.Stats().evicted_ttl, 1);
}

TEST(StreamSessionTest, RollingStatsTrackMaskedFlowAndDrift) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  SessionOptions options;
  options.stats_alpha = 0.5f;
  ASSERT_TRUE(manager.Open("s", options).ok());

  T::Tensor frame({8});
  frame.Fill(100.0f);
  ASSERT_TRUE(manager.Append("s", 0, frame).ok());
  auto info = manager.SessionInfo("s");
  ASSERT_TRUE(info.ok());
  EXPECT_FLOAT_EQ(info.ValueOrDie().rolling_mean, 100.0f);
  EXPECT_FLOAT_EQ(info.ValueOrDie().rolling_std, 0.0f);
  const float expected_drift =
      std::fabs(100.0f - task.scaler_mean) / task.scaler_std;
  EXPECT_NEAR(info.ValueOrDie().drift_score, expected_drift, 1e-4f);

  // A fully masked tick (sensor dropout everywhere) must not move them.
  T::Tensor zeros({8});
  zeros.Fill(0.0f);
  ASSERT_TRUE(manager.Append("s", 1, zeros).ok());
  auto after = manager.SessionInfo("s");
  ASSERT_TRUE(after.ok());
  EXPECT_FLOAT_EQ(after.ValueOrDie().rolling_mean, 100.0f);

  // A different level pulls the EMA halfway (alpha = 0.5).
  T::Tensor frame2({8});
  frame2.Fill(200.0f);
  ASSERT_TRUE(manager.Append("s", 2, frame2).ok());
  auto moved = manager.SessionInfo("s");
  ASSERT_TRUE(moved.ok());
  EXPECT_FLOAT_EQ(moved.ValueOrDie().rolling_mean, 150.0f);
  EXPECT_GT(moved.ValueOrDie().rolling_std, 0.0f);
}

TEST(StreamSessionTest, ConcurrentAppendAndForecastStaySequenced) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());

  constexpr int64_t kTicks = 40;
  std::atomic<bool> done{false};
  std::atomic<int64_t> ok_forecasts{0};
  std::thread appender([&] {
    data::TickStream stream(ds.traffic(), 0, kTicks);
    for (; !stream.Done(); stream.Advance()) {
      Status s = manager.Append("s", stream.tick(), stream.Frame());
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    done.store(true);
  });
  std::thread forecaster([&] {
    while (!done.load()) {
      ForecastResponse r = manager.Forecast("s");
      // Until the ring fills the only legal failure is Unavailable.
      if (r.status.ok()) {
        ok_forecasts.fetch_add(1);
        ASSERT_EQ(r.forecast.shape(), (T::Shape{task.horizon, task.num_nodes}));
      } else {
        ASSERT_EQ(r.status.code(), StatusCode::kUnavailable)
            << r.status.ToString();
      }
    }
  });
  appender.join();
  forecaster.join();
  ForecastResponse final_forecast = manager.Forecast("s");
  EXPECT_TRUE(final_forecast.status.ok());
  auto info = manager.SessionInfo("s");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ValueOrDie().ticks, kTicks);
  EXPECT_EQ(info.ValueOrDie().rejected_ticks, 0);
}

// ------------------------------------------- Structure reuse and stats --

TEST(StreamSessionTest, DhgnnStructureReuseIsExactOnIdenticalWindows) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  train::ZooConfig reuse_cfg = TinyZoo();
  reuse_cfg.dhgnn_structure_reuse = true;
  auto fresh = train::MakeNeuralModel("DHGNN", task, TinyZoo());
  auto cached = train::MakeNeuralModel("DHGNN", task, reuse_cfg);
  auto* cached_dhgnn = dynamic_cast<baselines::Dhgnn*>(cached.get());
  ASSERT_NE(cached_dhgnn, nullptr);
  cached_dhgnn->ClearStructureCache();

  autograd::InferenceModeGuard no_grad;
  T::Tensor x = ds.MakeInput(5).Reshape({1, task.history, task.num_nodes, 3});
  T::Tensor reference = fresh->Forward(x, false).value();
  T::Tensor first = cached->Forward(x, false).value();
  T::Tensor second = cached->Forward(x, false).value();
  // Identical signatures pass the drift check with zero drifted nodes,
  // and the reused structure is the one an identical rebuild would give.
  EXPECT_TRUE(TensorEq(first, reference));
  EXPECT_TRUE(TensorEq(second, reference));
  T::TopKPatternCache::Stats stats = cached_dhgnn->StructureCacheStats();
  EXPECT_EQ(stats.selects, 1);
  EXPECT_EQ(stats.reuses, 1);
  EXPECT_EQ(stats.drift_reselects, 0);
}

TEST(StreamSessionTest, DhgnnDriftForcesRebuildMatchingFreshModel) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  train::ZooConfig reuse_cfg = TinyZoo();
  reuse_cfg.dhgnn_structure_reuse = true;
  reuse_cfg.dhgnn_drift_threshold = 0.0f;  // any drifted node rebuilds
  auto fresh = train::MakeNeuralModel("DHGNN", task, TinyZoo());
  auto cached = train::MakeNeuralModel("DHGNN", task, reuse_cfg);
  auto* cached_dhgnn = dynamic_cast<baselines::Dhgnn*>(cached.get());
  ASSERT_NE(cached_dhgnn, nullptr);
  cached_dhgnn->ClearStructureCache();

  autograd::InferenceModeGuard no_grad;
  T::Tensor x1 = ds.MakeInput(5).Reshape({1, task.history, task.num_nodes, 3});
  // A far-away window: the per-node signature means move, so with a zero
  // threshold the cache must rebuild and match the fresh model exactly.
  T::Tensor x2 =
      ds.MakeInput(300).Reshape({1, task.history, task.num_nodes, 3});
  (void)cached->Forward(x1, false);
  T::Tensor rebuilt = cached->Forward(x2, false).value();
  T::Tensor reference = fresh->Forward(x2, false).value();
  EXPECT_TRUE(TensorEq(rebuilt, reference));
  T::TopKPatternCache::Stats stats = cached_dhgnn->StructureCacheStats();
  EXPECT_EQ(stats.selects, 1);
  EXPECT_EQ(stats.drift_reselects, 1);
}

TEST(StreamSessionTest, StructureCacheStatsSurfaceThroughEngineAndRouter) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  train::ZooConfig reuse_cfg = TinyZoo();
  reuse_cfg.dhgnn_structure_reuse = true;
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("dhgnn", task, ZooFactory("DHGNN", reuse_cfg)).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());
  StreamTicks(&manager, "s", 0, task.history + 2);
  ASSERT_TRUE(manager.Forecast("s").status.ok());
  ASSERT_TRUE(manager.Forecast("s").status.ok());

  RouterStats stats = router->Stats();
  EXPECT_GE(stats.total.streamed, 2);
  EXPECT_GE(stats.total.pattern.selects, 1);
  EXPECT_GE(stats.total.pattern.selects + stats.total.pattern.reuses +
                stats.total.pattern.drift_reselects,
            2);
  ASSERT_EQ(stats.engines.size(), 1u);
  EXPECT_EQ(stats.engines[0].stats.streamed, stats.total.streamed);
}

TEST(StreamSessionTest, EngineSnapshotCountsStreamedRequests) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto engine =
      std::move(ForecastEngine::Create(task, ZooFactory("STGCN", TinyZoo())))
          .ValueOrDie();
  Rng rng(3);
  T::Tensor window =
      T::Tensor::Randn({task.history, task.num_nodes, task.input_dim}, &rng,
                       0.5f);
  ForecastResponse now = engine->ForecastNow(window);
  ASSERT_TRUE(now.status.ok()) << now.status.ToString();
  ForecastResponse queued = engine->Submit(ForecastRequest{window.Clone()}).get();
  ASSERT_TRUE(queued.status.ok());
  // The synchronous fast path is bit-identical to the queue path.
  EXPECT_TRUE(TensorEq(now.forecast, queued.forecast));
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.streamed, 1);
  // Shape validation fails fast, without touching the queue.
  EXPECT_EQ(engine->ForecastNow(T::Tensor({2, 2})).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, ForecastDoesNotMutateRingWindow) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("dyhsl", task, ZooFactory("DyHSL", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s", SessionOptions()).ok());
  StreamTicks(&manager, "s", 0, task.history);
  // The ring view shares storage, so inference in-place fast paths must
  // leave it untouched: two forecasts from the same window agree bitwise.
  ForecastResponse first = manager.Forecast("s");
  ForecastResponse second = manager.Forecast("s");
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(TensorEq(first.forecast, second.forecast));
}

// ------------------------------------------------- Router scratch pools --

TEST(ScratchPoolTest, ReusesBuffersUpToConcurrencyHighWater) {
  ScratchPool pool(6);
  EXPECT_EQ(pool.allocated(), 0);
  {
    T::Tensor a = pool.Acquire({2, 3});
    T::Tensor b = pool.Acquire({6});
    EXPECT_EQ(pool.allocated(), 2);
    EXPECT_EQ(pool.available(), 0);
    a.Fill(1.0f);  // pooled buffers are writable plain tensors
  }
  EXPECT_EQ(pool.available(), 2);
  for (int i = 0; i < 20; ++i) {
    T::Tensor t = pool.Acquire({6});
    EXPECT_EQ(pool.allocated(), 2);  // no growth beyond the high-water mark
  }
  EXPECT_EQ(pool.available(), 2);
}

TEST(ScratchPoolTest, ReleaseAfterPoolDestructionIsSafe) {
  T::Tensor escaped;
  {
    ScratchPool pool(4);
    escaped = pool.Acquire({4});
    escaped.Fill(2.0f);
  }
  // The buffer outlived its pool; dropping it must not crash.
  EXPECT_EQ(escaped.data()[3], 2.0f);
  escaped = T::Tensor();
}

TEST(StreamSessionTest, RouterGatherScratchTracksConcurrencyNotRequests) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(router
                  ->AddShardedModel("stgcn2", task, plan,
                                    ZooFactory("STGCN", TinyZoo()))
                  .ok());
  T::Tensor window = ds.MakeInput(0);
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    ForecastResponse r =
        router->Submit(RouterRequest{"stgcn2", window.Clone()}).get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  // Sequential requests keep at most one slice per shard in flight (plus
  // transient overlap with the engine releasing the previous one), so
  // the pools must stay near the shard count — not kRequests * shards.
  EXPECT_GE(router->ScratchAllocated("stgcn2"), plan.num_shards());
  EXPECT_LE(router->ScratchAllocated("stgcn2"), 2 * plan.num_shards());
  EXPECT_EQ(router->ScratchAllocated("unknown"), 0);
}

// -------------------------------------- Cross-session batched forecasts --

TEST(PackBatchTest, SingleItemPassesThroughZeroCopy) {
  T::Tensor item({3, 4});
  item.Fill(2.0f);
  // The satellite regression for the engine's B = 1 flush: packing one
  // item must be a reshape view — same storage, zero arena traffic.
  T::Workspace ws;
  T::WorkspaceScope scope(&ws);
  T::Tensor packed = T::PackBatch({item});
  EXPECT_EQ(packed.shape(), (T::Shape{1, 3, 4}));
  EXPECT_EQ(packed.data(), item.data());
  EXPECT_EQ(ws.live_allocations(), 0);
  EXPECT_EQ(ws.bytes_reserved(), 0);
}

TEST(PackBatchTest, CopiesEachItemIntoBatchSlot) {
  T::Tensor a({2, 3});
  T::Tensor b({2, 3});
  for (int64_t i = 0; i < 6; ++i) {
    a.data()[i] = static_cast<float>(i);
    b.data()[i] = static_cast<float>(100 + i);
  }
  T::Tensor packed = T::PackBatch({a, b});
  ASSERT_EQ(packed.shape(), (T::Shape{2, 2, 3}));
  EXPECT_NE(packed.data(), a.data());
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(packed.data()[i], a.data()[i]);
    EXPECT_EQ(packed.data()[6 + i], b.data()[i]);
  }
}

TEST(StreamSessionTest, SubmitBatchMatchesForecastNowPerItem) {
  train::ForecastTask task = train::RingForecastTask(8, 12);
  auto engine =
      std::move(ForecastEngine::Create(task, ZooFactory("STGCN", TinyZoo())))
          .ValueOrDie();
  Rng rng(7);
  const int64_t b = 3;
  const int64_t window_numel = task.history * task.num_nodes * task.input_dim;
  T::Tensor windows = T::Tensor::Randn(
      {b, task.history, task.num_nodes, task.input_dim}, &rng, 0.5f);
  BatchForecastResponse batch = engine->SubmitBatch(windows);
  ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
  EXPECT_EQ(batch.batch_size, b);
  ASSERT_EQ(batch.forecasts.shape(),
            (T::Shape{b, task.horizon, task.num_nodes}));
  // Batched GEMMs keep each item's accumulation order, so every slice is
  // bit-identical to the single-request fast path.
  for (int64_t i = 0; i < b; ++i) {
    ForecastResponse one = engine->ForecastNow(windows.Alias(
        i * window_numel, {task.history, task.num_nodes, task.input_dim}));
    ASSERT_TRUE(one.status.ok()) << one.status.ToString();
    EXPECT_TRUE(TensorEq(
        batch.forecasts.Alias(i * task.horizon * task.num_nodes,
                              {task.horizon, task.num_nodes}),
        one.forecast))
        << "item " << i;
  }
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.batched_submits, 1);
  EXPECT_EQ(stats.batched_requests, b);
  EXPECT_EQ(stats.batched_max, b);
  EXPECT_EQ(stats.requests, 2 * b);  // the batch counts per session
  // Shape validation fails fast.
  EXPECT_EQ(engine->SubmitBatch(T::Tensor({2, 2})).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, ForecastBatchMatchesPerSessionForecastAcrossModels) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel("stgcn2", task, plan,
                                    ZooFactory("STGCN", TinyZoo()))
                  .ok());
  SessionManager manager(router.get());

  // A mixed fleet: unsharded and sharded sessions, all on one tick barrier.
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    SessionOptions flat;
    flat.model = "stgcn";
    ASSERT_TRUE(manager.Open("u" + std::to_string(i), flat).ok());
    ids.push_back("u" + std::to_string(i));
    SessionOptions sharded;
    sharded.model = "stgcn2";
    ASSERT_TRUE(manager.Open("h" + std::to_string(i), sharded).ok());
    ids.push_back("h" + std::to_string(i));
  }
  data::TickStream stream(ds.traffic(), 0, task.history + 1);
  for (; !stream.Done(); stream.Advance()) {
    std::vector<T::Tensor> frames(ids.size(), stream.Frame());
    for (const Status& s : manager.AppendMany(ids, stream.tick(), frames)) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }

  std::map<std::string, T::Tensor> reference;
  for (const std::string& id : ids) {
    ForecastResponse r = manager.Forecast(id);
    ASSERT_TRUE(r.status.ok()) << id << ": " << r.status.ToString();
    reference.emplace(id, r.forecast);
  }
  // Batched over a shuffled order: bit-identical per session, sharded
  // models included.
  std::mt19937 gen(99);
  std::shuffle(ids.begin(), ids.end(), gen);
  std::vector<ForecastResponse> batched = manager.ForecastBatch(ids);
  ASSERT_EQ(batched.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(batched[i].status.ok())
        << ids[i] << ": " << batched[i].status.ToString();
    EXPECT_EQ(batched[i].batch_size, 3);  // three sessions per model group
    EXPECT_TRUE(TensorEq(batched[i].forecast, reference.at(ids[i]))) << ids[i];
  }

  // Occupancy: two model groups of three sessions each.
  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.batch.batched_forecasts, 2);
  EXPECT_EQ(stats.batch.batch_size_sum, 6);
  EXPECT_EQ(stats.batch.batch_size_max, 3);
  EXPECT_EQ(stats.batch_by_model.at("stgcn").batch_size_sum, 3);
  EXPECT_EQ(stats.batch_by_model.at("stgcn2").batch_size_max, 3);
  // The engine-side view surfaces through the router totals: one
  // SubmitBatch on the unsharded engine, one per stgcn2 shard.
  RouterStats rstats = router->Stats();
  EXPECT_EQ(rstats.total.batched_submits, 1 + plan.num_shards());
  EXPECT_EQ(rstats.total.batched_max, 3);
}

TEST(StreamSessionTest, BatchedWarmCarryMatchesSequentialWithinTolerance) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("dcrnn", task, ZooFactory("DCRNN", TinyZoo())).ok());
  SessionManager manager(router.get());

  // Twin warm fleets on the same feed with an active resync cadence:
  // "a*" advances per-session, "b*" through tick-barrier AppendMany (one
  // batched cell step per tick, resync members masked out).
  const int kFleet = 3;
  std::vector<std::string> seq_ids;
  std::vector<std::string> batch_ids;
  for (int i = 0; i < kFleet; ++i) {
    SessionOptions warm;
    warm.model = "dcrnn";
    warm.warm_state = true;
    warm.resync_every = 7;
    ASSERT_TRUE(manager.Open("a" + std::to_string(i), warm).ok());
    ASSERT_TRUE(manager.Open("b" + std::to_string(i), warm).ok());
    seq_ids.push_back("a" + std::to_string(i));
    batch_ids.push_back("b" + std::to_string(i));
  }
  data::TickStream stream(ds.traffic(), 0, task.history + 9);
  for (; !stream.Done(); stream.Advance()) {
    for (const std::string& id : seq_ids) {
      ASSERT_TRUE(manager.Append(id, stream.tick(), stream.Frame()).ok());
    }
    std::vector<T::Tensor> frames(batch_ids.size(), stream.Frame());
    for (const Status& s :
         manager.AppendMany(batch_ids, stream.tick(), frames)) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }
  for (int i = 0; i < kFleet; ++i) {
    auto info = manager.SessionInfo(batch_ids[i]);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.ValueOrDie().resyncs, 2);  // cadence fired in the batch
  }

  // The 1e-5 warm-carry contract is stated in normalized model units;
  // forecasts are descaled by the training std, so the absolute
  // tolerance scales with it.
  const float warm_atol = 1e-5f * task.scaler_std;
  std::vector<ForecastResponse> sequential(kFleet);
  std::vector<ForecastResponse> twin(kFleet);
  for (int i = 0; i < kFleet; ++i) {
    sequential[i] = manager.Forecast(seq_ids[i]);
    twin[i] = manager.Forecast(batch_ids[i]);
    ASSERT_TRUE(sequential[i].status.ok());
    ASSERT_TRUE(twin[i].status.ok());
    EXPECT_TRUE(
        TensorNear(twin[i].forecast, sequential[i].forecast, warm_atol))
        << batch_ids[i];
  }
  // Batched decode vs per-session decode of the very same carried state.
  std::vector<ForecastResponse> batched = manager.ForecastBatch(batch_ids);
  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    EXPECT_EQ(batched[i].batch_size, kFleet);
    EXPECT_TRUE(TensorNear(batched[i].forecast, twin[i].forecast, warm_atol));
  }
  // A one-member warm group decodes bit-identically to Forecast.
  std::vector<ForecastResponse> solo =
      manager.ForecastBatch({seq_ids[0]});
  ASSERT_TRUE(solo[0].status.ok());
  EXPECT_TRUE(TensorEq(solo[0].forecast, sequential[0].forecast));
}

TEST(StreamSessionTest, ForecastBatchIsolatesPerSessionErrors) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("ready", SessionOptions()).ok());
  ASSERT_TRUE(manager.Open("empty", SessionOptions()).ok());
  StreamTicks(&manager, "ready", 0, task.history);

  std::vector<ForecastResponse> rs =
      manager.ForecastBatch({"ready", "ghost", "empty", "ready"});
  ASSERT_EQ(rs.size(), 4u);
  ASSERT_TRUE(rs[0].status.ok()) << rs[0].status.ToString();
  EXPECT_EQ(rs[1].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(rs[2].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rs[3].status.code(), StatusCode::kInvalidArgument);  // duplicate
  EXPECT_TRUE(TensorEq(rs[0].forecast, manager.Forecast("ready").forecast));
}

TEST(StreamSessionTest, AppendManyIsolatesErrorsAndRejectsDuplicates) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  ASSERT_TRUE(manager.Open("s0", SessionOptions()).ok());
  ASSERT_TRUE(manager.Open("s1", SessionOptions()).ok());

  data::TickStream stream(ds.traffic(), 0, 1);
  T::Tensor frame = stream.Frame().Clone();
  std::vector<Status> statuses = manager.AppendMany(
      {"s0", "ghost", "s1", "s0"}, 0, {frame, frame, frame, frame});
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_EQ(statuses[1].code(), StatusCode::kNotFound);
  EXPECT_TRUE(statuses[2].ok()) << statuses[2].ToString();
  EXPECT_EQ(statuses[3].code(), StatusCode::kInvalidArgument);  // duplicate
  // The good sessions ingested exactly one tick.
  EXPECT_EQ(manager.SessionInfo("s0").ValueOrDie().next_tick, 1);
  EXPECT_EQ(manager.SessionInfo("s1").ValueOrDie().next_tick, 1);
  // Mismatched ids/frames arity fails every slot without side effects.
  std::vector<Status> arity = manager.AppendMany({"s0", "s1"}, 1, {frame});
  ASSERT_EQ(arity.size(), 2u);
  EXPECT_EQ(arity[0].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(arity[1].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.SessionInfo("s0").ValueOrDie().next_tick, 1);
}

TEST(StreamSessionTest, ConcurrentAppendDuringForecastAllStaysConsistent) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManager manager(router.get());
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back("f" + std::to_string(i));
    ASSERT_TRUE(manager.Open(ids.back(), SessionOptions()).ok());
  }

  constexpr int64_t kTicks = 30;
  std::atomic<bool> done{false};
  std::thread appender([&] {
    data::TickStream stream(ds.traffic(), 0, kTicks);
    for (; !stream.Done(); stream.Advance()) {
      std::vector<T::Tensor> frames(ids.size(), stream.Frame());
      for (const Status& s :
           manager.AppendMany(ids, stream.tick(), frames)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    }
    done.store(true);
  });
  std::thread forecaster([&] {
    while (!done.load()) {
      for (auto& [id, r] : manager.ForecastAll()) {
        if (r.status.ok()) {
          ASSERT_EQ(r.forecast.shape(),
                    (T::Shape{task.horizon, task.num_nodes}));
        } else {
          ASSERT_EQ(r.status.code(), StatusCode::kUnavailable)
              << id << ": " << r.status.ToString();
        }
      }
    }
  });
  appender.join();
  forecaster.join();
  for (auto& [id, r] : manager.ForecastAll()) {
    EXPECT_TRUE(r.status.ok()) << id << ": " << r.status.ToString();
  }
  for (const std::string& id : ids) {
    EXPECT_EQ(manager.SessionInfo(id).ValueOrDie().ticks, kTicks);
  }
}

TEST(StreamSessionTest, EvictionDuringBatchedForecastIsSafe) {
  const data::TrafficDataset& ds = SharedDataset();
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  auto router = std::move(ForecastRouter::Create()).ValueOrDie();
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", TinyZoo())).ok());
  SessionManagerOptions mgr_options;
  mgr_options.max_sessions = 4;
  SessionManager manager(router.get(), mgr_options);
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back("v" + std::to_string(i));
    ASSERT_TRUE(manager.Open(ids.back(), SessionOptions()).ok());
    StreamTicks(&manager, ids.back(), 0, task.history);
  }

  // An opener churns the LRU slots while batched forecasts are in
  // flight: the batch pins its sessions via shared_ptr, so a member
  // evicted mid-batch still serves; later rounds see NotFound.
  std::atomic<bool> done{false};
  std::thread opener([&] {
    for (int i = 0; i < 24; ++i) {
      Status s = manager.Open("churn" + std::to_string(i), SessionOptions());
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    done.store(true);
  });
  std::thread forecaster([&] {
    while (!done.load()) {
      std::vector<ForecastResponse> rs = manager.ForecastBatch(ids);
      for (size_t i = 0; i < rs.size(); ++i) {
        if (rs[i].status.ok()) {
          ASSERT_EQ(rs[i].forecast.shape(),
                    (T::Shape{task.horizon, task.num_nodes}));
        } else {
          ASSERT_EQ(rs[i].status.code(), StatusCode::kNotFound)
              << ids[i] << ": " << rs[i].status.ToString();
        }
      }
    }
  });
  opener.join();
  forecaster.join();
  EXPECT_EQ(manager.Stats().evicted_lru, 24);
}

}  // namespace
}  // namespace dyhsl::serve
