// Kernel-equivalence suite for the blocked, packed GEMM layer
// (src/tensor/gemm.h), the fused out-parameter / in-place ops, and the
// Workspace arena allocator (src/tensor/workspace.h).
//
// The blocked kernel is checked against an independent naive triple-loop
// reference across odd/prime sizes (micro-kernel tails in every
// dimension), all four trans-flag combinations, every batched sharing
// pattern, and both beta modes — plus bit-determinism across OpenMP
// thread counts.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "tests/testing_utils.h"

namespace dyhsl::tensor {
namespace {

using ::dyhsl::testing::SeededTest;

// Independent reference: naive i-k-j product over logical indices. Not the
// production kernel of any era, so both old and new layouts are checked
// against the math, not against each other.
Tensor RefMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                 bool trans_b) {
  int64_t m = trans_a ? a.size(1) : a.size(0);
  int64_t k = trans_a ? a.size(0) : a.size(1);
  int64_t n = trans_b ? b.size(0) : b.size(1);
  Tensor out = Tensor::Zeros({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      float av = trans_a ? a.At({p, i}) : a.At({i, p});
      for (int64_t j = 0; j < n; ++j) {
        float bv = trans_b ? b.At({j, p}) : b.At({p, j});
        out.data()[i * n + j] += av * bv;
      }
    }
  }
  return out;
}

// Extracts batch item `bi` of a 3-D tensor as a 2-D tensor (copy).
Tensor BatchItem(const Tensor& t, int64_t bi) {
  return Slice(t, 0, bi, 1).Reshape({t.size(1), t.size(2)});
}

// Odd and prime extents exercise the kMr/kNr register-tile tails; the
// k > kKc (240) and m > kMc (120) panel crossings get dedicated tests.
constexpr int64_t kOddSizes[] = {1, 2, 3, 5, 7, 13, 17, 31, 37, 64, 67};

// Tolerance scaled to the accumulation length: float32 GEMM with different
// (but deterministic) summation associativity than the reference.
float GemmTol(int64_t k) { return 1e-5f * static_cast<float>(k) + 1e-5f; }

class TensorKernelsTest : public SeededTest {};

TEST_F(TensorKernelsTest, MatMulMatchesReferenceAcrossSizesAndFlags) {
  for (int64_t m : kOddSizes) {
    for (int64_t k : {1L, 3L, 17L, 37L, 67L}) {
      for (int64_t n : {1L, 5L, 16L, 31L}) {
        Tensor a = Tensor::Randn({m, k}, &rng_);
        Tensor b = Tensor::Randn({k, n}, &rng_);
        Tensor at = Transpose2D(a);
        Tensor bt = Transpose2D(b);
        Tensor ref = RefMatMul(a, b, false, false);
        float tol = GemmTol(k);
        EXPECT_TENSOR_NEAR(MatMul(a, b), ref, tol);
        EXPECT_TENSOR_NEAR(MatMul(at, b, true, false), ref, tol);
        EXPECT_TENSOR_NEAR(MatMul(a, bt, false, true), ref, tol);
        EXPECT_TENSOR_NEAR(MatMul(at, bt, true, true), ref, tol);
      }
    }
  }
}

TEST_F(TensorKernelsTest, MatMulCrossesKPanelBoundary) {
  // k > kKc (240) exercises the multi-panel accumulation path (beta == 1
  // for the second K panel).
  Tensor a = Tensor::Randn({7, 251}, &rng_);
  Tensor b = Tensor::Randn({251, 19}, &rng_);
  EXPECT_TENSOR_NEAR(MatMul(a, b), RefMatMul(a, b, false, false),
                     GemmTol(251));
}

TEST_F(TensorKernelsTest, MatMulCrossesRowBlockBoundary) {
  // m > kMc (120) exercises multiple row-block tasks.
  Tensor a = Tensor::Randn({131, 23}, &rng_);
  Tensor b = Tensor::Randn({23, 33}, &rng_);
  EXPECT_TENSOR_NEAR(MatMul(a, b), RefMatMul(a, b, false, false),
                     GemmTol(23));
}

TEST_F(TensorKernelsTest, BatchedMatMulAllFlagsMatchPerBatchReference) {
  constexpr int64_t kBatch = 3, kM = 13, kK = 7, kN = 17;
  Tensor a = Tensor::Randn({kBatch, kM, kK}, &rng_);
  Tensor b = Tensor::Randn({kBatch, kK, kN}, &rng_);
  Tensor at = TransposePerm(a, {0, 2, 1});
  Tensor bt = TransposePerm(b, {0, 2, 1});
  for (int variant = 0; variant < 4; ++variant) {
    bool ta = variant & 1, tb = variant & 2;
    Tensor c = BatchedMatMul(ta ? at : a, tb ? bt : b, ta, tb);
    ASSERT_EQ(c.shape(), (Shape{kBatch, kM, kN}));
    for (int64_t bi = 0; bi < kBatch; ++bi) {
      Tensor ref = RefMatMul(BatchItem(a, bi), BatchItem(b, bi), false,
                             false);
      EXPECT_TENSOR_NEAR(BatchItem(c, bi), ref, GemmTol(kK));
    }
  }
}

TEST_F(TensorKernelsTest, BatchedMatMulSharedRhsAllFlags) {
  constexpr int64_t kBatch = 4, kM = 11, kK = 5, kN = 9;
  Tensor a = Tensor::Randn({kBatch, kM, kK}, &rng_);
  Tensor b = Tensor::Randn({kK, kN}, &rng_);
  Tensor at = TransposePerm(a, {0, 2, 1});
  Tensor bt = Transpose2D(b);
  for (int variant = 0; variant < 4; ++variant) {
    bool ta = variant & 1, tb = variant & 2;
    Tensor c = BatchedMatMul(ta ? at : a, tb ? bt : b, ta, tb);
    for (int64_t bi = 0; bi < kBatch; ++bi) {
      Tensor ref = RefMatMul(BatchItem(a, bi), b, false, false);
      EXPECT_TENSOR_NEAR(BatchItem(c, bi), ref, GemmTol(kK));
    }
  }
}

TEST_F(TensorKernelsTest, BatchedMatMulSharedLhsAllFlags) {
  // The shared-LHS form U @ M_b that replaced the double-transpose
  // sandwich in the DHSL block.
  constexpr int64_t kBatch = 3, kM = 9, kK = 7, kN = 13;
  Tensor u = Tensor::Randn({kM, kK}, &rng_);
  Tensor m = Tensor::Randn({kBatch, kK, kN}, &rng_);
  Tensor ut = Transpose2D(u);
  Tensor mt = TransposePerm(m, {0, 2, 1});
  for (int variant = 0; variant < 4; ++variant) {
    bool ta = variant & 1, tb = variant & 2;
    Tensor c = BatchedMatMul(ta ? ut : u, tb ? mt : m, ta, tb);
    ASSERT_EQ(c.shape(), (Shape{kBatch, kM, kN}));
    for (int64_t bi = 0; bi < kBatch; ++bi) {
      Tensor ref = RefMatMul(u, BatchItem(m, bi), false, false);
      EXPECT_TENSOR_NEAR(BatchItem(c, bi), ref, GemmTol(kK));
    }
  }
}

TEST_F(TensorKernelsTest, MatMulIntoBetaModes) {
  Tensor a = Tensor::Randn({5, 7}, &rng_);
  Tensor b = Tensor::Randn({7, 3}, &rng_);
  Tensor ref = RefMatMul(a, b, false, false);
  // beta == 0 fully overwrites, even NaN garbage.
  Tensor out = Tensor::Full({5, 3}, std::numeric_limits<float>::quiet_NaN());
  MatMulInto(a, b, false, false, /*beta=*/0.0f, &out);
  EXPECT_TENSOR_NEAR(out, ref, GemmTol(7));
  // beta == 1 accumulates.
  MatMulInto(a, b, false, false, /*beta=*/1.0f, &out);
  EXPECT_TENSOR_NEAR(out, MulScalar(ref, 2.0f), 2 * GemmTol(7));
  // General beta scales the existing contents.
  MatMulInto(a, b, false, false, /*beta=*/0.5f, &out);
  EXPECT_TENSOR_NEAR(out, MulScalar(ref, 2.0f), 3 * GemmTol(7));
}

TEST_F(TensorKernelsTest, BatchedMatMulIntoAccumulates) {
  Tensor a = Tensor::Randn({2, 4, 6}, &rng_);
  Tensor b = Tensor::Randn({2, 6, 5}, &rng_);
  Tensor base = BatchedMatMul(a, b);
  Tensor out = base.Clone();
  BatchedMatMulInto(a, b, false, false, /*beta=*/1.0f, &out);
  EXPECT_TENSOR_NEAR(out, MulScalar(base, 2.0f), 1e-4f);
}

TEST_F(TensorKernelsTest, BatchedMatMulReduceIntoSumsBatch) {
  constexpr int64_t kBatch = 4;
  Tensor a = Tensor::Randn({kBatch, 6, 3}, &rng_);
  Tensor g = Tensor::Randn({kBatch, 6, 5}, &rng_);
  // sum_b A_b^T G_b — the gradient of a batch-shared operand.
  Tensor expected = Tensor::Zeros({3, 5});
  for (int64_t bi = 0; bi < kBatch; ++bi) {
    AddInPlace(&expected,
               RefMatMul(BatchItem(a, bi), BatchItem(g, bi), true, false));
  }
  Tensor out({3, 5});
  BatchedMatMulReduceInto(a, g, true, false, /*beta=*/0.0f, &out);
  EXPECT_TENSOR_NEAR(out, expected, 1e-4f);
  // And beta == 1 accumulates on top.
  BatchedMatMulReduceInto(a, g, true, false, /*beta=*/1.0f, &out);
  EXPECT_TENSOR_NEAR(out, MulScalar(expected, 2.0f), 1e-4f);
}

TEST_F(TensorKernelsTest, GemmDegenerateKScalesOutputOnly) {
  // k == 0: C = beta * C with no product term.
  Tensor out = Tensor::Full({3, 4}, 2.0f);
  GemmInto(false, false, 3, 4, 0, nullptr, 1, nullptr, 1, 0.5f, out.data(),
           4);
  EXPECT_TENSOR_NEAR(out, Tensor::Full({3, 4}, 1.0f), 0.0f);
  GemmInto(false, false, 3, 4, 0, nullptr, 1, nullptr, 1, 0.0f, out.data(),
           4);
  EXPECT_TENSOR_NEAR(out, Tensor::Zeros({3, 4}), 0.0f);
}

TEST_F(TensorKernelsTest, AddIntoWritesWithoutAllocating) {
  Tensor a = Tensor::Randn({4, 5}, &rng_);
  Tensor b = Tensor::Randn({4, 5}, &rng_);
  Tensor out({4, 5});
  AddInto(a, b, &out);
  EXPECT_TENSOR_EQ(out, Add(a, b));
  // Aliasing the output with an input is allowed.
  Tensor alias = a.Clone();
  AddInto(alias, b, &alias);
  EXPECT_TENSOR_EQ(alias, Add(a, b));
}

TEST_F(TensorKernelsTest, SoftmaxInPlaceMatchesOutOfPlace) {
  Tensor a = Tensor::Randn({6, 9}, &rng_, 3.0f);
  Tensor expected = SoftmaxLastAxis(a);
  Tensor inplace = a.Clone();
  SoftmaxLastAxisInPlace(&inplace);
  EXPECT_TENSOR_EQ(inplace, expected);
}

TEST_F(TensorKernelsTest, RsqrtMatchesComposition) {
  Tensor a = Tensor::Uniform({32}, &rng_, 0.1f, 5.0f);
  Tensor expected = Div(Tensor::Ones({32}), Sqrt(AddScalar(a, 0.25f)));
  EXPECT_TENSOR_NEAR(Rsqrt(a, 0.25f), expected, 1e-6f);
}

#ifdef _OPENMP
TEST_F(TensorKernelsTest, GemmBitDeterministicAcrossThreadCounts) {
  // The parallel partition must not change any element's accumulation
  // order: results are required to be bit-identical for every thread
  // count (ISSUE 2 determinism constraint).
  Tensor a = Tensor::Randn({4, 150, 90}, &rng_);
  Tensor b = Tensor::Randn({90, 70}, &rng_);
  int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  Tensor c1 = BatchedMatMul(a, b);
  Tensor m1 = MatMul(BatchItem(a, 0), b);
  omp_set_num_threads(4);
  Tensor c4 = BatchedMatMul(a, b);
  Tensor m4 = MatMul(BatchItem(a, 0), b);
  omp_set_num_threads(saved);
  EXPECT_TENSOR_EQ(c4, c1);
  EXPECT_TENSOR_EQ(m4, m1);
}
#endif  // _OPENMP

// ---------------------------------------------------------------------------
// Workspace arena
// ---------------------------------------------------------------------------

TEST(WorkspaceTest, ScopeRoutesTensorAllocation) {
  Workspace workspace;
  float* first_ptr = nullptr;
  {
    WorkspaceScope scope(&workspace);
    Tensor t({16});
    first_ptr = t.data();
    EXPECT_EQ(workspace.live_allocations(), 1);
  }
  // The tensor died with the scope; Reset rewinds the slab, and the next
  // step's first allocation reuses the same memory.
  EXPECT_EQ(workspace.live_allocations(), 0);
  workspace.Reset();
  {
    WorkspaceScope scope(&workspace);
    Tensor t({16});
    EXPECT_EQ(t.data(), first_ptr);
  }
}

TEST(WorkspaceTest, TensorOutlivingResetStaysValid) {
  Workspace workspace;
  Tensor survivor;
  {
    WorkspaceScope scope(&workspace);
    survivor = Tensor::Full({64}, 3.5f);
  }
  workspace.Reset();  // retires the slab instead of rewinding it
  EXPECT_EQ(workspace.retired_count(), 1);
  {
    WorkspaceScope scope(&workspace);
    Tensor noise = Tensor::Full({64}, -1.0f);  // fresh slab, not the retired one
    EXPECT_TENSOR_EQ(survivor, Tensor::Full({64}, 3.5f));
    (void)noise;
  }
  workspace.Reset();
  EXPECT_TENSOR_EQ(survivor, Tensor::Full({64}, 3.5f));
  // Dropping the survivor lets the next Reset reclaim the retired slab.
  survivor = Tensor();
  workspace.Reset();
  EXPECT_EQ(workspace.retired_count(), 0);
}

TEST(WorkspaceTest, ReshapeSharesArenaStorage) {
  Workspace workspace;
  WorkspaceScope scope(&workspace);
  Tensor t = Tensor::Zeros({4, 4});
  Tensor view = t.Reshape({16});
  EXPECT_TRUE(view.SharesStorageWith(t));
  EXPECT_EQ(workspace.live_allocations(), 1);
}

TEST(WorkspaceTest, ScopesNest) {
  Workspace outer_ws;
  Workspace inner_ws;
  WorkspaceScope outer(&outer_ws);
  {
    WorkspaceScope inner(&inner_ws);
    Tensor t({8});
    EXPECT_EQ(inner_ws.live_allocations(), 1);
    EXPECT_EQ(outer_ws.live_allocations(), 0);
  }
  Tensor t({8});
  EXPECT_EQ(outer_ws.live_allocations(), 1);
}

TEST(WorkspaceTest, GrowsBeyondInitialSlab) {
  Workspace workspace(/*min_slab_floats=*/32);
  WorkspaceScope scope(&workspace);
  Tensor small({16});
  Tensor big({1000});  // forces a second, larger slab
  EXPECT_GE(workspace.slab_count(), 2);
  EXPECT_EQ(workspace.live_allocations(), 2);
  // Both stay writable end to end.
  small.Fill(1.0f);
  big.Fill(2.0f);
  EXPECT_FLOAT_EQ(small.data()[15], 1.0f);
  EXPECT_FLOAT_EQ(big.data()[999], 2.0f);
}

TEST(WorkspaceTest, BypassForcesHeapAllocation) {
  Workspace workspace;
  WorkspaceScope scope(&workspace);
  {
    WorkspaceBypass bypass;
    Tensor t({8});
    EXPECT_EQ(workspace.live_allocations(), 0);
  }
  Tensor t({8});  // the scope is active again after the bypass
  EXPECT_EQ(workspace.live_allocations(), 1);
}

TEST(WorkspaceTest, ParameterGradientsDoNotPinStepSlabs) {
  namespace ag = ::dyhsl::autograd;
  Rng rng(3);
  ag::Variable w(Tensor::Randn({4, 3}, &rng), /*requires_grad=*/true);
  Workspace workspace;
  {
    WorkspaceScope scope(&workspace);
    ag::Variable x(Tensor::Randn({5, 4}, &rng));
    ag::Variable loss = ag::MeanAll(ag::MatMul(x, w));
    loss.Backward();
  }  // the tape dies here; only w's grad survives the step
  workspace.Reset();
  // Leaf gradients are heap-allocated (WorkspaceBypass in the autograd
  // engine), so every step slab rewinds — nothing is retired — while the
  // parameter gradient stays valid across steps.
  EXPECT_EQ(workspace.retired_count(), 0);
  EXPECT_EQ(workspace.live_allocations(), 0);
  ASSERT_TRUE(w.has_grad());
  EXPECT_EQ(w.grad().numel(), 12);
}

TEST(WorkspaceTest, MatMulInsideScopeMatchesHeapResult) {
  Rng rng(7);
  Tensor a = Tensor::Randn({23, 31}, &rng);
  Tensor b = Tensor::Randn({31, 17}, &rng);
  Tensor heap = MatMul(a, b);
  Workspace workspace;
  for (int step = 0; step < 3; ++step) {
    WorkspaceScope scope(&workspace);
    // Arena memory is recycled across steps; beta == 0 semantics must not
    // let stale values leak into the product.
    EXPECT_TENSOR_EQ(MatMul(a, b), heap);
  }
}

}  // namespace
}  // namespace dyhsl::tensor
