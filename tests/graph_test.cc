// Tests for graph / temporal-graph / hypergraph substrates, including the
// structural properties Eq. 4 requires of the temporal graph.

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/graph.h"
#include "src/graph/temporal_graph.h"
#include "src/hypergraph/hypergraph.h"
#include "src/tensor/ops.h"
#include "tests/testing_utils.h"

namespace dyhsl::graph {
namespace {

namespace T = ::dyhsl::tensor;

Graph PathGraph(int64_t n) {
  Graph g(n, {});
  for (int64_t i = 0; i + 1 < n; ++i) g.AddUndirectedEdge(i, i + 1, 1.0f);
  return g;
}

TEST(GraphTest, AdjacencyFromEdges) {
  Graph g = PathGraph(3);
  T::CsrMatrix adj = g.ToAdjacency();
  EXPECT_EQ(adj.nnz(), 4);
  T::Tensor dense = adj.ToDense();
  EXPECT_EQ(dense.At({0, 1}), 1.0f);
  EXPECT_EQ(dense.At({1, 0}), 1.0f);
  EXPECT_EQ(dense.At({0, 2}), 0.0f);
}

TEST(GraphTest, UndirectedEdgeCount) {
  Graph g = PathGraph(4);
  EXPECT_EQ(g.num_edges(), 6);           // directed arcs
  EXPECT_EQ(g.UndirectedEdgeCount(), 3);  // paper convention
}

TEST(GraphTest, KnnGraphDegree) {
  Rng rng(1);
  T::Tensor feats = T::Tensor::Randn({10, 3}, &rng);
  T::CsrMatrix knn = KnnGraph(feats, 3);
  EXPECT_EQ(knn.nnz(), 30);
  // No self loops.
  T::Tensor dense = knn.ToDense();
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(dense.At({i, i}), 0.0f);
}

TEST(TemporalGraphTest, SizeAndSelfLoops) {
  Graph g = PathGraph(3);
  T::CsrMatrix tg = BuildTemporalGraph(g.ToAdjacency(), 4);
  EXPECT_EQ(tg.rows(), 12);
  T::Tensor dense = tg.ToDense();
  for (int64_t v = 0; v < 12; ++v) EXPECT_EQ(dense.At({v, v}), 1.0f);
}

TEST(TemporalGraphTest, SpatialEdgesReplicatedPerStep) {
  Graph g = PathGraph(3);
  T::Tensor dense = BuildTemporalGraph(g.ToAdjacency(), 2).ToDense();
  // Step 0: nodes 0..2; step 1: nodes 3..5.
  EXPECT_EQ(dense.At({0, 1}), 1.0f);
  EXPECT_EQ(dense.At({3, 4}), 1.0f);
  // No cross-step spatial edges between different sensors.
  EXPECT_EQ(dense.At({0, 4}), 0.0f);
  EXPECT_EQ(dense.At({1, 5}), 0.0f);
}

TEST(TemporalGraphTest, TemporalEdgesConnectSameSensor) {
  Graph g = PathGraph(2);
  T::Tensor dense = BuildTemporalGraph(g.ToAdjacency(), 3).ToDense();
  // Sensor 0 at t=0 (node 0) -> t=1 (node 2).
  EXPECT_EQ(dense.At({0, 2}), 1.0f);
  EXPECT_EQ(dense.At({2, 4}), 1.0f);
  // Bidirectional option adds the reverse edge.
  EXPECT_EQ(dense.At({2, 0}), 1.0f);
  // No skip connections across two steps.
  EXPECT_EQ(dense.At({0, 4}), 0.0f);
}

TEST(TemporalGraphTest, PaperVariantIsForwardOnly) {
  Graph g = PathGraph(2);
  TemporalGraphOptions opts;
  opts.bidirectional_time = false;
  T::Tensor dense = BuildTemporalGraph(g.ToAdjacency(), 3, opts).ToDense();
  EXPECT_EQ(dense.At({0, 2}), 1.0f);  // forward edge (Eq. 4)
  EXPECT_EQ(dense.At({2, 0}), 0.0f);  // no backward edge
}

TEST(TemporalGraphTest, NormalizedRowsSumToOne) {
  Graph g = PathGraph(4);
  auto op = BuildNormalizedTemporalOp(g.ToAdjacency(), 3);
  T::Tensor dense = op.matrix().ToDense();
  EXPECT_TRUE(dyhsl::testing::RowStochastic(dense, 1e-5f));
}

TEST(TemporalGraphTest, NodeIndexConvention) {
  EXPECT_EQ(TemporalNodeIndex(0, 5, 10), 5);
  EXPECT_EQ(TemporalNodeIndex(2, 3, 10), 23);
}

TEST(TemporalGraphTest, NnzMatchesComplexityFormula) {
  // nnz = T * (||A||_0 + N) + 2 * (T-1) * N for the bidirectional variant —
  // the linear growth in T and ||A||_0 claimed in paper section IV-D.
  Graph g = PathGraph(5);
  T::CsrMatrix spatial = g.ToAdjacency();
  for (int64_t steps : {1, 2, 5, 8}) {
    T::CsrMatrix tg = BuildTemporalGraph(spatial, steps);
    int64_t want =
        steps * (spatial.nnz() + 5) + 2 * (steps - 1) * 5;
    EXPECT_EQ(tg.nnz(), want) << "steps=" << steps;
  }
}

}  // namespace
}  // namespace dyhsl::graph

namespace dyhsl::hypergraph {
namespace {

namespace T = ::dyhsl::tensor;

TEST(HypergraphTest, FromCommunitiesIncidence) {
  Hypergraph h = Hypergraph::FromCommunities({0, 0, 1, 1, 1});
  EXPECT_EQ(h.num_nodes(), 5);
  EXPECT_EQ(h.num_edges(), 2);
  T::Tensor inc = h.incidence().ToDense();
  EXPECT_EQ(inc.At({0, 0}), 1.0f);
  EXPECT_EQ(inc.At({4, 1}), 1.0f);
  EXPECT_EQ(inc.At({4, 0}), 0.0f);
}

TEST(HypergraphTest, NormalizedOperatorRowsSumToOne) {
  Hypergraph h = Hypergraph::FromCommunities({0, 0, 1, 1, 1, 2});
  T::Tensor g = h.NormalizedOperator().matrix().ToDense();
  EXPECT_TRUE(dyhsl::testing::RowStochastic(g, 1e-5f));
}

TEST(HypergraphTest, OperatorMixesOnlyWithinHyperedge) {
  Hypergraph h = Hypergraph::FromCommunities({0, 0, 1, 1});
  T::Tensor g = h.NormalizedOperator().matrix().ToDense();
  EXPECT_GT(g.At({0, 1}), 0.0f);
  EXPECT_EQ(g.At({0, 2}), 0.0f);
  EXPECT_EQ(g.At({3, 1}), 0.0f);
}

TEST(HypergraphTest, FactoredOperatorMatchesProductOperator) {
  // D_v^-1 Λ (D_e^-1 Λ^T x) must equal the materialized G x — same math,
  // two SpMMs instead of O(sum |e|^2) nonzeros.
  Hypergraph h = Hypergraph::FromCommunities({0, 0, 1, 1, 1, 2, 2, 0});
  FactoredIncidence f = h.FactoredOperator();
  T::Tensor product = h.NormalizedOperator().matrix().ToDense();
  T::Tensor via_factors =
      T::MatMul(f.edge_to_node.matrix().ToDense(),
                f.node_to_edge.matrix().ToDense());
  EXPECT_TENSOR_NEAR(via_factors, product, 1e-6f);
}

TEST(HypergraphTest, EmptyHyperedgeProducesNoPropagationAndNoNan) {
  // Incidence declares 3 hyperedges but only edges 0 and 2 have members:
  // the degenerate D_e^-1 scaling of edge 1 must be skipped, not 1/0.
  T::CsrMatrix inc = T::CsrMatrix::FromTriplets(
      4, 3, {{0, 0, 1.0f}, {1, 0, 1.0f}, {2, 2, 1.0f}, {3, 2, 1.0f}});
  Hypergraph h(4, 3, inc);
  for (const T::Tensor& m : {h.NormalizedOperator().matrix().ToDense(),
                             h.FactoredOperator().node_to_edge.matrix()
                                 .ToDense(),
                             h.FactoredOperator().edge_to_node.matrix()
                                 .ToDense()}) {
    for (int64_t i = 0; i < m.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(m.data()[i])) << "index " << i;
    }
  }
  // The empty hyperedge's row of D_e^-1 Λ^T stays empty.
  T::Tensor n2e = h.FactoredOperator().node_to_edge.matrix().ToDense();
  for (int64_t v = 0; v < 4; ++v) EXPECT_EQ(n2e.At({1, v}), 0.0f);
}

TEST(HypergraphTest, IsolatedNodeStaysIsolatedWithoutNan) {
  // Node 3 joins no hyperedge: its operator row must be all zero (the
  // zero-row contract of RowNormalized) and nothing may divide by its
  // zero degree.
  T::CsrMatrix inc = T::CsrMatrix::FromTriplets(
      4, 2, {{0, 0, 1.0f}, {1, 0, 1.0f}, {2, 1, 1.0f}});
  Hypergraph h(4, 2, inc);
  T::Tensor g = h.NormalizedOperator().matrix().ToDense();
  for (int64_t i = 0; i < g.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(g.data()[i]));
  }
  for (int64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(g.At({3, v}), 0.0f);
    EXPECT_EQ(g.At({v, 3}), 0.0f);
  }
  EXPECT_TRUE(
      dyhsl::testing::RowStochastic(g, 1e-5f, /*allow_zero_rows=*/true));
  // Propagating features through the factored form stays finite too.
  FactoredIncidence f = h.FactoredOperator();
  Rng rng(11);
  T::Tensor x = T::Tensor::Randn({4, 5}, &rng);
  T::Tensor y = T::SpMM(f.edge_to_node.matrix(),
                        T::SpMM(f.node_to_edge.matrix(), x));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(3);
  // Two blobs at +/- 10.
  T::Tensor pts({20, 2});
  for (int64_t i = 0; i < 10; ++i) {
    pts.Set({i, 0}, 10.0f + rng.Gaussian());
    pts.Set({i, 1}, 10.0f + rng.Gaussian());
    pts.Set({i + 10, 0}, -10.0f + rng.Gaussian());
    pts.Set({i + 10, 1}, -10.0f + rng.Gaussian());
  }
  std::vector<int64_t> labels = KMeansLabels(pts, 2, 10, &rng);
  for (int64_t i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int64_t i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(KMeansTest, FromKMeansBuildsValidHypergraph) {
  Rng rng(4);
  T::Tensor pts = T::Tensor::Randn({12, 3}, &rng);
  Hypergraph h = Hypergraph::FromKMeans(pts, 3, 5, &rng);
  EXPECT_EQ(h.num_nodes(), 12);
  EXPECT_LE(h.num_edges(), 3);
  // Every node belongs to exactly one hyperedge.
  T::Tensor inc = h.incidence().ToDense();
  for (int64_t v = 0; v < 12; ++v) {
    float degree = 0.0f;
    for (int64_t e = 0; e < h.num_edges(); ++e) degree += inc.At({v, e});
    EXPECT_EQ(degree, 1.0f);
  }
}

}  // namespace
}  // namespace dyhsl::hypergraph
