// Tests for model checkpointing: round trips, mismatch detection, and a
// trained-model save/restore through the public forecasting API.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/nn/layers.h"
#include "src/train/checkpoint.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl::train {
namespace {

namespace T = ::dyhsl::tensor;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, LinearRoundTrip) {
  Rng rng(3);
  nn::Linear source(4, 3, &rng);
  nn::Linear target(4, 3, &rng);  // different random init
  std::string path = TempPath("linear.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  auto a = source.NamedParameters();
  auto b = target.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TENSOR_EQ(a[i].second.value(), b[i].second.value());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  Rng rng(4);
  nn::Linear source(4, 3, &rng);
  nn::Linear wrong(5, 3, &rng);
  std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  Status status = LoadCheckpoint(&wrong, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsParameterCountMismatch) {
  Rng rng(5);
  nn::Linear source(4, 3, &rng, /*bias=*/true);
  nn::Linear no_bias(4, 3, &rng, /*bias=*/false);
  std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  EXPECT_FALSE(LoadCheckpoint(&no_bias, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  std::string path = TempPath("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(6);
  nn::Linear module(2, 2, &rng);
  Status status = LoadCheckpoint(&module, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  Rng rng(7);
  nn::Linear module(2, 2, &rng);
  Status status = LoadCheckpoint(&module, "/nonexistent/x.ckpt");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, TrainedDyHslRestoresExactPredictions) {
  data::TrafficDataset dataset = data::TrafficDataset::Generate(
      data::DatasetSpec::Pems08Like(0.1, 2, 9));
  ForecastTask task = ForecastTask::FromDataset(dataset);
  models::DyHslConfig cfg;
  cfg.hidden_dim = 8;
  cfg.prior_layers = 1;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 4;
  cfg.window_sizes = {1, 12};
  cfg.dropout = 0.0f;
  models::DyHsl trained(task, cfg);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 5;
  TrainModel(&trained, dataset, tc);

  std::string path = TempPath("dyhsl.ckpt");
  ASSERT_TRUE(SaveCheckpoint(trained, path).ok());

  models::DyHsl restored(task, cfg);
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());

  data::BatchIterator it(&dataset, {0, 2}, 2, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  T::Tensor y1 = trained.Forward(batch.x, false).value();
  T::Tensor y2 = restored.Forward(batch.x, false).value();
  EXPECT_TENSOR_EQ(y1, y2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dyhsl::train
