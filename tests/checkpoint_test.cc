// Tests for model checkpointing: round trips, mismatch detection, and a
// trained-model save/restore through the public forecasting API.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/nn/layers.h"
#include "src/train/checkpoint.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl::train {
namespace {

namespace T = ::dyhsl::tensor;

using ::dyhsl::testing::TempPath;

TEST(CheckpointTest, LinearRoundTrip) {
  Rng rng(3);
  nn::Linear source(4, 3, &rng);
  nn::Linear target(4, 3, &rng);  // different random init
  std::string path = TempPath("linear.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  auto a = source.NamedParameters();
  auto b = target.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TENSOR_EQ(a[i].second.value(), b[i].second.value());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  Rng rng(4);
  nn::Linear source(4, 3, &rng);
  nn::Linear wrong(5, 3, &rng);
  std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  Status status = LoadCheckpoint(&wrong, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsParameterCountMismatch) {
  Rng rng(5);
  nn::Linear source(4, 3, &rng, /*bias=*/true);
  nn::Linear no_bias(4, 3, &rng, /*bias=*/false);
  std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  EXPECT_FALSE(LoadCheckpoint(&no_bias, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  std::string path = TempPath("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(6);
  nn::Linear module(2, 2, &rng);
  Status status = LoadCheckpoint(&module, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  Rng rng(7);
  nn::Linear module(2, 2, &rng);
  Status status = LoadCheckpoint(&module, "/nonexistent/x.ckpt");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

namespace {

template <typename P>
void AppendPod(std::string* out, const P& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(P));
}

// Serializes `module` in the legacy DYH1 layout (no version byte).
std::string SerializeV1(const nn::Module& module) {
  std::string raw("DYH1", 4);
  auto named = module.NamedParameters();
  AppendPod<uint64_t>(&raw, named.size());
  for (const auto& [name, param] : named) {
    AppendPod<uint32_t>(&raw, static_cast<uint32_t>(name.size()));
    raw.append(name);
    const T::Tensor& value = param.value();
    AppendPod<uint32_t>(&raw, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      AppendPod<int64_t>(&raw, value.size(d));
    }
    raw.append(reinterpret_cast<const char*>(value.data()),
               value.numel() * sizeof(float));
  }
  return raw;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  if (f == nullptr) return bytes;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  return bytes;
}

std::vector<float> FlattenParams(const nn::Module& module) {
  std::vector<float> all;
  for (const auto& [name, param] : module.NamedParameters()) {
    const float* p = param.value().data();
    all.insert(all.end(), p, p + param.value().numel());
  }
  return all;
}

}  // namespace

TEST(CheckpointTest, WritesV2HeaderWithVersionByte) {
  Rng rng(8);
  nn::Linear module(2, 2, &rng);
  std::string path = TempPath("v2header.ckpt");
  ASSERT_TRUE(SaveCheckpoint(module, path).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 5u);
  EXPECT_EQ(bytes.substr(0, 4), "DYH2");
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 2);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacyV1FilesStillLoad) {
  Rng rng(9);
  nn::Linear source(3, 2, &rng);
  nn::Linear target(3, 2, &rng);  // different init
  std::string path = TempPath("legacy.ckpt");
  WriteFile(path, SerializeV1(source));
  ASSERT_TRUE(LoadCheckpoint(&target, path).ok());
  auto a = source.NamedParameters();
  auto b = target.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TENSOR_EQ(a[i].second.value(), b[i].second.value());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShardMetadataRoundTripsThroughV3) {
  Rng rng(21);
  nn::Linear source(4, 3, &rng);
  nn::Linear target(4, 3, &rng);
  ShardMeta meta;
  meta.shard_id = 1;
  meta.num_shards = 4;
  meta.global_begin = 256;
  meta.global_end = 512;
  meta.halo_count = 3;
  meta.total_nodes = 1024;
  std::string path = TempPath("shardmeta.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path, meta).ok());

  // The sharded format announces itself as version 3.
  std::string bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 5u);
  EXPECT_EQ(bytes.substr(0, 4), "DYH2");
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 3);

  // Metadata-only read (header bytes, no payload).
  ShardMeta peeked;
  ASSERT_TRUE(ReadCheckpointShardMeta(path, &peeked).ok());
  EXPECT_EQ(peeked.shard_id, 1);
  EXPECT_EQ(peeked.num_shards, 4);
  EXPECT_EQ(peeked.global_begin, 256);
  EXPECT_EQ(peeked.global_end, 512);
  EXPECT_EQ(peeked.halo_count, 3);
  EXPECT_EQ(peeked.total_nodes, 1024);

  // Full load restores parameters and surfaces the same metadata.
  ShardMeta loaded;
  ASSERT_TRUE(LoadCheckpoint(&target, path, &loaded).ok());
  EXPECT_TRUE(loaded.sharded());
  EXPECT_EQ(loaded.global_begin, 256);
  auto a = source.NamedParameters();
  auto b = target.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TENSOR_EQ(a[i].second.value(), b[i].second.value());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnshardedSavesStayVersion2AndYieldUnshardedMeta) {
  Rng rng(22);
  nn::Linear source(2, 2, &rng);
  nn::Linear target(2, 2, &rng);
  std::string path = TempPath("nometa.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  std::string bytes = ReadFile(path);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 2);  // byte-compatible format
  ShardMeta meta;
  meta.shard_id = 7;  // stale contents must be overwritten
  ASSERT_TRUE(LoadCheckpoint(&target, path, &meta).ok());
  EXPECT_FALSE(meta.sharded());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacyV1FilesYieldUnshardedMeta) {
  Rng rng(23);
  nn::Linear source(3, 2, &rng);
  nn::Linear target(3, 2, &rng);
  std::string path = TempPath("legacymeta.ckpt");
  WriteFile(path, SerializeV1(source));
  ShardMeta meta;
  meta.shard_id = 2;
  ASSERT_TRUE(LoadCheckpoint(&target, path, &meta).ok());
  EXPECT_FALSE(meta.sharded());
  ShardMeta peeked;
  ASSERT_TRUE(ReadCheckpointShardMeta(path, &peeked).ok());
  EXPECT_FALSE(peeked.sharded());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsCorruptShardMetadata) {
  Rng rng(24);
  nn::Linear source(2, 2, &rng);
  nn::Linear target(2, 2, &rng);
  ShardMeta meta;
  meta.shard_id = 0;
  meta.num_shards = 2;
  meta.global_begin = 0;
  meta.global_end = 4;
  meta.halo_count = 1;
  meta.total_nodes = 8;
  std::string path = TempPath("badmeta.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path, meta).ok());
  std::string bytes = ReadFile(path);
  // Corrupt the shard block: global_end (fourth int64, after magic +
  // version + shard_id + num_shards + global_begin) becomes negative.
  int64_t bad = -5;
  std::memcpy(bytes.data() + 4 + 1 + 3 * sizeof(int64_t), &bad,
              sizeof(bad));
  WriteFile(path, bytes);
  Status status = LoadCheckpoint(&target, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ShardMeta peeked;
  EXPECT_FALSE(ReadCheckpointShardMeta(path, &peeked).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsOverflowingShardMetadata) {
  // Hostile header: halo_count and total_nodes near INT64_MAX must be
  // rejected by the magnitude caps, not wrap the owned+halo sum.
  Rng rng(26);
  nn::Linear source(2, 2, &rng);
  nn::Linear target(2, 2, &rng);
  ShardMeta meta;
  meta.shard_id = 0;
  meta.num_shards = 2;
  meta.global_begin = 0;
  meta.global_end = 4;
  meta.halo_count = 1;
  meta.total_nodes = 8;
  std::string path = TempPath("overflowmeta.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path, meta).ok());
  std::string bytes = ReadFile(path);
  int64_t huge = std::numeric_limits<int64_t>::max();
  // halo_count is the fifth int64, total_nodes the sixth.
  std::memcpy(bytes.data() + 4 + 1 + 4 * sizeof(int64_t), &huge,
              sizeof(huge));
  std::memcpy(bytes.data() + 4 + 1 + 5 * sizeof(int64_t), &huge,
              sizeof(huge));
  WriteFile(path, bytes);
  Status status = LoadCheckpoint(&target, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveRejectsInconsistentShardMeta) {
  Rng rng(25);
  nn::Linear source(2, 2, &rng);
  ShardMeta meta;
  meta.shard_id = 3;
  meta.num_shards = 2;  // shard_id out of range
  meta.global_begin = 0;
  meta.global_end = 4;
  meta.total_nodes = 8;
  std::string path = TempPath("inconsistent.ckpt");
  Status status = SaveCheckpoint(source, path, meta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsUnsupportedVersion) {
  Rng rng(10);
  nn::Linear source(2, 2, &rng);
  std::string path = TempPath("v9.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  std::string bytes = ReadFile(path);
  bytes[4] = 9;  // future format version
  WriteFile(path, bytes);
  Status status = LoadCheckpoint(&source, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncationAtEveryPrefixFailsWithoutMutation) {
  Rng rng(11);
  nn::Linear source(3, 3, &rng);
  nn::Linear target(3, 3, &rng);
  std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  std::string bytes = ReadFile(path);
  std::vector<float> before = FlattenParams(target);
  // A handful of prefixes cutting through the header, a name, a shape and
  // the float payload.
  for (size_t len : {size_t{0}, size_t{3}, size_t{4}, size_t{5}, size_t{12},
                     size_t{20}, size_t{40}, bytes.size() - 7,
                     bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, len));
    Status status = LoadCheckpoint(&target, path);
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
    // Transactional: a failed load must leave the module untouched.
    EXPECT_EQ(FlattenParams(target), before) << "prefix length " << len;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsCorruptNameLengthAndRank) {
  Rng rng(12);
  nn::Linear source(2, 2, &rng);
  std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  std::string bytes = ReadFile(path);
  // Record starts after magic(4) + version(1) + count(8) = offset 13.
  {
    std::string hacked = bytes;
    uint32_t huge = 1u << 30;
    std::memcpy(hacked.data() + 13, &huge, sizeof(huge));
    WriteFile(path, hacked);
    EXPECT_EQ(LoadCheckpoint(&source, path).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Corrupt the rank field of the first record (offset 13 + 4 + name).
    auto named = source.NamedParameters();
    size_t rank_off = 13 + 4 + named[0].first.size();
    std::string hacked = bytes;
    uint32_t bad_rank = 99;
    std::memcpy(hacked.data() + rank_off, &bad_rank, sizeof(bad_rank));
    WriteFile(path, hacked);
    EXPECT_EQ(LoadCheckpoint(&source, path).code(),
              StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTrailingBytes) {
  Rng rng(13);
  nn::Linear source(2, 2, &rng);
  std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());
  std::string bytes = ReadFile(path) + "junk";
  WriteFile(path, bytes);
  EXPECT_EQ(LoadCheckpoint(&source, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrainedDyHslRestoresExactPredictions) {
  data::TrafficDataset dataset = data::TrafficDataset::Generate(
      data::DatasetSpec::Pems08Like(0.1, 2, 9));
  ForecastTask task = ForecastTask::FromDataset(dataset);
  models::DyHslConfig cfg;
  cfg.hidden_dim = 8;
  cfg.prior_layers = 1;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 4;
  cfg.window_sizes = {1, 12};
  cfg.dropout = 0.0f;
  models::DyHsl trained(task, cfg);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 5;
  TrainModel(&trained, dataset, tc);

  std::string path = TempPath("dyhsl.ckpt");
  ASSERT_TRUE(SaveCheckpoint(trained, path).ok());

  models::DyHsl restored(task, cfg);
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());

  data::BatchIterator it(&dataset, {0, 2}, 2, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  T::Tensor y1 = trained.Forward(batch.x, false).value();
  T::Tensor y2 = restored.Forward(batch.x, false).value();
  EXPECT_TENSOR_EQ(y1, y2);

  // The full (grad-free) evaluation pipeline must agree bit-for-bit too.
  EvalResult e1 = EvaluateModel(&trained, dataset, {0, 16}, 4);
  EvalResult e2 = EvaluateModel(&restored, dataset, {0, 16}, 4);
  EXPECT_EQ(e1.overall.mae, e2.overall.mae);
  EXPECT_EQ(e1.overall.rmse, e2.overall.rmse);
  EXPECT_EQ(e1.overall.mape, e2.overall.mape);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dyhsl::train
