// Shared helpers for the GoogleTest suites: tensor comparison with
// first-mismatch diagnostics and seeded-RNG fixtures.
//
// Keep this header test-only; production code must not include it.

#ifndef DYHSL_TESTS_TESTING_UTILS_H_
#define DYHSL_TESTS_TESTING_UTILS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/tensor/tensor.h"

namespace dyhsl::testing {

inline std::string ShapeToString(const tensor::Shape& shape) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "}";
  return os.str();
}

/// \brief Succeeds iff `actual` and `expected` have the same shape and agree
/// elementwise within `atol`. On failure reports the first mismatching flat
/// index plus both values, which the ad-hoc per-element loops this replaces
/// never did.
inline ::testing::AssertionResult TensorNear(const tensor::Tensor& actual,
                                             const tensor::Tensor& expected,
                                             float atol = 1e-4f) {
  if (actual.shape() != expected.shape()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: actual " << ShapeToString(actual.shape())
           << " vs expected " << ShapeToString(expected.shape());
  }
  const float* pa = actual.data();
  const float* pe = expected.data();
  for (int64_t i = 0; i < actual.numel(); ++i) {
    float diff = std::fabs(pa[i] - pe[i]);
    if (!(diff <= atol)) {  // negated so NaN also fails
      return ::testing::AssertionFailure()
             << "tensors differ at flat index " << i << ": actual " << pa[i]
             << " vs expected " << pe[i] << " (|diff| " << diff << " > atol "
             << atol << "); shape " << ShapeToString(actual.shape());
    }
  }
  return ::testing::AssertionSuccess();
}

/// \brief Succeeds iff both tensors have the same shape and are bitwise
/// identical — for determinism and checkpoint round-trip tests where "close"
/// is not good enough.
inline ::testing::AssertionResult TensorEq(const tensor::Tensor& actual,
                                           const tensor::Tensor& expected) {
  if (actual.shape() != expected.shape()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: actual " << ShapeToString(actual.shape())
           << " vs expected " << ShapeToString(expected.shape());
  }
  const float* pa = actual.data();
  const float* pe = expected.data();
  for (int64_t i = 0; i < actual.numel(); ++i) {
    // Bit comparison, not ==: identical NaNs must pass, +0.0/-0.0 must not.
    if (std::memcmp(&pa[i], &pe[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "tensors differ at flat index " << i << ": actual " << pa[i]
             << " vs expected " << pe[i] << "; shape "
             << ShapeToString(actual.shape());
    }
  }
  return ::testing::AssertionSuccess();
}

/// \brief Succeeds iff every row of a 2-D tensor sums to 1 within `atol`.
/// Rows that are entirely zero pass when `allow_zero_rows` is set (a
/// row-normalized sparse matrix keeps empty rows empty).
inline ::testing::AssertionResult RowStochastic(const tensor::Tensor& m,
                                                float atol = 1e-5f,
                                                bool allow_zero_rows = false) {
  if (m.dim() != 2) {
    return ::testing::AssertionFailure()
           << "expected a 2-D tensor, got shape " << ShapeToString(m.shape());
  }
  for (int64_t r = 0; r < m.size(0); ++r) {
    float sum = 0.0f;
    bool has_entries = false;
    for (int64_t c = 0; c < m.size(1); ++c) {
      float v = m.At({r, c});
      sum += v;
      has_entries |= v != 0.0f;
    }
    if (!has_entries && allow_zero_rows) continue;
    if (std::fabs(sum - 1.0f) > atol) {
      return ::testing::AssertionFailure()
             << "row " << r << " sums to " << sum << " (atol " << atol << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// \brief Largest elementwise |a - b|. Shapes must match; useful for "the
/// outputs must differ" assertions where a boolean comparison hides by how
/// much.
inline float MaxAbsDiff(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) {
    ADD_FAILURE() << "MaxAbsDiff shape mismatch: " << ShapeToString(a.shape())
                  << " vs " << ShapeToString(b.shape());
    return 0.0f;
  }
  float max_dev = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_dev = std::max(max_dev, std::fabs(a.data()[i] - b.data()[i]));
  }
  return max_dev;
}

/// \brief Sum of elementwise |a - b| (L1 distance between tensors).
inline float SumAbsDiff(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) {
    ADD_FAILURE() << "SumAbsDiff shape mismatch: " << ShapeToString(a.shape())
                  << " vs " << ShapeToString(b.shape());
    return 0.0f;
  }
  float total = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += std::fabs(a.data()[i] - b.data()[i]);
  }
  return total;
}

/// \brief EXPECT_-style wrapper around TensorNear.
#define EXPECT_TENSOR_NEAR(actual, expected, atol) \
  EXPECT_TRUE(::dyhsl::testing::TensorNear((actual), (expected), (atol)))

/// \brief ASSERT_-style wrapper around TensorNear.
#define ASSERT_TENSOR_NEAR(actual, expected, atol) \
  ASSERT_TRUE(::dyhsl::testing::TensorNear((actual), (expected), (atol)))

/// \brief EXPECT_-style wrapper around TensorEq.
#define EXPECT_TENSOR_EQ(actual, expected) \
  EXPECT_TRUE(::dyhsl::testing::TensorEq((actual), (expected)))

/// \brief Path under the GoogleTest temp dir for scratch files.
inline std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// \brief Fixture owning a deterministically seeded Rng.
class SeededTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDefaultSeed = 42;

  Rng rng_{kDefaultSeed};
};

}  // namespace dyhsl::testing

#endif  // DYHSL_TESTS_TESTING_UTILS_H_
