// Unit tests for core utilities: Status/Result, Rng, run profiles, and
// the ThreadBudget / TeamScope parallelism layer.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/core/status.h"

namespace dyhsl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kIoError,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Split();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

TEST(ParallelismTest, HonorsCapAndOverride) {
  // Without OpenMP the configured count is always 1; with it the cap and
  // the DYHSL_THREADS override must both be respected.
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    GTEST_SKIP() << "OMP_NUM_THREADS set by the environment";
  }
  // Clear any ambient override so the cap branch is actually exercised.
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  int capped = ConfigureParallelism(/*max_threads=*/2);
  EXPECT_GE(capped, 1);
  EXPECT_LE(capped, 2);

  ASSERT_EQ(setenv("DYHSL_THREADS", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(ConfigureParallelism(8), 1);
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  // Thread count is process-global OpenMP state; restore the default policy
  // so later tests in this binary are not pinned to one thread.
  ConfigureParallelism();
}

TEST(ParallelismTest, RejectsMalformedDyhslThreads) {
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    GTEST_SKIP() << "OMP_NUM_THREADS set by the environment";
  }
  // Baseline: the hardware-cap branch with no override present at all.
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  const int baseline = ConfigureParallelism(/*max_threads=*/2);
  // Every one of these used to be mis-parsed by atoi ("4abc" -> 4) or
  // silently swallowed; strict parsing must treat them all exactly like
  // an unset variable.
  for (const char* junk : {"4abc", "0", "-3", "abc", "", "  ", "2.5",
                           "99999999999999999999"}) {
    ASSERT_EQ(setenv("DYHSL_THREADS", junk, /*overwrite=*/1), 0);
    EXPECT_EQ(ConfigureParallelism(/*max_threads=*/2), baseline)
        << "DYHSL_THREADS='" << junk << "'";
  }
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  ConfigureParallelism();
}

TEST(ParallelismTest, DyhslThreadsIsCappedAtMaxThreads) {
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    GTEST_SKIP() << "OMP_NUM_THREADS set by the environment";
  }
  ASSERT_EQ(setenv("DYHSL_THREADS", "64", /*overwrite=*/1), 0);
  const int n = ConfigureParallelism(/*max_threads=*/2);
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 2);  // never 64, whatever the hardware
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  ConfigureParallelism();
}

TEST(ParallelismTest, OmpNumThreadsPathHonorsTheCap) {
  // The early-return path used to hand back omp_get_max_threads()
  // uncapped; the documented max_threads cap applies there too.
  const bool had = std::getenv("OMP_NUM_THREADS") != nullptr;
  if (!had) {
    ASSERT_EQ(setenv("OMP_NUM_THREADS", "16", /*overwrite=*/1), 0);
  }
  const int n = ConfigureParallelism(/*max_threads=*/2);
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 2);
  if (!had) {
    ASSERT_EQ(unsetenv("OMP_NUM_THREADS"), 0);
    ConfigureParallelism();
  }
}

TEST(ThreadBudgetTest, PartitionNeverOversubscribes) {
  for (int total = 1; total <= 9; ++total) {
    for (int workers = 1; workers <= 12; ++workers) {
      core::ThreadBudget budget = core::ThreadBudget::Partition(total, workers);
      EXPECT_EQ(budget.total, total);
      EXPECT_GE(budget.num_workers, 1);
      EXPECT_GE(budget.team_size, 1);
      EXPECT_LE(budget.num_workers * budget.team_size, total)
          << total << " across " << workers;
      EXPECT_LE(budget.num_workers, workers);
    }
  }
}

TEST(ThreadBudgetTest, PartitionSplitsAndClamps) {
  core::ThreadBudget even = core::ThreadBudget::Partition(4, 2);
  EXPECT_EQ(even.num_workers, 2);
  EXPECT_EQ(even.team_size, 2);
  // Leftover threads stay idle rather than oversubscribe.
  core::ThreadBudget ragged = core::ThreadBudget::Partition(5, 2);
  EXPECT_EQ(ragged.team_size, 2);
  // More workers than threads: workers clamp to the budget.
  core::ThreadBudget thin = core::ThreadBudget::Partition(2, 8);
  EXPECT_EQ(thin.num_workers, 2);
  EXPECT_EQ(thin.team_size, 1);
  // Degenerate inputs clamp to one thread.
  core::ThreadBudget degenerate = core::ThreadBudget::Partition(0, 0);
  EXPECT_EQ(degenerate.total, 1);
  EXPECT_EQ(degenerate.num_workers, 1);
  EXPECT_EQ(degenerate.team_size, 1);
}

TEST(TeamScopeTest, OverridesNestsAndRestores) {
  const int ambient = core::TeamThreads();
  EXPECT_GE(ambient, 1);
  {
    core::TeamScope outer(3);
    EXPECT_EQ(core::TeamThreads(), 3);
    {
      core::TeamScope inner(1);
      EXPECT_EQ(core::TeamThreads(), 1);
    }
    EXPECT_EQ(core::TeamThreads(), 3);
    {
      core::TeamScope clamped(0);  // clamps to >= 1
      EXPECT_EQ(core::TeamThreads(), 1);
    }
  }
  EXPECT_EQ(core::TeamThreads(), ambient);
}

TEST(TeamScopeTest, ScopeIsThreadLocal) {
  core::TeamScope mine(2);
  int seen_in_peer = -1;
  std::thread peer([&] { seen_in_peer = core::TeamThreads(); });
  peer.join();
  // The peer never entered a scope, so it sees the ambient default, not
  // this thread's override.
  EXPECT_EQ(core::TeamThreads(), 2);
  EXPECT_NE(seen_in_peer, -1);
  EXPECT_GE(seen_in_peer, 1);
}

TEST(ThreadBudgetTest, ScopedWorkersNeverExceedBudget) {
  // The oversubscription regression: 2 workers, each scoping kernels to
  // its ThreadBudget slice, must never have more than `total` kernel
  // threads live at once — even when the ambient OpenMP default would
  // give every worker a full team.
  const core::ThreadBudget budget = core::ThreadBudget::Partition(4, 2);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(budget.num_workers));
  for (int w = 0; w < budget.num_workers; ++w) {
    workers.emplace_back([&] {
      core::TeamScope team(budget.team_size);
      for (int i = 0; i < 40; ++i) {
        const int ran =
            core::TeamConcurrencyProbe(&live, &peak, /*spin_micros=*/200);
        EXPECT_GE(ran, 1);
        EXPECT_LE(ran, budget.team_size);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), budget.total);
}

TEST(ParallelismTest, AvailableCoresMatchesHardwareThreads) {
  const std::vector<int> cores = core::AvailableCores();
  ASSERT_FALSE(cores.empty());
  EXPECT_EQ(static_cast<int>(cores.size()), core::HardwareThreads());
  EXPECT_TRUE(std::is_sorted(cores.begin(), cores.end()));
  for (int c : cores) EXPECT_GE(c, 0);
}

TEST(ParallelismTest, PinCurrentThreadValidatesAndPins) {
  EXPECT_EQ(core::PinCurrentThread({}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(core::PinCurrentThread({-1}).code(),
            StatusCode::kInvalidArgument);
  // Pin to everything we are already allowed to run on: must succeed and
  // must not wedge this thread.
  const std::vector<int> cores = core::AvailableCores();
  Status pinned = core::PinCurrentThread(cores);
  EXPECT_TRUE(pinned.ok()) << pinned.ToString();
}

TEST(ProfileTest, ParseNames) {
  EXPECT_EQ(ParseRunProfile("tiny"), RunProfile::kTiny);
  EXPECT_EQ(ParseRunProfile("full"), RunProfile::kFull);
  EXPECT_EQ(ParseRunProfile("quick"), RunProfile::kQuick);
  EXPECT_EQ(ParseRunProfile("garbage"), RunProfile::kQuick);
}

TEST(ProfileTest, KnobsMonotoneInScale) {
  ProfileKnobs tiny = GetProfileKnobs(RunProfile::kTiny);
  ProfileKnobs quick = GetProfileKnobs(RunProfile::kQuick);
  ProfileKnobs full = GetProfileKnobs(RunProfile::kFull);
  EXPECT_LT(tiny.node_scale, quick.node_scale);
  EXPECT_LT(quick.node_scale, full.node_scale);
  EXPECT_LE(tiny.train_epochs, quick.train_epochs);
  EXPECT_LE(quick.train_epochs, full.train_epochs);
}

TEST(ProfileTest, RoundTripNames) {
  for (RunProfile p :
       {RunProfile::kTiny, RunProfile::kQuick, RunProfile::kFull}) {
    EXPECT_EQ(ParseRunProfile(RunProfileName(p)), p);
  }
}

}  // namespace
}  // namespace dyhsl
