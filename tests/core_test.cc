// Unit tests for core utilities: Status/Result, Rng, run profiles.

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/core/status.h"

namespace dyhsl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kIoError,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Split();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

TEST(ParallelismTest, HonorsCapAndOverride) {
  // Without OpenMP the configured count is always 1; with it the cap and
  // the DYHSL_THREADS override must both be respected.
  if (std::getenv("OMP_NUM_THREADS") != nullptr) {
    GTEST_SKIP() << "OMP_NUM_THREADS set by the environment";
  }
  // Clear any ambient override so the cap branch is actually exercised.
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  int capped = ConfigureParallelism(/*max_threads=*/2);
  EXPECT_GE(capped, 1);
  EXPECT_LE(capped, 2);

  ASSERT_EQ(setenv("DYHSL_THREADS", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(ConfigureParallelism(8), 1);
  ASSERT_EQ(unsetenv("DYHSL_THREADS"), 0);
  // Thread count is process-global OpenMP state; restore the default policy
  // so later tests in this binary are not pinned to one thread.
  ConfigureParallelism();
}

TEST(ProfileTest, ParseNames) {
  EXPECT_EQ(ParseRunProfile("tiny"), RunProfile::kTiny);
  EXPECT_EQ(ParseRunProfile("full"), RunProfile::kFull);
  EXPECT_EQ(ParseRunProfile("quick"), RunProfile::kQuick);
  EXPECT_EQ(ParseRunProfile("garbage"), RunProfile::kQuick);
}

TEST(ProfileTest, KnobsMonotoneInScale) {
  ProfileKnobs tiny = GetProfileKnobs(RunProfile::kTiny);
  ProfileKnobs quick = GetProfileKnobs(RunProfile::kQuick);
  ProfileKnobs full = GetProfileKnobs(RunProfile::kFull);
  EXPECT_LT(tiny.node_scale, quick.node_scale);
  EXPECT_LT(quick.node_scale, full.node_scale);
  EXPECT_LE(tiny.train_epochs, quick.train_epochs);
  EXPECT_LE(quick.train_epochs, full.train_epochs);
}

TEST(ProfileTest, RoundTripNames) {
  for (RunProfile p :
       {RunProfile::kTiny, RunProfile::kQuick, RunProfile::kFull}) {
    EXPECT_EQ(ParseRunProfile(RunProfileName(p)), p);
  }
}

}  // namespace
}  // namespace dyhsl
