// Tests for the DyHSL model: block semantics, shapes, gradient flow,
// ablation switches, and end-to-end training on a tiny dataset.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/inference.h"
#include "src/autograd/ops.h"
#include "src/data/dataset.h"
#include "src/graph/temporal_graph.h"
#include "src/models/blocks.h"
#include "src/models/dyhsl.h"
#include "src/tensor/ops.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl::models {
namespace {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

data::DatasetSpec TinySpec() {
  data::DatasetSpec spec = data::DatasetSpec::Pems08Like(0.1, 2, /*seed=*/5);
  return spec;
}

class DyHslModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<data::TrafficDataset>(
        data::TrafficDataset::Generate(TinySpec()));
    task_ = train::ForecastTask::FromDataset(*dataset_);
    config_.hidden_dim = 16;
    config_.prior_layers = 2;
    config_.mhce_layers = 1;
    config_.num_hyperedges = 8;
    config_.window_sizes = {1, 3, 12};
    config_.dropout = 0.0f;
  }

  tensor::Tensor MakeBatch(int64_t b) const {
    data::BatchIterator it(dataset_.get(), {0, b}, b, false, 1);
    data::BatchIterator::Batch batch;
    EXPECT_TRUE(it.Next(&batch));
    return batch.x;
  }

  std::unique_ptr<data::TrafficDataset> dataset_;
  train::ForecastTask task_;
  DyHslConfig config_;
};

TEST_F(DyHslModelTest, ForwardShape) {
  DyHsl model(task_, config_);
  tensor::Tensor x = MakeBatch(3);
  ag::Variable y = model.Forward(x, /*training=*/false);
  EXPECT_EQ(y.shape(), (T::Shape{3, task_.horizon, task_.num_nodes}));
}

TEST_F(DyHslModelTest, OutputIsRawScale) {
  DyHsl model(task_, config_);
  tensor::Tensor x = MakeBatch(2);
  ag::Variable y = model.Forward(x, false);
  // Raw flow is O(100); an untrained head outputs near the scaler mean.
  float mean = T::MeanAllScalar(y.value());
  EXPECT_NEAR(mean, task_.scaler_mean, 3.0f * task_.scaler_std);
}

TEST_F(DyHslModelTest, GradientsReachAllParameters) {
  DyHsl model(task_, config_);
  tensor::Tensor x = MakeBatch(2);
  ag::Variable y = model.Forward(x, /*training=*/true);
  ag::MeanAll(y).Backward();
  int64_t with_grad = 0, total = 0;
  for (const auto& p : model.Parameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_EQ(with_grad, total);
}

TEST_F(DyHslModelTest, DeterministicForwardInEval) {
  DyHsl model(task_, config_);
  tensor::Tensor x = MakeBatch(2);
  T::Tensor y1 = model.Forward(x, false).value();
  T::Tensor y2 = model.Forward(x, false).value();
  EXPECT_TENSOR_EQ(y1, y2);
}

TEST_F(DyHslModelTest, GradFreeForwardBitIdenticalToTaped) {
  DyHsl model(task_, config_);
  T::Tensor x = MakeBatch(3);
  T::Tensor taped = model.Forward(x, /*training=*/false).value();
  ag::InferenceModeGuard no_grad;
  T::Tensor grad_free = model.Forward(x, /*training=*/false).value();
  EXPECT_TENSOR_EQ(grad_free, taped);
}

TEST_F(DyHslModelTest, IncidenceShapeMatchesEq6) {
  DyHsl model(task_, config_);
  tensor::Tensor x = MakeBatch(2);
  T::Tensor inc = model.IncidenceFor(x);
  EXPECT_EQ(inc.shape(),
            (T::Shape{2, task_.history * task_.num_nodes,
                      config_.num_hyperedges}));
}

TEST_F(DyHslModelTest, ScaleWeightsSoftmaxNormalized) {
  DyHsl model(task_, config_);
  std::vector<float> w = model.ScaleWeights();
  ASSERT_EQ(w.size(), config_.window_sizes.size());
  float sum = 0.0f;
  for (float v : w) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST_F(DyHslModelTest, AblationNslHasFewerTrainableParams) {
  DyHslConfig nsl = config_;
  nsl.structure_learning = StructureLearning::kFixedRandom;
  DyHsl full(task_, config_);
  DyHsl ablated(task_, nsl);
  // NSL freezes the incidence weight (d x I fewer trainable parameters).
  EXPECT_EQ(full.ParameterCount() - ablated.ParameterCount(),
            config_.hidden_dim * config_.num_hyperedges);
}

TEST_F(DyHslModelTest, AblationFromScratchExplodesParamCount) {
  DyHslConfig fs = config_;
  fs.structure_learning = StructureLearning::kFromScratch;
  DyHsl full(task_, config_);
  DyHsl scratch(task_, fs);
  // FS learns dense (R x R) adjacencies -> far more parameters (Table V's
  // point about the low-rank design).
  EXPECT_GT(scratch.ParameterCount(), 2 * full.ParameterCount());
}

TEST_F(DyHslModelTest, AblationVariantsForwardCleanly) {
  for (StructureLearning mode :
       {StructureLearning::kLowRank, StructureLearning::kFixedRandom,
        StructureLearning::kFromScratch}) {
    DyHslConfig cfg = config_;
    cfg.structure_learning = mode;
    DyHsl model(task_, cfg);
    tensor::Tensor x = MakeBatch(2);
    ag::Variable y = model.Forward(x, true);
    EXPECT_EQ(y.size(0), 2);
    for (float v : y.value().ToVector()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_F(DyHslModelTest, NoIgcVariantRunsAndShrinksGraph) {
  DyHslConfig cfg = config_;
  cfg.use_igc = false;
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  ag::Variable y = model.Forward(x, true);
  ag::MeanAll(y).Backward();
  // IGC projections exist but receive no gradient when the block is off.
  int64_t untouched = 0;
  for (const auto& p : model.Parameters()) {
    if (!p.has_grad()) ++untouched;
  }
  EXPECT_GT(untouched, 0);
}

TEST_F(DyHslModelTest, SingleScaleConfig) {
  DyHslConfig cfg = config_;
  cfg.window_sizes = {1};
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  EXPECT_EQ(model.Forward(x, false).size(1), task_.horizon);
}

// Largest |a - b| relative to the magnitude of `b` (floored at 1).
float MaxRelDiff(const T::Tensor& a, const T::Tensor& b) {
  float scale = 1.0f;
  for (int64_t i = 0; i < b.numel(); ++i) {
    scale = std::max(scale, std::fabs(b.data()[i]));
  }
  return dyhsl::testing::MaxAbsDiff(a, b) / scale;
}

TEST_F(DyHslModelTest, SparseTopKFullWidthAgreesWithDensePath) {
  // sparse_topk == num_hyperedges keeps every Λ entry: the CSR execution
  // must reproduce the dense path to float accumulation-order tolerance.
  // This is the sparse-vs-dense forward agreement bar of the sparse-first
  // refactor (<= 1e-4 relative).
  DyHslConfig sparse_cfg = config_;
  sparse_cfg.sparse_topk = config_.num_hyperedges;
  DyHsl dense_model(task_, config_);
  DyHsl sparse_model(task_, sparse_cfg);
  tensor::Tensor x = MakeBatch(3);
  T::Tensor dense_out = dense_model.Forward(x, false).value();
  T::Tensor sparse_out = sparse_model.Forward(x, false).value();
  EXPECT_LE(MaxRelDiff(sparse_out, dense_out), 1e-4f);
}

TEST_F(DyHslModelTest, SparseTopKGradientsReachAllParameters) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;  // genuinely sparse: keep 2 of 8 hyperedges per row
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  ag::Variable pred = model.Forward(x, /*training=*/true);
  ag::MeanAll(pred).Backward();
  for (const auto& param : model.Parameters()) {
    EXPECT_TRUE(param.has_grad());
  }
}

TEST_F(DyHslModelTest, SparseTopKForwardIsFiniteAndTracksDense) {
  // k < I is an approximation: it cannot match dense exactly, but at
  // small k it must stay finite and in the same ballpark (the kept
  // entries dominate Λ by construction).
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;
  DyHsl dense_model(task_, config_);
  DyHsl sparse_model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  T::Tensor dense_out = dense_model.Forward(x, false).value();
  T::Tensor sparse_out = sparse_model.Forward(x, false).value();
  for (int64_t i = 0; i < sparse_out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(sparse_out.data()[i]));
  }
  EXPECT_EQ(sparse_out.shape(), dense_out.shape());
}

TEST_F(DyHslModelTest, SparseTopKGradFreeBitIdenticalToTaped) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 3;
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  T::Tensor taped = model.Forward(x, false).value();
  ag::InferenceModeGuard no_grad;
  T::Tensor grad_free = model.Forward(x, false).value();
  EXPECT_TENSOR_EQ(grad_free, taped);
}

TEST_F(DyHslModelTest, PatternReuseAgreesWithSelectEveryStep) {
  // The tentpole acceptance bar: at the default drift threshold, the
  // cached-pattern model must agree with fresh selection to <= 1e-4
  // relative on repeated forwards over the same and near-identical inputs.
  DyHslConfig fresh_cfg = config_;
  fresh_cfg.sparse_topk = 2;
  DyHslConfig reuse_cfg = fresh_cfg;
  reuse_cfg.sparse_pattern_reuse = true;
  DyHsl fresh_model(task_, fresh_cfg);
  DyHsl reuse_model(task_, reuse_cfg);
  tensor::Tensor x = MakeBatch(2);
  for (int step = 0; step < 3; ++step) {
    // Same parameters (same seed) -> same Λ; repeated steps exercise the
    // reuse path after the first.
    T::Tensor want = fresh_model.Forward(x, false).value();
    T::Tensor got = reuse_model.Forward(x, false).value();
    EXPECT_LE(MaxRelDiff(got, want), 1e-4f) << "step " << step;
  }
}

TEST_F(DyHslModelTest, PatternReuseCacheStatsShowReuses) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;
  cfg.sparse_pattern_reuse = true;
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  model.Forward(x, false);
  auto cold = model.dhsl().PatternCacheStats();
  EXPECT_GT(cold.selects, 0);
  model.Forward(x, false);
  auto warm = model.dhsl().PatternCacheStats();
  // Identical input and parameters: every selection after the first
  // forward's cold misses is a zero-drift reuse.
  EXPECT_GT(warm.reuses, cold.reuses);
  EXPECT_EQ(warm.selects, cold.selects);
  EXPECT_EQ(warm.drift_reselects, 0);
  model.dhsl().ClearPatternCache();
  model.Forward(x, false);
  EXPECT_GT(model.dhsl().PatternCacheStats().selects, warm.selects);
}

TEST_F(DyHslModelTest, PatternReuseGradientsStayFiniteAndComplete) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;
  cfg.sparse_pattern_reuse = true;
  DyHsl model(task_, cfg);
  tensor::Tensor x = MakeBatch(2);
  model.Forward(x, false);  // warm the cache so training hits reuse
  ag::Variable pred = model.Forward(x, /*training=*/true);
  ag::MeanAll(pred).Backward();
  for (const auto& param : model.Parameters()) {
    EXPECT_TRUE(param.has_grad());
  }
}

using DyHslModelDeathTest = DyHslModelTest;

TEST_F(DyHslModelDeathTest, RejectsPatternReuseWithoutSparseTopK) {
  DyHslConfig cfg = config_;
  cfg.sparse_pattern_reuse = true;  // but sparse_topk stays 0
  EXPECT_DEATH(DyHsl(task_, cfg), "pattern_reuse requires sparse_topk");
}

TEST_F(DyHslModelDeathTest, RejectsOutOfRangeDriftThreshold) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;
  cfg.sparse_pattern_reuse = true;
  cfg.sparse_drift_threshold = -0.5f;
  EXPECT_DEATH(DyHsl(task_, cfg), "drift_threshold");
}

TEST_F(DyHslModelDeathTest, RejectsSparseTopKAboveHyperedgeCount) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = cfg.num_hyperedges + 1;
  EXPECT_DEATH(DyHsl(task_, cfg), "exceeds num_hyperedges");
}

TEST_F(DyHslModelDeathTest, RejectsSparseTopKWithFromScratch) {
  DyHslConfig cfg = config_;
  cfg.sparse_topk = 2;
  cfg.structure_learning = StructureLearning::kFromScratch;
  EXPECT_DEATH(DyHsl(task_, cfg), "incidence-based structure mode");
}

TEST_F(DyHslModelDeathTest, RejectsNonDividingWindowSize) {
  DyHslConfig cfg = config_;
  cfg.window_sizes = {1, 5};  // history is 12; 5 does not divide it
  EXPECT_DEATH(DyHsl(task_, cfg), "must divide the history length");
}

TEST_F(DyHslModelDeathTest, RejectsZeroWindowSize) {
  // Regression: a zero window used to hit `history % 0` (UB) before any
  // validation fired.
  DyHslConfig cfg = config_;
  cfg.window_sizes = {1, 0};
  EXPECT_DEATH(DyHsl(task_, cfg), "window sizes must be positive");
}

TEST_F(DyHslModelDeathTest, RejectsNegativeWindowSize) {
  DyHslConfig cfg = config_;
  cfg.window_sizes = {-3};
  EXPECT_DEATH(DyHsl(task_, cfg), "window sizes must be positive");
}

TEST(DhslBlockTest, OutputShapeAndFiniteness) {
  Rng rng(3);
  DhslBlock block(8, 4, &rng);
  ag::Variable h(T::Tensor::Randn({2, 12, 8}, &rng), true);
  ag::Variable f = block.Forward(h);
  EXPECT_EQ(f.shape(), (T::Shape{2, 12, 8}));
  ag::Variable inc = block.Incidence(h);
  EXPECT_EQ(inc.shape(), (T::Shape{2, 12, 4}));
  ag::MeanAll(f).Backward();
  EXPECT_TRUE(h.has_grad());
}

TEST(DhslBlockTest, HyperedgeMixingIsGlobal) {
  // A change in one node's features must reach every node connected through
  // the dense learned incidence (non-pairwise propagation).
  Rng rng(4);
  DhslBlock block(4, 3, &rng);
  T::Tensor base = T::Tensor::Randn({1, 6, 4}, &rng);
  T::Tensor bumped = base.Clone();
  bumped.data()[0] += 1.0f;  // perturb node 0
  T::Tensor f0 = block.Forward(ag::Variable(base)).value();
  T::Tensor f1 = block.Forward(ag::Variable(bumped)).value();
  // Node 5 (last row) output changes although it is "far" from node 0.
  float delta = 0.0f;
  for (int64_t c = 0; c < 4; ++c) {
    delta += std::fabs(f1.At({0, 5, c}) - f0.At({0, 5, c}));
  }
  EXPECT_GT(delta, 1e-6f);
}

TEST(IgcBlockTest, InteractionIsSecondOrder) {
  // Doubling the input must scale the linear path by ~2 but the
  // interaction path by ~4 pre-activation; outputs must differ from a
  // purely linear response.
  Rng rng(5);
  IgcBlock block(4, &rng);
  auto adj = T::SparseOp::Create(
      graph::BuildTemporalGraph(T::CsrMatrix::Identity(2), 3)
          .RowNormalized());
  T::Tensor x = T::Tensor::Randn({1, 6, 4}, &rng, 0.1f);
  T::Tensor x2 = x.Clone();
  T::ScaleInPlace(&x2, 2.0f);
  T::Tensor y1 = block.Forward(adj, ag::Variable(x)).value();
  T::Tensor y2 = block.Forward(adj, ag::Variable(x2)).value();
  // If the block were linear, y2 == 2*y1 exactly.
  T::Tensor doubled = y1.Clone();
  T::ScaleInPlace(&doubled, 2.0f);
  EXPECT_GT(dyhsl::testing::MaxAbsDiff(y2, doubled), 1e-4f);
}

TEST(PriorGraphEncoderTest, EncodesJointSpatioTemporal) {
  Rng rng(6);
  auto spatial = T::CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  auto op = graph::BuildNormalizedTemporalOp(spatial, 4);
  PriorGraphEncoder enc(3, 4, 2, 8, 2, op, &rng);
  ag::Variable x(T::Tensor::Randn({2, 4, 3, 2}, &rng));
  ag::Variable h = enc.Forward(x);
  EXPECT_EQ(h.shape(), (T::Shape{2, 12, 8}));
  // Perturbing sensor 0 at t=0 must affect sensor 1 at t=1: one spatial
  // hop plus one temporal hop, within reach of the 2 conv layers.
  T::Tensor base = T::Tensor::Randn({1, 4, 3, 2}, &rng);
  T::Tensor bumped = base.Clone();
  bumped.data()[0] += 3.0f;
  T::Tensor h0 = enc.Forward(ag::Variable(base)).value();
  T::Tensor h1 = enc.Forward(ag::Variable(bumped)).value();
  int64_t far_row = graph::TemporalNodeIndex(1, 1, 3);
  float delta = 0.0f;
  for (int64_t c = 0; c < 8; ++c) {
    delta += std::fabs(h1.At({0, far_row, c}) - h0.At({0, far_row, c}));
  }
  EXPECT_GT(delta, 1e-6f);
}

TEST(DyHslTrainingTest, LossDecreasesOnTinyDataset) {
  data::TrafficDataset dataset =
      data::TrafficDataset::Generate(TinySpec());
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  DyHslConfig config;
  config.hidden_dim = 12;
  config.prior_layers = 1;
  config.mhce_layers = 1;
  config.num_hyperedges = 4;
  config.window_sizes = {1, 12};
  config.dropout = 0.0f;
  DyHsl model(task, config);

  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 10;
  tc.learning_rate = 2e-3f;
  train::TrainResult result = train::TrainModel(&model, dataset, tc);
  ASSERT_EQ(result.epochs_run, 3);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front() * 0.8)
      << "first " << result.epoch_losses.front() << " last "
      << result.epoch_losses.back();
}

TEST(DyHslTrainingTest, EvaluateBeatsNaiveMeanAfterTraining) {
  data::TrafficDataset dataset =
      data::TrafficDataset::Generate(TinySpec());
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  DyHslConfig config;
  config.hidden_dim = 12;
  config.prior_layers = 1;
  config.mhce_layers = 1;
  config.num_hyperedges = 4;
  config.window_sizes = {1, 12};
  config.dropout = 0.0f;
  DyHsl model(task, config);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 12;
  tc.learning_rate = 2e-3f;
  train::TrainModel(&model, dataset, tc);
  train::EvalResult eval = train::EvaluateModel(
      &model, dataset, dataset.test_range(), 8, /*max_batches=*/6);
  // Naive baseline: predict the global mean everywhere.
  data::BatchIterator it(&dataset, dataset.test_range(), 8, false, 1);
  data::BatchIterator::Batch batch;
  metrics::MetricAccumulator naive;
  int64_t batches = 0;
  while (it.Next(&batch) && batches < 6) {
    T::Tensor constant = T::Tensor::Full(batch.y.shape(), task.scaler_mean);
    naive.Add(constant, batch.y);
    ++batches;
  }
  EXPECT_LT(eval.overall.mae, naive.Mae());
  EXPECT_EQ(eval.per_horizon.size(), static_cast<size_t>(dataset.horizon()));
}

}  // namespace
}  // namespace dyhsl::models
