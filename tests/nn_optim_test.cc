// Tests for nn layers (shape/grad behaviour) and optimizers (convergence on
// closed-form problems).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/nn/init.h"
#include "src/nn/layers.h"
#include "src/nn/module.h"
#include "src/optim/optimizer.h"
#include "tests/testing_utils.h"
#include "src/tensor/ops.h"

namespace dyhsl::nn {
namespace {

namespace ag = ::dyhsl::autograd;
namespace T = ::dyhsl::tensor;

TEST(InitTest, GlorotBounds) {
  Rng rng(1);
  T::Tensor w = GlorotUniform2D(100, 50, &rng);
  float bound = std::sqrt(6.0f / 150.0f);
  for (float v : w.ToVector()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(LinearTest, ShapeAnyRank) {
  Rng rng(2);
  Linear lin(5, 3, &rng);
  ag::Variable x2(T::Tensor::Randn({7, 5}, &rng));
  EXPECT_EQ(lin.Forward(x2).shape(), (T::Shape{7, 3}));
  ag::Variable x3(T::Tensor::Randn({2, 7, 5}, &rng));
  EXPECT_EQ(lin.Forward(x3).shape(), (T::Shape{2, 7, 3}));
  ag::Variable x4(T::Tensor::Randn({2, 3, 7, 5}, &rng));
  EXPECT_EQ(lin.Forward(x4).shape(), (T::Shape{2, 3, 7, 3}));
}

TEST(LinearTest, GradReachesParameters) {
  Rng rng(3);
  Linear lin(4, 2, &rng);
  ag::Variable x(T::Tensor::Randn({3, 4}, &rng));
  ag::SumAll(lin.Forward(x)).Backward();
  for (const auto& p : lin.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(LinearTest, ParameterCount) {
  Rng rng(4);
  Linear with_bias(4, 3, &rng, true);
  Linear no_bias(4, 3, &rng, false);
  EXPECT_EQ(with_bias.ParameterCount(), 4 * 3 + 3);
  EXPECT_EQ(no_bias.ParameterCount(), 4 * 3);
}

TEST(ModuleTest, NamedParametersNested) {
  Rng rng(5);
  GruCell cell(3, 4, &rng);
  auto named = cell.NamedParameters();
  ASSERT_FALSE(named.empty());
  bool found = false;
  for (const auto& [name, p] : named) {
    if (name == "x_gates.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EmbeddingTest, LookupRows) {
  Rng rng(6);
  Embedding emb(10, 4, &rng);
  ag::Variable rows = emb.Forward({1, 1, 7});
  EXPECT_EQ(rows.shape(), (T::Shape{3, 4}));
  // Rows 0 and 1 are the same embedding.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(rows.value().At({0, c}), rows.value().At({1, c}));
  }
}

TEST(LayerNormTest, NormalizesLastAxis) {
  Rng rng(7);
  LayerNorm norm(6);
  ag::Variable x(T::Tensor::Randn({4, 6}, &rng, 5.0f));
  ag::Variable y = norm.Forward(x);
  for (int64_t r = 0; r < 4; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t c = 0; c < 6; ++c) mean += y.value().At({r, c});
    mean /= 6.0f;
    for (int64_t c = 0; c < 6; ++c) {
      float d = y.value().At({r, c}) - mean;
      var += d * d;
    }
    var /= 6.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(8);
  LayerNorm norm(4);
  auto report = ag::GradCheck(
      [&norm](const std::vector<ag::Variable>& in) {
        ag::Variable y = norm.Forward(in[0]);
        return ag::MeanAll(ag::Mul(y, y));
      },
      {ag::Variable(T::Tensor::Randn({3, 4}, &rng), true)});
  EXPECT_TRUE(report.ok) << report.max_rel_error;
}

TEST(GruCellTest, StepKeepsShapeAndDiffers) {
  Rng rng(9);
  GruCell cell(3, 5, &rng);
  ag::Variable x(T::Tensor::Randn({2, 3}, &rng));
  ag::Variable h(T::Tensor::Zeros({2, 5}));
  ag::Variable h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.shape(), (T::Shape{2, 5}));
  float sum = T::SumAllScalar(T::Abs(h1.value()));
  EXPECT_GT(sum, 0.0f);
}

TEST(GruCellTest, GradFlowsThroughTime) {
  Rng rng(10);
  GruCell cell(2, 3, &rng);
  ag::Variable x0(T::Tensor::Randn({1, 2}, &rng), true);
  ag::Variable h(T::Tensor::Zeros({1, 3}));
  ag::Variable state = cell.Forward(x0, h);
  for (int step = 0; step < 3; ++step) {
    ag::Variable xt(T::Tensor::Randn({1, 2}, &rng));
    state = cell.Forward(xt, state);
  }
  ag::SumAll(state).Backward();
  EXPECT_TRUE(x0.has_grad());
  float gnorm = T::SumAllScalar(T::Abs(x0.grad()));
  EXPECT_GT(gnorm, 0.0f);
}

TEST(LstmCellTest, StateShapes) {
  Rng rng(11);
  LstmCell cell(3, 4, &rng);
  auto state = cell.InitialState(2);
  ag::Variable x(T::Tensor::Randn({2, 3}, &rng));
  auto next = cell.Forward(x, state);
  EXPECT_EQ(next.h.shape(), (T::Shape{2, 4}));
  EXPECT_EQ(next.c.shape(), (T::Shape{2, 4}));
}

TEST(Conv1dLayerTest, CausalPreservesLength) {
  Rng rng(12);
  Conv1dLayer conv(2, 4, 3, &rng, /*dilation=*/2, /*causal=*/true);
  ag::Variable x(T::Tensor::Randn({3, 2, 12}, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), (T::Shape{3, 4, 12}));
}

TEST(Conv1dLayerTest, CausalityNoFutureLeak) {
  Rng rng(13);
  Conv1dLayer conv(1, 1, 3, &rng, 1, /*causal=*/true);
  T::Tensor base = T::Tensor::Randn({1, 1, 8}, &rng);
  T::Tensor perturbed = base.Clone();
  perturbed.data()[7] += 10.0f;  // change only the last step
  T::Tensor y0 = conv.Forward(ag::Variable(base)).value();
  T::Tensor y1 = conv.Forward(ag::Variable(perturbed)).value();
  for (int64_t t = 0; t < 7; ++t) {
    EXPECT_FLOAT_EQ(y0.At({0, 0, t}), y1.At({0, 0, t}));
  }
}

TEST(GraphConvTest, PropagatesNeighborInfo) {
  Rng rng(14);
  // Path graph 0 - 1 - 2, row-normalized with self loops.
  auto adj = T::SparseOp::Create(
      T::CsrMatrix::FromTriplets(
          3, 3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}})
          .WithSelfLoops()
          .RowNormalized());
  GraphConv conv(2, 2, &rng);
  ag::Variable x(T::Tensor::Randn({3, 2}, &rng), true);
  ag::Variable y = conv.Forward(adj, x);
  EXPECT_EQ(y.shape(), (T::Shape{3, 2}));
  ag::SumAll(y).Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(DiffusionConvTest, ShapesAndParams) {
  Rng rng(15);
  auto fw = T::SparseOp::Create(T::CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 0.9f}, {1, 2, 0.8f}}));
  auto bw = T::SparseOp::Create(fw->forward.Transposed());
  DiffusionConv conv(4, 6, /*steps=*/2, &rng);
  ag::Variable x(T::Tensor::Randn({3, 4}, &rng));
  EXPECT_EQ(conv.Forward(fw, bw, x).shape(), (T::Shape{3, 6}));
  // k=0 proj + 2 forward + 2 backward projections.
  EXPECT_EQ(conv.ParameterCount(), (4 * 6 + 6) + 4 * (4 * 6));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // minimize (w - 3)^2
  ag::Variable w(T::Tensor::Scalar(0.0f), true);
  optim::Sgd sgd({w}, /*lr=*/0.1f, /*momentum=*/0.5f);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    ag::Variable diff = ag::AddScalar(w, -3.0f);
    ag::Mul(diff, diff).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().data()[0], 3.0f, 1e-3f);
}

TEST(AdamTest, ConvergesOnLeastSquares) {
  Rng rng(16);
  // Recover planted weights from noiseless linear data.
  T::Tensor w_true = T::Tensor::FromVector({3, 1}, {1.0f, -2.0f, 0.5f});
  T::Tensor x = T::Tensor::Randn({64, 3}, &rng);
  T::Tensor y = T::MatMul(x, w_true);
  ag::Variable w(T::Tensor::Zeros({3, 1}), true);
  optim::Adam adam({w}, /*lr=*/0.05f);
  for (int i = 0; i < 400; ++i) {
    adam.ZeroGrad();
    ag::Variable pred = ag::MatMul(ag::Variable(x), w);
    ag::MseLoss(pred, ag::Variable(y)).Backward();
    adam.Step();
  }
  EXPECT_TENSOR_NEAR(w.value(), w_true, 5e-2f);
}

TEST(AdamTest, WeightDecayShrinksUnusedWeight) {
  ag::Variable w(T::Tensor::Scalar(5.0f), true);
  optim::Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    // Loss gradient is 0; only decay acts.
    ag::MulScalar(w, 0.0f).Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.value().data()[0]), 5.0f);
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  ag::Variable w(T::Tensor::FromVector({2}, {1.0f, 1.0f}), true);
  ag::MulScalar(ag::SumAll(ag::Mul(w, w)), 50.0f).Backward();
  float before = optim::ClipGradNorm({w}, 1.0f);
  EXPECT_GT(before, 1.0f);
  double total = 0.0;
  for (int64_t i = 0; i < 2; ++i) {
    total += static_cast<double>(w.grad().data()[i]) * w.grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Variable w(T::Tensor::Scalar(1.0f), true);
  ag::MulScalar(w, 0.5f).Backward();
  optim::ClipGradNorm({w}, 10.0f);
  EXPECT_FLOAT_EQ(w.grad().data()[0], 0.5f);
}

}  // namespace
}  // namespace dyhsl::nn
