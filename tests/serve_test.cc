// Tests for the forecast-serving engine: correctness of served responses
// against direct model forwards, micro-batching under concurrent load,
// determinism across batch compositions, checkpoint bring-up, and
// request validation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/inference.h"
#include "src/core/parallel.h"
#include "src/serve/engine.h"
#include "src/train/checkpoint.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl::serve {
namespace {

namespace T = ::dyhsl::tensor;

using train::RingForecastTask;

models::DyHslConfig TinyConfig(uint64_t seed = 21) {
  models::DyHslConfig cfg;
  cfg.hidden_dim = 8;
  cfg.prior_layers = 1;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 4;
  cfg.window_sizes = {1, 12};
  cfg.dropout = 0.0f;
  cfg.seed = seed;
  return cfg;
}

T::Tensor RandomWindow(const train::ForecastTask& task, uint64_t seed) {
  Rng rng(seed);
  return T::Tensor::Randn({task.history, task.num_nodes, task.input_dim},
                          &rng, 0.5f);
}

using ::dyhsl::testing::TempPath;

TEST(ForecastEngineTest, ServesForecastMatchingDirectForward) {
  train::ForecastTask task = RingForecastTask(16, 12);
  auto created = ForecastEngine::Create(task, TinyConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ForecastEngine> engine = std::move(created).ValueOrDie();

  T::Tensor window = RandomWindow(task, 7);
  ForecastResponse response =
      engine->Submit(ForecastRequest{window.Clone()}).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.forecast.shape(), (T::Shape{12, 16}));
  EXPECT_GE(response.batch_size, 1);

  // Reference: the engine's own model run directly on a batch of one.
  autograd::InferenceModeGuard no_grad;
  T::Tensor x = window.Reshape({1, 12, 16, 3});
  T::Tensor expected =
      (*engine->mutable_model()).Forward(x, false).value();
  EXPECT_TENSOR_EQ(response.forecast, expected.Reshape({12, 16}));
}

TEST(ForecastEngineTest, ConcurrentSubmitsAreBatchedAndCorrect) {
  train::ForecastTask task = RingForecastTask(12, 12);
  EngineOptions options;
  options.max_batch = 4;
  options.max_delay_us = 20000;  // generous so concurrent requests pack
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();

  T::Tensor window = RandomWindow(task, 11);
  T::Tensor expected;
  {
    autograd::InferenceModeGuard no_grad;
    T::Tensor x = window.Reshape({1, 12, 12, 3});
    expected = (*engine->mutable_model())
                   .Forward(x, false)
                   .value()
                   .Reshape({12, 12});
  }

  constexpr int kClients = 12;
  std::vector<std::future<ForecastResponse>> futures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      futures[i] = engine->Submit(ForecastRequest{window.Clone()});
    });
  }
  for (std::thread& c : clients) c.join();

  int64_t max_batch_seen = 0;
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // Batching must not change a single bit of any response.
    EXPECT_TENSOR_EQ(response.forecast, expected);
    max_batch_seen = std::max(max_batch_seen, response.batch_size);
    EXPECT_LE(response.batch_size, options.max_batch);
  }
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.max_batch_observed, max_batch_seen);
  // 12 requests through max_batch=4 flushes need at least 3 batches.
  EXPECT_GE(stats.batches, 3);
}

TEST(ForecastEngineTest, ResponsesIdenticalAcrossBatchCompositions) {
  train::ForecastTask task = RingForecastTask(10, 12);
  // Engine A serves strictly one-by-one; engine B packs micro-batches.
  EngineOptions solo;
  solo.max_batch = 1;
  EngineOptions packed;
  packed.max_batch = 8;
  packed.max_delay_us = 20000;
  auto engine_a =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", solo))
          .ValueOrDie();
  auto engine_b =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", packed))
          .ValueOrDie();

  std::vector<T::Tensor> windows;
  for (uint64_t s = 0; s < 5; ++s) windows.push_back(RandomWindow(task, s));

  std::vector<std::future<ForecastResponse>> futures_b;
  for (auto& w : windows) {
    futures_b.push_back(engine_b->Submit(ForecastRequest{w.Clone()}));
  }
  for (size_t i = 0; i < windows.size(); ++i) {
    ForecastResponse a =
        engine_a->Submit(ForecastRequest{windows[i].Clone()}).get();
    ForecastResponse b = futures_b[i].get();
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TENSOR_EQ(a.forecast, b.forecast);
  }
}

TEST(ForecastEngineTest, MultipleWorkersServeEveryRequest) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 2;
  options.max_delay_us = 500;
  options.num_workers = 3;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 3);
  T::Tensor expected;
  {
    autograd::InferenceModeGuard no_grad;
    expected = (*engine->mutable_model())
                   .Forward(window.Reshape({1, 12, 8, 3}), false)
                   .value()
                   .Reshape({12, 8});
  }
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_TENSOR_EQ(response.forecast, expected);
  }
  EXPECT_EQ(engine->Snapshot().requests, 32);
}

TEST(ForecastEngineTest, LoadsCheckpointAtCreate) {
  train::ForecastTask task = RingForecastTask(9, 12);
  // Source model with a different init seed than the engine's config:
  // only a successful checkpoint load can make their outputs agree.
  models::DyHsl source(task, TinyConfig(/*seed=*/123));
  std::string path = TempPath("engine_load.ckpt");
  ASSERT_TRUE(train::SaveCheckpoint(source, path).ok());

  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(/*seed=*/321), path))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 5);
  ForecastResponse response =
      engine->Submit(ForecastRequest{window.Clone()}).get();
  ASSERT_TRUE(response.status.ok());

  autograd::InferenceModeGuard no_grad;
  T::Tensor expected =
      source.Forward(window.Reshape({1, 12, 9, 3}), false).value();
  EXPECT_TENSOR_EQ(response.forecast, expected.Reshape({12, 9}));
  std::remove(path.c_str());
}

TEST(ForecastEngineTest, CreateFailsOnMissingCheckpoint) {
  train::ForecastTask task = RingForecastTask(8, 12);
  auto created =
      ForecastEngine::Create(task, TinyConfig(), "/nonexistent/model.ckpt");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kIoError);
}

TEST(ForecastEngineTest, CreateValidatesOptions) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions bad;
  bad.max_batch = 0;
  EXPECT_FALSE(ForecastEngine::Create(task, TinyConfig(), "", bad).ok());
  bad = EngineOptions();
  bad.num_workers = 0;
  EXPECT_FALSE(ForecastEngine::Create(task, TinyConfig(), "", bad).ok());
  bad = EngineOptions();
  bad.max_delay_us = -1;
  EXPECT_FALSE(ForecastEngine::Create(task, TinyConfig(), "", bad).ok());
}

TEST(ForecastEngineTest, RejectsMalformedWindow) {
  train::ForecastTask task = RingForecastTask(8, 12);
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig())).ValueOrDie();
  ForecastResponse response =
      engine->Submit(ForecastRequest{T::Tensor::Zeros({3, 3})}).get();
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  ForecastResponse undefined =
      engine->Submit(ForecastRequest{T::Tensor()}).get();
  EXPECT_FALSE(undefined.status.ok());
}

TEST(ForecastEngineTest, SubmitAfterShutdownFails) {
  train::ForecastTask task = RingForecastTask(8, 12);
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig())).ValueOrDie();
  T::Tensor window = RandomWindow(task, 1);
  ASSERT_TRUE(engine->Submit(ForecastRequest{window.Clone()}).get().status.ok());
  engine->Shutdown();
  ForecastResponse after =
      engine->Submit(ForecastRequest{window.Clone()}).get();
  EXPECT_FALSE(after.status.ok());
}

TEST(ForecastEngineTest, CreateValidatesMaxQueue) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions bad;
  bad.max_queue = -1;
  EXPECT_FALSE(ForecastEngine::Create(task, TinyConfig(), "", bad).ok());
}

TEST(ForecastEngineTest, MaxQueueShedsLoadWithUnavailable) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  // A huge flush delay keeps everything queued while this thread floods
  // past the admission limit.
  options.max_batch = 64;
  options.max_delay_us = 1000000;
  options.max_queue = 3;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 3);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  int64_t rejected = 0;
  int64_t served = 0;
  engine->Shutdown();  // flush the admitted requests
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    if (response.status.ok()) {
      ++served;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  // A worker may have drained some of the queue between submits, so the
  // exact split varies — but admitted requests are served and everything
  // past the limit is shed with kUnavailable, never a broken promise.
  EXPECT_GT(served, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(served + rejected, 8);
  EXPECT_EQ(engine->Snapshot().rejected, rejected);
}

TEST(ForecastEngineTest, ServesSparseTopKModelGradFree) {
  // The engine must serve a sparse-structure DyHSL (top-k Λ mode) with
  // responses matching the direct grad-free forward.
  train::ForecastTask task = RingForecastTask(10, 12);
  models::DyHslConfig config = TinyConfig();
  config.sparse_topk = 2;
  auto engine =
      std::move(ForecastEngine::Create(task, config)).ValueOrDie();
  T::Tensor window = RandomWindow(task, 4);
  ForecastResponse response =
      engine->Submit(ForecastRequest{window.Clone()}).get();
  ASSERT_TRUE(response.status.ok());
  autograd::InferenceModeGuard no_grad;
  T::Tensor direct =
      engine->mutable_model()
          ->Forward(window.Reshape({1, task.history, task.num_nodes,
                                    task.input_dim}),
                    false)
          .value()
          .Reshape({task.horizon, task.num_nodes});
  EXPECT_TRUE(dyhsl::testing::TensorEq(response.forecast, direct));
}

TEST(ForecastEngineTest, ServesPatternReuseModelMatchingFreshSelection) {
  // Pattern reuse must be transparent to serving: a reuse-enabled engine's
  // responses match a select-every-step engine's bit for bit on identical
  // windows (identical seeds -> identical parameters; zero-drift reuses
  // are exact), including on repeat submissions that hit the worker's
  // warm thread-local cache.
  train::ForecastTask task = RingForecastTask(10, 12);
  models::DyHslConfig fresh_cfg = TinyConfig();
  fresh_cfg.sparse_topk = 2;
  models::DyHslConfig reuse_cfg = fresh_cfg;
  reuse_cfg.sparse_pattern_reuse = true;
  auto fresh_engine =
      std::move(ForecastEngine::Create(task, fresh_cfg)).ValueOrDie();
  auto reuse_engine =
      std::move(ForecastEngine::Create(task, reuse_cfg)).ValueOrDie();
  T::Tensor window = RandomWindow(task, 4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    ForecastResponse want =
        fresh_engine->Submit(ForecastRequest{window.Clone()}).get();
    ForecastResponse got =
        reuse_engine->Submit(ForecastRequest{window.Clone()}).get();
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok());
    EXPECT_TRUE(dyhsl::testing::TensorEq(got.forecast, want.forecast))
        << "repeat " << repeat;
  }
}

TEST(ForecastEngineTest, AdaptiveBatchServesShallowQueueImmediately) {
  // With a huge max_delay and adaptive batching OFF, a lone request waits
  // out the full delay for batch slots that never fill. Adaptive batching
  // tracks the shallow queue and flushes immediately.
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 16;
  options.max_delay_us = 2000000;  // 2 s: a non-adaptive engine would stall
  options.adaptive_batch = true;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 6);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    ForecastResponse response =
        engine->Submit(ForecastRequest{window.Clone()}).get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 1);
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  // Three sequential round trips must not pay even one 2 s delay window.
  EXPECT_LT(elapsed_ms, 1000.0);
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.effective_max_batch, 1);
  EXPECT_EQ(stats.requests, 3);
}

TEST(ForecastEngineTest, AdaptiveBatchStillPacksBursts) {
  // Adaptive batching shrinks the wait target, never the take: requests
  // already waiting are still packed into one forward.
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 16;
  options.max_delay_us = 1000000;
  options.adaptive_batch = true;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 8);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  engine->Shutdown();
  int64_t served = 0;
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    served += 1;
  }
  EXPECT_EQ(served, 12);
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.requests, 12);
  // The effective target stays within [1, max_batch].
  EXPECT_GE(stats.effective_max_batch, 1);
  EXPECT_LE(stats.effective_max_batch, options.max_batch);
}

TEST(ForecastEngineTest, AdaptiveBatchRecoversAfterABurst) {
  // A burst drives the depth estimate up; when traffic drops back to a
  // single stream, one timed-out wait is hard evidence and collapses the
  // target — the lone client pays at most one delay window, not one per
  // flush while an EWMA decays.
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 16;
  options.max_delay_us = 300000;  // 0.3 s per stalled flush
  options.adaptive_batch = true;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 14);
  // Burst: 12 concurrent requests raise the depth EWMA.
  std::vector<std::future<ForecastResponse>> burst;
  for (int i = 0; i < 12; ++i) {
    burst.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  for (auto& future : burst) ASSERT_TRUE(future.get().status.ok());
  // Single stream: the first request may pay one 0.3 s window while the
  // engine learns the queue went shallow; the rest must be immediate.
  // 4 sequential requests across 3 s of budget leaves generous slack.
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    ForecastResponse response =
        engine->Submit(ForecastRequest{window.Clone()}).get();
    ASSERT_TRUE(response.status.ok());
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(elapsed_ms, 1000.0);
  EXPECT_EQ(engine->Snapshot().effective_max_batch, 1);
}

TEST(ForecastEngineTest, SnapshotIsConsistentUnderLoad) {
  // Snapshot() must hand back one coherent view: after a drained run,
  // requests/batches/max_batch_observed agree with what was served, and
  // the queue depth is zero.
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 4;
  options.max_delay_us = 5000;
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 9);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  int64_t max_batch_seen = 0;
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    max_batch_seen = std::max(max_batch_seen, response.batch_size);
  }
  EngineStats stats = engine->Snapshot();
  EXPECT_EQ(stats.requests, 10);
  EXPECT_EQ(stats.max_batch_observed, max_batch_seen);
  EXPECT_GE(stats.batches, (10 + options.max_batch - 1) / options.max_batch);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.effective_max_batch, options.max_batch);  // adaptive off
}

TEST(ForecastEngineTest, ServesZooModelThroughFactory) {
  // The engine is model-agnostic: a zoo factory (here STGCN) serves
  // responses matching the model's direct grad-free forward.
  train::ForecastTask task = RingForecastTask(10, 12);
  train::ZooConfig zoo;
  zoo.hidden_dim = 8;
  zoo.seed = 3;
  auto engine =
      std::move(ForecastEngine::Create(task, ZooFactory("STGCN", zoo)))
          .ValueOrDie();
  EXPECT_EQ(engine->model().name(), "STGCN");
  T::Tensor window = RandomWindow(task, 12);
  ForecastResponse response =
      engine->Submit(ForecastRequest{window.Clone()}).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  autograd::InferenceModeGuard no_grad;
  T::Tensor expected =
      engine->mutable_model()
          ->Forward(window.Reshape({1, 12, 10, 3}), false)
          .value()
          .Reshape({12, 10});
  EXPECT_TENSOR_EQ(response.forecast, expected);
}

// ------------------------------------------------------ thread budgeting --

// A model whose Forward runs an OpenMP concurrency probe instead of math:
// it records (through shared atomics) how many kernel threads were live at
// once across every worker of every engine using it.
class ProbeModel : public train::ForecastModel {
 public:
  ProbeModel(train::ForecastTask task, std::atomic<int>* live,
             std::atomic<int>* peak)
      : task_(std::move(task)), live_(live), peak_(peak) {}

  autograd::Variable Forward(const tensor::Tensor& x, bool) override {
    const int ran = core::TeamConcurrencyProbe(live_, peak_,
                                               /*spin_micros=*/300);
    team_seen_.store(std::max(team_seen_.load(), ran));
    return autograd::Variable(
        T::Tensor({x.shape()[0], task_.horizon, task_.num_nodes}));
  }
  std::vector<autograd::Variable> Parameters() const override { return {}; }
  int64_t ParameterCount() const override { return 0; }
  std::string name() const override { return "Probe"; }
  int team_seen() const { return team_seen_.load(); }

 private:
  train::ForecastTask task_;
  std::atomic<int>* live_;
  std::atomic<int>* peak_;
  std::atomic<int> team_seen_{0};
};

TEST(EngineThreadingTest, AutoTeamPartitionsTheCreatorsBudget) {
  train::ForecastTask task = RingForecastTask(8, 12);
  core::TeamScope budget(4);  // the thread creating the engines owns 4
  EngineOptions two_workers;
  two_workers.num_workers = 2;
  auto split =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", two_workers))
          .ValueOrDie();
  EXPECT_EQ(split->team_size(), 2);  // 4 threads / 2 workers

  EngineOptions solo;  // one worker keeps the whole budget
  auto whole = std::move(ForecastEngine::Create(task, TinyConfig(), "", solo))
                   .ValueOrDie();
  EXPECT_EQ(whole->team_size(), 4);

  EngineOptions pinned_team;  // an explicit team_size wins over auto
  pinned_team.num_workers = 2;
  pinned_team.team_size = 1;
  auto narrow =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", pinned_team))
          .ValueOrDie();
  EXPECT_EQ(narrow->team_size(), 1);
}

TEST(EngineThreadingTest, CreateValidatesTeamSizeAndPinCores) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions bad;
  bad.team_size = -1;
  EXPECT_EQ(ForecastEngine::Create(task, TinyConfig(), "", bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  bad = EngineOptions();
  bad.pin_cores = {0, -1};
  EXPECT_EQ(ForecastEngine::Create(task, TinyConfig(), "", bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineThreadingTest, WorkersNeverOversubscribeTheBudget) {
  // The regression this PR fixes: a multi-worker engine used to let every
  // worker fork a machine-wide OpenMP team (workers x machine threads).
  // With the budget scoped per worker, total live kernel threads across
  // all workers must never exceed the creator's budget.
  train::ForecastTask task = RingForecastTask(8, 12);
  const core::ThreadBudget budget = core::ThreadBudget::Partition(4, 2);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  auto* probe = new ProbeModel(task, &live, &peak);
  ModelFactory factory = [probe](const train::ForecastTask&) {
    return std::unique_ptr<train::ForecastModel>(probe);
  };
  core::TeamScope creator(budget.total);
  EngineOptions options;
  options.num_workers = budget.num_workers;
  options.max_batch = 1;  // every request is its own forward
  options.max_delay_us = 0;
  auto engine = std::move(ForecastEngine::Create(task, factory, "", options))
                    .ValueOrDie();
  ASSERT_EQ(engine->team_size(), budget.team_size);

  T::Tensor window = RandomWindow(task, 17);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().status.ok());
  }
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), budget.total)
      << "workers' teams oversubscribed the budget";
  EXPECT_LE(probe->team_seen(), budget.team_size);
}

TEST(EngineThreadingTest, PinnedWorkersServeCorrectly) {
  // Pinning confines the workers but must not change a single bit of the
  // served forecasts (kernels are thread-count and placement invariant).
  train::ForecastTask task = RingForecastTask(10, 12);
  EngineOptions pinned;
  pinned.num_workers = 2;
  pinned.pin_cores = {core::AvailableCores().front()};
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", pinned))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 23);
  T::Tensor expected;
  {
    autograd::InferenceModeGuard no_grad;
    expected = (*engine->mutable_model())
                   .Forward(window.Reshape({1, 12, 10, 3}), false)
                   .value()
                   .Reshape({12, 10});
  }
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TENSOR_EQ(response.forecast, expected);
  }
}

TEST(ForecastEngineTest, ShutdownDrainsQueuedRequests) {
  train::ForecastTask task = RingForecastTask(8, 12);
  EngineOptions options;
  options.max_batch = 64;
  options.max_delay_us = 1000000;  // would wait a second without shutdown
  auto engine =
      std::move(ForecastEngine::Create(task, TinyConfig(), "", options))
          .ValueOrDie();
  T::Tensor window = RandomWindow(task, 2);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(engine->Submit(ForecastRequest{window.Clone()}));
  }
  engine->Shutdown();  // must flush the partial batch, not strand it
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

}  // namespace
}  // namespace dyhsl::serve
