// Tests for the SynPEMS data substrate: network generation, traffic
// simulation realism properties, dataset windows/splits/scaling, CSV IO,
// and the masked metrics.

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/data/road_network_gen.h"
#include "src/data/traffic_sim.h"
#include "src/metrics/metrics.h"
#include "tests/testing_utils.h"
#include "src/tensor/ops.h"

namespace dyhsl::data {
namespace {

namespace T = ::dyhsl::tensor;

RoadNetworkConfig SmallNet() {
  RoadNetworkConfig cfg;
  cfg.num_nodes = 30;
  cfg.num_districts = 3;
  cfg.target_edges = 45;
  cfg.seed = 5;
  return cfg;
}

TEST(RoadNetworkGenTest, NodeAndEdgeCounts) {
  SyntheticRoadNetwork net = GenerateRoadNetwork(SmallNet());
  EXPECT_EQ(net.graph.num_nodes(), 30);
  EXPECT_GE(net.graph.UndirectedEdgeCount(), 29);  // at least spanning tree
  EXPECT_LE(net.graph.UndirectedEdgeCount(), 50);
  EXPECT_EQ(static_cast<int64_t>(net.district.size()), 30);
}

TEST(RoadNetworkGenTest, Connected) {
  SyntheticRoadNetwork net = GenerateRoadNetwork(SmallNet());
  std::vector<int64_t> hops = HopDistances(net.graph, 0);
  for (int64_t i = 0; i < 30; ++i) EXPECT_GE(hops[i], 0) << "node " << i;
}

TEST(RoadNetworkGenTest, DeterministicForSeed) {
  SyntheticRoadNetwork a = GenerateRoadNetwork(SmallNet());
  SyntheticRoadNetwork b = GenerateRoadNetwork(SmallNet());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.district, b.district);
}

TEST(RoadNetworkGenTest, AllDistrictTypesPresent) {
  SyntheticRoadNetwork net = GenerateRoadNetwork(SmallNet());
  std::set<int> types;
  for (DistrictType t : net.district_type) types.insert(static_cast<int>(t));
  EXPECT_EQ(types.size(), 3u);
}

TEST(RoadNetworkGenTest, EdgeWeightsInUnitInterval) {
  SyntheticRoadNetwork net = GenerateRoadNetwork(SmallNet());
  for (const auto& e : net.graph.edges()) {
    EXPECT_GT(e.weight, 0.0f);
    EXPECT_LE(e.weight, 1.0f);
  }
}

TEST(DailyProfileTest, RushHoursPeak) {
  const int64_t spd = 288;
  auto at_hour = [&](DistrictType t, double hour, bool weekend) {
    return DailyProfile(t, static_cast<int64_t>(hour * 12), spd, weekend);
  };
  // Residential weekday: morning peak well above 3am.
  EXPECT_GT(at_hour(DistrictType::kResidential, 8.0, false),
            2.0f * at_hour(DistrictType::kResidential, 3.0, false));
  // Business weekday: evening peak dominates morning.
  EXPECT_GT(at_hour(DistrictType::kBusiness, 17.6, false),
            at_hour(DistrictType::kBusiness, 8.0, false));
  // Weekend flattens the residential morning rush.
  EXPECT_LT(at_hour(DistrictType::kResidential, 8.0, true),
            at_hour(DistrictType::kResidential, 8.0, false));
}

class TrafficSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = GenerateRoadNetwork(SmallNet());
    cfg_.num_days = 3;
    cfg_.seed = 11;
    data_ = SimulateTraffic(net_, cfg_);
  }
  SyntheticRoadNetwork net_;
  TrafficSimConfig cfg_;
  TrafficData data_;
};

TEST_F(TrafficSimTest, ShapeAndNonNegativity) {
  EXPECT_EQ(data_.flow.shape(), (T::Shape{3 * 288, 30}));
  for (float v : data_.flow.ToVector()) EXPECT_GE(v, 0.0f);
}

TEST_F(TrafficSimTest, DailyPeriodicityVisible) {
  // Mean flow at 8am should exceed mean flow at 3am by a wide margin.
  auto mean_at = [&](int64_t tod) {
    double sum = 0.0;
    int64_t cnt = 0;
    for (int64_t day = 0; day < 3; ++day) {
      int64_t s = day * 288 + tod;
      for (int64_t i = 0; i < 30; ++i) {
        sum += data_.flow.At({s, i});
        ++cnt;
      }
    }
    return sum / cnt;
  };
  EXPECT_GT(mean_at(8 * 12), 2.0 * mean_at(3 * 12));
}

TEST_F(TrafficSimTest, DistrictCoMovement) {
  // Nodes in the same district should correlate more strongly than nodes
  // in different districts (the non-pairwise structure DyHSL exploits).
  int64_t steps = data_.flow.size(0);
  auto series = [&](int64_t node) {
    std::vector<double> v(steps);
    for (int64_t s = 0; s < steps; ++s) v[s] = data_.flow.At({s, node});
    return v;
  };
  auto corr = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double ma = 0, mb = 0;
    for (int64_t i = 0; i < steps; ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= steps;
    mb /= steps;
    double num = 0, da = 0, db = 0;
    for (int64_t i = 0; i < steps; ++i) {
      num += (a[i] - ma) * (b[i] - mb);
      da += (a[i] - ma) * (a[i] - ma);
      db += (b[i] - mb) * (b[i] - mb);
    }
    return num / std::sqrt(da * db + 1e-9);
  };
  // Average same-district vs cross-district correlation over sampled pairs.
  double same_sum = 0, cross_sum = 0;
  int64_t same_cnt = 0, cross_cnt = 0;
  for (int64_t a = 0; a < 30; ++a) {
    for (int64_t b = a + 1; b < 30; ++b) {
      double c = corr(series(a), series(b));
      if (net_.district[a] == net_.district[b]) {
        same_sum += c;
        ++same_cnt;
      } else {
        cross_sum += c;
        ++cross_cnt;
      }
    }
  }
  ASSERT_GT(same_cnt, 0);
  ASSERT_GT(cross_cnt, 0);
  EXPECT_GT(same_sum / same_cnt, cross_sum / cross_cnt);
}

TEST_F(TrafficSimTest, EventsSuppressFlowAtEpicenter) {
  ASSERT_FALSE(data_.events.empty());
  // Re-simulate without events and compare at event epicenters.
  TrafficSimConfig no_events = cfg_;
  no_events.events_per_day = 0.0f;
  no_events.dropout_prob = 0.0f;
  TrafficSimConfig with_events = cfg_;
  with_events.dropout_prob = 0.0f;
  TrafficData base = SimulateTraffic(net_, no_events);
  TrafficData wd = SimulateTraffic(net_, with_events);
  double suppressed = 0.0;
  int64_t cnt = 0;
  for (const TrafficEvent& e : wd.events) {
    int64_t mid = e.start_step + e.duration_steps / 2;
    if (mid >= wd.flow.size(0)) continue;
    suppressed += base.flow.At({mid, e.epicenter}) -
                  wd.flow.At({mid, e.epicenter});
    ++cnt;
  }
  ASSERT_GT(cnt, 0);
  EXPECT_GT(suppressed / cnt, 0.0);
}

TEST_F(TrafficSimTest, DropoutsProduceZeros) {
  TrafficSimConfig cfg = cfg_;
  cfg.dropout_prob = 5e-3f;  // force plenty of dropouts
  TrafficData d = SimulateTraffic(net_, cfg);
  int64_t zeros = 0;
  for (float v : d.flow.ToVector()) zeros += (v == 0.0f);
  EXPECT_GT(zeros, 50);
}

TEST(DatasetSpecTest, TableTwoRatiosPreserved) {
  DatasetSpec s3 = DatasetSpec::Pems03Like(1.0, 7);
  EXPECT_EQ(s3.network.num_nodes, 358);
  EXPECT_EQ(s3.network.target_edges, 547);
  DatasetSpec s8 = DatasetSpec::Pems08Like(0.2, 7);
  EXPECT_EQ(s8.network.num_nodes, 34);
  // |E|/|V| ratio ~ 295/170.
  EXPECT_NEAR(static_cast<double>(s8.network.target_edges) /
                  s8.network.num_nodes,
              295.0 / 170.0, 0.1);
}

TEST(TrafficDatasetTest, SplitsAreChronologicalAndDisjoint) {
  DatasetSpec spec = DatasetSpec::Pems08Like(0.12, 2);
  TrafficDataset ds = TrafficDataset::Generate(spec);
  auto tr = ds.train_range(), va = ds.val_range(), te = ds.test_range();
  EXPECT_EQ(tr.begin, 0);
  EXPECT_EQ(tr.end, va.begin);
  EXPECT_EQ(va.end, te.begin);
  EXPECT_GT(tr.size(), va.size());
  // 60/20/20 within rounding.
  int64_t total = tr.size() + va.size() + te.size();
  EXPECT_NEAR(static_cast<double>(tr.size()) / total, 0.6, 0.02);
}

TEST(TrafficDatasetTest, InputFeaturesAndScaling) {
  DatasetSpec spec = DatasetSpec::Pems08Like(0.12, 2);
  TrafficDataset ds = TrafficDataset::Generate(spec);
  T::Tensor x = ds.MakeInput(0);
  EXPECT_EQ(x.shape(),
            (T::Shape{ds.history(), ds.num_nodes(), ds.num_features()}));
  // Feature 0 is z-scored flow: recover raw via scaler and compare.
  float raw = ds.traffic().flow.At({0, 0});
  EXPECT_NEAR(ds.scaler().Inverse(x.At({0, 0, 0})), raw, 1e-2f);
  // Time-of-day in [0, 1).
  EXPECT_GE(x.At({5, 0, 1}), 0.0f);
  EXPECT_LT(x.At({5, 0, 1}), 1.0f);
}

TEST(TrafficDatasetTest, TargetIsRawFutureFlow) {
  DatasetSpec spec = DatasetSpec::Pems08Like(0.12, 2);
  TrafficDataset ds = TrafficDataset::Generate(spec);
  T::Tensor y = ds.MakeTarget(10);
  EXPECT_EQ(y.shape(), (T::Shape{ds.horizon(), ds.num_nodes()}));
  EXPECT_FLOAT_EQ(y.At({0, 3}),
                  ds.traffic().flow.At({10 + ds.history(), 3}));
}

TEST(BatchIteratorTest, CoversEpochExactlyOnce) {
  DatasetSpec spec = DatasetSpec::Pems08Like(0.12, 2);
  TrafficDataset ds = TrafficDataset::Generate(spec);
  BatchIterator it(&ds, {0, 50}, 16, /*shuffle=*/true, 3);
  std::set<int64_t> seen;
  BatchIterator::Batch batch;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    ++batches;
    for (int64_t t0 : batch.window_starts) {
      EXPECT_TRUE(seen.insert(t0).second) << "duplicate window " << t0;
    }
    EXPECT_EQ(batch.x.size(0), batch.y.size(0));
  }
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(batches, it.num_batches());
  // Reset starts a fresh epoch.
  it.Reset();
  EXPECT_TRUE(it.Next(&batch));
}

TEST(ScalerTest, ZScoreRoundTrip) {
  T::Tensor series = T::Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  StandardScaler scaler;
  scaler.Fit(series, 4);
  EXPECT_NEAR(scaler.mean(), 4.5f, 1e-5f);
  float v = 3.3f;
  EXPECT_NEAR(scaler.Inverse(scaler.Transform(v)), v, 1e-5f);
}

TEST(IoTest, CsvRoundTrip) {
  T::Tensor m = T::Tensor::FromVector({2, 3}, {1.5f, -2, 0, 4, 5.25f, -6});
  std::string path = ::testing::TempDir() + "/io_test.csv";
  ASSERT_TRUE(SaveCsv(m, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TENSOR_EQ(loaded.ValueOrDie(), m);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsMissingAndRagged) {
  EXPECT_FALSE(LoadCsv("/nonexistent/nope.csv").ok());
  std::string path = ::testing::TempDir() + "/ragged.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,2\n3\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dyhsl::data

namespace dyhsl::metrics {
namespace {

namespace T = ::dyhsl::tensor;

TEST(MetricsTest, PerfectPredictionIsZeroError) {
  T::Tensor t = T::Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  ForecastMetrics m = Evaluate(t, t);
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.mape, 0.0);
}

TEST(MetricsTest, KnownValues) {
  T::Tensor truth = T::Tensor::FromVector({4}, {10, 10, 10, 10});
  T::Tensor pred = T::Tensor::FromVector({4}, {11, 9, 12, 8});
  ForecastMetrics m = Evaluate(pred, truth);
  EXPECT_NEAR(m.mae, 1.5, 1e-9);
  EXPECT_NEAR(m.rmse, std::sqrt((1 + 1 + 4 + 4) / 4.0), 1e-9);
  EXPECT_NEAR(m.mape, 15.0, 1e-9);
}

TEST(MetricsTest, ZeroTruthIsMasked) {
  T::Tensor truth = T::Tensor::FromVector({3}, {0, 10, 0});
  T::Tensor pred = T::Tensor::FromVector({3}, {100, 11, 100});
  ForecastMetrics m = Evaluate(pred, truth);
  EXPECT_NEAR(m.mae, 1.0, 1e-9);  // only the middle reading counts
  EXPECT_NEAR(m.mape, 10.0, 1e-9);
}

TEST(MetricsTest, MapePenalizesSmallTruthHarder) {
  // Same absolute error, different truth scale (paper's Table VI analysis).
  MetricAccumulator small_truth, large_truth;
  small_truth.AddValue(20.0f, 4.0f);
  large_truth.AddValue(116.0f, 100.0f);
  EXPECT_NEAR(small_truth.Mape(), 400.0, 1e-9);
  EXPECT_NEAR(large_truth.Mape(), 16.0, 1e-9);
}

TEST(MetricsTest, MergeMatchesJointAccumulation) {
  MetricAccumulator a, b, joint;
  a.AddValue(1, 2);
  b.AddValue(5, 4);
  joint.AddValue(1, 2);
  joint.AddValue(5, 4);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Mae(), joint.Mae());
  EXPECT_DOUBLE_EQ(a.Rmse(), joint.Rmse());
  EXPECT_EQ(a.count(), joint.count());
}

TEST(MetricsTest, PerHorizonSplitsTime) {
  // pred/truth (B=1, T'=2, N=1): first horizon exact, second off by 2.
  T::Tensor truth = T::Tensor::FromVector({1, 2, 1}, {10, 10});
  T::Tensor pred = T::Tensor::FromVector({1, 2, 1}, {10, 12});
  auto per = EvaluatePerHorizon(pred, truth);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_NEAR(per[0].mae, 0.0, 1e-9);
  EXPECT_NEAR(per[1].mae, 2.0, 1e-9);
}

}  // namespace
}  // namespace dyhsl::metrics
