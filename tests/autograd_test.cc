// Autograd correctness: every differentiable op is validated against
// central finite differences through the GradCheck harness, plus tape
// mechanics (accumulation, reuse, detach).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/gradcheck.h"
#include "src/autograd/inference.h"
#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "tests/testing_utils.h"

namespace dyhsl::autograd {
namespace {

namespace T = ::dyhsl::tensor;

Variable Param(T::Tensor t) { return Variable(std::move(t), true); }

// Reduces any variable to a scalar through a fixed weighted sum so the
// gradcheck objective is sensitive to every coordinate.
Variable ToScalar(const Variable& v) {
  Variable flat = Reshape(v, {1, -1});
  // Deterministic weights 1, 2, 3, ... keep all coordinates distinguishable.
  int64_t n = flat.size(1);
  T::Tensor w({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    w.data()[i] = 0.1f * static_cast<float>(i + 1);
  }
  return Reshape(MatMul(flat, Variable(w)), {1});
}

TEST(TapeTest, BackwardThroughScalarChain) {
  Variable x = Param(T::Tensor::Scalar(3.0f));
  Variable y = MulScalar(x, 2.0f);   // y = 2x
  Variable z = Mul(y, y);            // z = 4x^2, dz/dx = 8x = 24
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 24.0f);
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  Variable x = Param(T::Tensor::Scalar(5.0f));
  Variable y = Add(x, x);  // dy/dx = 2
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 2.0f);
}

TEST(TapeTest, DiamondGraphGradient) {
  // z = (x*2) + (x*3); dz/dx = 5.
  Variable x = Param(T::Tensor::Scalar(1.0f));
  Variable z = Add(MulScalar(x, 2.0f), MulScalar(x, 3.0f));
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 5.0f);
}

TEST(TapeTest, DetachStopsGradient) {
  Variable x = Param(T::Tensor::Scalar(2.0f));
  Variable d = Mul(x, x).Detach();
  Variable z = Mul(d, x);  // only the direct x factor is differentiated
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 4.0f);  // d = 4 constant
}

TEST(TapeTest, ZeroGradClears) {
  Variable x = Param(T::Tensor::Scalar(1.0f));
  MulScalar(x, 3.0f).Backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 3.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 0.0f);
}

TEST(TapeTest, NoGradLeafReceivesNothing) {
  Variable x = Param(T::Tensor::Scalar(1.0f));
  Variable c(T::Tensor::Scalar(10.0f));  // constant
  Variable z = Mul(x, c);
  z.Backward();
  EXPECT_FALSE(c.has_grad());
  EXPECT_FLOAT_EQ(x.grad().data()[0], 10.0f);
}

class OpGradCheck : public ::dyhsl::testing::SeededTest {
 protected:
  void Check(const std::function<Variable(const std::vector<Variable>&)>& f,
             std::vector<Variable> inputs, float tol = 5e-2f) {
    GradCheckReport report = GradCheck(f, std::move(inputs), 1e-2f, tol);
    EXPECT_TRUE(report.ok)
        << "max_rel_error=" << report.max_rel_error
        << " max_abs_error=" << report.max_abs_error;
  }
};

TEST_F(OpGradCheck, AddBroadcast) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Add(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_)),
         Param(T::Tensor::Randn({4}, &rng_))});
}

TEST_F(OpGradCheck, SubBroadcastMiddle) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Sub(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({2, 3, 2}, &rng_)),
         Param(T::Tensor::Randn({1, 3, 1}, &rng_))});
}

TEST_F(OpGradCheck, MulElementwise) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Mul(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({3, 3}, &rng_)),
         Param(T::Tensor::Randn({3, 3}, &rng_))});
}

TEST_F(OpGradCheck, DivStableDenominator) {
  T::Tensor denom = T::AddScalar(T::Abs(T::Tensor::Randn({3, 3}, &rng_)), 2.0f);
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Div(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({3, 3}, &rng_)), Param(denom)});
}

TEST_F(OpGradCheck, UnaryChain) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Tanh(Sigmoid(MulScalar(in[0], 0.7f))));
        },
        {Param(T::Tensor::Randn({4, 2}, &rng_))});
}

TEST_F(OpGradCheck, ReluAwayFromKink) {
  // Keep inputs away from 0 so finite differences are valid.
  T::Tensor x = T::Tensor::Randn({4, 4}, &rng_);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = 0.5f;
  }
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Relu(in[0]));
        },
        {Param(x)});
}

TEST_F(OpGradCheck, LeakyReluAwayFromKink) {
  T::Tensor x = T::Tensor::Randn({4, 4}, &rng_);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = -0.5f;
  }
  Check([](const std::vector<Variable>& in) {
          return ToScalar(LeakyRelu(in[0], 0.2f));
        },
        {Param(x)});
}

TEST_F(OpGradCheck, ExpLogSqrtPositiveDomain) {
  T::Tensor x = T::AddScalar(T::Abs(T::Tensor::Randn({3, 2}, &rng_)), 1.0f);
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Log(Sqrt(Exp(MulScalar(in[0], 0.3f)))));
        },
        {Param(x)});
}

TEST_F(OpGradCheck, AbsAwayFromZero) {
  T::Tensor x = T::Tensor::Randn({5}, &rng_);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = 1.0f;
  }
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Abs(in[0]));
        },
        {Param(x)});
}

TEST_F(OpGradCheck, MatMulPlain) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(MatMul(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_)),
         Param(T::Tensor::Randn({4, 2}, &rng_))});
}

TEST_F(OpGradCheck, MatMulTransA) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(MatMul(in[0], in[1], true, false));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_)),
         Param(T::Tensor::Randn({4, 2}, &rng_))});
}

TEST_F(OpGradCheck, MatMulTransB) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(MatMul(in[0], in[1], false, true));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_)),
         Param(T::Tensor::Randn({2, 4}, &rng_))});
}

TEST_F(OpGradCheck, MatMulTransBoth) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(MatMul(in[0], in[1], true, true));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_)),
         Param(T::Tensor::Randn({2, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMul) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({2, 3, 4}, &rng_)),
         Param(T::Tensor::Randn({2, 4, 2}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulTransB) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], false, true));
        },
        {Param(T::Tensor::Randn({2, 3, 4}, &rng_)),
         Param(T::Tensor::Randn({2, 5, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulTransA) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, false));
        },
        {Param(T::Tensor::Randn({2, 4, 3}, &rng_)),
         Param(T::Tensor::Randn({2, 4, 2}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedRhs) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({2, 3, 4}, &rng_)),
         Param(T::Tensor::Randn({4, 2}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedRhsTransB) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], false, true));
        },
        {Param(T::Tensor::Randn({2, 3, 4}, &rng_)),
         Param(T::Tensor::Randn({5, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedRhsTransBoth) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, true));
        },
        {Param(T::Tensor::Randn({2, 4, 3}, &rng_)),
         Param(T::Tensor::Randn({5, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedRhsTransA) {
  // trans_a with a batch-shared RHS was previously rejected; the gradient
  // now batch-reduces through BatchedMatMulReduceInto.
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, false));
        },
        {Param(T::Tensor::Randn({2, 4, 3}, &rng_)),
         Param(T::Tensor::Randn({4, 2}, &rng_))});
}

// The shared-LHS form U @ M_b (2-D a, 3-D b) that replaced the
// TransposePerm/BatchedMatMul/TransposePerm sandwich in the DHSL block —
// all four trans combinations.
TEST_F(OpGradCheck, BatchedMatMulSharedLhs) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1]));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_)),
         Param(T::Tensor::Randn({2, 4, 2}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedLhsTransA) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, false));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_)),
         Param(T::Tensor::Randn({2, 4, 2}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedLhsTransB) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], false, true));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_)),
         Param(T::Tensor::Randn({2, 5, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulSharedLhsTransBoth) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, true));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_)),
         Param(T::Tensor::Randn({2, 5, 4}, &rng_))});
}

TEST_F(OpGradCheck, BatchedMatMulBothTransNonShared) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(BatchedMatMul(in[0], in[1], true, true));
        },
        {Param(T::Tensor::Randn({2, 4, 3}, &rng_)),
         Param(T::Tensor::Randn({2, 5, 4}, &rng_))});
}

TEST_F(OpGradCheck, InvSqrtPositiveDomain) {
  // Inputs bounded away from zero so the finite difference stays stable.
  Check([](const std::vector<Variable>& in) {
          return ToScalar(InvSqrt(in[0], /*eps=*/0.1f));
        },
        {Param(T::Tensor::Uniform({3, 4}, &rng_, 0.5f, 2.0f))});
}

TEST_F(OpGradCheck, SpMMGradFlowsThroughDense) {
  auto adj = T::SparseOp::Create(T::CsrMatrix::FromTriplets(
      3, 3,
      {{0, 1, 0.5f}, {1, 0, 0.25f}, {1, 2, 0.75f}, {2, 2, 1.0f}}));
  Check([adj](const std::vector<Variable>& in) {
          return ToScalar(SpMM(adj, in[0]));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_))});
}

TEST_F(OpGradCheck, SpMMBatched) {
  auto adj = T::SparseOp::Create(T::CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0f}, {0, 1, 0.5f}, {2, 1, 0.3f}}));
  Check([adj](const std::vector<Variable>& in) {
          return ToScalar(SpMM(adj, in[0]));
        },
        {Param(T::Tensor::Randn({2, 3, 2}, &rng_))});
}

TEST_F(OpGradCheck, ReshapeTransposeRoundTrip) {
  Check([](const std::vector<Variable>& in) {
          Variable t = TransposePerm(in[0], {1, 0, 2});
          return ToScalar(Reshape(t, {3, -1}));
        },
        {Param(T::Tensor::Randn({3, 3, 2}, &rng_))});
}

TEST_F(OpGradCheck, ConcatAndSlice) {
  Check([](const std::vector<Variable>& in) {
          Variable c = Concat({in[0], in[1]}, 1);
          return ToScalar(Slice(c, 1, 1, 3));
        },
        {Param(T::Tensor::Randn({2, 2}, &rng_)),
         Param(T::Tensor::Randn({2, 3}, &rng_))});
}

TEST_F(OpGradCheck, EmbeddingLookupRepeatedIndices) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(EmbeddingLookup(in[0], {0, 2, 2, 1}));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_))});
}

TEST_F(OpGradCheck, SumMeanAxes) {
  Check([](const std::vector<Variable>& in) {
          Variable s = Sum(in[0], 0);
          Variable m = Mean(in[0], 1, /*keepdims=*/true);
          return Add(ToScalar(s), ToScalar(m));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_))});
}

TEST_F(OpGradCheck, SumAllMeanAll) {
  Check([](const std::vector<Variable>& in) {
          return Add(SumAll(in[0]), MeanAll(in[0]));
        },
        {Param(T::Tensor::Randn({2, 3}, &rng_))});
}

TEST_F(OpGradCheck, SoftmaxLastAxis) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(SoftmaxLastAxis(in[0]));
        },
        {Param(T::Tensor::Randn({3, 5}, &rng_))});
}

TEST_F(OpGradCheck, MaxPoolAxisDistinctValues) {
  // Distinct values keep the argmax stable under perturbation.
  T::Tensor x({2, 4, 3});
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>((i * 7) % 24) + 0.01f * i;
  }
  Check([](const std::vector<Variable>& in) {
          return ToScalar(MaxPoolAxis(in[0], 1, 2));
        },
        {Param(x)});
}

TEST_F(OpGradCheck, Conv1dCausalDilated) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Conv1d(in[0], in[1], /*dilation=*/2,
                                 /*pad_left=*/2, /*pad_right=*/0));
        },
        {Param(T::Tensor::Randn({2, 3, 6}, &rng_)),
         Param(T::Tensor::Randn({4, 3, 2}, &rng_))});
}

TEST_F(OpGradCheck, MaeMseLosses) {
  // Keep pred - target away from zero for MAE differentiability.
  T::Tensor pred = T::Tensor::Randn({3, 3}, &rng_);
  T::Tensor target = T::AddScalar(pred.Clone(), 1.5f);
  Check([target](const std::vector<Variable>& in) {
          Variable t(target);
          return Add(MaeLoss(in[0], t), MseLoss(in[0], t));
        },
        {Param(pred)});
}

TEST_F(OpGradCheck, MaximumAwayFromTies) {
  // Keep the operands separated so the subgradient choice is stable under
  // the finite-difference perturbation.
  T::Tensor a = T::Tensor::Randn({3, 4}, &rng_);
  T::Tensor b = T::Tensor::Randn({3, 4}, &rng_);
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) < 0.2f) b.data()[i] += 0.5f;
  }
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Maximum(in[0], in[1]));
        },
        {Param(a), Param(b)});
}

TEST_F(OpGradCheck, ScalarOpsChain) {
  // Covers AddScalar, MulScalar and Neg, which the composite chains above
  // only exercised incidentally.
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Neg(MulScalar(AddScalar(in[0], 1.5f), -0.6f)));
        },
        {Param(T::Tensor::Randn({3, 4}, &rng_))});
}

TEST_F(OpGradCheck, DropoutFixedMask) {
  // A fresh, identically seeded Rng on every evaluation keeps the mask
  // constant, making training-mode dropout a fixed linear map that finite
  // differences can validate.
  Check([](const std::vector<Variable>& in) {
          Rng mask_rng(123);
          return ToScalar(Dropout(in[0], 0.4f, /*training=*/true, &mask_rng));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_))});
}

TEST(DropoutTest, IdentityInEval) {
  Rng rng(3);
  Variable x(T::Tensor::Randn({4, 4}, &rng), true);
  Variable y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(x.value().SharesStorageWith(y.value()));
}

TEST(DropoutTest, MaskScalesSurvivors) {
  Rng rng(3);
  Variable x(T::Tensor::Ones({1000}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (float v : y.value().ToVector()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(5);
  Variable x(T::Tensor::Ones({100}), true);
  Variable y = Dropout(x, 0.3f, true, &rng);
  SumAll(y).Backward();
  for (int64_t i = 0; i < 100; ++i) {
    float out = y.value().data()[i];
    float g = x.grad().data()[i];
    EXPECT_FLOAT_EQ(g, out);  // both equal the mask value for x = 1
  }
}

TEST(SpMMTest, ForwardMatchesDense) {
  Rng rng(9);
  auto csr = T::CsrMatrix::FromTriplets(
      4, 3, {{0, 0, 2.0f}, {1, 2, -1.0f}, {3, 1, 0.5f}, {3, 2, 1.5f}});
  T::Tensor x = T::Tensor::Randn({3, 5}, &rng);
  T::Tensor dense = csr.ToDense();
  T::Tensor want = T::MatMul(dense, x);
  T::Tensor got = T::SpMM(csr, x);
  EXPECT_TENSOR_NEAR(got, want, 1e-5f);
}

// ---------------------------------------------------------------------------
// Grad-free inference mode.
// ---------------------------------------------------------------------------

TEST(InferenceModeTest, OpsProduceTapelessLeaves) {
  Rng rng(11);
  Variable w = Param(T::Tensor::Randn({4, 4}, &rng));
  Variable x(T::Tensor::Randn({4, 4}, &rng));
  InferenceModeGuard guard;
  ASSERT_TRUE(InferenceModeEnabled());
  Variable y = Relu(MatMul(x, w));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.node()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(y.node()->backward));
}

TEST(InferenceModeTest, GuardNestsAndRestores) {
  EXPECT_FALSE(InferenceModeEnabled());
  {
    InferenceModeGuard outer;
    EXPECT_TRUE(InferenceModeEnabled());
    {
      InferenceModeGuard inner;
      EXPECT_TRUE(InferenceModeEnabled());
    }
    EXPECT_TRUE(InferenceModeEnabled());
  }
  EXPECT_FALSE(InferenceModeEnabled());
}

TEST(InferenceModeTest, ValuesBitIdenticalToTapedOps) {
  Rng rng(12);
  Variable w = Param(T::Tensor::Randn({6, 6}, &rng));
  Variable g = Param(T::Tensor::Ones({6}));
  Variable b = Param(T::Tensor::Zeros({6}));
  T::Tensor input = T::Tensor::Randn({5, 6}, &rng);
  auto chain = [&](const Variable& x) {
    Variable h = Tanh(MatMul(x, w));
    h = LayerNormLastAxis(h, g, b, 1e-5f);
    return Add(Relu(h), Sigmoid(h));
  };
  T::Tensor taped = chain(Variable(input)).value();
  InferenceModeGuard guard;
  T::Tensor grad_free = chain(Variable(input)).value();
  EXPECT_TENSOR_EQ(grad_free, taped);
}

TEST(InferenceModeTest, InPlaceSkippedWhenStorageShared) {
  // A Reshape view shares storage with its source; consuming the view
  // with an rvalue op must not clobber the source.
  T::Tensor base = T::Tensor::Full({2, 3}, 2.0f);
  InferenceModeGuard guard;
  Variable x(base);
  Variable view = Reshape(x, {6});
  Variable y = Tanh(std::move(view));
  for (int64_t i = 0; i < base.numel(); ++i) {
    EXPECT_FLOAT_EQ(base.data()[i], 2.0f);
  }
  EXPECT_FLOAT_EQ(y.value().data()[0], std::tanh(2.0f));
}

TEST(InferenceModeDeathTest, BackwardUnderGuardAborts) {
  Variable x = Param(T::Tensor::Scalar(2.0f));
  Variable y = MulScalar(x, 3.0f);  // taped before the guard
  EXPECT_DEATH(
      {
        InferenceModeGuard guard;
        y.Backward();
      },
      "InferenceModeGuard");
}

TEST_F(OpGradCheck, LayerNormLastAxis) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(LayerNormLastAxis(in[0], in[1], in[2], 1e-3f));
        },
        {Param(T::Tensor::Randn({3, 5}, &rng_)),
         Param(T::Tensor::Uniform({5}, &rng_, 0.5f, 1.5f)),
         Param(T::Tensor::Randn({5}, &rng_, 0.2f))});
}

TEST_F(OpGradCheck, LayerNormLastAxisBatched3D) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(LayerNormLastAxis(in[0], in[1], in[2], 1e-3f));
        },
        {Param(T::Tensor::Randn({2, 3, 4}, &rng_)),
         Param(T::Tensor::Uniform({4}, &rng_, 0.5f, 1.5f)),
         Param(T::Tensor::Randn({4}, &rng_, 0.2f))});
}

TEST_F(OpGradCheck, AffineFusedBias) {
  Check([](const std::vector<Variable>& in) {
          return ToScalar(Affine(in[0], in[1], in[2]));
        },
        {Param(T::Tensor::Randn({4, 3}, &rng_)),
         Param(T::Tensor::Randn({3, 5}, &rng_)),
         Param(T::Tensor::Randn({5}, &rng_))});
}

TEST(AffineTest, MatchesMatMulPlusBias) {
  Rng rng(13);
  T::Tensor x = T::Tensor::Randn({7, 4}, &rng);
  T::Tensor w = T::Tensor::Randn({4, 6}, &rng);
  T::Tensor b = T::Tensor::Randn({6}, &rng);
  T::Tensor fused = Affine(Variable(x), Variable(w), Variable(b)).value();
  T::Tensor chain =
      Add(MatMul(Variable(x), Variable(w)), Variable(b)).value();
  EXPECT_TENSOR_EQ(fused, chain);
}

TEST(AffineTest, MultiPanelKStaysNumericallyClose) {
  // k = 300 spans two GEMM K panels (kKc = 240): the bias then seeds the
  // first panel instead of being added last, so bit-equality with the
  // MatMul+Add chain is no longer guaranteed — but the result must stay
  // within rounding noise, and taped vs grad-free Affine (same kernel)
  // must still agree exactly.
  Rng rng(14);
  T::Tensor x = T::Tensor::Randn({5, 300}, &rng, 0.1f);
  T::Tensor w = T::Tensor::Randn({300, 6}, &rng, 0.1f);
  T::Tensor b = T::Tensor::Randn({6}, &rng);
  T::Tensor fused = Affine(Variable(x), Variable(w), Variable(b)).value();
  T::Tensor chain =
      Add(MatMul(Variable(x), Variable(w)), Variable(b)).value();
  EXPECT_TENSOR_NEAR(fused, chain, 1e-4f);
  InferenceModeGuard guard;
  T::Tensor grad_free =
      Affine(Variable(x), Variable(w), Variable(b)).value();
  EXPECT_TENSOR_EQ(grad_free, fused);
}

TEST(LayerNormOpTest, MatchesUnfusedChain) {
  Rng rng(14);
  Variable x(T::Tensor::Randn({4, 8}, &rng));
  Variable g(T::Tensor::Uniform({8}, &rng, 0.5f, 1.5f));
  Variable b(T::Tensor::Randn({8}, &rng, 0.3f));
  T::Tensor fused = LayerNormLastAxis(x, g, b, 1e-5f).value();
  // The pre-fusion composition.
  Variable mu = Mean(x, -1, /*keepdims=*/true);
  Variable centered = Sub(x, mu);
  Variable var = Mean(Mul(centered, centered), -1, /*keepdims=*/true);
  Variable normed = Mul(centered, InvSqrt(var, 1e-5f));
  T::Tensor chain = Add(Mul(normed, g), b).value();
  EXPECT_TENSOR_NEAR(fused, chain, 1e-6f);
}

}  // namespace
}  // namespace dyhsl::autograd
