// Tests for the inference-plan layer: the GEMM fast paths (direct-A
// kernels, the small-size no-plan path), prepacked operands
// (tensor::PackedPanels / BatchedGemmPrepackedInto), the process
// PrepackCache with its enrollment/lookup/invalidation lifecycle, the
// serving engine's plan bring-up and stats, and the bounded thread-local
// cache registries (DhslBlock patterns, DHGNN structures).
//
// The contract under test everywhere is *bit* identity: every fast or
// prepacked path must reproduce the legacy all-packed kernel exactly,
// for every trans combination, beta mode and sharing pattern — "close"
// is a failure.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/inference.h"
#include "src/baselines/gnn_models.h"
#include "src/core/rng.h"
#include "src/models/blocks.h"
#include "src/serve/engine.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"
#include "src/train/checkpoint.h"
#include "src/train/model_zoo.h"
#include "tests/testing_utils.h"

namespace dyhsl::tensor {
namespace {

using ::dyhsl::testing::TempPath;
using ::dyhsl::testing::TensorEq;

// Restores the process fast-path setting on scope exit, so a failing
// assertion in one test cannot leak a disabled state into the next.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool enabled) : previous_(SetGemmFastPaths(enabled)) {}
  ~FastPathGuard() { SetGemmFastPaths(previous_); }

 private:
  bool previous_;
};

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn({rows, cols}, &rng, 1.0f);
}

// Runs BatchedGemmInto over freshly seeded C and returns the result.
// `shared_a`/`shared_b` use stride 0 (one operand for the whole batch).
Tensor RunBatched(int64_t batch, bool trans_a, bool trans_b, int64_t m,
                  int64_t n, int64_t k, const Tensor& a, bool shared_a,
                  const Tensor& b, bool shared_b, float beta) {
  Rng rng(91);
  Tensor c = Tensor::Randn({batch, m, n}, &rng, 1.0f);
  const int64_t lda = trans_a ? m : k;
  const int64_t ldb = trans_b ? k : n;
  BatchedGemmInto(batch, trans_a, trans_b, m, n, k, a.data(),
                  shared_a ? 0 : (trans_a ? k * m : m * k), lda, b.data(),
                  shared_b ? 0 : (trans_b ? n * k : k * n), ldb, beta,
                  c.data(), m * n, n);
  return c;
}

// The GEMM property sweep: every fast path (direct-A, small no-plan) must
// be bitwise identical to the legacy all-packed path over odd and prime
// shapes that exercise micro-kernel tails, multiple K panels (k > 240),
// multiple MC blocks (m > 120) and lone-panel n tails.
TEST(GemmFastPathTest, FastPathsBitIdenticalToLegacy) {
  struct Case {
    int64_t m, n, k;
  };
  const Case cases[] = {{1, 1, 1},    {3, 5, 7},    {6, 16, 24},
                        {7, 17, 31},  {13, 97, 53}, {31, 33, 241},
                        {127, 19, 67}};
  for (const Case& c : cases) {
    for (int64_t batch : {int64_t{1}, int64_t{3}}) {
      for (bool trans_a : {false, true}) {
        for (bool trans_b : {false, true}) {
          for (float beta : {0.0f, 1.0f, 0.5f}) {
            for (bool shared_a : {false, true}) {
              for (bool shared_b : {false, true}) {
                const int64_t a_items = shared_a ? 1 : batch;
                const int64_t b_items = shared_b ? 1 : batch;
                Tensor a = RandomMatrix(a_items * (trans_a ? c.k : c.m),
                                        trans_a ? c.m : c.k, 17);
                Tensor b = RandomMatrix(b_items * (trans_b ? c.n : c.k),
                                        trans_b ? c.k : c.n, 29);
                Tensor fast, legacy;
                {
                  FastPathGuard on(true);
                  fast = RunBatched(batch, trans_a, trans_b, c.m, c.n, c.k,
                                    a, shared_a, b, shared_b, beta);
                }
                {
                  FastPathGuard off(false);
                  legacy = RunBatched(batch, trans_a, trans_b, c.m, c.n, c.k,
                                      a, shared_a, b, shared_b, beta);
                }
                ASSERT_TRUE(TensorEq(fast, legacy))
                    << "m=" << c.m << " n=" << c.n << " k=" << c.k
                    << " batch=" << batch << " ta=" << trans_a
                    << " tb=" << trans_b << " beta=" << beta
                    << " sa=" << shared_a << " sb=" << shared_b;
              }
            }
          }
        }
      }
    }
  }
}

// Prepacked operands replace on-the-fly packing bit-identically, for
// every orientation and with the fast paths both on and off.
TEST(PackedPanelsTest, PrepackedBitIdenticalToFreshPacking) {
  struct Case {
    int64_t m, n, k;
  };
  const Case cases[] = {{5, 7, 11}, {13, 33, 241}, {64, 16, 48}};
  for (const Case& c : cases) {
    for (int64_t batch : {int64_t{1}, int64_t{4}}) {
      for (bool trans_a : {false, true}) {
        for (bool trans_b : {false, true}) {
          for (bool fast : {true, false}) {
            FastPathGuard guard(fast);
            Tensor a = RandomMatrix(batch * (trans_a ? c.k : c.m),
                                    trans_a ? c.m : c.k, 3);
            Tensor bw = RandomMatrix(trans_b ? c.n : c.k,
                                     trans_b ? c.k : c.n, 5);
            const int64_t lda = trans_a ? c.m : c.k;
            const int64_t ldb = trans_b ? c.k : c.n;
            auto pre_b =
                PackedPanels::PackBOperand(bw.data(), ldb, trans_b, c.k, c.n);
            ASSERT_GT(pre_b->bytes(), 0);
            Rng rng(7);
            Tensor c_pre = Tensor::Randn({batch, c.m, c.n}, &rng, 1.0f);
            Tensor c_ref = c_pre.Clone();
            BatchedGemmPrepackedInto(
                batch, trans_a, trans_b, c.m, c.n, c.k, a.data(),
                trans_a ? c.k * c.m : c.m * c.k, lda, nullptr, bw.data(), 0,
                ldb, pre_b.get(), 0.5f, c_pre.data(), c.m * c.n, c.n);
            BatchedGemmInto(batch, trans_a, trans_b, c.m, c.n, c.k, a.data(),
                            trans_a ? c.k * c.m : c.m * c.k, lda, bw.data(),
                            0, ldb, 0.5f, c_ref.data(), c.m * c.n, c.n);
            ASSERT_TRUE(TensorEq(c_pre, c_ref))
                << "pre_b m=" << c.m << " n=" << c.n << " k=" << c.k
                << " batch=" << batch << " ta=" << trans_a
                << " tb=" << trans_b << " fast=" << fast;

            // A-side prepack: one shared op(A), batched B.
            Tensor aw = RandomMatrix(trans_a ? c.k : c.m,
                                     trans_a ? c.m : c.k, 11);
            Tensor bb = RandomMatrix(batch * (trans_b ? c.n : c.k),
                                     trans_b ? c.k : c.n, 13);
            auto pre_a =
                PackedPanels::PackAOperand(aw.data(), lda, trans_a, c.m, c.k);
            Tensor d_pre = Tensor::Randn({batch, c.m, c.n}, &rng, 1.0f);
            Tensor d_ref = d_pre.Clone();
            BatchedGemmPrepackedInto(
                batch, trans_a, trans_b, c.m, c.n, c.k, aw.data(), 0, lda,
                pre_a.get(), bb.data(), trans_b ? c.n * c.k : c.k * c.n, ldb,
                nullptr, 0.0f, d_pre.data(), c.m * c.n, c.n);
            BatchedGemmInto(batch, trans_a, trans_b, c.m, c.n, c.k,
                            aw.data(), 0, lda, bb.data(),
                            trans_b ? c.n * c.k : c.k * c.n, ldb, 0.0f,
                            d_ref.data(), c.m * c.n, c.n);
            ASSERT_TRUE(TensorEq(d_pre, d_ref))
                << "pre_a m=" << c.m << " n=" << c.n << " k=" << c.k
                << " batch=" << batch << " ta=" << trans_a
                << " tb=" << trans_b << " fast=" << fast;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------- PrepackCache --

TEST(PrepackCacheTest, EnrollLookupCountersAndDimChecks) {
  PrepackCache& cache = PrepackCache::Instance();
  Tensor w = RandomMatrix(24, 10, 3);
  cache.Enroll(w);

  const auto before = PrepackCache::ThreadCounters();
  // Enroll eagerly packed (B, no-trans): first lookup is already a hit.
  auto pack = cache.Lookup(w.data(), PackedPanels::Side::kB, false, 24, 10);
  ASSERT_NE(pack, nullptr);
  EXPECT_EQ(pack->k(), 24);
  EXPECT_EQ(pack->mn(), 10);
  auto counters = PrepackCache::ThreadCounters();
  EXPECT_EQ(counters.hits, before.hits + 1);
  EXPECT_EQ(counters.misses, before.misses);

  // First use of a new orientation packs lazily: one miss, then hits.
  auto pack_t = cache.Lookup(w.data(), PackedPanels::Side::kB, true, 10, 24);
  ASSERT_NE(pack_t, nullptr);
  counters = PrepackCache::ThreadCounters();
  EXPECT_EQ(counters.misses, before.misses + 1);
  auto pack_t2 = cache.Lookup(w.data(), PackedPanels::Side::kB, true, 10, 24);
  EXPECT_EQ(pack_t2.get(), pack_t.get());
  EXPECT_EQ(PrepackCache::ThreadCounters().hits, before.hits + 2);

  // Mismatched op() dimensions (a reshape/alias) fall back to null and
  // count nothing.
  EXPECT_EQ(cache.Lookup(w.data(), PackedPanels::Side::kB, false, 10, 24),
            nullptr);
  EXPECT_EQ(PrepackCache::ThreadCounters().hits, before.hits + 2);
  EXPECT_EQ(PrepackCache::ThreadCounters().misses, before.misses + 1);

  // Un-enrolled pointers (activations) return null without counting.
  Tensor x = RandomMatrix(4, 24, 5);
  EXPECT_EQ(cache.Lookup(x.data(), PackedPanels::Side::kB, false, 4, 24),
            nullptr);
  EXPECT_EQ(PrepackCache::ThreadCounters().hits, before.hits + 2);

  const auto inventory = cache.StatsFor({w.data()});
  EXPECT_EQ(inventory.panels, 2);  // no-trans + trans packs
  EXPECT_GT(inventory.bytes, 0);

  cache.Release(w.data());
  EXPECT_EQ(cache.Lookup(w.data(), PackedPanels::Side::kB, false, 24, 10),
            nullptr);
  EXPECT_EQ(cache.StatsFor({w.data()}).panels, 0);
}

TEST(PrepackCacheTest, InvalidateRepacksFromFreshBytesNeverStale) {
  PrepackCache& cache = PrepackCache::Instance();
  Tensor x = RandomMatrix(6, 16, 21);
  Tensor w = RandomMatrix(16, 9, 22);
  Tensor w_old = w.Clone();

  cache.Enroll(w);
  const uint64_t gen = cache.generation();
  PrepackLookupScope scope;

  Tensor y0 = MatMul(x, w);
  // Overwrite the weight bytes in place, exactly as LoadCheckpoint does.
  Tensor w_new = RandomMatrix(16, 9, 23);
  w.CopyDataFrom(w_new);
  // Without invalidation the cache still serves the stale panels — this
  // is the hazard Invalidate exists for.
  EXPECT_TRUE(TensorEq(MatMul(x, w), y0));

  cache.Invalidate(w.data());
  EXPECT_GT(cache.generation(), gen);
  EXPECT_EQ(cache.StatsFor({w.data()}).invalidations, 1);
  // The next lookup repacked from the fresh bytes: the product matches a
  // plain un-prepacked multiply of the new weights, bit for bit.
  Tensor expected;
  {
    SetGemmFastPaths(SetGemmFastPaths(true));  // no-op, keep state
    Tensor clean = w_new.Clone();               // never enrolled
    expected = MatMul(x, clean);
  }
  EXPECT_TRUE(TensorEq(MatMul(x, w), expected));
  EXPECT_FALSE(TensorEq(MatMul(x, w), MatMul(x, w_old)));
  cache.Release(w.data());
}

TEST(PrepackCacheTest, TransparentMatMulLookupMatchesUnscoped) {
  PrepackCache& cache = PrepackCache::Instance();
  Tensor x = RandomMatrix(7, 24, 31);
  Tensor w = RandomMatrix(24, 13, 32);
  Tensor expected = MatMul(x, w);  // no scope: never touches the cache

  cache.Enroll(w);
  const auto before = PrepackCache::ThreadCounters();
  {
    PrepackLookupScope scope;
    EXPECT_TRUE(TensorEq(MatMul(x, w), expected));
    // Batched with a shared 2-D weight hits the same panels.
    Rng rng(33);
    Tensor xb = Tensor::Randn({3, 7, 24}, &rng, 1.0f);
    Tensor yb = BatchedMatMul(xb, w);
    for (int64_t i = 0; i < 3; ++i) {
      Tensor xi = Slice(xb, 0, i, 1).Reshape({7, 24});
      EXPECT_TRUE(
          TensorEq(Slice(yb, 0, i, 1).Reshape({7, 13}), MatMul(xi, w)));
    }
  }
  EXPECT_GT(PrepackCache::ThreadCounters().hits, before.hits);
  // Outside the scope, lookups stop (training never pays them).
  const auto after = PrepackCache::ThreadCounters();
  Tensor y = MatMul(x, w);
  EXPECT_TRUE(TensorEq(y, expected));
  EXPECT_EQ(PrepackCache::ThreadCounters().hits, after.hits);
  cache.Release(w.data());
}

}  // namespace
}  // namespace dyhsl::tensor

namespace dyhsl::serve {
namespace {

namespace T = ::dyhsl::tensor;

using ::dyhsl::testing::TempPath;
using ::dyhsl::testing::TensorEq;
using train::RingForecastTask;

T::Tensor RandomWindow(const train::ForecastTask& task, uint64_t seed) {
  Rng rng(seed);
  return T::Tensor::Randn({task.history, task.num_nodes, task.input_dim},
                          &rng, 0.5f);
}

train::ZooConfig TinyZoo(uint64_t seed = 13) {
  train::ZooConfig cfg;
  cfg.hidden_dim = 8;
  cfg.seed = seed;
  return cfg;
}

// Every zoo model (DyHSL included) served with the inference plan active
// must be bit-identical to its own direct forward without any prepack —
// grad-free (the serving configuration) and taped (a scope installed
// around a tape-building forward must not change results either).
TEST(PrepackServingTest, AllZooModelsBitIdenticalWithPrepack) {
  train::ForecastTask task = RingForecastTask(10, 12);
  for (const std::string& key : train::NeuralModelKeys()) {
    SCOPED_TRACE(key);
    auto created = ForecastEngine::Create(task, ZooFactory(key, TinyZoo()));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).ValueOrDie();
    T::Tensor window = RandomWindow(task, 40);

    // Grad-free reference without any prepack lookup.
    T::Tensor expected;
    {
      autograd::InferenceModeGuard no_grad;
      expected = engine->mutable_model()
                     ->Forward(window.Reshape({1, task.history,
                                               task.num_nodes,
                                               task.input_dim}),
                               false)
                     .value()
                     .Reshape({task.horizon, task.num_nodes})
                     .Clone();
    }
    ForecastResponse served = engine->ForecastNow(window);
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    EXPECT_TRUE(TensorEq(served.forecast, expected));

    // Taped: same forward with a live tape under a lookup scope.
    T::Tensor taped;
    {
      T::PrepackLookupScope scope;
      taped = engine->mutable_model()
                  ->Forward(window.Reshape({1, task.history, task.num_nodes,
                                            task.input_dim}),
                            false)
                  .value()
                  .Reshape({task.horizon, task.num_nodes})
                  .Clone();
    }
    EXPECT_TRUE(TensorEq(taped, expected));

    EngineStats stats = engine->Snapshot();
    EXPECT_GT(stats.prepack.panels, 0) << key;
    EXPECT_GT(stats.prepack.bytes, 0) << key;
    EXPECT_GT(stats.prepack.hits, 0) << key;
  }
}

TEST(PrepackServingTest, CheckpointReloadInvalidatesStalePanels) {
  train::ForecastTask task = RingForecastTask(12, 12);
  const std::string path_a = TempPath("prepack_ckpt_a.dyh");
  const std::string path_b = TempPath("prepack_ckpt_b.dyh");
  {
    auto model_a = train::MakeNeuralModel("STGCN", task, TinyZoo(5));
    auto model_b = train::MakeNeuralModel("STGCN", task, TinyZoo(99));
    ASSERT_TRUE(train::SaveCheckpoint(
                    *dynamic_cast<nn::Module*>(model_a.get()), path_a)
                    .ok());
    ASSERT_TRUE(train::SaveCheckpoint(
                    *dynamic_cast<nn::Module*>(model_b.get()), path_b)
                    .ok());
  }
  auto engine = std::move(ForecastEngine::Create(
                              task, ZooFactory("STGCN", TinyZoo(5)), path_a))
                    .ValueOrDie();
  T::Tensor window = RandomWindow(task, 8);
  // Warm the plan on checkpoint A.
  ForecastResponse before = engine->ForecastNow(window);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(engine->Snapshot().prepack.invalidations, 0);

  // Reload with checkpoint B in place: the load must invalidate every
  // enrolled weight it overwrote.
  auto* module = dynamic_cast<nn::Module*>(engine->mutable_model());
  ASSERT_NE(module, nullptr);
  ASSERT_TRUE(train::LoadCheckpoint(module, path_b).ok());
  EXPECT_GT(engine->Snapshot().prepack.invalidations, 0);

  // Stale panels are never served: the served forecast now matches a
  // fresh no-prepack engine loaded from checkpoint B, bit for bit.
  ForecastResponse after = engine->ForecastNow(window);
  ASSERT_TRUE(after.status.ok());
  T::Tensor expected;
  {
    auto fresh = train::MakeNeuralModel("STGCN", task, TinyZoo(5));
    ASSERT_TRUE(train::LoadCheckpoint(
                    dynamic_cast<nn::Module*>(fresh.get()), path_b)
                    .ok());
    autograd::InferenceModeGuard no_grad;
    expected = fresh
                   ->Forward(window.Reshape({1, task.history, task.num_nodes,
                                             task.input_dim}),
                             false)
                   .value()
                   .Reshape({task.horizon, task.num_nodes})
                   .Clone();
  }
  EXPECT_TRUE(TensorEq(after.forecast, expected));
  EXPECT_FALSE(TensorEq(after.forecast, before.forecast));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(PrepackServingTest, EngineReleasesPlanOnDestruction) {
  train::ForecastTask task = RingForecastTask(8, 12);
  const float* weight_ptr = nullptr;
  {
    auto engine = std::move(ForecastEngine::Create(
                                task, ZooFactory("STGCN", TinyZoo())))
                      .ValueOrDie();
    auto* module = dynamic_cast<nn::Module*>(engine->mutable_model());
    for (const auto& [name, var] : module->NamedParameters()) {
      if (var.value().dim() == 2) {
        weight_ptr = var.value().data();
        break;
      }
    }
    ASSERT_NE(weight_ptr, nullptr);
    EXPECT_GT(
        T::PrepackCache::Instance().StatsFor({weight_ptr}).panels, 0);
  }
  // Engine gone: its enrollments (and the weight storage they pinned)
  // are released with it.
  EXPECT_EQ(T::PrepackCache::Instance().StatsFor({weight_ptr}).panels, 0);
}

}  // namespace
}  // namespace dyhsl::serve

// ------------------------------------- bounded cache registries (leaks) --

namespace dyhsl::models {
namespace {

TEST(PatternRegistryTest, RegistryShrinksWhenBlocksDie) {
  Rng rng(3);
  const int64_t base = ThreadPatternRegistrySizeForTesting();
  {
    DhslBlock block(8, 4, &rng, StructureLearning::kLowRank,
                    /*sparse_topk=*/2, /*pattern_reuse=*/true);
    block.PatternCacheStats();  // touches this thread's cache entry
    EXPECT_EQ(ThreadPatternRegistrySizeForTesting(), base + 1);
  }
  EXPECT_EQ(ThreadPatternRegistrySizeForTesting(), base);
  // Sequential churn never accumulates: the registry stays bounded by
  // the number of live blocks, not the number ever created.
  for (int i = 0; i < 16; ++i) {
    DhslBlock block(8, 4, &rng, StructureLearning::kLowRank, 2, true);
    block.PatternCacheStats();
    EXPECT_LE(ThreadPatternRegistrySizeForTesting(), base + 1);
  }
  EXPECT_EQ(ThreadPatternRegistrySizeForTesting(), base);
}

}  // namespace
}  // namespace dyhsl::models

namespace dyhsl::baselines {
namespace {

TEST(StructureRegistryTest, RegistryShrinksWhenModelsDie) {
  dyhsl::train::ForecastTask task = dyhsl::train::RingForecastTask(8, 12);
  const int64_t base = ThreadStructureRegistrySizeForTesting();
  {
    Dhgnn model(task, 8, 2, 2, /*seed=*/7, /*structure_reuse=*/true);
    model.StructureCacheStats();  // touches this thread's cache entry
    EXPECT_EQ(ThreadStructureRegistrySizeForTesting(), base + 1);
  }
  EXPECT_EQ(ThreadStructureRegistrySizeForTesting(), base);
  for (int i = 0; i < 16; ++i) {
    Dhgnn model(task, 8, 2, 2, 7, true);
    model.StructureCacheStats();
    EXPECT_LE(ThreadStructureRegistrySizeForTesting(), base + 1);
  }
  EXPECT_EQ(ThreadStructureRegistrySizeForTesting(), base);
}

}  // namespace
}  // namespace dyhsl::baselines
