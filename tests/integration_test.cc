// End-to-end integration tests: the full generate -> train -> evaluate ->
// analyze pipeline, cross-model comparisons on a shared dataset, and the
// analysis artifacts the figure benches rely on.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/classical.h"
#include "src/data/dataset.h"
#include "src/data/io.h"
#include "src/models/dyhsl.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;

const data::TrafficDataset& Dataset() {
  static const data::TrafficDataset* ds = [] {
    return new data::TrafficDataset(data::TrafficDataset::Generate(
        data::DatasetSpec::Pems04Like(0.08, 2, 21)));
  }();
  return *ds;
}

models::DyHslConfig TinyDyHsl() {
  models::DyHslConfig cfg;
  cfg.hidden_dim = 10;
  cfg.prior_layers = 2;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 6;
  cfg.window_sizes = {1, 4, 12};
  cfg.dropout = 0.0f;
  return cfg;
}

train::TrainConfig ShortSchedule() {
  train::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 15;
  tc.learning_rate = 3e-3f;
  return tc;
}

TEST(IntegrationTest, TrainedDyHslCompetitiveWithPersistence) {
  train::ForecastTask task = train::ForecastTask::FromDataset(Dataset());
  models::DyHsl model(task, TinyDyHsl());
  train::TrainModel(&model, Dataset(), ShortSchedule());
  train::EvalResult eval = train::EvaluateModel(
      &model, Dataset(), Dataset().test_range(), 8, 10);

  // "Copy last observed value across the horizon" straw-man.
  metrics::MetricAccumulator naive;
  for (int64_t t0 = Dataset().test_range().begin;
       t0 < Dataset().test_range().begin + 80; ++t0) {
    T::Tensor y = Dataset().MakeTarget(t0);
    int64_t n = Dataset().num_nodes();
    const T::Tensor& flow = Dataset().traffic().flow;
    for (int64_t h = 0; h < Dataset().horizon(); ++h) {
      for (int64_t i = 0; i < n; ++i) {
        naive.AddValue(flow.At({t0 + Dataset().history() - 1, i}),
                       y.At({h, i}));
      }
    }
  }
  // Persistence ("copy the last value") is a strong short-horizon baseline
  // on high-autocorrelation traffic; after this minutes-scale schedule the
  // model must at least be competitive with it (the benches demonstrate it
  // pulls ahead with a real schedule), and clearly beat the mean predictor.
  EXPECT_LT(eval.overall.mae, 1.2 * naive.Mae());
  metrics::MetricAccumulator mean_pred;
  train::ForecastTask t2 = train::ForecastTask::FromDataset(Dataset());
  for (int64_t t0 = Dataset().test_range().begin;
       t0 < Dataset().test_range().begin + 80; ++t0) {
    T::Tensor y = Dataset().MakeTarget(t0);
    mean_pred.Add(T::Tensor::Full(y.shape(), t2.scaler_mean), y);
  }
  EXPECT_LT(eval.overall.mae, mean_pred.Mae());
}

TEST(IntegrationTest, HypergraphIncidenceIsInputDependent) {
  // The "dynamic" in DyHSL: different inputs must induce different Λ.
  train::ForecastTask task = train::ForecastTask::FromDataset(Dataset());
  models::DyHsl model(task, TinyDyHsl());
  data::BatchIterator it(&Dataset(), {0, 2}, 1, false, 1);
  data::BatchIterator::Batch b1, b2;
  it.Next(&b1);
  it.Next(&b2);
  T::Tensor inc1 = model.IncidenceFor(b1.x);
  T::Tensor inc2 = model.IncidenceFor(b2.x);
  float diff = dyhsl::testing::SumAbsDiff(inc1, inc2);
  EXPECT_GT(diff / inc1.numel(), 1e-6f);
}

TEST(IntegrationTest, StaticAblationIncidenceDirectionIsFrozen) {
  train::ForecastTask task = train::ForecastTask::FromDataset(Dataset());
  models::DyHslConfig cfg = TinyDyHsl();
  cfg.structure_learning = models::StructureLearning::kFixedRandom;
  models::DyHsl model(task, cfg);
  // NSL: the incidence direction W is a frozen constant, so it must not
  // appear among trainable parameters (while the low-rank variant's does).
  for (const auto& [name, param] : model.NamedParameters()) {
    EXPECT_EQ(name.find("incidence_weight"), std::string::npos)
        << "NSL must not register the incidence weight: " << name;
  }
  models::DyHsl learned(task, TinyDyHsl());
  bool found = false;
  for (const auto& [name, param] : learned.NamedParameters()) {
    found |= name.find("incidence_weight") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(IntegrationTest, ClassicalAndNeuralAgreeOnMetricProtocol) {
  // HA evaluated through the classical path and a constant-output neural
  // wrapper through the neural path must produce identical MAE when the
  // predictions coincide -> guards against protocol drift between paths.
  const auto& ds = Dataset();
  baselines::HistoricalAverage ha;
  ha.Fit(ds);
  metrics::MetricAccumulator via_classical;
  for (int64_t t0 = ds.test_range().begin;
       t0 < ds.test_range().begin + 20; ++t0) {
    via_classical.Add(ha.Predict(ds, t0), ds.MakeTarget(t0));
  }
  metrics::ForecastMetrics via_helper = baselines::EvaluateClassical(
      &ha, ds, {ds.test_range().begin, ds.test_range().begin + 20});
  EXPECT_NEAR(via_classical.Mae(), via_helper.mae, 1e-9);
}

TEST(IntegrationTest, IncidenceCsvRoundTrips) {
  train::ForecastTask task = train::ForecastTask::FromDataset(Dataset());
  models::DyHsl model(task, TinyDyHsl());
  data::BatchIterator it(&Dataset(), {0, 1}, 1, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  T::Tensor inc = model.IncidenceFor(batch.x);
  T::Tensor flat = inc.Reshape({inc.size(1), inc.size(2)});
  std::string path = ::testing::TempDir() + "/incidence.csv";
  ASSERT_TRUE(data::SaveCsv(flat, path).ok());
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().shape(), flat.shape());
  std::remove(path.c_str());
}

TEST(IntegrationTest, ZooModelsProduceDistinctPredictions) {
  // Sanity against accidental weight sharing / registry aliasing: two
  // different architectures must not emit identical predictions.
  train::ForecastTask task = train::ForecastTask::FromDataset(Dataset());
  train::ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto m1 = train::MakeNeuralModel("STGCN", task, zoo);
  auto m2 = train::MakeNeuralModel("STSGCN", task, zoo);
  data::BatchIterator it(&Dataset(), {0, 2}, 2, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  T::Tensor y1 = m1->Forward(batch.x, false).value();
  T::Tensor y2 = m2->Forward(batch.x, false).value();
  EXPECT_GT(dyhsl::testing::SumAbsDiff(y1, y2), 1e-3f);
}

}  // namespace
}  // namespace dyhsl
