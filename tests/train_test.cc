// Tests for the training pipeline: masked loss semantics, descaling,
// reproducibility, early stopping, and evaluation bookkeeping.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/ops.h"
#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/tensor/ops.h"
#include "src/train/forecast_model.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"

namespace dyhsl::train {
namespace {

namespace T = ::dyhsl::tensor;
namespace ag = ::dyhsl::autograd;

const data::TrafficDataset& SmallDataset() {
  static const data::TrafficDataset* ds = [] {
    return new data::TrafficDataset(data::TrafficDataset::Generate(
        data::DatasetSpec::Pems08Like(0.1, 2, 11)));
  }();
  return *ds;
}

TEST(MaskedMaeLossTest, MatchesPlainMaeWithoutZeros) {
  T::Tensor target = T::Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  T::Tensor pred_t = T::Tensor::FromVector({2, 2}, {12, 18, 33, 36});
  ag::Variable pred(pred_t, true);
  ag::Variable loss = MaskedMaeLoss(pred, target);
  EXPECT_NEAR(loss.value().data()[0], (2 + 2 + 3 + 4) / 4.0f, 1e-5f);
}

TEST(MaskedMaeLossTest, IgnoresZeroTargets) {
  T::Tensor target = T::Tensor::FromVector({4}, {0, 10, 0, 10});
  T::Tensor pred_t = T::Tensor::FromVector({4}, {100, 12, 100, 8});
  ag::Variable pred(pred_t, true);
  ag::Variable loss = MaskedMaeLoss(pred, target);
  EXPECT_NEAR(loss.value().data()[0], 2.0f, 1e-5f);
  // Gradient at masked positions must be exactly zero.
  loss.Backward();
  EXPECT_EQ(pred.grad().data()[0], 0.0f);
  EXPECT_EQ(pred.grad().data()[2], 0.0f);
  EXPECT_NE(pred.grad().data()[1], 0.0f);
}

TEST(MaskedMaeLossTest, AllMaskedIsZeroLoss) {
  T::Tensor target = T::Tensor::Zeros({3});
  ag::Variable pred(T::Tensor::Full({3}, 5.0f), true);
  ag::Variable loss = MaskedMaeLoss(pred, target);
  EXPECT_EQ(loss.value().data()[0], 0.0f);
}

TEST(DescaleTest, AffineAndDifferentiable) {
  ag::Variable scaled(T::Tensor::FromVector({2}, {0.0f, 1.0f}), true);
  ag::Variable raw = Descale(scaled, 100.0f, 25.0f);
  EXPECT_FLOAT_EQ(raw.value().data()[0], 100.0f);
  EXPECT_FLOAT_EQ(raw.value().data()[1], 125.0f);
  ag::SumAll(raw).Backward();
  EXPECT_FLOAT_EQ(scaled.grad().data()[0], 25.0f);
}

TEST(ForecastTaskTest, ExtractsDatasetFacts) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  EXPECT_EQ(task.num_nodes, SmallDataset().num_nodes());
  EXPECT_EQ(task.history, 12);
  EXPECT_EQ(task.horizon, 12);
  EXPECT_EQ(task.spatial_adj.rows(), task.num_nodes);
  EXPECT_EQ(static_cast<int64_t>(task.district_labels.size()),
            task.num_nodes);
  EXPECT_GT(task.scaler_std, 0.0f);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  auto run = [] {
    ForecastTask task = ForecastTask::FromDataset(SmallDataset());
    models::DyHslConfig cfg;
    cfg.hidden_dim = 8;
    cfg.prior_layers = 1;
    cfg.mhce_layers = 1;
    cfg.num_hyperedges = 4;
    cfg.window_sizes = {1, 12};
    cfg.dropout = 0.1f;  // exercised: dropout rng is part of the model
    models::DyHsl model(task, cfg);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 8;
    tc.max_batches_per_epoch = 6;
    TrainResult result = TrainModel(&model, SmallDataset(), tc);
    return result.final_train_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, BitIdenticalLossesAcrossSeededRuns) {
  // Two runs from the same DyHslConfig::seed (and trainer seed) must agree
  // bit-for-bit on every step loss, not merely to within tolerance: any
  // hidden source of nondeterminism (uninitialized memory, iteration-order
  // dependence, time-seeded RNG) would break equality exactly here.
  auto run = [] {
    ForecastTask task = ForecastTask::FromDataset(SmallDataset());
    models::DyHslConfig cfg;
    cfg.hidden_dim = 8;
    cfg.prior_layers = 1;
    cfg.mhce_layers = 1;
    cfg.num_hyperedges = 4;
    cfg.window_sizes = {1, 12};
    cfg.dropout = 0.1f;
    cfg.seed = 77;
    models::DyHsl model(task, cfg);
    TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 8;
    tc.max_batches_per_epoch = 1;  // one optimizer step per epoch
    return TrainModel(&model, SmallDataset(), tc).epoch_losses;
  };
  std::vector<double> first = run();
  std::vector<double> second = run();
  ASSERT_EQ(first.size(), 3u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "step " << i << " diverged";
  }
}

TEST(TrainerDeathTest, RejectsNonPositiveBatchSize) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("GRU-ED", task, zoo);
  TrainConfig tc;
  tc.batch_size = 0;
  EXPECT_DEATH(TrainModel(model.get(), SmallDataset(), tc), "batch_size");
}

TEST(TrainerTest, MaxBatchesCapsWork) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("GRU-ED", task, zoo);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.max_batches_per_epoch = 3;
  TrainResult result = TrainModel(model.get(), SmallDataset(), tc);
  EXPECT_EQ(result.epochs_run, 1);
  EXPECT_EQ(result.epoch_losses.size(), 1u);
  EXPECT_GT(result.seconds_per_epoch, 0.0);
}

TEST(TrainerTest, EarlyStoppingHaltsOnPlateau) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("FC-LSTM", task, zoo);
  TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 8;
  tc.max_batches_per_epoch = 2;  // tiny budget -> quick plateau
  tc.learning_rate = 0.0f;       // frozen weights -> exact plateau
  tc.patience = 2;
  tc.max_val_batches = 2;
  TrainResult result = TrainModel(model.get(), SmallDataset(), tc);
  EXPECT_LT(result.epochs_run, 30);
  EXPECT_GT(result.best_val_mae, 0.0);
}

TEST(EvaluateModelTest, CountsWindowsAndHorizons) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("TCN", task, zoo);
  EvalResult eval = EvaluateModel(model.get(), SmallDataset(),
                                  {0, 10}, /*batch_size=*/4);
  EXPECT_EQ(eval.windows, 10);
  EXPECT_EQ(eval.per_horizon.size(), 12u);
  EXPECT_GT(eval.overall.mae, 0.0);
  // Per-horizon metrics must average (roughly) to the overall figure:
  // every horizon has the same number of samples.
  double mean_h = 0.0;
  for (const auto& h : eval.per_horizon) mean_h += h.mae;
  mean_h /= eval.per_horizon.size();
  EXPECT_NEAR(mean_h, eval.overall.mae, 0.1 * eval.overall.mae + 1e-6);
}

TEST(EvaluateModelTest, MaxBatchesLimitsWork) {
  ForecastTask task = ForecastTask::FromDataset(SmallDataset());
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("TCN", task, zoo);
  EvalResult eval = EvaluateModel(model.get(), SmallDataset(), {0, 40},
                                  /*batch_size=*/4, /*max_batches=*/3);
  EXPECT_EQ(eval.windows, 12);
}

TEST(EvaluateModelTest, InferenceModeMetricsBitIdenticalToTapedEval) {
  // EvaluateModel now runs grad-free; its metrics must match a taped
  // evaluation loop (the pre-inference-mode implementation) exactly.
  const data::TrafficDataset& dataset = SmallDataset();
  ForecastTask task = ForecastTask::FromDataset(dataset);
  ZooConfig zoo;
  zoo.hidden_dim = 8;
  auto model = MakeNeuralModel("DyHSL", task, zoo);
  data::TrafficDataset::SplitRange range{0, 24};
  int64_t batch_size = 4;

  EvalResult grad_free =
      EvaluateModel(model.get(), dataset, range, batch_size);

  metrics::MetricAccumulator overall;
  std::vector<metrics::MetricAccumulator> horizon(dataset.horizon());
  data::BatchIterator iter(&dataset, range, batch_size, /*shuffle=*/false,
                           /*seed=*/1);
  data::BatchIterator::Batch batch;
  while (iter.Next(&batch)) {
    ag::Variable pred = model->Forward(batch.x, /*training=*/false);
    const T::Tensor& p = pred.value();  // tape alive: the old eval path
    overall.Add(p, batch.y);
    for (int64_t t = 0; t < dataset.horizon(); ++t) {
      horizon[t].Add(T::Slice(p, 1, t, 1), T::Slice(batch.y, 1, t, 1));
    }
  }
  EXPECT_EQ(grad_free.overall.mae, overall.Mae());
  EXPECT_EQ(grad_free.overall.rmse, overall.Rmse());
  EXPECT_EQ(grad_free.overall.mape, overall.Mape());
  ASSERT_EQ(grad_free.per_horizon.size(), horizon.size());
  for (size_t t = 0; t < horizon.size(); ++t) {
    EXPECT_EQ(grad_free.per_horizon[t].mae, horizon[t].Mae());
  }
}

}  // namespace
}  // namespace dyhsl::train
