// Unit tests for the dense tensor library: construction, movement ops,
// broadcasting arithmetic, matmuls, reductions, pooling and convolution.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "tests/testing_utils.h"

namespace dyhsl::tensor {
namespace {

TEST(TensorTest, ZerosShapeAndFill) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.ToVector()) EXPECT_EQ(v, 0.0f);
  t.Fill(2.5f);
  for (float v : t.ToVector()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_EQ(t.At({0, 1}), 2.0f);
  EXPECT_EQ(t.At({1, 0}), 3.0f);
  EXPECT_EQ(t.At({1, 1}), 4.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.Reshape({3, 2});
  EXPECT_TRUE(t.SharesStorageWith(r));
  r.Set({0, 1}, 42.0f);
  EXPECT_EQ(t.At({0, 1}), 42.0f);
}

TEST(TensorTest, ReshapeInfersAxis) {
  Tensor t = Tensor::Zeros({4, 6});
  Tensor r = t.Reshape({2, -1});
  EXPECT_EQ(r.size(1), 12);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Ones({3});
  Tensor c = t.Clone();
  EXPECT_FALSE(t.SharesStorageWith(c));
  c.Fill(7.0f);
  EXPECT_EQ(t.At({0}), 1.0f);
}

TEST(TensorTest, ArangeAndScalar) {
  Tensor a = Tensor::Arange(4);
  EXPECT_EQ(a.ToVector(), (std::vector<float>{0, 1, 2, 3}));
  EXPECT_EQ(Tensor::Scalar(3.5f).At({0}), 3.5f);
}

TEST(TensorTest, RandnDeterministicGivenSeed) {
  Rng rng1(7), rng2(7);
  Tensor a = Tensor::Randn({16}, &rng1);
  Tensor b = Tensor::Randn({16}, &rng2);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(OpsTest, BroadcastRowBias) {
  Tensor a = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<float>{1, 2, 3, 2, 3, 4}));
}

TEST(OpsTest, BroadcastScalar) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Tensor::Scalar(10.0f);
  EXPECT_EQ(Mul(a, s).ToVector(), (std::vector<float>{10, 20, 30}));
}

TEST(OpsTest, BroadcastMiddleAxis) {
  // (2, 1, 2) + (1, 3, 1) -> (2, 3, 2)
  Tensor a = Tensor::FromVector({2, 1, 2}, {0, 1, 10, 11});
  Tensor b = Tensor::FromVector({1, 3, 1}, {100, 200, 300});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(c.At({0, 0, 0}), 100.0f);
  EXPECT_EQ(c.At({0, 2, 1}), 301.0f);
  EXPECT_EQ(c.At({1, 1, 0}), 210.0f);
}

TEST(OpsTest, BroadcastZeroSizeLastAxisIsEmpty) {
  // Regression: the row-based broadcast path must not divide by a
  // zero-width last axis; the result is simply empty. (2,0) + (1,0)
  // broadcasts over the leading axis with nothing to compute per row.
  Tensor a(Shape{2, 0});
  Tensor b(Shape{1, 0});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 0}));
  EXPECT_EQ(c.numel(), 0);
  Tensor d(Shape{2, 0});
  AddBroadcastInPlace(&d, b);
  EXPECT_EQ(d.numel(), 0);
}

// Regression tests for the row-broadcast fast path in BinaryOp: the fast
// path may fire only when rank-1 b pairs elementwise with a's trailing
// axis AND the result shape is exactly a.shape. A rank-1 b whose length
// coincidentally matches some axis of a (or divides a.numel()) must still
// go through the general path.
TEST(OpsTest, RankOneRhsMatchingNonTrailingAxisUsesGeneralPath) {
  // b's length 3 matches a's *middle* axis, while a's trailing axis is 1
  // and must broadcast against b: the output widens to (2, 3, 3). A sloppy
  // "length divides numel" row fast path would pair b with flattened rows
  // of a and produce shape (2, 3, 1) garbage.
  Tensor a = Tensor::FromVector({2, 3, 1}, {0, 1, 2, 10, 11, 12});
  Tensor b = Tensor::FromVector({3}, {100, 200, 300});
  Tensor c = Add(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 3, 3}));
  EXPECT_EQ(c.At({0, 0, 0}), 100.0f);
  EXPECT_EQ(c.At({0, 0, 2}), 300.0f);
  EXPECT_EQ(c.At({1, 2, 1}), 212.0f);
}

TEST(OpsTest, RankOneRhsAgainstSizeOneTrailingAxisExpands) {
  // a's trailing axis is 1, b is longer: the general path must widen the
  // output (outer-product-style), not pair "rows" of a with b.
  Tensor a = Tensor::FromVector({3, 1}, {1, 2, 3});
  Tensor b = Tensor::FromVector({4}, {10, 20, 30, 40});
  Tensor c = Mul(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 4}));
  EXPECT_EQ(c.At({0, 0}), 10.0f);
  EXPECT_EQ(c.At({2, 3}), 120.0f);
}

TEST(OpsTest, RowBroadcastFastPathMatchesGeneralSemantics) {
  // Exact trailing match (including through a middle size-1 axis): the
  // fast path must agree with manually computed row-wise subtraction for
  // a non-commutative op.
  Tensor a = Tensor::FromVector({2, 1, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {1, 1, 2});
  Tensor c = Sub(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{0, 1, 1, 3, 4, 4}));
}

TEST(OpsTest, ReduceToShapeInvertsBroadcast) {
  Tensor g = Tensor::Ones({2, 3});
  Tensor r = ReduceToShape(g, {3});
  EXPECT_EQ(r.ToVector(), (std::vector<float>{2, 2, 2}));
  Tensor r2 = ReduceToShape(g, {2, 1});
  EXPECT_EQ(r2.ToVector(), (std::vector<float>{3, 3}));
}

TEST(OpsTest, MatMulBasic) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, MatMulTransposeFlagsAgree) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 5}, &rng);
  Tensor b = Tensor::Randn({5, 6}, &rng);
  Tensor ref = MatMul(a, b);
  Tensor at = Transpose2D(a);
  Tensor bt = Transpose2D(b);
  Tensor c1 = MatMul(at, b, /*trans_a=*/true, /*trans_b=*/false);
  Tensor c2 = MatMul(a, bt, /*trans_a=*/false, /*trans_b=*/true);
  Tensor c3 = MatMul(at, bt, /*trans_a=*/true, /*trans_b=*/true);
  EXPECT_TENSOR_NEAR(c1, ref, 1e-4f);
  EXPECT_TENSOR_NEAR(c2, ref, 1e-4f);
  EXPECT_TENSOR_NEAR(c3, ref, 1e-4f);
}

TEST(OpsTest, BatchedMatMulMatchesPerBatch) {
  Rng rng(11);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor b = Tensor::Randn({3, 5, 2}, &rng);
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 4, 2}));
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ab = Slice(a, 0, bi, 1).Reshape({4, 5});
    Tensor bb = Slice(b, 0, bi, 1).Reshape({5, 2});
    Tensor ref = MatMul(ab, bb);
    Tensor got = Slice(c, 0, bi, 1).Reshape({4, 2});
    EXPECT_TENSOR_NEAR(got, ref, 1e-4f);
  }
}

TEST(OpsTest, BatchedMatMulSharedRhs) {
  Rng rng(13);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor w = Tensor::Randn({4, 5}, &rng);
  Tensor c = BatchedMatMul(a, w);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
  Tensor folded = MatMul(a.Reshape({6, 4}), w).Reshape({2, 3, 5});
  EXPECT_TENSOR_NEAR(c, folded, 1e-4f);
}

TEST(OpsTest, BatchedMatMulTransB) {
  Rng rng(17);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({2, 6, 4}, &rng);
  Tensor c = BatchedMatMul(a, b, false, /*trans_b=*/true);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 6}));
  for (int64_t bi = 0; bi < 2; ++bi) {
    Tensor ab = Slice(a, 0, bi, 1).Reshape({3, 4});
    Tensor bb = Slice(b, 0, bi, 1).Reshape({6, 4});
    Tensor ref = MatMul(ab, Transpose2D(bb));
    Tensor got = Slice(c, 0, bi, 1).Reshape({3, 6});
    EXPECT_TENSOR_NEAR(got, ref, 1e-4f);
  }
}

TEST(OpsTest, TransposePerm3D) {
  Tensor a = Tensor::FromVector({2, 1, 3}, {0, 1, 2, 3, 4, 5});
  Tensor t = TransposePerm(a, {2, 0, 1});
  EXPECT_EQ(t.shape(), (Shape{3, 2, 1}));
  EXPECT_EQ(t.At({0, 0, 0}), 0.0f);
  EXPECT_EQ(t.At({0, 1, 0}), 3.0f);
  EXPECT_EQ(t.At({2, 1, 0}), 5.0f);
}

TEST(OpsTest, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  EXPECT_EQ(Concat({a, b}, 0).ToVector(), (std::vector<float>{1, 2, 3, 4}));
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{1, 4}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsTest, SliceMiddleAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{1, 2, 4, 5}));
}

TEST(OpsTest, TakeAndScatterRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor taken = TakeRows(a, {2, 0});
  EXPECT_EQ(taken.ToVector(), (std::vector<float>{5, 6, 1, 2}));
  Tensor dst = Tensor::Zeros({3, 2});
  ScatterAddRows(&dst, {1, 1}, Tensor::Ones({2, 2}));
  EXPECT_EQ(dst.ToVector(), (std::vector<float>{0, 0, 2, 2, 0, 0}));
}

TEST(OpsTest, SumMeanAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Sum(a, 0).ToVector(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(Sum(a, 1).ToVector(), (std::vector<float>{6, 15}));
  EXPECT_EQ(Sum(a, 1, true).shape(), (Shape{2, 1}));
  EXPECT_EQ(Mean(a, 1).ToVector(), (std::vector<float>{2, 5}));
  EXPECT_FLOAT_EQ(SumAllScalar(a), 21.0f);
  EXPECT_FLOAT_EQ(MeanAllScalar(a), 3.5f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor s = SoftmaxLastAxis(a);
  EXPECT_TRUE(dyhsl::testing::RowStochastic(s, 1e-5f));
}

TEST(OpsTest, SoftmaxStableForLargeInputs) {
  Tensor a = Tensor::FromVector({1, 3}, {1000, 1001, 1002});
  Tensor s = SoftmaxLastAxis(a);
  EXPECT_FALSE(std::isnan(s.At({0, 0})));
  EXPECT_GT(s.At({0, 2}), s.At({0, 0}));
}

TEST(OpsTest, MaxPoolAxisValuesAndArgmax) {
  // (1, 4, 2) pooled along axis 1 with window 2.
  Tensor a = Tensor::FromVector({1, 4, 2}, {1, 8, 3, 2, 5, 0, 4, 9});
  PoolResult r = MaxPoolAxis(a, 1, 2);
  EXPECT_EQ(r.values.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(r.values.ToVector(), (std::vector<float>{3, 8, 5, 9}));
  EXPECT_EQ(r.argmax[0], 2);  // flat index of 3
  EXPECT_EQ(r.argmax[1], 1);  // flat index of 8
}

TEST(OpsTest, UnaryKernels) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5, 0, 3});
  EXPECT_EQ(Relu(a).ToVector(), (std::vector<float>{0, 0, 0, 3}));
  EXPECT_EQ(Abs(a).ToVector(), (std::vector<float>{2, 0.5, 0, 3}));
  EXPECT_EQ(Sign(a).ToVector(), (std::vector<float>{-1, -1, 0, 1}));
  EXPECT_EQ(Heaviside(a).ToVector(), (std::vector<float>{0, 0, 0, 1}));
  EXPECT_EQ(Clamp(a, -1, 1).ToVector(), (std::vector<float>{-1, -0.5, 0, 1}));
  Tensor lr = LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(lr.At({0}), -0.2f);
  EXPECT_FLOAT_EQ(lr.At({3}), 3.0f);
}

TEST(OpsTest, Conv1dIdentityKernel) {
  // Kernel [1] with K=1 is the identity.
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 1}, {1});
  Tensor y = Conv1d(x, w, 1, 0, 0);
  EXPECT_EQ(y.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsTest, Conv1dCausalDifference) {
  // Kernel [-1, 1] with causal left pad computes x[t] - x[t-1].
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 3, 6, 10});
  Tensor w = Tensor::FromVector({1, 1, 2}, {-1, 1});
  Tensor y = Conv1d(x, w, 1, 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsTest, Conv1dDilation) {
  // Dilated difference: y[t] = x[t] - x[t-2].
  Tensor x = Tensor::FromVector({1, 1, 5}, {1, 2, 4, 7, 11});
  Tensor w = Tensor::FromVector({1, 1, 2}, {-1, 1});
  Tensor y = Conv1d(x, w, /*dilation=*/2, /*pad_left=*/2, /*pad_right=*/0);
  EXPECT_EQ(y.ToVector(), (std::vector<float>{1, 2, 3, 5, 7}));
}

TEST(OpsTest, Conv1dMultiChannelShape) {
  Rng rng(23);
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  Tensor w = Tensor::Randn({5, 3, 2}, &rng);
  Tensor y = Conv1d(x, w, 1, 1, 0);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
}

}  // namespace
}  // namespace dyhsl::tensor
