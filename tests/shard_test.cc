// Tests for the sharded multi-model serving path: ShardPlan partitioning
// and halo expansion, induced subgraph / sub-hypergraph extraction, the
// shard checkpoint family, and — the acceptance bar — ForecastRouter
// forecasts over 2- and 4-way partitioned N=1024 networks matching the
// unsharded engine element-wise within 1e-5 for graph-operator models.

#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/gnn_models.h"
#include "src/core/parallel.h"
#include "src/graph/shard.h"
#include "src/graph/temporal_graph.h"
#include "src/hypergraph/hypergraph.h"
#include "src/serve/router.h"
#include "src/train/checkpoint.h"
#include "src/train/model_zoo.h"
#include "tests/testing_utils.h"

namespace dyhsl::serve {
namespace {

namespace T = ::dyhsl::tensor;

using ::dyhsl::testing::MaxAbsDiff;
using ::dyhsl::testing::TempPath;
using train::RingForecastTask;

T::Tensor RandomWindow(const train::ForecastTask& task, uint64_t seed) {
  Rng rng(seed);
  return T::Tensor::Randn({task.history, task.num_nodes, task.input_dim},
                          &rng, 0.5f);
}

train::ZooConfig SmallZoo(uint64_t seed = 5) {
  train::ZooConfig zoo;
  zoo.hidden_dim = 8;
  zoo.seed = seed;
  return zoo;
}

// ------------------------------------------------------------- ShardPlan --

TEST(ShardPlanTest, PartitionsContiguouslyAndBalanced) {
  train::ForecastTask task = RingForecastTask(10);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 3, 0);
  ASSERT_EQ(plan.num_shards(), 3);
  EXPECT_EQ(plan.num_nodes(), 10);
  // Sizes differ by at most one and the ranges tile [0, N).
  int64_t expect_begin = 0;
  for (int64_t s = 0; s < plan.num_shards(); ++s) {
    const graph::ShardSpec& shard = plan.shard(s);
    EXPECT_EQ(shard.shard_id, s);
    EXPECT_EQ(shard.begin, expect_begin);
    EXPECT_GE(shard.owned_count(), 3);
    EXPECT_LE(shard.owned_count(), 4);
    EXPECT_EQ(shard.halo_count(), 0);
    expect_begin = shard.end;
  }
  EXPECT_EQ(expect_begin, 10);
  for (int64_t g = 0; g < 10; ++g) {
    const graph::ShardSpec& owner = plan.shard(plan.OwnerOf(g));
    EXPECT_GE(g, owner.begin);
    EXPECT_LT(g, owner.end);
  }
}

TEST(ShardPlanTest, HaloCoversHopNeighborhoodOnRing) {
  train::ForecastTask task = RingForecastTask(12);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 2);
  // Shard 0 owns [0, 6); 2 hops out along the ring reach {6, 7} above and
  // {11, 10} below (wrapping), all >= end or < begin of the owned range.
  const graph::ShardSpec& s0 = plan.shard(0);
  EXPECT_EQ(s0.begin, 0);
  EXPECT_EQ(s0.end, 6);
  EXPECT_EQ(s0.halo_count(), 4);
  EXPECT_EQ(s0.owned_offset, 0);  // no global ids below 0
  EXPECT_EQ(s0.locals, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 10, 11}));
  // Shard 1 owns [6, 12); its halo {4, 5, 0, 1} sorts below the owned
  // block, shifting owned_offset.
  const graph::ShardSpec& s1 = plan.shard(1);
  EXPECT_EQ(s1.owned_offset, 4);
  EXPECT_EQ(s1.locals, (std::vector<int64_t>{0, 1, 4, 5, 6, 7, 8, 9, 10, 11}));
  // Locals are globally sorted with the owned block contiguous.
  for (int64_t s = 0; s < 2; ++s) {
    const graph::ShardSpec& shard = plan.shard(s);
    for (size_t i = 1; i < shard.locals.size(); ++i) {
      EXPECT_LT(shard.locals[i - 1], shard.locals[i]);
    }
    for (int64_t i = 0; i < shard.owned_count(); ++i) {
      EXPECT_EQ(shard.locals[shard.owned_offset + i], shard.begin + i);
    }
  }
}

TEST(ShardPlanTest, SingleShardOwnsEverythingWithNoHalo) {
  train::ForecastTask task = RingForecastTask(7);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 1, 3);
  ASSERT_EQ(plan.num_shards(), 1);
  EXPECT_EQ(plan.shard(0).owned_count(), 7);
  EXPECT_EQ(plan.shard(0).halo_count(), 0);  // nothing outside to pull in
}

TEST(ShardPlanDeathTest, RejectsInvalidArguments) {
  train::ForecastTask task = RingForecastTask(8);
  EXPECT_DEATH(graph::ShardPlan::Build(task.spatial_adj, 0, 1), "num_shards");
  EXPECT_DEATH(graph::ShardPlan::Build(task.spatial_adj, 9, 1), "num_shards");
  EXPECT_DEATH(graph::ShardPlan::Build(task.spatial_adj, 2, -1), "halo_hops");
}

// ------------------------------------------------- induced sub-structures --

TEST(InducedSubgraphTest, KeepsExactlyTheLocalEdgesRemapped) {
  // Path graph 0-1-2-3-4 with distinct weights.
  std::vector<T::Triplet> triplets;
  for (int64_t i = 0; i < 4; ++i) {
    float w = 0.1f * static_cast<float>(i + 1);
    triplets.push_back({i, i + 1, w});
    triplets.push_back({i + 1, i, w});
  }
  T::CsrMatrix adj = T::CsrMatrix::FromTriplets(5, 5, std::move(triplets));
  graph::ShardPlan plan = graph::ShardPlan::Build(adj, 2, 1);
  // Shard 0 owns {0, 1, 2}, halo {3}.
  const graph::ShardSpec& s0 = plan.shard(0);
  ASSERT_EQ(s0.locals, (std::vector<int64_t>{0, 1, 2, 3}));
  T::CsrMatrix induced = graph::InducedSubgraph(adj, s0);
  T::Tensor dense = induced.ToDense();
  T::Tensor global = adj.ToDense();
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(dense.At({i, j}), global.At({s0.locals[i],
                                                   s0.locals[j]}))
          << "local (" << i << "," << j << ")";
    }
  }
  // The cut edge 3-4 is gone: node 3 keeps only its edge to 2.
  EXPECT_EQ(induced.nnz(), 6);
}

TEST(InducedSubgraphTest, CutNodesMayBecomeIsolatedWithoutNormalizationNan) {
  // Star: node 0 connected to 1..4; induce on {1, 2} -> no edges at all.
  std::vector<T::Triplet> triplets;
  for (int64_t i = 1; i < 5; ++i) {
    triplets.push_back({0, i, 1.0f});
    triplets.push_back({i, 0, 1.0f});
  }
  T::CsrMatrix adj = T::CsrMatrix::FromTriplets(5, 5, std::move(triplets));
  graph::ShardSpec spec;
  spec.shard_id = 0;
  spec.begin = 1;
  spec.end = 3;
  spec.locals = {1, 2};
  spec.owned_offset = 0;
  T::CsrMatrix induced = graph::InducedSubgraph(adj, spec);
  EXPECT_EQ(induced.nnz(), 0);
  // Zero-degree guarantee: normalization leaves empty rows empty.
  T::CsrMatrix normalized = induced.WithSelfLoops().SymNormalized();
  for (float v : normalized.values()) EXPECT_TRUE(std::isfinite(v));
  autograd::SparseConstant op =
      graph::ShardTemporalOperator(adj, spec, /*num_steps=*/3);
  EXPECT_EQ(op.rows(), 6);
  for (float v : op.matrix().values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ShardTemporalOperatorTest, RowsAreStochasticOverTheInducedGraph) {
  train::ForecastTask task = RingForecastTask(12);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  const graph::ShardSpec& s1 = plan.shard(1);
  autograd::SparseConstant op =
      graph::ShardTemporalOperator(task.spatial_adj, s1, /*num_steps=*/4);
  ASSERT_EQ(op.rows(), 4 * s1.num_local());
  ASSERT_EQ(op.cols(), 4 * s1.num_local());
  const auto& rp = op.matrix().row_ptr();
  const auto& vals = op.matrix().values();
  for (int64_t r = 0; r < op.rows(); ++r) {
    double sum = 0.0;
    for (int64_t k = rp[r]; k < rp[r + 1]; ++k) sum += vals[k];
    EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << r;
  }
}

TEST(InducedHypergraphTest, EmptyHyperedgesSurviveWithoutNan) {
  // Districts 0 and 1; the induced node set only touches district 0, so
  // hyperedge 1 becomes empty — and must stay harmless.
  hypergraph::Hypergraph hg =
      hypergraph::Hypergraph::FromCommunities({0, 0, 0, 1, 1, 1});
  hypergraph::Hypergraph sub = hg.Induced({0, 1, 2});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // hyperedge ids survive
  autograd::SparseConstant op = sub.NormalizedOperator();
  for (float v : op.matrix().values()) EXPECT_TRUE(std::isfinite(v));
  // District 0's three members still average each other: row sums 1.
  T::Tensor dense = op.matrix().ToDense();
  for (int64_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 3; ++j) sum += dense.At({i, j});
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  hypergraph::FactoredIncidence factored = sub.FactoredOperator();
  for (float v : factored.node_to_edge.matrix().values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ShardTaskTest, BuildsAShardScopedTask) {
  train::ForecastTask task = RingForecastTask(16);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 4, 1);
  const graph::ShardSpec& s2 = plan.shard(2);
  train::ForecastTask shard_task = train::ShardTask(task, s2);
  EXPECT_EQ(shard_task.num_nodes, s2.num_local());
  EXPECT_EQ(shard_task.spatial_adj.rows(), s2.num_local());
  EXPECT_EQ(shard_task.history, task.history);
  EXPECT_EQ(shard_task.horizon, task.horizon);
  EXPECT_EQ(shard_task.scaler_mean, task.scaler_mean);
  ASSERT_EQ(static_cast<int64_t>(shard_task.district_labels.size()),
            s2.num_local());
  for (int64_t i = 0; i < s2.num_local(); ++i) {
    EXPECT_EQ(shard_task.district_labels[i],
              task.district_labels[s2.locals[i]]);
  }
}

// ------------------------------------------------- shard checkpoint family --

TEST(ShardCheckpointSetTest, FamilyRoundTripsAndValidates) {
  train::ForecastTask task = RingForecastTask(16);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 2);
  baselines::Stgcn model(task, 8, /*seed=*/123);
  std::string prefix = TempPath("family");
  ASSERT_TRUE(train::ShardCheckpointSet::Save(plan, model, prefix).ok());

  auto validated = train::ShardCheckpointSet::Validate(prefix, plan);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  const std::vector<train::ShardMeta>& metas = validated.ValueOrDie();
  ASSERT_EQ(metas.size(), 2u);
  for (int64_t s = 0; s < 2; ++s) {
    EXPECT_TRUE(metas[s].Matches(plan, s));
    EXPECT_EQ(metas[s].shard_id, s);
    EXPECT_EQ(metas[s].total_nodes, 16);
  }

  // A plan with a different halo width is a different family: refuse it.
  graph::ShardPlan other = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  auto mismatch = train::ShardCheckpointSet::Validate(prefix, other);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  // A missing member makes the family invalid.
  std::remove(train::ShardCheckpointSet::ShardPath(prefix, 1).c_str());
  EXPECT_FALSE(train::ShardCheckpointSet::Validate(prefix, plan).ok());
  std::remove(train::ShardCheckpointSet::ShardPath(prefix, 0).c_str());
}

TEST(ShardCheckpointSetTest, UnshardedCheckpointIsNotAFamilyMember) {
  train::ForecastTask task = RingForecastTask(8);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 1, 0);
  baselines::Stgcn model(task, 8, /*seed=*/9);
  std::string prefix = TempPath("plainfam");
  // Write shard 0's file *without* shard metadata.
  std::string path = train::ShardCheckpointSet::ShardPath(prefix, 0);
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());
  auto validated = train::ShardCheckpointSet::Validate(prefix, plan);
  ASSERT_FALSE(validated.ok());
  EXPECT_EQ(validated.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- the router --

std::unique_ptr<ForecastRouter> MakeRouter() {
  return std::move(ForecastRouter::Create()).ValueOrDie();
}

// The acceptance bar: a 2- and 4-way sharded STGCN over an N=1024 network
// must reproduce the unsharded engine element-wise within 1e-5. STGCN
// applies one hop of (degree-normalized) graph convolution, so halo 2 (one
// hop of propagation + one hop for exact fringe degrees) covers its
// receptive field.
TEST(ForecastRouterTest, ShardedStgcnMatchesUnshardedAtN1024) {
  train::ForecastTask task = RingForecastTask(1024);
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  auto router = MakeRouter();
  ASSERT_TRUE(router->AddModel("stgcn", task, factory).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "stgcn-x2", task,
                      graph::ShardPlan::Build(task.spatial_adj, 2, 2), factory)
                  .ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "stgcn-x4", task,
                      graph::ShardPlan::Build(task.spatial_adj, 4, 2), factory)
                  .ok());
  EXPECT_EQ(router->ShardCountOf("stgcn"), 1);
  EXPECT_EQ(router->ShardCountOf("stgcn-x2"), 2);
  EXPECT_EQ(router->ShardCountOf("stgcn-x4"), 4);

  for (uint64_t seed : {3u, 17u}) {
    T::Tensor window = RandomWindow(task, seed);
    ForecastResponse single =
        router->Submit(RouterRequest{"stgcn", window.Clone()}).get();
    ASSERT_TRUE(single.status.ok()) << single.status.ToString();
    ForecastResponse x2 =
        router->Submit(RouterRequest{"stgcn-x2", window.Clone()}).get();
    ASSERT_TRUE(x2.status.ok()) << x2.status.ToString();
    ForecastResponse x4 =
        router->Submit(RouterRequest{"stgcn-x4", window.Clone()}).get();
    ASSERT_TRUE(x4.status.ok()) << x4.status.ToString();
    ASSERT_EQ(single.forecast.shape(), (T::Shape{12, 1024}));
    ASSERT_EQ(x2.forecast.shape(), (T::Shape{12, 1024}));
    ASSERT_EQ(x4.forecast.shape(), (T::Shape{12, 1024}));
    EXPECT_LE(MaxAbsDiff(x2.forecast, single.forecast), 1e-5f);
    EXPECT_LE(MaxAbsDiff(x4.forecast, single.forecast), 1e-5f);
  }
}

// A recurrent graph-operator model: DCRNN applies 2 diffusion hops per
// cell step over history + horizon steps, so the receptive field is
// 2 * (12 + 6) = 36 hops; halo 37 adds the fringe-degree hop.
TEST(ForecastRouterTest, ShardedDcrnnMatchesUnsharded) {
  train::ForecastTask task = RingForecastTask(256, 12, /*horizon=*/6);
  ModelFactory factory = ZooFactory("DCRNN", SmallZoo(7));
  auto router = MakeRouter();
  ASSERT_TRUE(router->AddModel("dcrnn", task, factory).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "dcrnn-x2", task,
                      graph::ShardPlan::Build(task.spatial_adj, 2, 37),
                      factory)
                  .ok());
  T::Tensor window = RandomWindow(task, 29);
  ForecastResponse single =
      router->Submit(RouterRequest{"dcrnn", window.Clone()}).get();
  ForecastResponse x2 =
      router->Submit(RouterRequest{"dcrnn-x2", window.Clone()}).get();
  ASSERT_TRUE(single.status.ok());
  ASSERT_TRUE(x2.status.ok());
  // Recurrent models amplify last-ulp float differences (the vectorized
  // tanh/sigmoid tail lanes fall at different positions for different
  // node counts) through their 18 cell steps, so the bound is looser
  // than the single-application STGCN's 1e-5 — but still rounding-level,
  // orders of magnitude below any structural halo error.
  EXPECT_LE(MaxAbsDiff(x2.forecast, single.forecast), 1e-4f);
}

// With a halo narrower than the receptive field the sharded forecast is
// an approximation — close, but measurably different. This pins down
// that the halo is what buys exactness (and guards against the
// equivalence tests passing vacuously).
TEST(ForecastRouterTest, HaloNarrowerThanReceptiveFieldIsApproximate) {
  train::ForecastTask task = RingForecastTask(64);
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  auto router = MakeRouter();
  ASSERT_TRUE(router->AddModel("exact", task, factory).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "halo0", task,
                      graph::ShardPlan::Build(task.spatial_adj, 2, 0), factory)
                  .ok());
  T::Tensor window = RandomWindow(task, 31);
  ForecastResponse exact =
      router->Submit(RouterRequest{"exact", window.Clone()}).get();
  ForecastResponse halo0 =
      router->Submit(RouterRequest{"halo0", window.Clone()}).get();
  ASSERT_TRUE(exact.status.ok());
  ASSERT_TRUE(halo0.status.ok());
  EXPECT_GT(MaxAbsDiff(halo0.forecast, exact.forecast), 1e-4f);
}

TEST(ForecastRouterTest, RoutesNamedModelsAndRejectsUnknown) {
  train::ForecastTask task = RingForecastTask(24);
  auto router = MakeRouter();
  models::DyHslConfig tiny;
  tiny.hidden_dim = 8;
  tiny.prior_layers = 1;
  tiny.mhce_layers = 1;
  tiny.num_hyperedges = 4;
  tiny.window_sizes = {1, 12};
  tiny.dropout = 0.0f;
  ASSERT_TRUE(
      router->AddModel("stgcn", task, ZooFactory("STGCN", SmallZoo())).ok());
  ASSERT_TRUE(router->AddModel("dyhsl", task, DyHslFactory(tiny)).ok());

  // Reference engines built with the same factories serve the truth.
  auto stgcn_ref = std::move(ForecastEngine::Create(
                                 task, ZooFactory("STGCN", SmallZoo())))
                       .ValueOrDie();
  auto dyhsl_ref =
      std::move(ForecastEngine::Create(task, tiny)).ValueOrDie();

  T::Tensor window = RandomWindow(task, 13);
  ForecastResponse via_stgcn =
      router->Submit(RouterRequest{"stgcn", window.Clone()}).get();
  ForecastResponse via_dyhsl =
      router->Submit(RouterRequest{"dyhsl", window.Clone()}).get();
  ASSERT_TRUE(via_stgcn.status.ok());
  ASSERT_TRUE(via_dyhsl.status.ok());
  ForecastResponse ref_stgcn =
      stgcn_ref->Submit(ForecastRequest{window.Clone()}).get();
  ForecastResponse ref_dyhsl =
      dyhsl_ref->Submit(ForecastRequest{window.Clone()}).get();
  EXPECT_TENSOR_EQ(via_stgcn.forecast, ref_stgcn.forecast);
  EXPECT_TENSOR_EQ(via_dyhsl.forecast, ref_dyhsl.forecast);
  // The two models must of course disagree with each other.
  EXPECT_GT(MaxAbsDiff(via_stgcn.forecast, via_dyhsl.forecast), 1e-3f);

  ForecastResponse unknown =
      router->Submit(RouterRequest{"agcrn", window.Clone()}).get();
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);
  // Ambiguous: two models registered, no name given.
  ForecastResponse unnamed =
      router->Submit(RouterRequest{"", window.Clone()}).get();
  EXPECT_EQ(unnamed.status.code(), StatusCode::kInvalidArgument);
  RouterStats stats = router->Stats();
  EXPECT_EQ(stats.routing_errors, 2);
  EXPECT_EQ(stats.requests, 2);
}

TEST(ForecastRouterTest, EmptyModelNameRoutesToTheOnlyModel) {
  train::ForecastTask task = RingForecastTask(12);
  auto router = MakeRouter();
  ASSERT_TRUE(
      router->AddModel("only", task, ZooFactory("STGCN", SmallZoo())).ok());
  ForecastResponse response =
      router->Submit(RouterRequest{"", RandomWindow(task, 2)}).get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST(ForecastRouterTest, ValidatesWindowShapeAndDuplicateNames) {
  train::ForecastTask task = RingForecastTask(12);
  auto router = MakeRouter();
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  ASSERT_TRUE(router->AddModel("m", task, factory).ok());
  Status dup = router->AddModel("m", task, factory);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(router->AddModel("", task, factory).ok());

  ForecastResponse bad =
      router->Submit(RouterRequest{"m", T::Tensor::Zeros({2, 2})}).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  ForecastResponse undefined =
      router->Submit(RouterRequest{"m", T::Tensor()}).get();
  EXPECT_EQ(undefined.status.code(), StatusCode::kInvalidArgument);
}

TEST(ForecastRouterTest, AddShardedModelValidatesPlanAndFamily) {
  train::ForecastTask task = RingForecastTask(16);
  auto router = MakeRouter();
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  // Plan over a different network size than the task.
  train::ForecastTask small = RingForecastTask(8);
  graph::ShardPlan wrong_plan =
      graph::ShardPlan::Build(small.spatial_adj, 2, 1);
  EXPECT_FALSE(
      router->AddShardedModel("m", task, wrong_plan, factory).ok());
  // Missing checkpoint family.
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 1);
  EXPECT_FALSE(router
                   ->AddShardedModel("m", task, plan, factory,
                                     TempPath("no_such_family"))
                   .ok());
}

TEST(ForecastRouterTest, LoadsShardCheckpointFamilyThroughEngines) {
  train::ForecastTask task = RingForecastTask(32);
  graph::ShardPlan plan = graph::ShardPlan::Build(task.spatial_adj, 2, 2);
  // Source weights come from seed 123; the serving factory inits with
  // seed 321, so only a successful family load can make outputs agree.
  baselines::Stgcn source(task, 8, /*seed=*/123);
  std::string prefix = TempPath("routerfam");
  ASSERT_TRUE(train::ShardCheckpointSet::Save(plan, source, prefix).ok());
  std::string single_path = TempPath("routerfam_single.ckpt");
  ASSERT_TRUE(train::SaveCheckpoint(source, single_path).ok());

  auto router = MakeRouter();
  ModelFactory serving_factory = ZooFactory("STGCN", SmallZoo(/*seed=*/321));
  ASSERT_TRUE(router
                  ->AddModel("single", task, serving_factory, single_path)
                  .ok());
  Status added =
      router->AddShardedModel("sharded", task, plan, serving_factory, prefix);
  ASSERT_TRUE(added.ok()) << added.ToString();

  T::Tensor window = RandomWindow(task, 41);
  ForecastResponse single =
      router->Submit(RouterRequest{"single", window.Clone()}).get();
  ForecastResponse sharded =
      router->Submit(RouterRequest{"sharded", window.Clone()}).get();
  ASSERT_TRUE(single.status.ok());
  ASSERT_TRUE(sharded.status.ok());
  EXPECT_LE(MaxAbsDiff(sharded.forecast, single.forecast), 1e-5f);

  // Engines surface their checkpoint's shard metadata in the fleet stats.
  RouterStats stats = router->Stats();
  int64_t sharded_engines = 0;
  for (const EngineStatsEntry& e : stats.engines) {
    if (e.model == "sharded") {
      EXPECT_TRUE(e.shard.Matches(plan, e.shard_id));
      ++sharded_engines;
    }
  }
  EXPECT_EQ(sharded_engines, 2);

  for (int64_t s = 0; s < 2; ++s) {
    std::remove(train::ShardCheckpointSet::ShardPath(prefix, s).c_str());
  }
  std::remove(single_path.c_str());
}

TEST(ForecastRouterTest, ShutdownDrainsEveryShard) {
  train::ForecastTask task = RingForecastTask(16);
  auto router = MakeRouter();
  EngineOptions slow;
  slow.max_batch = 64;
  slow.max_delay_us = 1000000;  // would hold partial batches for a second
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 1),
                      ZooFactory("STGCN", SmallZoo()), "", slow)
                  .ok());
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router->Submit(RouterRequest{"m", RandomWindow(task, i)}));
  }
  router->Shutdown();  // must flush both shards' partial batches promptly
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  // After shutdown, new submissions fail cleanly.
  ForecastResponse after =
      router->Submit(RouterRequest{"m", RandomWindow(task, 9)}).get();
  EXPECT_FALSE(after.status.ok());
}

TEST(ForecastRouterTest, ShardUnavailableSurfacesPerRequest) {
  train::ForecastTask task = RingForecastTask(16);
  auto router = MakeRouter();
  EngineOptions tight;
  tight.max_batch = 64;
  tight.max_delay_us = 1000000;
  tight.max_queue = 2;  // everything past 2 queued requests is shed
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 1),
                      ZooFactory("STGCN", SmallZoo()), "", tight)
                  .ok());
  T::Tensor window = RandomWindow(task, 5);
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(router->Submit(RouterRequest{"m", window.Clone()}));
  }
  router->Shutdown();
  int64_t served = 0;
  int64_t shed = 0;
  for (auto& future : futures) {
    ForecastResponse response = future.get();
    if (response.status.ok()) {
      ++served;
    } else {
      // A shard shedding load fails *that* request with kUnavailable —
      // never a whole batch, never a broken promise.
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(served + shed, 8);
  RouterStats stats = router->Stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_GE(stats.total.rejected, shed);
}

TEST(ForecastRouterTest, StatsAggregateAcrossTheFleet) {
  train::ForecastTask task = RingForecastTask(20);
  auto router = MakeRouter();
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 1),
                      ZooFactory("STGCN", SmallZoo()))
                  .ok());
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ForecastResponse response =
        router->Submit(RouterRequest{"m", RandomWindow(task, i)}).get();
    ASSERT_TRUE(response.status.ok());
  }
  RouterStats stats = router->Stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.routing_errors, 0);
  ASSERT_EQ(stats.engines.size(), 2u);
  // Every router request fans out to both shards.
  EXPECT_EQ(stats.total.requests, 2 * kRequests);
  for (const EngineStatsEntry& e : stats.engines) {
    EXPECT_EQ(e.model, "m");
    EXPECT_EQ(e.stats.requests, kRequests);
    EXPECT_GE(e.stats.batches, 1);
  }
  EXPECT_EQ(router->ModelNames(), (std::vector<std::string>{"m"}));
}

// ------------------------------------------------- placement + threading --

TEST(RouterPlacementTest, PartitionDividesTheBudgetAcrossShards) {
  train::ForecastTask task = RingForecastTask(64);
  RouterOptions routing;
  routing.placement = Placement::kPartition;
  routing.thread_budget = 4;
  auto router = std::move(ForecastRouter::Create(routing)).ValueOrDie();
  EngineOptions engine_options;
  engine_options.num_workers = 1;
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 2),
                      ZooFactory("STGCN", SmallZoo()), "", engine_options)
                  .ok());
  RouterStats stats = router->Stats();
  ASSERT_EQ(stats.engines.size(), 2u);
  for (const EngineStatsEntry& e : stats.engines) {
    // 4 threads over 2 engines: each engine's workers x team fit its
    // 2-thread slice — together they use the machine, never more.
    EXPECT_GE(e.num_workers, 1);
    EXPECT_GE(e.team_size, 1);
    EXPECT_LE(e.num_workers * e.team_size, 2)
        << "engine exceeded its budget slice";
  }
}

TEST(RouterPlacementTest, SubmitStormThroughPartitionedMultiWorkerFleet) {
  // The concurrency stress this PR is about: many client threads flooding
  // a placement-partitioned fleet whose engines each run several workers.
  // Every response must arrive, succeed, and be bit-identical.
  train::ForecastTask task = RingForecastTask(128);
  RouterOptions routing;
  routing.placement = Placement::kPartition;
  routing.thread_budget = 4;
  auto router = std::move(ForecastRouter::Create(routing)).ValueOrDie();
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  EngineOptions engine_options;
  engine_options.num_workers = 2;
  engine_options.max_batch = 4;
  engine_options.max_delay_us = 500;
  ASSERT_TRUE(router->AddModel("single", task, factory).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 2),
                      factory, "", engine_options)
                  .ok());
  T::Tensor window = RandomWindow(task, 47);
  ForecastResponse reference =
      router->Submit(RouterRequest{"single", window.Clone()}).get();
  ASSERT_TRUE(reference.status.ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::vector<std::future<ForecastResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futures[c].push_back(
            router->Submit(RouterRequest{"m", window.Clone()}));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (auto& per_client : futures) {
    for (auto& future : per_client) {
      ForecastResponse response = future.get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_LE(MaxAbsDiff(response.forecast, reference.forecast), 1e-5f);
    }
  }
  RouterStats stats = router->Stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient + 1);
  for (const EngineStatsEntry& e : stats.engines) {
    if (e.model != "m") continue;
    EXPECT_EQ(e.stats.requests, kClients * kPerClient);
    EXPECT_LE(e.num_workers * e.team_size, 2);  // slice of the 4-budget
  }
}

TEST(RouterPlacementTest, PinnedPlacementServesCorrectly) {
  // kPinned adds core affinity on top of the partition; on any machine
  // (1 core or 64) the fleet must still serve exact forecasts.
  train::ForecastTask task = RingForecastTask(64);
  RouterOptions routing;
  routing.placement = Placement::kPinned;
  routing.thread_budget = 2;
  auto router = std::move(ForecastRouter::Create(routing)).ValueOrDie();
  ModelFactory factory = ZooFactory("STGCN", SmallZoo());
  ASSERT_TRUE(router->AddModel("single", task, factory).ok());
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "pinned", task,
                      graph::ShardPlan::Build(task.spatial_adj, 2, 2), factory)
                  .ok());
  T::Tensor window = RandomWindow(task, 53);
  ForecastResponse single =
      router->Submit(RouterRequest{"single", window.Clone()}).get();
  ForecastResponse pinned =
      router->Submit(RouterRequest{"pinned", window.Clone()}).get();
  ASSERT_TRUE(single.status.ok());
  ASSERT_TRUE(pinned.status.ok());
  EXPECT_LE(MaxAbsDiff(pinned.forecast, single.forecast), 1e-5f);
}

TEST(RouterPlacementTest, CreateRejectsNegativeThreadBudget) {
  RouterOptions routing;
  routing.thread_budget = -1;
  auto created = ForecastRouter::Create(routing);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(ForecastRouterTest, PostShutdownStatsAreQuiescent) {
  // The RouterStats contract: once Shutdown has drained the fleet, the
  // totals are exact and stable — queue_depth 0, identical across calls.
  train::ForecastTask task = RingForecastTask(32);
  auto router = MakeRouter();
  ASSERT_TRUE(router
                  ->AddShardedModel(
                      "m", task, graph::ShardPlan::Build(task.spatial_adj, 2, 1),
                      ZooFactory("STGCN", SmallZoo()))
                  .ok());
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        router->Submit(RouterRequest{"m", RandomWindow(task, i)}));
  }
  router->Shutdown();
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().status.ok());
  }
  RouterStats first = router->Stats();
  EXPECT_EQ(first.requests, 6);
  EXPECT_EQ(first.total.queue_depth, 0);
  EXPECT_EQ(first.total.requests, 2 * 6);  // both shards saw every request
  RouterStats second = router->Stats();
  EXPECT_EQ(second.total.requests, first.total.requests);
  EXPECT_EQ(second.total.batches, first.total.batches);
  EXPECT_EQ(second.total.queue_depth, 0);
}

}  // namespace
}  // namespace dyhsl::serve
